//! The sharded million-pod fleet core (DESIGN.md §9).
//!
//! DLRover-RM's production deployment manages 62K+ concurrent training jobs
//! and 3.24 PB of memory (PAPER.md §1, Table 4); the classic
//! [`crate::Cluster`]-plus-driver pair tops out orders of magnitude below
//! that because every pod lives in one global map and one passive clock
//! serialises all progress.
//! This module scales the same fleet model out:
//!
//! * The fleet is decomposed into `C` independent placement-domain **cells**
//!   (think: an AntGroup sub-cluster). Each cell owns its nodes, its paged
//!   [`PodTable`], its generational [`GenSlab`] of live jobs, its own RNG
//!   lineage (`root.fork("cell/<c>")`), and its own fixed-capacity telemetry
//!   sink. `C` depends only on the configuration — never on the shard count.
//! * **Shards** are execution groups of consecutive cells. Each
//!   [`FleetShard`] drives its cells with one hierarchical [`TimerWheel`];
//!   `K = 1` is the unsharded baseline (one wheel interleaving every cell in
//!   global time order), `K > 1` shards run independently between barriers
//!   and can be spread over the parallel unit pool.
//! * Cells only interact by **forwarding** jobs that stay pending too long to
//!   the next cell (spill-over between sub-clusters). Forwarded jobs travel
//!   as [`Envelope`]s and are delivered at epoch barriers through the
//!   key-sorted [`Exchange`], i.e. the epoch is the lookahead of a
//!   conservative parallel discrete-event simulation.
//!
//! # Determinism argument
//!
//! Results are bit-identical for any shard count K (and any thread count)
//! because no observable quantity depends on how cells are grouped:
//!
//! 1. Within an epoch, cells are fully independent — all randomness comes
//!    from per-cell streams, all state is per-cell, and a shard's wheel
//!    preserves the relative `(time, seq)` order of each cell's events (a
//!    cell's pushes form a subsequence of its shard's pushes, so same-time
//!    events of one cell keep their FIFO order under any interleaving).
//! 2. Cross-cell messages are only delivered at barriers, in the canonical
//!    `(dst, at, src, seq)` order of [`Exchange::drain_sorted`], with
//!    per-sender sequence numbers — independent of production order.
//! 3. Barrier times are derived from the global minimum next-event time,
//!    which is a property of the union of cells, not of the sharding.
//! 4. Aggregates and telemetry are merged in ascending cell order.
//!
//! The `shard_count_is_invariant` tests below and the cross-K proptest in
//! `dlrover-bench` enforce this bit-for-bit.

use dlrover_sim::{FaultKind, FaultPlan, RngStreams, SimDuration, SimTime, StreamRng};
use dlrover_telemetry::{EventKind, Telemetry};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::exchange::{Envelope, Exchange};
use crate::fleet::{FleetConfig, FleetWorkload, JobClass};
use crate::node::{Node, NodeId};
use crate::pod::{Pod, PodId, PodPhase, PodRole, PodSpec, Priority};
use crate::resources::Resources;
use crate::store::{GenSlab, PodTable, SlabKey};
use crate::timerwheel::TimerWheel;

/// How long a lost node stays out of its cell (mirrors `driver.rs`).
const NODE_OUTAGE: SimDuration = SimDuration::from_mins(15);

/// Configuration of a sharded fleet run.
///
/// The number of **cells** fixes the simulated fleet; the shard count is a
/// pure execution parameter chosen at [`ShardedFleet::new`] time and must not
/// change results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScaleConfig {
    /// Placement-domain cells (sub-clusters). Results depend on this.
    pub cells: u32,
    /// Nodes per cell, each sized to `fleet.max_pod`.
    pub nodes_per_cell: u32,
    /// Per-cell workload generator configuration.
    pub fleet: FleetConfig,
    /// Barrier spacing: cross-cell deliveries land on multiples of this.
    pub epoch: SimDuration,
    /// How often a pending job re-attempts placement.
    pub retry_interval: SimDuration,
    /// Pending longer than this in one cell → forward to the next cell.
    pub forward_after: SimDuration,
    /// Max times a job may be forwarded before it gives up.
    pub hop_limit: u32,
    /// Event-ring capacity of each cell's telemetry sink.
    pub telemetry_capacity: usize,
    /// Training throughput model: samples/second one worker sustains on a
    /// nominal-speed node (fixes job duration from `total_samples`).
    pub samples_per_sec_per_worker: f64,
    /// Shortest training-job duration after clamping.
    pub min_job_duration: SimDuration,
    /// Longest training-job duration after clamping.
    pub max_job_duration: SimDuration,
}

impl Default for FleetScaleConfig {
    fn default() -> Self {
        FleetScaleConfig {
            cells: 4,
            nodes_per_cell: 128,
            fleet: FleetConfig {
                training_jobs: 540,
                background_jobs: 130,
                ..FleetConfig::default()
            },
            epoch: SimDuration::from_secs(600),
            retry_interval: SimDuration::from_secs(30),
            forward_after: SimDuration::from_secs(300),
            hop_limit: 3,
            telemetry_capacity: 2_048,
            samples_per_sec_per_worker: 50_000.0,
            min_job_duration: SimDuration::from_mins(10),
            max_job_duration: SimDuration::from_days(7),
        }
    }
}

impl FleetScaleConfig {
    /// Sizes a fleet to roughly `target_pods` total pods by scaling the cell
    /// count at the default ~4K pods/cell (the per-cell workload mix stays
    /// at its default, mirroring one production sub-cluster).
    pub fn for_target_pods(target_pods: u64) -> Self {
        let per_cell = 4_096u64;
        let cells = u32::try_from(target_pods.div_ceil(per_cell).max(1)).expect("cell overflow");
        FleetScaleConfig { cells, ..FleetScaleConfig::default() }
    }

    /// A deliberately tiny configuration for tests: `cells` cells with a
    /// handful of jobs each, short durations, tight epochs.
    pub fn small(cells: u32, training_jobs: usize, background_jobs: usize) -> Self {
        FleetScaleConfig {
            cells,
            nodes_per_cell: 16,
            fleet: FleetConfig {
                training_jobs,
                background_jobs,
                mean_interarrival: SimDuration::from_secs(30),
                ..FleetConfig::default()
            },
            epoch: SimDuration::from_secs(120),
            retry_interval: SimDuration::from_secs(15),
            forward_after: SimDuration::from_secs(60),
            hop_limit: 2,
            telemetry_capacity: 256,
            samples_per_sec_per_worker: 50_000.0,
            min_job_duration: SimDuration::from_mins(5),
            max_job_duration: SimDuration::from_hours(12),
        }
    }
}

/// A job description portable between cells (what travels in an envelope).
#[derive(Debug, Clone, PartialEq)]
struct JobSpec {
    /// `(origin_cell << 32) | workload index` — globally unique and
    /// shard-count independent.
    global_id: u64,
    workers: u32,
    ps: u32,
    worker_res: Resources,
    ps_res: Resources,
    duration: SimDuration,
    submitted_at: SimTime,
    hops: u32,
    is_service: bool,
    high_priority: bool,
}

/// Live state of a job admitted to (or pending in) a cell.
#[derive(Debug, Clone)]
struct JobState {
    spec: JobSpec,
    arrived_at: SimTime,
    pending: bool,
    /// Live pods (cleared as they fail) and the node each sits on.
    pods: Vec<(PodId, u32)>,
}

/// Chaos delivered to one cell (routed from a [`FaultPlan`]).
#[derive(Debug, Clone, Copy)]
enum ChaosAction {
    NodeFail(u32),
    NodeRecover(u32),
    KillWorker(u32),
    KillPs(u32),
    Burst(u32),
    /// Checkpoint-plane degradation (remote-tier outage or bandwidth
    /// collapse): cold starts need their checkpoint/image pulled from
    /// remote storage, so the cell admits nothing for the stall window.
    CkptStall(SimDuration),
}

/// Wheel events. Every event names its cell; a shard's wheel multiplexes the
/// cells it owns.
#[derive(Debug, Clone)]
enum FleetEv {
    /// Submit workload job `wl_idx` of `cell`.
    Submit { cell: u32, wl_idx: u32 },
    /// A forwarded job arrives in `cell` (delivered at an epoch barrier).
    Deliver { cell: u32, spec: JobSpec },
    /// A pending job re-attempts placement.
    Retry { cell: u32, key: SlabKey },
    /// A running job completes.
    Finish { cell: u32, key: SlabKey },
    /// One pod of a running job dies of organic churn.
    PodFail { cell: u32, key: SlabKey, pod: PodId },
    /// Scripted chaos.
    Chaos { cell: u32, action: ChaosAction },
}

impl FleetEv {
    fn cell(&self) -> u32 {
        match self {
            FleetEv::Submit { cell, .. }
            | FleetEv::Deliver { cell, .. }
            | FleetEv::Retry { cell, .. }
            | FleetEv::Finish { cell, .. }
            | FleetEv::PodFail { cell, .. }
            | FleetEv::Chaos { cell, .. } => *cell,
        }
    }
}

/// Shard-count-independent per-cell outcome counters. All fields are exact
/// integers so cross-K comparison is bitwise.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellAggregates {
    /// Cell id.
    pub cell: u32,
    /// Jobs submitted by this cell's own workload.
    pub jobs_submitted: u64,
    /// Jobs that arrived forwarded from another cell.
    pub jobs_forwarded_in: u64,
    /// Jobs this cell forwarded away.
    pub jobs_forwarded_out: u64,
    /// Jobs that ran out of hops and gave up.
    pub jobs_gave_up: u64,
    /// Gangs admitted (placed) in this cell.
    pub jobs_admitted: u64,
    /// Jobs finished in this cell.
    pub jobs_finished: u64,
    /// Jobs that lost every pod and failed.
    pub jobs_failed: u64,
    /// Pods created in this cell.
    pub pods_created: u64,
    /// Pods lost to organic churn or node loss.
    pub pod_failures: u64,
    /// Pods lost to preemption bursts.
    pub pods_preempted: u64,
    /// Pod lifecycle transitions (create/finish/fail/preempt) — the unit of
    /// the fleet-scale throughput metric.
    pub pod_events: u64,
    /// Wheel events processed on behalf of this cell.
    pub wheel_events: u64,
    /// High-water mark of the pending queue.
    pub peak_pending: u64,
    /// Sum of admission waits (µs) over admitted jobs.
    pub wait_us_sum: u64,
    /// Sum of submit→finish times (µs) over finished jobs.
    pub completion_us_sum: u64,
    /// Virtual time of the cell's last event (µs).
    pub last_event_us: u64,
    /// Checkpoint-plane stall windows delivered (remote-tier outage /
    /// bandwidth collapse freezing admissions).
    pub ckpt_stalls: u64,
}

/// Fleet-wide rollup of [`CellAggregates`] (derived, also K-independent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTotals {
    /// Jobs submitted across all cells.
    pub jobs_submitted: u64,
    /// Jobs admitted (counting only their final admission).
    pub jobs_admitted: u64,
    /// Jobs finished.
    pub jobs_finished: u64,
    /// Jobs failed.
    pub jobs_failed: u64,
    /// Jobs that gave up after exhausting forwarding hops.
    pub jobs_gave_up: u64,
    /// Cross-cell forwards.
    pub jobs_forwarded: u64,
    /// Pods created.
    pub pods_created: u64,
    /// Pod failures.
    pub pod_failures: u64,
    /// Pods preempted by chaos bursts.
    pub pods_preempted: u64,
    /// Total pod lifecycle transitions.
    pub pod_events: u64,
    /// Total wheel events processed.
    pub wheel_events: u64,
    /// Mean admission wait over admitted jobs, seconds.
    pub mean_wait_secs: f64,
    /// Mean submit→finish time over finished jobs, seconds.
    pub mean_completion_secs: f64,
    /// Virtual time of the last event anywhere, seconds.
    pub makespan_secs: f64,
}

/// Per-cell aggregates in ascending cell order, plus derived totals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetAggregates {
    /// One entry per cell, ascending by cell id.
    pub cells: Vec<CellAggregates>,
}

impl FleetAggregates {
    /// Fleet-wide rollup.
    pub fn totals(&self) -> FleetTotals {
        let sum = |f: fn(&CellAggregates) -> u64| self.cells.iter().map(f).sum::<u64>();
        let admitted = sum(|c| c.jobs_admitted);
        let finished = sum(|c| c.jobs_finished);
        FleetTotals {
            jobs_submitted: sum(|c| c.jobs_submitted),
            jobs_admitted: admitted,
            jobs_finished: finished,
            jobs_failed: sum(|c| c.jobs_failed),
            jobs_gave_up: sum(|c| c.jobs_gave_up),
            jobs_forwarded: sum(|c| c.jobs_forwarded_out),
            pods_created: sum(|c| c.pods_created),
            pod_failures: sum(|c| c.pod_failures),
            pods_preempted: sum(|c| c.pods_preempted),
            pod_events: sum(|c| c.pod_events),
            wheel_events: sum(|c| c.wheel_events),
            mean_wait_secs: if admitted == 0 {
                0.0
            } else {
                sum(|c| c.wait_us_sum) as f64 / admitted as f64 / 1e6
            },
            mean_completion_secs: if finished == 0 {
                0.0
            } else {
                sum(|c| c.completion_us_sum) as f64 / finished as f64 / 1e6
            },
            makespan_secs: self.cells.iter().map(|c| c.last_event_us).max().unwrap_or(0) as f64
                / 1e6,
        }
    }

    /// Order-sensitive 64-bit digest over every per-cell counter; byte-level
    /// witness for the cross-shard-count identity tests.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| h = dlrover_sim::splitmix64(h ^ v);
        for c in &self.cells {
            for v in [
                u64::from(c.cell),
                c.jobs_submitted,
                c.jobs_forwarded_in,
                c.jobs_forwarded_out,
                c.jobs_gave_up,
                c.jobs_admitted,
                c.jobs_finished,
                c.jobs_failed,
                c.pods_created,
                c.pod_failures,
                c.pods_preempted,
                c.pod_events,
                c.wheel_events,
                c.peak_pending,
                c.wait_us_sum,
                c.completion_us_sum,
                c.last_event_us,
                c.ckpt_stalls,
            ] {
                mix(v);
            }
        }
        h
    }
}

/// One placement-domain cell.
#[derive(Debug)]
struct Cell {
    id: u32,
    nodes: Vec<Node>,
    pods: PodTable,
    jobs: GenSlab<JobState>,
    /// Pending jobs in arrival order.
    pending: Vec<SlabKey>,
    /// Workload jobs, indexed by `Submit::wl_idx`.
    workload: Vec<JobSpec>,
    rng: StreamRng,
    telemetry: Telemetry,
    agg: CellAggregates,
    msg_seq: u64,
    /// Admissions are frozen until this instant (checkpoint-plane
    /// degradation, [`ChaosAction::CkptStall`]); pending jobs resume
    /// through their retry timers once the window passes.
    ckpt_stalled_until: SimTime,
}

impl Cell {
    /// First-fit gang placement; returns one node index per pod (workers
    /// first, then PS) or rolls back and returns `None`.
    fn try_place_gang(&mut self, spec: &JobSpec) -> Option<Vec<u32>> {
        let total = (spec.workers + spec.ps) as usize;
        let mut assignment = Vec::with_capacity(total);
        for i in 0..total {
            let res = if (i as u32) < spec.workers { spec.worker_res } else { spec.ps_res };
            match self.nodes.iter_mut().position(|n| n.fits(&res)) {
                Some(idx) => {
                    self.nodes[idx].reserve(res);
                    assignment.push(idx as u32);
                }
                None => {
                    // Roll back partial reservations.
                    for (j, &idx) in assignment.iter().enumerate() {
                        let res =
                            if (j as u32) < spec.workers { spec.worker_res } else { spec.ps_res };
                        self.nodes[idx as usize].release(res);
                    }
                    return None;
                }
            }
        }
        Some(assignment)
    }

    /// Terminates one live pod of a running job; returns true when the job
    /// lost its last pod (the caller fails the job).
    fn kill_pod(&mut self, key: SlabKey, pod: PodId, now: SimTime, phase: PodPhase) -> bool {
        let Some(job) = self.jobs.get_mut(key) else { return false };
        let Some(pos) = job.pods.iter().position(|(p, _)| *p == pod) else { return false };
        let (_, node_idx) = job.pods.remove(pos);
        let res = {
            let p = self.pods.get_mut(pod).expect("live pod present");
            debug_assert_eq!(p.phase, PodPhase::Running);
            p.phase = phase;
            p.spec.resources
        };
        self.nodes[node_idx as usize].release(res);
        self.agg.pod_events += 1;
        match phase {
            PodPhase::Preempted => {
                self.agg.pods_preempted += 1;
                self.telemetry.record(now, EventKind::PodPreempted { pod: pod.0 });
            }
            _ => {
                self.agg.pod_failures += 1;
                self.telemetry.record(now, EventKind::PodFailed { pod: pod.0 });
            }
        }
        self.jobs.get(key).is_some_and(|j| j.pods.is_empty())
    }

    /// All live `(key, pod, role)` triples in deterministic (slab-slot, pod)
    /// order — the resolution domain for chaos kill targets.
    fn live_pods(&self) -> Vec<(SlabKey, PodId, PodRole)> {
        let mut out = Vec::new();
        for (key, job) in self.jobs.iter() {
            for &(pod, _) in &job.pods {
                let role = self.pods.get(pod).map(|p| p.spec.role).unwrap_or(PodRole::Other);
                out.push((key, pod, role));
            }
        }
        out
    }
}

/// A group of consecutive cells driven by one timer wheel.
///
/// Obtained from [`ShardedFleet::begin_epoch`]; shards are `Send`, so the
/// bench layer can run one epoch per shard on the parallel unit pool and
/// hand them back to [`ShardedFleet::finish_epoch`].
#[derive(Debug)]
pub struct FleetShard {
    first_cell: u32,
    cells: Vec<Cell>,
    wheel: TimerWheel<FleetEv>,
    outbox: Vec<Envelope<JobSpec>>,
    cfg: FleetScaleConfig,
}

impl FleetShard {
    /// Shard id == index of its first cell's shard slot (stable, ascending).
    pub fn id(&self) -> u32 {
        self.first_cell
    }

    /// Runs this shard's cells up to (excluding) `bound`.
    pub fn run_epoch(&mut self, bound: SimTime) {
        let _p = dlrover_telemetry::prof::scope("shard/epoch");
        while let Some(t) = self.wheel.peek_time() {
            if t >= bound {
                break;
            }
            let ev = self.wheel.pop().expect("peeked event");
            self.handle(ev.at, ev.event, bound);
        }
        // Epoch housekeeping: reclaim pod pages that went fully terminal.
        for cell in &mut self.cells {
            cell.pods.reap_terminal();
        }
    }

    fn handle(&mut self, now: SimTime, ev: FleetEv, bound: SimTime) {
        let local = (ev.cell() - self.first_cell) as usize;
        let cell = &mut self.cells[local];
        cell.agg.wheel_events += 1;
        cell.agg.last_event_us = cell.agg.last_event_us.max(now.as_micros());
        match ev {
            FleetEv::Submit { cell: c, wl_idx } => {
                let spec = cell.workload[wl_idx as usize].clone();
                cell.agg.jobs_submitted += 1;
                cell.telemetry.count("fleet.jobs.submitted", 1);
                debug_assert_eq!(c, cell.id);
                Self::arrive(cell, &mut self.wheel, &self.cfg, spec, now);
            }
            FleetEv::Deliver { spec, .. } => {
                cell.agg.jobs_forwarded_in += 1;
                cell.telemetry.count("fleet.jobs.forwarded_in", 1);
                Self::arrive(cell, &mut self.wheel, &self.cfg, spec, now);
            }
            FleetEv::Retry { key, .. } => {
                let Some(job) = cell.jobs.get(key) else { return };
                if !job.pending {
                    return;
                }
                let (spec, arrived_at) = (job.spec.clone(), job.arrived_at);
                if now < cell.ckpt_stalled_until {
                    // Checkpoint plane degraded: no placements (and no
                    // forwarding — every cell shares the remote tier, so
                    // hopping would not help); try again after backoff.
                    self.wheel
                        .push(now + self.cfg.retry_interval, FleetEv::Retry { cell: cell.id, key });
                    return;
                }
                if let Some(assignment) = cell.try_place_gang(&spec) {
                    cell.pending.retain(|k| *k != key);
                    Self::admit(cell, &mut self.wheel, &self.cfg, key, assignment, now);
                } else if now.saturating_since(arrived_at) >= self.cfg.forward_after {
                    cell.pending.retain(|k| *k != key);
                    let job = cell.jobs.remove(key).expect("pending job in slab");
                    if job.spec.hops >= self.cfg.hop_limit || self.cfg.cells <= 1 {
                        cell.agg.jobs_gave_up += 1;
                        cell.telemetry.count("fleet.jobs.gave_up", 1);
                    } else {
                        cell.agg.jobs_forwarded_out += 1;
                        cell.telemetry.count("fleet.jobs.forwarded_out", 1);
                        let mut spec = job.spec;
                        spec.hops += 1;
                        let seq = cell.msg_seq;
                        cell.msg_seq += 1;
                        self.outbox.push(Envelope {
                            at: bound,
                            src: cell.id,
                            dst: (cell.id + 1) % self.cfg.cells,
                            seq,
                            msg: spec,
                        });
                    }
                } else {
                    self.wheel
                        .push(now + self.cfg.retry_interval, FleetEv::Retry { cell: cell.id, key });
                }
            }
            FleetEv::Finish { key, .. } => {
                let Some(job) = cell.jobs.remove(key) else { return };
                debug_assert!(!job.pending);
                for (pod, node_idx) in &job.pods {
                    let res = {
                        let p = cell.pods.get_mut(*pod).expect("live pod present");
                        p.phase = PodPhase::Succeeded;
                        p.spec.resources
                    };
                    cell.nodes[*node_idx as usize].release(res);
                    cell.agg.pod_events += 1;
                }
                cell.agg.jobs_finished += 1;
                cell.agg.completion_us_sum +=
                    now.saturating_since(job.spec.submitted_at).as_micros();
                cell.telemetry.count("fleet.jobs.finished", 1);
                // Freed capacity: admit pending jobs in arrival order.
                Self::admit_pending(cell, &mut self.wheel, &self.cfg, now);
            }
            FleetEv::PodFail { key, pod, .. } => {
                if cell.kill_pod(key, pod, now, PodPhase::Failed) {
                    cell.jobs.remove(key);
                    cell.agg.jobs_failed += 1;
                    cell.telemetry.count("fleet.jobs.failed", 1);
                }
            }
            FleetEv::Chaos { action, .. } => {
                Self::chaos(cell, now, action);
                Self::admit_pending(cell, &mut self.wheel, &self.cfg, now);
            }
        }
    }

    /// A job arrives in a cell (fresh submit or forwarded): place it now or
    /// park it pending with a retry timer.
    fn arrive(
        cell: &mut Cell,
        wheel: &mut TimerWheel<FleetEv>,
        cfg: &FleetScaleConfig,
        spec: JobSpec,
        now: SimTime,
    ) {
        let key = cell.jobs.insert(JobState {
            spec: spec.clone(),
            arrived_at: now,
            pending: true,
            pods: Vec::new(),
        });
        let placeable = now >= cell.ckpt_stalled_until;
        if let Some(assignment) = placeable.then(|| cell.try_place_gang(&spec)).flatten() {
            Self::admit(cell, wheel, cfg, key, assignment, now);
        } else {
            cell.pending.push(key);
            cell.agg.peak_pending = cell.agg.peak_pending.max(cell.pending.len() as u64);
            wheel.push(now + cfg.retry_interval, FleetEv::Retry { cell: cell.id, key });
        }
    }

    /// Binds the gang's pods, schedules its finish and organic pod failures.
    fn admit(
        cell: &mut Cell,
        wheel: &mut TimerWheel<FleetEv>,
        cfg: &FleetScaleConfig,
        key: SlabKey,
        assignment: Vec<u32>,
        now: SimTime,
    ) {
        let spec = cell.jobs.get(key).expect("admitting live job").spec.clone();
        let mut min_speed = f64::INFINITY;
        let mut pods = Vec::with_capacity(assignment.len());
        for (i, &node_idx) in assignment.iter().enumerate() {
            let i = i as u32;
            let (res, role) = if i < spec.workers {
                (spec.worker_res, if spec.is_service { PodRole::Other } else { PodRole::Worker })
            } else {
                (spec.ps_res, PodRole::ParameterServer)
            };
            let node = &cell.nodes[node_idx as usize];
            min_speed = min_speed.min(node.speed);
            let id = PodId(cell.pods.total_inserted());
            cell.pods.insert(Pod {
                id,
                spec: PodSpec {
                    resources: res,
                    role,
                    priority: if spec.high_priority { Priority::High } else { Priority::Low },
                    job_id: spec.global_id,
                },
                phase: PodPhase::Running,
                node: Some(NodeId(node_idx)),
                requested_at: spec.submitted_at,
                placed_at: Some(now),
                running_at: Some(now),
                node_speed: node.speed,
            });
            pods.push((id, node_idx));
            cell.agg.pods_created += 1;
            cell.agg.pod_events += 1;
            cell.telemetry.record(now, EventKind::PodPlaced { pod: id.0, node: node_idx });
        }
        // Gang-gated: the slowest node paces the whole job (§2.2 stragglers).
        let slowdown = if min_speed.is_finite() && min_speed > 0.0 { 1.0 / min_speed } else { 1.0 };
        let runtime = spec.duration.mul_f64(slowdown);
        let job = cell.jobs.get_mut(key).expect("admitting live job");
        job.pending = false;
        job.pods = pods.clone();
        cell.agg.jobs_admitted += 1;
        cell.agg.wait_us_sum += now.saturating_since(spec.submitted_at).as_micros();
        cell.telemetry.count("fleet.jobs.admitted", 1);
        wheel.push(now + runtime, FleetEv::Finish { cell: cell.id, key });
        // Organic pod churn (§2.2 / Table 4), sampled per pod in pod order.
        let p = cfg.fleet.pod_daily_failure_rate.clamp(0.0, 0.999_999);
        if p > 0.0 {
            let rate_per_sec = -(1.0 - p).ln() / 86_400.0;
            for (pod, _) in pods {
                let u: f64 = cell.rng.gen_range(1e-12..1.0);
                let delay = SimDuration::from_secs_f64(-u.ln() / rate_per_sec);
                if delay < runtime {
                    wheel.push(now + delay, FleetEv::PodFail { cell: cell.id, key, pod });
                }
            }
        }
    }

    /// Admits as many pending jobs as now fit, preserving arrival order.
    fn admit_pending(
        cell: &mut Cell,
        wheel: &mut TimerWheel<FleetEv>,
        cfg: &FleetScaleConfig,
        now: SimTime,
    ) {
        if now < cell.ckpt_stalled_until {
            return; // admissions frozen; retry timers resume the queue
        }
        let queue = std::mem::take(&mut cell.pending);
        for key in queue {
            let Some(job) = cell.jobs.get(key) else { continue };
            if !job.pending {
                continue;
            }
            let spec = job.spec.clone();
            if let Some(assignment) = cell.try_place_gang(&spec) {
                Self::admit(cell, wheel, cfg, key, assignment, now);
            } else {
                cell.pending.push(key);
            }
        }
    }

    fn chaos(cell: &mut Cell, now: SimTime, action: ChaosAction) {
        match action {
            ChaosAction::NodeFail(n) => {
                let n = n % cell.nodes.len().max(1) as u32;
                cell.nodes[n as usize].healthy = false;
                cell.telemetry.record(now, EventKind::NodeFailed { node: n });
                // Every resident pod dies with the node.
                let victims: Vec<(SlabKey, PodId)> = cell
                    .jobs
                    .iter()
                    .flat_map(|(key, job)| {
                        job.pods
                            .iter()
                            .filter(|(_, node)| *node == n)
                            .map(move |(pod, _)| (key, *pod))
                    })
                    .collect();
                for (key, pod) in victims {
                    if cell.kill_pod(key, pod, now, PodPhase::Failed) {
                        cell.jobs.remove(key);
                        cell.agg.jobs_failed += 1;
                        cell.telemetry.count("fleet.jobs.failed", 1);
                    }
                }
            }
            ChaosAction::NodeRecover(n) => {
                let n = n % cell.nodes.len().max(1) as u32;
                cell.nodes[n as usize].healthy = true;
            }
            ChaosAction::KillWorker(i) | ChaosAction::KillPs(i) => {
                let want_ps = matches!(action, ChaosAction::KillPs(_));
                let targets: Vec<(SlabKey, PodId)> = cell
                    .live_pods()
                    .into_iter()
                    .filter(|(_, _, role)| (*role == PodRole::ParameterServer) == want_ps)
                    .map(|(key, pod, _)| (key, pod))
                    .collect();
                if targets.is_empty() {
                    return;
                }
                let (key, pod) = targets[i as usize % targets.len()];
                if cell.kill_pod(key, pod, now, PodPhase::Failed) {
                    cell.jobs.remove(key);
                    cell.agg.jobs_failed += 1;
                    cell.telemetry.count("fleet.jobs.failed", 1);
                }
            }
            ChaosAction::CkptStall(window) => {
                cell.ckpt_stalled_until = cell.ckpt_stalled_until.max(now + window);
                cell.agg.ckpt_stalls += 1;
                cell.telemetry.count("fleet.ckpt.stalls", 1);
            }
            ChaosAction::Burst(pods) => {
                // A high-priority burst preempts the first `pods` live pods.
                let victims: Vec<(SlabKey, PodId)> = cell
                    .live_pods()
                    .into_iter()
                    .take(pods as usize)
                    .map(|(key, pod, _)| (key, pod))
                    .collect();
                for (key, pod) in victims {
                    if cell.kill_pod(key, pod, now, PodPhase::Preempted) {
                        cell.jobs.remove(key);
                        cell.agg.jobs_failed += 1;
                        cell.telemetry.count("fleet.jobs.failed", 1);
                    }
                }
            }
        }
    }
}

/// The sharded fleet: `C` cells grouped into `K` shards plus the exchange
/// that carries spill-over between them.
#[derive(Debug)]
pub struct ShardedFleet {
    shards: Vec<FleetShard>,
    exchange: Exchange<JobSpec>,
    cfg: FleetScaleConfig,
    planned_pods: u64,
}

impl ShardedFleet {
    /// Builds the fleet with `shard_count` shards (clamped to the cell
    /// count). Same `cfg` + `seed` ⇒ same results for every `shard_count`.
    pub fn new(cfg: &FleetScaleConfig, shard_count: u32, seed: u64) -> Self {
        Self::with_chaos(cfg, shard_count, seed, None)
    }

    /// Like [`ShardedFleet::new`], with a scripted [`FaultPlan`] whose events
    /// are routed to cells by their suggested target index (mod the cell
    /// count) — a shard-count-independent mapping.
    pub fn with_chaos(
        cfg: &FleetScaleConfig,
        shard_count: u32,
        seed: u64,
        plan: Option<&FaultPlan>,
    ) -> Self {
        assert!(cfg.cells > 0, "fleet needs at least one cell");
        let root = RngStreams::new(seed);
        let shard_count = shard_count.clamp(1, cfg.cells);

        // Route chaos to cells first so each cell's init list is complete.
        let mut chaos_per_cell: Vec<Vec<(SimTime, ChaosAction)>> =
            vec![Vec::new(); cfg.cells as usize];
        if let Some(plan) = plan {
            for (i, ev) in plan.events.iter().enumerate() {
                let route = |target: u32| (target % cfg.cells) as usize;
                match ev.kind {
                    FaultKind::NodeLoss { node } => {
                        let cell = route(node);
                        let local = node / cfg.cells;
                        chaos_per_cell[cell].push((ev.at, ChaosAction::NodeFail(local)));
                        chaos_per_cell[cell]
                            .push((ev.at + NODE_OUTAGE, ChaosAction::NodeRecover(local)));
                    }
                    FaultKind::WorkerKill { worker } => {
                        chaos_per_cell[route(worker)]
                            .push((ev.at, ChaosAction::KillWorker(worker / cfg.cells)));
                    }
                    FaultKind::PsKill { ps } => {
                        chaos_per_cell[route(ps)]
                            .push((ev.at, ChaosAction::KillPs(ps / cfg.cells)));
                    }
                    FaultKind::PreemptionBurst { pods } => {
                        chaos_per_cell[i % cfg.cells as usize]
                            .push((ev.at, ChaosAction::Burst(pods)));
                    }
                    FaultKind::RemoteTierOutage { window } => {
                        // The remote checkpoint tier is shared by the
                        // whole fleet: every cell's admissions stall for
                        // the window.
                        for cell in chaos_per_cell.iter_mut() {
                            cell.push((ev.at, ChaosAction::CkptStall(window)));
                        }
                    }
                    FaultKind::BandwidthCollapse { factor_permille, window } => {
                        // Degraded, not dead: the stall covers only the
                        // bandwidth fraction the collapse removed.
                        let lost = (f64::from(factor_permille) - 1000.0)
                            / f64::from(factor_permille.max(1001));
                        let stall = window.mul_f64(lost);
                        for cell in chaos_per_cell.iter_mut() {
                            cell.push((ev.at, ChaosAction::CkptStall(stall)));
                        }
                    }
                    // Engine/control-plane faults (and per-manifest /
                    // per-quorum checkpoint faults) have no fleet-level
                    // analog.
                    _ => {}
                }
            }
        }

        let mut planned_pods = 0u64;
        let mut shards = Vec::with_capacity(shard_count as usize);
        let per = cfg.cells / shard_count;
        let extra = cfg.cells % shard_count;
        let mut next_cell = 0u32;
        for s in 0..shard_count {
            let count = per + u32::from(s < extra);
            let first_cell = next_cell;
            let mut wheel = TimerWheel::new();
            let mut cells = Vec::with_capacity(count as usize);
            for c in first_cell..first_cell + count {
                let (cell, pods) = Self::build_cell(
                    cfg,
                    c,
                    &root,
                    std::mem::take(&mut chaos_per_cell[c as usize]),
                    &mut wheel,
                );
                planned_pods += pods;
                cells.push(cell);
            }
            next_cell += count;
            shards.push(FleetShard {
                first_cell,
                cells,
                wheel,
                outbox: Vec::new(),
                cfg: cfg.clone(),
            });
        }
        ShardedFleet { shards, exchange: Exchange::new(), cfg: cfg.clone(), planned_pods }
    }

    /// Generates one cell's nodes and workload and seeds its shard's wheel;
    /// returns the cell plus its planned pod count.
    fn build_cell(
        cfg: &FleetScaleConfig,
        cell_id: u32,
        root: &RngStreams,
        chaos: Vec<(SimTime, ChaosAction)>,
        wheel: &mut TimerWheel<FleetEv>,
    ) -> (Cell, u64) {
        let streams = root.fork(&format!("cell/{cell_id}"));
        let mut node_rng = streams.stream("nodes");
        let nodes = (0..cfg.nodes_per_cell)
            .map(|i| {
                // Heterogeneous hardware (§2.2): a slow tail paces gangs.
                let speed = if node_rng.gen::<f64>() < 0.15 { 0.45 } else { 1.0 };
                Node::new(NodeId(i), cfg.fleet.max_pod, speed)
            })
            .collect();

        let workload = FleetWorkload::generate(&cfg.fleet, &streams);
        let mut planned_pods = 0u64;
        let specs: Vec<JobSpec> = workload
            .jobs
            .iter()
            .map(|job| {
                planned_pods += u64::from(job.workers + job.ps);
                let duration = match job.class {
                    JobClass::Training => {
                        let secs = job.total_samples as f64
                            / (f64::from(job.workers.max(1)) * cfg.samples_per_sec_per_worker);
                        SimDuration::from_secs_f64(secs)
                            .clamp(cfg.min_job_duration, cfg.max_job_duration)
                    }
                    _ => job.service_duration.unwrap_or(cfg.min_job_duration),
                };
                JobSpec {
                    global_id: (u64::from(cell_id) << 32) | job.id,
                    workers: job.workers,
                    ps: job.ps,
                    worker_res: job.requested_worker,
                    ps_res: job.requested_ps,
                    duration,
                    submitted_at: job.submit,
                    hops: 0,
                    is_service: job.class != JobClass::Training,
                    high_priority: job.class.priority() == Priority::High,
                }
            })
            .collect();

        // Seed the wheel: submits (in workload order) merged with chaos (in
        // plan order), stably sorted by time. The per-cell push order is a
        // pure function of the cell, so it is identical at every shard count.
        let mut init: Vec<(SimTime, u32, FleetEv)> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.submitted_at, 0, FleetEv::Submit { cell: cell_id, wl_idx: i as u32 }))
            .collect();
        init.extend(
            chaos.into_iter().map(|(at, action)| (at, 1, FleetEv::Chaos { cell: cell_id, action })),
        );
        init.sort_by_key(|(at, rank, _)| (*at, *rank));
        for (at, _, ev) in init {
            wheel.push(at, ev);
        }

        let cell = Cell {
            id: cell_id,
            nodes,
            pods: PodTable::new(),
            jobs: GenSlab::with_capacity(64),
            pending: Vec::new(),
            workload: specs,
            rng: streams.stream("cell-events"),
            telemetry: Telemetry::with_capacity(cfg.telemetry_capacity),
            agg: CellAggregates { cell: cell_id, ..CellAggregates::default() },
            msg_seq: 0,
            ckpt_stalled_until: SimTime::ZERO,
        };
        (cell, planned_pods)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of cells.
    pub fn cell_count(&self) -> u32 {
        self.cfg.cells
    }

    /// Total pods the generated workload will create if every job admits.
    pub fn planned_pods(&self) -> u64 {
        self.planned_pods
    }

    /// Computes the next epoch barrier and hands the shards out for the
    /// epoch; returns `None` when the fleet has fully drained. The caller
    /// must run each shard to the bound (serially or on the unit pool) and
    /// return them via [`ShardedFleet::finish_epoch`].
    pub fn begin_epoch(&mut self) -> Option<(SimTime, Vec<FleetShard>)> {
        let mut next: Option<SimTime> = None;
        for s in &mut self.shards {
            if let Some(t) = s.wheel.peek_time() {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        }
        let t = next?;
        let epoch = self.cfg.epoch.as_micros().max(1);
        let bound =
            SimTime::from_micros((t.as_micros() / epoch).saturating_add(1).saturating_mul(epoch));
        Some((bound, std::mem::take(&mut self.shards)))
    }

    /// Accepts the shards back after an epoch and routes their outboxes:
    /// envelopes merge through the exchange in canonical order and are
    /// pushed into the destination shards' wheels.
    ///
    /// # Panics
    /// Panics if the shards are not returned in ascending id order (the
    /// parallel pool's key-sorted outputs guarantee this).
    pub fn finish_epoch(&mut self, mut shards: Vec<FleetShard>) {
        assert!(
            shards.windows(2).all(|w| w[0].first_cell < w[1].first_cell),
            "shards must be returned in ascending order"
        );
        let _p = dlrover_telemetry::prof::scope("shard/exchange");
        for shard in &mut shards {
            self.exchange.collect(std::mem::take(&mut shard.outbox));
        }
        self.shards = shards;
        let mut delivered = 0u64;
        for env in self.exchange.drain_sorted() {
            delivered += 1;
            let shard = self
                .shards
                .iter_mut()
                .rev()
                .find(|s| s.first_cell <= env.dst)
                .expect("destination shard exists");
            shard.wheel.push(env.at, FleetEv::Deliver { cell: env.dst, spec: env.msg });
        }
        dlrover_telemetry::prof::add_items(delivered);
    }

    /// One serial epoch; returns false when the fleet has drained.
    pub fn step(&mut self) -> bool {
        let Some((bound, mut shards)) = self.begin_epoch() else {
            return false;
        };
        for shard in &mut shards {
            shard.run_epoch(bound);
        }
        self.finish_epoch(shards);
        true
    }

    /// Runs serially to completion and returns the aggregates.
    pub fn run_to_completion(&mut self) -> FleetAggregates {
        while self.step() {}
        self.aggregates()
    }

    /// Per-cell aggregates in ascending cell order.
    pub fn aggregates(&self) -> FleetAggregates {
        FleetAggregates {
            cells: self.shards.iter().flat_map(|s| s.cells.iter().map(|c| c.agg.clone())).collect(),
        }
    }

    /// Cell telemetry merged in ascending cell order (the same key-sorted
    /// merge discipline the parallel engine uses).
    pub fn merged_telemetry(&self) -> Telemetry {
        Telemetry::merge_ordered(
            self.shards.iter().flat_map(|s| s.cells.iter().map(|c| &c.telemetry)),
        )
    }

    /// Pods currently resident across all pod tables (after reaping).
    pub fn resident_pods(&self) -> usize {
        self.shards.iter().flat_map(|s| &s.cells).map(|c| c.pods.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_sim::{FaultEvent, FaultPlanConfig};

    fn small_cfg() -> FleetScaleConfig {
        FleetScaleConfig::small(3, 12, 4)
    }

    fn run(cfg: &FleetScaleConfig, shards: u32, seed: u64) -> (FleetAggregates, String) {
        let mut fleet = ShardedFleet::new(cfg, shards, seed);
        let agg = fleet.run_to_completion();
        (agg, fleet.merged_telemetry().to_jsonl())
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let cfg = small_cfg();
        let (a, ta) = run(&cfg, 2, 42);
        let (b, tb) = run(&cfg, 2, 42);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(ta, tb);
        let (c, _) = run(&cfg, 2, 43);
        assert_ne!(a, c, "different seed must differ");
    }

    #[test]
    fn shard_count_is_invariant() {
        let cfg = small_cfg();
        let (baseline, t1) = run(&cfg, 1, 7);
        for k in [2u32, 3, 7] {
            let (agg, tel) = run(&cfg, k, 7);
            assert_eq!(baseline, agg, "aggregates diverged at K={k}");
            assert_eq!(baseline.digest(), agg.digest());
            assert_eq!(t1, tel, "telemetry diverged at K={k}");
        }
    }

    #[test]
    fn every_job_resolves() {
        let cfg = small_cfg();
        let (agg, _) = run(&cfg, 2, 11);
        let t = agg.totals();
        assert_eq!(t.jobs_submitted, 48, "3 cells x (12 training + 4 background)");
        assert_eq!(
            t.jobs_submitted,
            t.jobs_finished + t.jobs_failed + t.jobs_gave_up,
            "all jobs must finish, fail, or give up: {t:?}"
        );
        assert!(t.jobs_finished > 0, "a healthy small fleet finishes jobs");
        assert!(t.pods_created > 0);
        assert!(t.pod_events >= t.pods_created * 2, "create + terminal per pod");
        assert!(t.makespan_secs > 0.0);
    }

    #[test]
    fn chaos_is_shard_count_invariant_and_lossy() {
        let cfg = small_cfg();
        let streams = RngStreams::new(99);
        let plan = FaultPlan::generate(
            &FaultPlanConfig {
                events: 12,
                horizon: SimDuration::from_hours(2),
                warmup: SimDuration::from_secs(30),
                ..FaultPlanConfig::default()
            },
            &streams,
            0,
        );
        let mut runs = Vec::new();
        for k in [1u32, 2, 3] {
            let mut fleet = ShardedFleet::with_chaos(&cfg, k, 5, Some(&plan));
            let agg = fleet.run_to_completion();
            runs.push((agg, fleet.merged_telemetry().to_jsonl()));
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
        let clean = run(&cfg, 1, 5).0;
        assert_ne!(runs[0].0, clean, "chaos must perturb the fleet");
    }

    #[test]
    fn ckpt_stalls_are_shard_count_invariant() {
        // RemoteTierOutage freezes admissions fleet-wide (the durable
        // tier is shared), BandwidthCollapse stalls for the lost
        // fraction of the window. Both must route identically at any
        // shard count and show up in the digest via `ckpt_stalls`.
        let cfg = small_cfg();
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                at: SimTime::from_secs(40),
                kind: FaultKind::RemoteTierOutage { window: SimDuration::from_secs(120) },
            },
            FaultEvent {
                at: SimTime::from_secs(400),
                kind: FaultKind::BandwidthCollapse {
                    factor_permille: 4000,
                    window: SimDuration::from_secs(200),
                },
            },
        ]);
        let mut runs = Vec::new();
        for k in [1u32, 2, 3] {
            let mut fleet = ShardedFleet::with_chaos(&cfg, k, 17, Some(&plan));
            let agg = fleet.run_to_completion();
            runs.push((agg, fleet.merged_telemetry().to_jsonl()));
        }
        assert_eq!(runs[0], runs[1], "ckpt stalls diverged at K=2");
        assert_eq!(runs[0], runs[2], "ckpt stalls diverged at K=3");
        let stalls: u64 = runs[0].0.cells.iter().map(|c| c.ckpt_stalls).sum();
        assert_eq!(stalls, 6, "each fault stalls every one of the 3 cells");
        let t = runs[0].0.totals();
        assert_eq!(t.jobs_submitted, t.jobs_finished + t.jobs_failed + t.jobs_gave_up);
    }

    #[test]
    fn forwarding_happens_under_pressure() {
        // Starve the cells so spill-over (and thus the exchange) is hit.
        let mut cfg = FleetScaleConfig::small(3, 20, 4);
        cfg.nodes_per_cell = 2;
        let (agg, _) = run(&cfg, 3, 21);
        let t = agg.totals();
        assert!(t.jobs_forwarded > 0, "tiny cells must overflow: {t:?}");
        assert_eq!(t.jobs_submitted, t.jobs_finished + t.jobs_failed + t.jobs_gave_up);
    }

    #[test]
    fn reaping_bounds_resident_pods() {
        let cfg = FleetScaleConfig::small(2, 40, 8);
        let mut fleet = ShardedFleet::new(&cfg, 2, 3);
        let agg = fleet.run_to_completion();
        let created = agg.totals().pods_created;
        assert!(created > 0);
        assert!((fleet.resident_pods() as u64) <= created, "reaping must not grow the table");
    }

    #[test]
    fn for_target_pods_scales_cells() {
        assert_eq!(FleetScaleConfig::for_target_pods(1).cells, 1);
        let million = FleetScaleConfig::for_target_pods(1_000_000);
        assert!(million.cells >= 200, "1M pods needs hundreds of cells");
        // Planned pods track the target within a factor of two.
        let fleet = ShardedFleet::new(&FleetScaleConfig::for_target_pods(20_000), 4, 1);
        let planned = fleet.planned_pods();
        assert!((10_000..40_000).contains(&planned), "planned pods {planned} far from 20k target");
    }
}
