//! Nodes: machines with capacity and a heterogeneity speed factor.

use serde::{Deserialize, Serialize};

use crate::resources::Resources;

/// Opaque node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// One machine in the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier.
    pub id: NodeId,
    /// Total capacity.
    pub capacity: Resources,
    /// Resources currently allocated to pods.
    pub allocated: Resources,
    /// Relative CPU speed (1.0 nominal; < 1.0 = older/slower hardware).
    /// Heterogeneity is one of the paper's straggler sources: "certain
    /// worker pods may be assigned to physical machines with slow hardware".
    pub speed: f64,
    /// Whether the node is currently up.
    pub healthy: bool,
}

impl Node {
    /// Creates a healthy, empty node.
    pub fn new(id: NodeId, capacity: Resources, speed: f64) -> Self {
        debug_assert!(speed > 0.0, "node speed must be positive");
        Node { id, capacity, allocated: Resources::ZERO, speed, healthy: true }
    }

    /// Free capacity (zero while unhealthy).
    pub fn free(&self) -> Resources {
        if !self.healthy {
            return Resources::ZERO;
        }
        self.capacity.saturating_sub(&self.allocated)
    }

    /// True if `req` currently fits on this node.
    pub fn fits(&self, req: &Resources) -> bool {
        self.healthy && self.free().fits(req)
    }

    /// Reserves resources.
    ///
    /// # Panics
    /// Panics in debug builds when the reservation exceeds free capacity.
    pub fn reserve(&mut self, req: Resources) {
        debug_assert!(self.fits(&req), "over-reserving node {:?}", self.id);
        self.allocated += req;
    }

    /// Releases previously reserved resources.
    pub fn release(&mut self, req: Resources) {
        self.allocated = self.allocated.saturating_sub(&req);
    }

    /// CPU utilisation fraction of this node (allocated / capacity).
    pub fn cpu_allocation_ratio(&self) -> f64 {
        if self.capacity.cpu_millis == 0 {
            return 0.0;
        }
        self.allocated.cpu_millis as f64 / self.capacity.cpu_millis as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(NodeId(0), Resources::new(32.0, 192.0), 1.0)
    }

    #[test]
    fn reserve_release_roundtrip() {
        let mut n = node();
        let req = Resources::new(4.0, 16.0);
        assert!(n.fits(&req));
        n.reserve(req);
        assert_eq!(n.free(), Resources::new(28.0, 176.0));
        n.release(req);
        assert_eq!(n.free(), n.capacity);
    }

    #[test]
    fn unhealthy_node_has_no_free_capacity() {
        let mut n = node();
        n.healthy = false;
        assert_eq!(n.free(), Resources::ZERO);
        assert!(!n.fits(&Resources::new(0.5, 0.5)));
    }

    #[test]
    fn release_more_than_allocated_saturates() {
        let mut n = node();
        n.reserve(Resources::new(1.0, 1.0));
        n.release(Resources::new(10.0, 10.0));
        assert_eq!(n.allocated, Resources::ZERO);
    }

    #[test]
    fn allocation_ratio() {
        let mut n = node();
        assert_eq!(n.cpu_allocation_ratio(), 0.0);
        n.reserve(Resources::new(16.0, 8.0));
        assert!((n.cpu_allocation_ratio() - 0.5).abs() < 1e-9);
    }
}
