//! Compact pod/job storage for the sharded fleet core.
//!
//! Two structures back the million-pod fleet (§1, Table 4: 62K+ concurrent
//! jobs, 3.24 PB of memory under management):
//!
//! * [`GenSlab`] — a generational slab. Keys pack `(slot, generation)`, so a
//!   stale key held by an in-flight timer-wheel event after its job resolved
//!   is a safe O(1) miss instead of a dangling reference. Shards store live
//!   gang/job state here; wheel events carry [`SlabKey`]s, never indices.
//! * [`PodTable`] — a paged, dense pod store indexed by the cell-local
//!   sequential [`PodId`]. Iteration yields pods in ascending id order —
//!   exactly the order the previous `BTreeMap<PodId, Pod>` produced — so the
//!   golden-trace corpus is unaffected by the swap. Pages whose pods have all
//!   reached a terminal phase can be reclaimed ([`PodTable::reap_terminal`])
//!   to bound resident memory during 1M-pod sweeps.

use serde::{Deserialize, Serialize};

use crate::pod::{Pod, PodId};

/// A generational key into a [`GenSlab`].
///
/// Packs a 32-bit slot index and a 32-bit generation counter. A key is only
/// valid while the slot's generation matches; removing an entry bumps the
/// generation so old keys miss safely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlabKey(u64);

impl SlabKey {
    /// Slot index within the slab.
    pub fn slot(self) -> u32 {
        (self.0 & 0xFFFF_FFFF) as u32
    }

    /// Generation the key was minted under.
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn pack(slot: u32, generation: u32) -> Self {
        SlabKey(((generation as u64) << 32) | slot as u64)
    }
}

#[derive(Debug, Clone)]
struct SlabEntry<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational slab: O(1) insert/remove/lookup with stale-key safety.
///
/// ```
/// use dlrover_cluster::GenSlab;
///
/// let mut slab = GenSlab::new();
/// let k = slab.insert("job-7");
/// assert_eq!(slab.get(k), Some(&"job-7"));
/// assert_eq!(slab.remove(k), Some("job-7"));
/// // The stale key now misses instead of aliasing a recycled slot.
/// let k2 = slab.insert("job-8");
/// assert_eq!(k2.slot(), k.slot());
/// assert_eq!(slab.get(k), None);
/// assert_eq!(slab.get(k2), Some(&"job-8"));
/// ```
#[derive(Debug, Clone)]
pub struct GenSlab<T> {
    entries: Vec<SlabEntry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for GenSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> GenSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        GenSlab { entries: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Creates an empty slab with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        GenSlab { entries: Vec::with_capacity(cap), free: Vec::new(), len: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, reusing a freed slot when available.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let entry = &mut self.entries[slot as usize];
            debug_assert!(entry.value.is_none(), "free-list slot still occupied");
            entry.value = Some(value);
            SlabKey::pack(slot, entry.generation)
        } else {
            let slot = u32::try_from(self.entries.len()).expect("slab overflow");
            self.entries.push(SlabEntry { generation: 0, value: Some(value) });
            SlabKey::pack(slot, 0)
        }
    }

    /// Looks up a live entry; stale or foreign keys return `None`.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        let entry = self.entries.get(key.slot() as usize)?;
        if entry.generation != key.generation() {
            return None;
        }
        entry.value.as_ref()
    }

    /// Mutable lookup; stale or foreign keys return `None`.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        let entry = self.entries.get_mut(key.slot() as usize)?;
        if entry.generation != key.generation() {
            return None;
        }
        entry.value.as_mut()
    }

    /// Removes and returns a live entry, bumping the slot generation so the
    /// key (and any copies of it) become stale.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let entry = self.entries.get_mut(key.slot() as usize)?;
        if entry.generation != key.generation() {
            return None;
        }
        let value = entry.value.take()?;
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(key.slot());
        self.len -= 1;
        Some(value)
    }

    /// Iterates live entries in ascending slot order.
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.entries.iter().enumerate().filter_map(|(slot, e)| {
            e.value.as_ref().map(|v| (SlabKey::pack(slot as u32, e.generation), v))
        })
    }
}

/// Pods per [`PodTable`] page. Power of two so the id → (page, offset) split
/// is a shift/mask.
const PAGE_BITS: u32 = 10;
/// Page size in pods (1024).
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// A paged, dense pod store indexed by sequential [`PodId`].
///
/// Ids are assigned by the owning cluster in strictly increasing order, so
/// the table is append-only: `pods[id]` lives at page `id >> 10`, offset
/// `id & 1023`. Iteration is in ascending id order — bit-compatible with the
/// `BTreeMap<PodId, Pod>` it replaces. Full pages whose pods are all in a
/// terminal phase can be dropped wholesale to cap resident memory at fleet
/// scale (PAPER.md Table 4).
#[derive(Debug, Clone, Default)]
pub struct PodTable {
    pages: Vec<Option<Vec<Pod>>>,
    /// Total pods ever inserted (== next expected id).
    inserted: u64,
    /// Pods dropped by [`Self::reap_terminal`].
    reaped: u64,
}

impl PodTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pods currently stored (inserted minus reaped).
    pub fn len(&self) -> usize {
        (self.inserted - self.reaped) as usize
    }

    /// True when no pods are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total pods ever inserted, including reaped ones.
    pub fn total_inserted(&self) -> u64 {
        self.inserted
    }

    /// Inserts the next pod.
    ///
    /// # Panics
    /// Panics if `pod.id` is not the next sequential id — the table is
    /// append-only by construction.
    pub fn insert(&mut self, pod: Pod) {
        assert_eq!(pod.id.0, self.inserted, "PodTable ids must be sequential");
        let page_idx = (pod.id.0 >> PAGE_BITS) as usize;
        if page_idx == self.pages.len() {
            self.pages.push(Some(Vec::with_capacity(PAGE_SIZE)));
        }
        let page =
            self.pages[page_idx].as_mut().expect("append page was reaped while still filling");
        page.push(pod);
        self.inserted += 1;
    }

    /// Looks up a pod; returns `None` for unknown or reaped ids.
    pub fn get(&self, id: PodId) -> Option<&Pod> {
        let page = self.pages.get((id.0 >> PAGE_BITS) as usize)?.as_ref()?;
        page.get((id.0 & (PAGE_SIZE as u64 - 1)) as usize)
    }

    /// Mutable lookup; returns `None` for unknown or reaped ids.
    pub fn get_mut(&mut self, id: PodId) -> Option<&mut Pod> {
        let page = self.pages.get_mut((id.0 >> PAGE_BITS) as usize)?.as_mut()?;
        page.get_mut((id.0 & (PAGE_SIZE as u64 - 1)) as usize)
    }

    /// Iterates stored pods in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &Pod> {
        self.pages.iter().filter_map(|p| p.as_deref()).flat_map(|p| p.iter())
    }

    /// Iterates stored pods mutably in ascending id order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut Pod> {
        self.pages.iter_mut().filter_map(|p| p.as_deref_mut()).flat_map(|p| p.iter_mut())
    }

    /// Drops full pages whose pods are all terminal; returns pods reclaimed.
    ///
    /// Looking up a reaped pod afterwards returns `None`, so callers must
    /// only reap once they no longer dereference finished pods (the sharded
    /// fleet reaps at epoch barriers; the classic [`crate::Cluster`] never
    /// reaps).
    pub fn reap_terminal(&mut self) -> usize {
        let mut reclaimed = 0usize;
        let full_pages = (self.inserted >> PAGE_BITS) as usize;
        for page in self.pages.iter_mut().take(full_pages) {
            let all_terminal = match page.as_deref() {
                Some(pods) => pods.iter().all(|p| p.phase.is_terminal()),
                None => false,
            };
            if all_terminal {
                *page = None;
                reclaimed += PAGE_SIZE;
            }
        }
        self.reaped += reclaimed as u64;
        reclaimed
    }
}

impl std::ops::Index<&PodId> for PodTable {
    type Output = Pod;
    fn index(&self, id: &PodId) -> &Pod {
        self.get(*id).expect("pod id unknown or reaped")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::{PodPhase, PodRole, PodSpec, Priority};
    use crate::resources::Resources;
    use dlrover_sim::SimTime;

    fn pod(id: u64, phase: PodPhase) -> Pod {
        Pod {
            id: PodId(id),
            spec: PodSpec {
                resources: Resources::new(1.0, 2.0),
                role: PodRole::Worker,
                priority: Priority::Low,
                job_id: id / 4,
            },
            phase,
            node: None,
            requested_at: SimTime::ZERO,
            placed_at: None,
            running_at: None,
            node_speed: 1.0,
        }
    }

    #[test]
    fn slab_roundtrip_and_stale_keys() {
        let mut slab = GenSlab::new();
        let a = slab.insert(10u32);
        let b = slab.insert(20u32);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&10));
        *slab.get_mut(b).unwrap() = 21;
        assert_eq!(slab.remove(a), Some(10));
        assert_eq!(slab.remove(a), None, "double-remove misses");
        assert_eq!(slab.get(a), None, "stale key misses");
        // Slot is reused under a new generation.
        let c = slab.insert(30u32);
        assert_eq!(c.slot(), a.slot());
        assert_ne!(c.generation(), a.generation());
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get(c), Some(&30));
        let live: Vec<u32> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(live, vec![30, 21]);
    }

    #[test]
    fn slab_len_tracks_inserts_and_removes() {
        let mut slab = GenSlab::with_capacity(4);
        assert!(slab.is_empty());
        let keys: Vec<SlabKey> = (0..10).map(|i| slab.insert(i)).collect();
        assert_eq!(slab.len(), 10);
        for k in &keys[..5] {
            slab.remove(*k);
        }
        assert_eq!(slab.len(), 5);
    }

    #[test]
    fn pod_table_matches_btreemap_iteration_order() {
        let mut table = PodTable::new();
        let mut map = std::collections::BTreeMap::new();
        for id in 0..2_500u64 {
            let p = pod(id, PodPhase::Pending);
            table.insert(p);
            map.insert(p.id, p);
        }
        assert_eq!(table.len(), map.len());
        let table_ids: Vec<u64> = table.values().map(|p| p.id.0).collect();
        let map_ids: Vec<u64> = map.values().map(|p| p.id.0).collect();
        assert_eq!(table_ids, map_ids);
        assert_eq!(table[&PodId(1_234)], map[&PodId(1_234)]);
    }

    #[test]
    fn pod_table_get_mut_updates_in_place() {
        let mut table = PodTable::new();
        table.insert(pod(0, PodPhase::Pending));
        table.get_mut(PodId(0)).unwrap().phase = PodPhase::Running;
        assert_eq!(table.get(PodId(0)).unwrap().phase, PodPhase::Running);
        assert!(table.get(PodId(7)).is_none());
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn pod_table_rejects_gaps() {
        let mut table = PodTable::new();
        table.insert(pod(3, PodPhase::Pending));
    }

    #[test]
    fn reap_drops_only_full_terminal_pages() {
        let mut table = PodTable::new();
        // Two full pages of terminal pods plus a partial live page.
        for id in 0..(2 * PAGE_SIZE as u64) {
            table.insert(pod(id, PodPhase::Succeeded));
        }
        for id in (2 * PAGE_SIZE as u64)..(2 * PAGE_SIZE as u64 + 10) {
            table.insert(pod(id, PodPhase::Running));
        }
        // Second page has one straggler still running: not reapable.
        table.get_mut(PodId(PAGE_SIZE as u64)).unwrap().phase = PodPhase::Running;
        assert_eq!(table.reap_terminal(), PAGE_SIZE);
        assert!(table.get(PodId(0)).is_none(), "reaped pod is gone");
        assert!(table.get(PodId(PAGE_SIZE as u64)).is_some());
        assert_eq!(table.len(), PAGE_SIZE + 10);
        // Finish the straggler page and reap again.
        for id in PAGE_SIZE as u64..(2 * PAGE_SIZE as u64) {
            table.get_mut(PodId(id)).unwrap().phase = PodPhase::Failed;
        }
        assert_eq!(table.reap_terminal(), PAGE_SIZE);
        assert_eq!(table.len(), 10);
        // Iteration skips reaped pages but keeps id order.
        let ids: Vec<u64> = table.values().map(|p| p.id.0).collect();
        assert_eq!(ids, (2 * PAGE_SIZE as u64..2 * PAGE_SIZE as u64 + 10).collect::<Vec<_>>());
    }
}
