//! Pods: the unit of placement, with the usual Kubernetes-ish phase machine.

use dlrover_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::node::NodeId;
use crate::resources::Resources;

/// Opaque pod identifier, unique within one [`crate::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PodId(pub u64);

/// What a pod does for its job — matters for straggler/hot-PS handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PodRole {
    /// Gradient-computing worker.
    Worker,
    /// Parameter server.
    ParameterServer,
    /// Anything else (job master, background service, …).
    Other,
}

/// Scheduling priority. Training is `Low`; co-located online services are
/// `High` and may preempt training pods (§2.2: "the cluster scheduler
/// preempts resources allocated to the DLRM system").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Preemptible batch work (DLRM training).
    Low,
    /// Latency-sensitive services that can preempt `Low`.
    High,
}

/// Pod lifecycle phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PodPhase {
    /// Accepted but not placed (no capacity yet).
    Pending,
    /// Placed; pulling images / initialising.
    Starting,
    /// Live and doing work.
    Running,
    /// Finished successfully.
    Succeeded,
    /// Crashed (node failure, OOM, …).
    Failed,
    /// Evicted by a higher-priority pod.
    Preempted,
}

impl PodPhase {
    /// True for phases that hold node resources.
    pub fn holds_resources(&self) -> bool {
        matches!(self, PodPhase::Starting | PodPhase::Running)
    }

    /// True for terminal phases.
    pub fn is_terminal(&self) -> bool {
        matches!(self, PodPhase::Succeeded | PodPhase::Failed | PodPhase::Preempted)
    }
}

/// What the caller asks the cluster for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PodSpec {
    /// Requested resources.
    pub resources: Resources,
    /// Role within its job.
    pub role: PodRole,
    /// Scheduling priority.
    pub priority: Priority,
    /// Owning job (opaque to the cluster).
    pub job_id: u64,
}

/// A placed (or pending) pod.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pod {
    /// Identifier.
    pub id: PodId,
    /// The spec it was created from.
    pub spec: PodSpec,
    /// Current phase.
    pub phase: PodPhase,
    /// Node it is bound to (`None` while pending or after eviction).
    pub node: Option<NodeId>,
    /// When the pod was requested.
    pub requested_at: SimTime,
    /// When the scheduler bound it to a node (if ever) — the end of the
    /// scheduling span and the start of the startup span.
    pub placed_at: Option<SimTime>,
    /// When it entered `Running` (if ever).
    pub running_at: Option<SimTime>,
    /// Relative CPU speed of its node (1.0 = nominal); used by the training
    /// engine to derive straggler behaviour from placement.
    pub node_speed: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_resource_holding() {
        assert!(!PodPhase::Pending.holds_resources());
        assert!(PodPhase::Starting.holds_resources());
        assert!(PodPhase::Running.holds_resources());
        assert!(!PodPhase::Failed.holds_resources());
    }

    #[test]
    fn terminal_phases() {
        for p in [PodPhase::Succeeded, PodPhase::Failed, PodPhase::Preempted] {
            assert!(p.is_terminal());
            assert!(!p.holds_resources());
        }
        for p in [PodPhase::Pending, PodPhase::Starting, PodPhase::Running] {
            assert!(!p.is_terminal());
        }
    }

    #[test]
    fn priority_orders() {
        assert!(Priority::High > Priority::Low);
    }
}
