//! Cloud-cluster simulator: the Kubernetes-shaped substrate DLRover-RM
//! runs on.
//!
//! The paper's resource manager never touches machines directly — it
//! observes pod lifecycle events, asks the cluster scheduler for resources,
//! and reacts to preemptions and failures (§2.1: "the DLRM system has no
//! direct control over the cluster resources and has to request resources
//! from the cluster resource scheduler"). This crate provides exactly that
//! interface as a deterministic simulation:
//!
//! * [`resources`] — CPU/memory vectors with saturating arithmetic.
//! * [`node`] / [`pod`] — machines with heterogeneous CPU speed; pods with
//!   the usual phase machine (Pending → Starting → Running → terminal).
//! * [`cluster`] — best-fit bin-packing placement, priority preemption,
//!   node failure injection, background co-located services that breathe
//!   with a diurnal pattern (the "workload consolidation" of Table 2).
//! * [`startup`] — pod start-up latency model (scheduling + image pull +
//!   init), the dominant term of stop-and-restart scaling overhead (§2.2).
//! * [`fleet`] — a workload generator that reproduces the fleet pathologies
//!   of §2.2: log-normally over-provisioned user requests, heavy-tailed job
//!   sizes, Poisson arrivals, and a configurable job mix.
//!
//! The sharded fleet core (DESIGN.md §9) scales the same substrate to the
//! paper's production footprint — 62K+ concurrent jobs, million-pod fleets
//! (§1, Table 4) — without giving up bit-reproducibility:
//!
//! * [`store`] — generational-slab job storage and a paged pod table.
//! * [`timerwheel`] — hierarchical timer wheel, O(1) event scheduling.
//! * [`exchange`] — key-sorted, order-independent cross-shard messaging.
//! * [`shard`] — the sharded fleet simulation itself; K = 1 is the
//!   unsharded baseline, and any K produces byte-identical results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod driver;
pub mod exchange;
pub mod fleet;
pub mod node;
pub mod pod;
pub mod resources;
pub mod shard;
pub mod startup;
pub mod store;
pub mod timerwheel;

pub use cluster::{Cluster, ClusterConfig, ClusterEvent, DenialReason, ScheduleError};
pub use driver::{drive_fleet, drive_fleet_chaos, GangJob, GangOutcome};
pub use exchange::{Envelope, Exchange};
pub use fleet::{FleetConfig, FleetJob, FleetWorkload, JobClass};
pub use node::{Node, NodeId};
pub use pod::{Pod, PodId, PodPhase, PodRole, PodSpec, Priority};
pub use resources::Resources;
pub use shard::{
    CellAggregates, FleetAggregates, FleetScaleConfig, FleetShard, FleetTotals, ShardedFleet,
};
pub use startup::StartupLatencyModel;
pub use store::{GenSlab, PodTable, SlabKey};
pub use timerwheel::TimerWheel;
