//! Deterministic cross-shard message exchange.
//!
//! Shards run their cells independently within an epoch and only talk to each
//! other at epoch barriers (conservative parallel DES with the epoch as the
//! lookahead window). Each cell emits [`Envelope`]s into its shard's outbox;
//! at the barrier every outbox is poured into an [`Exchange`], which sorts
//! the union by the total key `(dst, at, src, seq)` before delivery.
//!
//! That sort is the same key-sorted, order-independent merge discipline the
//! parallel experiment engine uses for unit outputs (DESIGN.md §8): whatever
//! order shards finish the epoch in — and however cells are grouped into
//! shards — the delivered stream per destination cell is identical. Combined
//! with per-cell RNG streams and per-cell telemetry sinks, this is what makes
//! fleet results bit-identical at any shard count and thread count.

use dlrover_sim::SimTime;

/// A message in flight between two cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Delivery time (clamped up to the epoch barrier by the router — the
    /// barrier is the lookahead that keeps cross-shard delivery causal).
    pub at: SimTime,
    /// Sending cell.
    pub src: u32,
    /// Receiving cell.
    pub dst: u32,
    /// Per-sender monotone sequence number; the final tie-breaker that makes
    /// the delivery order a total order.
    pub seq: u64,
    /// Payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// The total delivery-order key.
    fn key(&self) -> (u32, SimTime, u32, u64) {
        (self.dst, self.at, self.src, self.seq)
    }
}

/// Collects per-shard outboxes and replays them in a canonical order.
#[derive(Debug, Clone)]
pub struct Exchange<M> {
    inbox: Vec<Envelope<M>>,
}

impl<M> Default for Exchange<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Exchange<M> {
    /// Creates an empty exchange.
    pub fn new() -> Self {
        Exchange { inbox: Vec::new() }
    }

    /// Number of undelivered envelopes.
    pub fn len(&self) -> usize {
        self.inbox.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.inbox.is_empty()
    }

    /// Absorbs one shard's outbox (any production order).
    pub fn collect(&mut self, outbox: Vec<Envelope<M>>) {
        self.inbox.extend(outbox);
    }

    /// Earliest delivery time currently in flight.
    pub fn next_delivery(&self) -> Option<SimTime> {
        self.inbox.iter().map(|e| e.at).min()
    }

    /// Drains all envelopes in canonical `(dst, at, src, seq)` order.
    ///
    /// The result is independent of the order outboxes were collected in and
    /// of the order envelopes were produced within a shard — duplicate keys
    /// cannot occur because `seq` is monotone per sender.
    pub fn drain_sorted(&mut self) -> Vec<Envelope<M>> {
        let mut pending = std::mem::take(&mut self.inbox);
        pending.sort_unstable_by_key(|e| e.key());
        pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(dst: u32, at_us: u64, src: u32, seq: u64) -> Envelope<&'static str> {
        Envelope { at: SimTime::from_micros(at_us), src, dst, seq, msg: "m" }
    }

    #[test]
    fn drain_is_order_independent() {
        let batch_a = vec![env(1, 50, 0, 3), env(0, 10, 2, 0), env(1, 50, 0, 2)];
        let batch_b = vec![env(0, 10, 1, 5), env(2, 5, 0, 1)];

        let mut forward = Exchange::new();
        forward.collect(batch_a.clone());
        forward.collect(batch_b.clone());

        let mut reverse = Exchange::new();
        reverse.collect(batch_b);
        reverse.collect(batch_a);

        let f = forward.drain_sorted();
        let r = reverse.drain_sorted();
        assert_eq!(f, r);
        let keys: Vec<(u32, u64, u32, u64)> =
            f.iter().map(|e| (e.dst, e.at.as_micros(), e.src, e.seq)).collect();
        assert_eq!(
            keys,
            vec![(0, 10, 1, 5), (0, 10, 2, 0), (1, 50, 0, 2), (1, 50, 0, 3), (2, 5, 0, 1)]
        );
    }

    #[test]
    fn next_delivery_and_len() {
        let mut x = Exchange::new();
        assert!(x.is_empty());
        assert_eq!(x.next_delivery(), None);
        x.collect(vec![env(0, 30, 0, 0), env(1, 12, 0, 1)]);
        assert_eq!(x.len(), 2);
        assert_eq!(x.next_delivery(), Some(SimTime::from_micros(12)));
        x.drain_sorted();
        assert!(x.is_empty());
    }
}
