//! Resource vectors: CPU millicores + memory bytes.
//!
//! Millicores follow the Kubernetes convention (1000 = one core) so
//! fractional CPU allocations stay integral and hashable; memory is plain
//! bytes.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A (CPU, memory) resource vector.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Resources {
    /// CPU in millicores (1000 = 1 core).
    pub cpu_millis: u64,
    /// Memory in bytes.
    pub mem_bytes: u64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources { cpu_millis: 0, mem_bytes: 0 };

    /// Builds from whole cores and GiB.
    pub fn new(cores: f64, mem_gb: f64) -> Self {
        Resources {
            cpu_millis: (cores.max(0.0) * 1000.0).round() as u64,
            mem_bytes: (mem_gb.max(0.0) * GIB as f64).round() as u64,
        }
    }

    /// Builds from raw millicores and bytes.
    pub const fn from_raw(cpu_millis: u64, mem_bytes: u64) -> Self {
        Resources { cpu_millis, mem_bytes }
    }

    /// CPU in fractional cores.
    pub fn cores(&self) -> f64 {
        self.cpu_millis as f64 / 1000.0
    }

    /// Memory in fractional GiB.
    pub fn mem_gb(&self) -> f64 {
        self.mem_bytes as f64 / GIB as f64
    }

    /// True when `other` fits inside `self` on both axes.
    pub fn fits(&self, other: &Resources) -> bool {
        other.cpu_millis <= self.cpu_millis && other.mem_bytes <= self.mem_bytes
    }

    /// Element-wise saturating subtraction.
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            cpu_millis: self.cpu_millis.saturating_sub(other.cpu_millis),
            mem_bytes: self.mem_bytes.saturating_sub(other.mem_bytes),
        }
    }

    /// Element-wise minimum.
    pub fn component_min(&self, other: &Resources) -> Resources {
        Resources {
            cpu_millis: self.cpu_millis.min(other.cpu_millis),
            mem_bytes: self.mem_bytes.min(other.mem_bytes),
        }
    }

    /// Scales both axes by a non-negative factor.
    pub fn scale(&self, factor: f64) -> Resources {
        debug_assert!(factor >= 0.0);
        Resources {
            cpu_millis: (self.cpu_millis as f64 * factor).round() as u64,
            mem_bytes: (self.mem_bytes as f64 * factor).round() as u64,
        }
    }

    /// True when both axes are zero.
    pub fn is_zero(&self) -> bool {
        *self == Resources::ZERO
    }
}

/// Bytes per GiB.
pub const GIB: u64 = 1024 * 1024 * 1024;

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cpu_millis: self.cpu_millis.saturating_add(rhs.cpu_millis),
            mem_bytes: self.mem_bytes.saturating_add(rhs.mem_bytes),
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        debug_assert!(self.fits(&rhs), "resource subtraction underflow: {self:?} - {rhs:?}");
        self.saturating_sub(&rhs)
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} cores / {:.1} GiB", self.cores(), self.mem_gb())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        let r = Resources::new(2.5, 8.0);
        assert_eq!(r.cpu_millis, 2500);
        assert_eq!(r.mem_bytes, 8 * GIB);
        assert_eq!(r.cores(), 2.5);
        assert_eq!(r.mem_gb(), 8.0);
    }

    #[test]
    fn negative_inputs_clamp_to_zero() {
        let r = Resources::new(-1.0, -2.0);
        assert!(r.is_zero());
    }

    #[test]
    fn fits_requires_both_axes() {
        let cap = Resources::new(4.0, 16.0);
        assert!(cap.fits(&Resources::new(4.0, 16.0)));
        assert!(cap.fits(&Resources::new(1.0, 1.0)));
        assert!(!cap.fits(&Resources::new(5.0, 1.0)));
        assert!(!cap.fits(&Resources::new(1.0, 17.0)));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Resources::new(2.0, 4.0);
        let b = Resources::new(1.0, 1.0);
        assert_eq!(a + b - b, a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Resources::new(1.0, 1.0);
        let b = Resources::new(2.0, 0.5);
        let d = a.saturating_sub(&b);
        assert_eq!(d.cpu_millis, 0);
        assert_eq!(d.mem_bytes, GIB / 2);
    }

    #[test]
    fn scale_and_min() {
        let a = Resources::new(2.0, 8.0);
        assert_eq!(a.scale(0.5), Resources::new(1.0, 4.0));
        assert_eq!(a.scale(0.0), Resources::ZERO);
        let b = Resources::new(3.0, 4.0);
        assert_eq!(a.component_min(&b), Resources::new(2.0, 4.0));
    }

    #[test]
    fn display_is_humane() {
        assert_eq!(format!("{}", Resources::new(2.0, 8.0)), "2.0 cores / 8.0 GiB");
    }
}
