//! Pod start-up latency: scheduling + image pull + environment init.
//!
//! §2.2 measures the stop-and-restart pipeline at 5–10 minutes of
//! preparation ("submitting a new job YAML, requesting resources for the new
//! pods, pulling images from the registry, and re-establishing the code
//! environment"), stretching past 30 minutes under daytime resource
//! scarcity. The model is a log-normal per phase plus a scarcity multiplier
//! driven by current cluster utilisation.

use dlrover_sim::{LogNormal, Sample, SimDuration};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Start-up latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StartupLatencyModel {
    /// Mean scheduling delay, seconds.
    pub scheduling_mean_s: f64,
    /// Mean image pull + init time, seconds.
    pub image_pull_mean_s: f64,
    /// Log-normal shape (sigma) for both phases.
    pub sigma: f64,
    /// Extra multiplier applied at full cluster utilisation (scarcity):
    /// latency scales by `1 + scarcity_factor · utilisation²`.
    pub scarcity_factor: f64,
}

impl Default for StartupLatencyModel {
    fn default() -> Self {
        StartupLatencyModel {
            scheduling_mean_s: 45.0,
            image_pull_mean_s: 120.0,
            sigma: 0.5,
            scarcity_factor: 6.0,
        }
    }
}

impl StartupLatencyModel {
    /// Samples a start-up latency given the cluster CPU utilisation in
    /// `[0, 1]` at request time.
    pub fn sample<R: Rng + ?Sized>(&self, utilisation: f64, rng: &mut R) -> SimDuration {
        let u = utilisation.clamp(0.0, 1.0);
        let mult = 1.0 + self.scarcity_factor * u * u;
        let sched = LogNormal::from_mean(self.scheduling_mean_s.max(0.1), self.sigma).sample(rng);
        let pull = LogNormal::from_mean(self.image_pull_mean_s.max(0.1), self.sigma).sample(rng);
        SimDuration::from_secs_f64((sched + pull) * mult)
    }

    /// The *expected* latency at a given utilisation (no sampling) — used by
    /// the overhead estimator in the optimizer.
    pub fn expected(&self, utilisation: f64) -> SimDuration {
        let u = utilisation.clamp(0.0, 1.0);
        let mult = 1.0 + self.scarcity_factor * u * u;
        SimDuration::from_secs_f64((self.scheduling_mean_s + self.image_pull_mean_s) * mult)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_sim::RngStreams;

    #[test]
    fn samples_are_positive() {
        let m = StartupLatencyModel::default();
        let mut rng = RngStreams::new(3).stream("startup");
        for _ in 0..1000 {
            assert!(m.sample(0.5, &mut rng) > SimDuration::ZERO);
        }
    }

    #[test]
    fn mean_latency_matches_configuration_when_idle() {
        let m = StartupLatencyModel::default();
        let mut rng = RngStreams::new(3).stream("startup");
        let n = 50_000;
        let total: f64 = (0..n).map(|_| m.sample(0.0, &mut rng).as_secs_f64()).sum();
        let mean = total / n as f64;
        let expect = m.scheduling_mean_s + m.image_pull_mean_s;
        assert!((mean - expect).abs() / expect < 0.05, "mean {mean} vs expected {expect}");
    }

    #[test]
    fn scarcity_inflates_latency() {
        let m = StartupLatencyModel::default();
        assert!(m.expected(1.0) > m.expected(0.0).mul_f64(4.0));
        // The paper's regime: minutes when idle, tens of minutes when busy.
        assert!(m.expected(0.0).as_mins_f64() >= 2.0);
        assert!(m.expected(1.0).as_mins_f64() >= 15.0);
    }

    #[test]
    fn utilisation_is_clamped() {
        let m = StartupLatencyModel::default();
        assert_eq!(m.expected(2.0), m.expected(1.0));
        assert_eq!(m.expected(-1.0), m.expected(0.0));
    }
}
