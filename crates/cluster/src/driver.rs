//! Pod-level fleet driver: gang-schedules whole jobs through the cluster
//! in virtual time.
//!
//! The coarse admission model in the experiment harness treats the cluster
//! as one big resource pool; this driver is the *exact* counterpart — every
//! job is a gang of pods placed onto concrete nodes (best-fit, preemption,
//! heterogeneity), jobs queue FIFO when they don't fit, and completion
//! events free their nodes. Used to cross-validate pending-time
//! distributions and to give per-pod node speeds to stragglers-from-
//! placement analyses.
//!
//! [`drive_fleet_chaos`] layers cloud churn on top: *organic* pod failures
//! sampled from the cluster's configured daily hazard (which
//! [`crate::fleet::FleetConfig::cluster_config`] threads through instead of
//! the zero rate older call sites hardcoded) compose with *scripted*
//! [`FaultPlan`] events (node losses, preemption bursts, targeted pod
//! kills). Static gangs (`gated_by_slowest`) die when they lose a pod —
//! the §2.2 pathology — while elastic gangs replace the pod and keep
//! going, which is precisely the delta DLRover-RM claims.

use dlrover_sim::{FaultKind, FaultPlan, RngStreams, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::cluster::{Cluster, ClusterEvent};
use crate::pod::{Pod, PodId, PodPhase, PodSpec, Priority};
use crate::resources::Resources;
use crate::timerwheel::TimerWheel;

/// One job to drive through the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GangJob {
    /// Caller's job identifier.
    pub job_id: u64,
    /// Submission time.
    pub submit: SimTime,
    /// Pod specs that must be placed together.
    pub pods: Vec<PodSpec>,
    /// How long the job runs once admitted, at nominal node speed. The
    /// driver stretches this by the gang's slowest node (a pod on a
    /// 0.45-speed node slows a synchronous job by 1/0.45).
    pub nominal_duration: SimDuration,
    /// Whether the slowest node gates the job (synchronous/static jobs)
    /// or the mean speed applies (elastic jobs with dynamic sharding).
    pub gated_by_slowest: bool,
}

/// Outcome of one driven job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GangOutcome {
    /// Caller's job identifier.
    pub job_id: u64,
    /// Submission time.
    pub submitted: SimTime,
    /// When the gang was admitted (None = never fit before the trace ended).
    pub admitted: Option<SimTime>,
    /// When the job finished.
    pub finished: Option<SimTime>,
    /// Speeds of the nodes the pods landed on.
    pub node_speeds: Vec<f64>,
    /// Pods preempted from *other* jobs to admit this one.
    pub preempted_others: usize,
    /// True when this gang was itself killed by a higher-priority gang's
    /// preemption before finishing (its `finished` stays `None`; recovery
    /// is the job master's concern, not this driver's).
    pub preempted: bool,
    /// Pod failures (organic churn or chaos plans) this gang absorbed.
    pub pod_failures: usize,
    /// True when a pod failure killed the whole gang (static jobs cannot
    /// survive losing a pod; `finished` stays `None`).
    pub failed: bool,
}

impl GangOutcome {
    /// Time spent waiting for admission (zero if never admitted).
    pub fn pending(&self) -> SimDuration {
        match self.admitted {
            Some(t) => t.saturating_since(self.submitted),
            None => SimDuration::ZERO,
        }
    }

    /// Realised job duration.
    pub fn duration(&self) -> Option<SimDuration> {
        Some(self.finished?.saturating_since(self.admitted?))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Submit(usize),
    Finish(usize),
    /// One pod's sampled organic failure comes due.
    PodFail(usize, PodId),
    /// A scripted fault plan event comes due (index into the plan).
    Fault(usize),
    /// A preemption-burst service pod ends its residency.
    BurstEnd(PodId),
    /// A chaos-failed node comes back.
    NodeRecover(usize),
}

/// How long a [`FaultKind::NodeLoss`] keeps its node out of the pool, and
/// how long a [`FaultKind::PreemptionBurst`] service pod stays resident.
const NODE_OUTAGE: SimDuration = SimDuration::from_mins(15);
const BURST_RESIDENCY: SimDuration = SimDuration::from_mins(10);

/// Drives `jobs` through `cluster` to completion with no injected churn;
/// returns per-job outcomes sorted by job id. Jobs that never fit remain
/// `admitted: None`. Equivalent to [`drive_fleet_chaos`] with no plan and
/// no failure streams.
pub fn drive_fleet(cluster: &mut Cluster, jobs: &[GangJob]) -> Vec<GangOutcome> {
    drive_fleet_chaos(cluster, jobs, None, None)
}

/// [`drive_fleet`] plus cloud churn: organic pod failures sampled from the
/// cluster's `pod_daily_failure_rate` (when `streams` is given) and the
/// cluster-scoped events of a scripted `plan` — node losses, preemption
/// bursts, and worker/PS kills resolved against the running pod
/// population. Engine-scoped fault kinds (memory pressure, stragglers,
/// network delay) are no-ops here; they belong to the job-level chaos
/// runner which owns a training engine.
pub fn drive_fleet_chaos(
    cluster: &mut Cluster,
    jobs: &[GangJob],
    plan: Option<&FaultPlan>,
    streams: Option<&RngStreams>,
) -> Vec<GangOutcome> {
    let mut outcomes: Vec<GangOutcome> = jobs
        .iter()
        .map(|j| GangOutcome {
            job_id: j.job_id,
            submitted: j.submit,
            admitted: None,
            finished: None,
            node_speeds: Vec::new(),
            preempted_others: 0,
            preempted: false,
            pod_failures: 0,
            failed: false,
        })
        .collect();
    // The driver is the sharded fleet core's K = 1 special case: one
    // hierarchical timer wheel over the whole fleet. The wheel pops in the
    // same (time, push-seq) order as the linear `EventQueue` it replaced
    // (enforced by the wheel's equivalence proptest), so results are
    // byte-identical — the golden-trace corpus pins this.
    let mut queue: TimerWheel<Ev> = TimerWheel::new();
    for (i, j) in jobs.iter().enumerate() {
        queue.push(j.submit, Ev::Submit(i));
    }
    if let Some(plan) = plan {
        for (k, e) in plan.events.iter().enumerate() {
            queue.push(e.at, Ev::Fault(k));
        }
    }
    let mut failure_rng = streams.map(|s| s.stream("driver-pod-failures"));
    let mut waiting: Vec<usize> = Vec::new();
    let mut held_pods: Vec<Vec<PodId>> = vec![Vec::new(); jobs.len()];

    // Kills `pod` of gang `i`: static gangs die outright, elastic gangs
    // absorb the loss (a replacement is attempted in the admission pass
    // below via the normal placement path when capacity allows — the
    // driver models the loss, the job master models the recovery).
    fn lose_pod(
        cluster: &mut Cluster,
        jobs: &[GangJob],
        outcomes: &mut [GangOutcome],
        held_pods: &mut [Vec<PodId>],
        i: usize,
        pod: PodId,
    ) {
        if !held_pods[i].contains(&pod) || outcomes[i].finished.is_some() {
            return;
        }
        outcomes[i].pod_failures += 1;
        held_pods[i].retain(|&p| p != pod);
        if jobs[i].gated_by_slowest {
            // Synchronous/static gang: one lost pod wedges the whole job.
            outcomes[i].failed = true;
            for &other in held_pods[i].iter() {
                cluster.terminate_pod(other, PodPhase::Failed);
            }
            held_pods[i].clear();
        }
    }

    while let Some(ev) = queue.pop() {
        let now = ev.at;
        // Untimed cluster calls below (fail_pod/fail_node) stamp their
        // telemetry at the passive clock; keep it on this event's time.
        cluster.advance_clock(now);
        match ev.event {
            Ev::Submit(i) => {
                waiting.push(i);
            }
            Ev::Finish(i) => {
                // A gang whose pods were preempted or failed mid-run did
                // NOT finish; its stale Finish event must not record a
                // phantom completion.
                if !outcomes[i].preempted && !outcomes[i].failed {
                    for &pod in &held_pods[i] {
                        cluster.terminate_pod(pod, PodPhase::Succeeded);
                    }
                    outcomes[i].finished = Some(now);
                }
            }
            Ev::PodFail(i, pod) => {
                if cluster.fail_pod(pod).is_empty() {
                    // Already terminal (job done, preempted, or the pod
                    // died to an earlier fault): organic churn raced and
                    // lost.
                } else {
                    lose_pod(cluster, jobs, &mut outcomes, &mut held_pods, i, pod);
                }
            }
            Ev::Fault(k) => {
                let kind = plan.expect("fault event without plan").events[k].kind;
                match kind {
                    FaultKind::NodeLoss { node } => {
                        let n = node as usize % cluster.nodes().len().max(1);
                        let events = cluster.fail_node(crate::node::NodeId(n as u32));
                        for e in events {
                            if let ClusterEvent::PodFailed(pod) = e {
                                if let Some(i) =
                                    held_pods.iter().position(|pods| pods.contains(&pod))
                                {
                                    lose_pod(cluster, jobs, &mut outcomes, &mut held_pods, i, pod);
                                }
                            }
                        }
                        queue.push(now + NODE_OUTAGE, Ev::NodeRecover(n));
                    }
                    FaultKind::PreemptionBurst { pods } => {
                        // High-priority service pods sized at a quarter
                        // node barge in (Table 2's co-located services).
                        let quarter = Resources {
                            cpu_millis: cluster.config().node_capacity.cpu_millis / 4,
                            mem_bytes: cluster.config().node_capacity.mem_bytes / 4,
                        };
                        for _ in 0..pods {
                            let spec = PodSpec {
                                resources: quarter,
                                role: crate::pod::PodRole::Other,
                                priority: Priority::High,
                                job_id: u64::MAX,
                            };
                            let Ok((id, events)) = cluster.request_pod(spec, now) else {
                                continue;
                            };
                            let placed = events
                                .iter()
                                .any(|e| matches!(e, ClusterEvent::PodPlaced(p, _) if *p == id));
                            for e in events {
                                if let ClusterEvent::PodPreempted(pod) = e {
                                    if let Some(i) =
                                        held_pods.iter().position(|pods| pods.contains(&pod))
                                    {
                                        outcomes[i].pod_failures += 1;
                                        outcomes[i].preempted = true;
                                        for &other in &held_pods[i] {
                                            cluster.terminate_pod(other, PodPhase::Preempted);
                                        }
                                        held_pods[i].clear();
                                    }
                                }
                            }
                            if placed {
                                cluster.mark_running(id, now);
                                queue.push(now + BURST_RESIDENCY, Ev::BurstEnd(id));
                            } else {
                                // Never placed: drop it rather than leak a
                                // pending service pod past the trace.
                                cluster.terminate_pod(id, PodPhase::Succeeded);
                            }
                        }
                    }
                    FaultKind::WorkerKill { worker } | FaultKind::PsKill { ps: worker } => {
                        // Resolve the index against the running training
                        // pod population, in gang order.
                        let running: Vec<(usize, PodId)> = held_pods
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| outcomes[*i].finished.is_none())
                            .flat_map(|(i, pods)| pods.iter().map(move |&p| (i, p)))
                            .collect();
                        if !running.is_empty() {
                            let (i, pod) = running[worker as usize % running.len()];
                            cluster.fail_pod(pod);
                            lose_pod(cluster, jobs, &mut outcomes, &mut held_pods, i, pod);
                        }
                    }
                    // Engine-scoped kinds: the fleet driver has no
                    // training engine to press on. Control-plane kinds
                    // (denial storms, master crashes) likewise belong to
                    // the job-level chaos runner, which owns a master,
                    // and checkpoint-plane kinds to the runners that own
                    // a `CheckpointPlane`/`WitnessBoard`.
                    FaultKind::MemoryPressure { .. }
                    | FaultKind::StragglerWindow { .. }
                    | FaultKind::NetworkDelay { .. }
                    | FaultKind::DenialStorm { .. }
                    | FaultKind::MasterCrash { .. }
                    | FaultKind::RemoteTierOutage { .. }
                    | FaultKind::BandwidthCollapse { .. }
                    | FaultKind::ManifestCorruption { .. }
                    | FaultKind::WitnessPartition { .. } => {}
                }
            }
            Ev::BurstEnd(pod) => {
                cluster.terminate_pod(pod, PodPhase::Succeeded);
            }
            Ev::NodeRecover(n) => {
                cluster.recover_node(crate::node::NodeId(n as u32));
            }
        }
        // Admission pass after every event: FIFO-ordered *backfill* — the
        // queue is scanned in submission order, but a later gang that fits
        // may admit while an earlier, larger gang keeps waiting (what the
        // k8s gang plugins do). Head-of-line blocking is thereby traded
        // for utilisation.
        let mut still_waiting = Vec::new();
        for &i in &waiting {
            let job = &jobs[i];
            match cluster.try_place_gang(&job.pods, now) {
                Some((ids, events)) => {
                    for &id in &ids {
                        cluster.mark_running(id, now);
                    }
                    let speeds: Vec<f64> =
                        ids.iter().filter_map(|&id| cluster.pod(id).map(Pod::speed_of)).collect();
                    // Mark victim gangs as preempted: their resources are
                    // gone and their scheduled Finish must not fire as a
                    // completion. (They are not rescheduled here — the
                    // caller decides; this driver measures.)
                    let mut preempted = 0;
                    for e in &events {
                        if let ClusterEvent::PodPreempted(pod) = e {
                            preempted += 1;
                            if let Some(victim) =
                                held_pods.iter().position(|pods| pods.contains(pod))
                            {
                                outcomes[victim].preempted = true;
                                // Release the victim's surviving pods too:
                                // a gang cannot run partially.
                                for &other in &held_pods[victim] {
                                    cluster.terminate_pod(other, PodPhase::Preempted);
                                }
                                held_pods[victim].clear();
                            }
                        }
                    }
                    let slowdown = if job.gated_by_slowest {
                        1.0 / speeds.iter().cloned().fold(1.0f64, f64::min).max(1e-3)
                    } else {
                        let mean = speeds.iter().sum::<f64>() / speeds.len().max(1) as f64;
                        1.0 / mean.max(1e-3)
                    };
                    let duration = job.nominal_duration.mul_f64(slowdown);
                    queue.push(now + duration, Ev::Finish(i));
                    // Organic churn: each placed pod draws its time-to-
                    // failure from the cluster's daily hazard.
                    if let Some(rng) = failure_rng.as_mut() {
                        for &id in &ids {
                            if let Some(delay) = cluster.sample_pod_failure_delay(rng) {
                                queue.push(now + delay, Ev::PodFail(i, id));
                            }
                        }
                    }
                    held_pods[i] = ids;
                    outcomes[i].admitted = Some(now);
                    outcomes[i].node_speeds = speeds;
                    outcomes[i].preempted_others = preempted;
                }
                None => still_waiting.push(i),
            }
        }
        waiting = still_waiting;
    }
    outcomes
}

impl Pod {
    /// The node speed recorded at binding (1.0 before placement).
    fn speed_of(&self) -> f64 {
        self.node_speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::fleet::FleetConfig;
    use crate::pod::{PodRole, Priority};
    use crate::resources::Resources;
    use dlrover_sim::{FaultEvent, RngStreams};

    fn pod_spec(cores: f64, job_id: u64, priority: Priority) -> PodSpec {
        PodSpec { resources: Resources::new(cores, 8.0), role: PodRole::Worker, priority, job_id }
    }

    fn gang(job_id: u64, submit_s: u64, pods: usize, cores: f64, mins: u64) -> GangJob {
        GangJob {
            job_id,
            submit: SimTime::from_secs(submit_s),
            pods: vec![pod_spec(cores, job_id, Priority::Low); pods],
            nominal_duration: SimDuration::from_mins(mins),
            gated_by_slowest: false,
        }
    }

    /// A driver test cluster. The hazard comes from [`FleetConfig`] (the
    /// old code hardcoded `pod_daily_failure_rate: 0.0` here); failures
    /// stay off in timing-sensitive tests by not passing streams.
    fn cluster(nodes: usize) -> Cluster {
        Cluster::new(
            ClusterConfig {
                node_capacity: Resources::new(16.0, 64.0),
                slow_node_fraction: 0.0,
                ..FleetConfig::default().cluster_config(nodes)
            },
            &RngStreams::new(1),
        )
    }

    #[test]
    fn single_job_admits_immediately() {
        let mut c = cluster(4);
        let outcomes = drive_fleet(&mut c, &[gang(1, 10, 2, 8.0, 30)]);
        assert_eq!(outcomes[0].admitted, Some(SimTime::from_secs(10)));
        assert_eq!(outcomes[0].pending(), SimDuration::ZERO);
        assert_eq!(outcomes[0].finished, Some(SimTime::from_secs(10) + SimDuration::from_mins(30)));
    }

    #[test]
    fn gang_is_all_or_nothing() {
        // 4 nodes x 16 cores; a 5-pod x 16-core gang can never fit.
        let mut c = cluster(4);
        let outcomes = drive_fleet(&mut c, &[gang(1, 0, 5, 16.0, 10)]);
        assert_eq!(outcomes[0].admitted, None);
        // And the failed attempt leaked nothing.
        assert_eq!(c.total_allocated(), Resources::ZERO);
    }

    #[test]
    fn contention_queues_fifo_and_drains() {
        // Each job occupies the whole cluster; three jobs serialize.
        let mut c = cluster(2);
        let jobs = vec![gang(1, 0, 4, 8.0, 10), gang(2, 60, 4, 8.0, 10), gang(3, 120, 4, 8.0, 10)];
        let outcomes = drive_fleet(&mut c, &jobs);
        assert_eq!(outcomes[0].pending(), SimDuration::ZERO);
        // Job 2 waits for job 1 to finish at t=600.
        assert_eq!(outcomes[1].admitted, Some(SimTime::from_secs(600)));
        // Job 3 waits for job 2: finishes at 1200.
        assert_eq!(outcomes[2].admitted, Some(SimTime::from_secs(1200)));
        assert!(outcomes.iter().all(|o| o.finished.is_some()));
    }

    #[test]
    fn slow_node_stretches_gated_jobs() {
        let mut c = Cluster::new(
            ClusterConfig {
                nodes: 2,
                node_capacity: Resources::new(16.0, 64.0),
                slow_node_fraction: 1.0, // every node slow
                slow_node_speed: 0.5,
                pod_daily_failure_rate: 0.0,
                ..ClusterConfig::default()
            },
            &RngStreams::new(1),
        );
        let mut job = gang(1, 0, 2, 8.0, 10);
        job.gated_by_slowest = true;
        let outcomes = drive_fleet(&mut c, &[job]);
        assert_eq!(
            outcomes[0].duration(),
            Some(SimDuration::from_mins(20)),
            "0.5-speed nodes must double the gated duration"
        );
        assert!(outcomes[0].node_speeds.iter().all(|&s| s == 0.5));
    }

    #[test]
    fn high_priority_gang_preempts_low() {
        let mut c = cluster(1); // one 16-core node
        let low = gang(1, 0, 2, 8.0, 60);
        let mut high = gang(2, 60, 2, 8.0, 10);
        for p in &mut high.pods {
            p.priority = Priority::High;
        }
        let outcomes = drive_fleet(&mut c, &[low, high]);
        assert_eq!(outcomes[1].admitted, Some(SimTime::from_secs(60)));
        assert!(outcomes[1].preempted_others > 0);
        // The victim must NOT be recorded as finishing (regression: its
        // stale Finish event used to mark a phantom completion).
        assert!(outcomes[0].preempted);
        assert_eq!(outcomes[0].finished, None);
        assert!(!outcomes[1].preempted);
        assert!(outcomes[1].finished.is_some());
    }

    #[test]
    fn driver_is_deterministic() {
        let jobs: Vec<GangJob> = (0..20)
            .map(|i| gang(i, i * 30, 1 + (i as usize % 3), 4.0 + (i % 4) as f64, 5 + i % 7))
            .collect();
        let run = || {
            let mut c = cluster(3);
            drive_fleet(&mut c, &jobs)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pending_grows_under_load() {
        // Saturating arrival: pending times increase down the queue.
        let jobs: Vec<GangJob> = (0..6).map(|i| gang(i, i, 4, 8.0, 30)).collect();
        let mut c = cluster(2);
        let outcomes = drive_fleet(&mut c, &jobs);
        let pendings: Vec<f64> = outcomes.iter().map(|o| o.pending().as_mins_f64()).collect();
        assert!(pendings.windows(2).all(|w| w[1] >= w[0]), "{pendings:?}");
        assert!(pendings[5] > 100.0, "deep queue should wait hours: {pendings:?}");
    }

    /// ISSUE-3 satellite: the hazard comes from `FleetConfig` and organic
    /// failures actually fire — static gangs die, elastic gangs absorb.
    #[test]
    fn organic_failures_kill_static_gangs_but_not_elastic() {
        let fleet = FleetConfig { pod_daily_failure_rate: 0.9999, ..FleetConfig::default() };
        let run = |gated| {
            let mut c = Cluster::new(
                ClusterConfig {
                    node_capacity: Resources::new(16.0, 64.0),
                    slow_node_fraction: 0.0,
                    ..fleet.cluster_config(4)
                },
                &RngStreams::new(1),
            );
            // Day-long jobs under a ~100%/day hazard: failures certain.
            let jobs: Vec<GangJob> = (0..4)
                .map(|i| {
                    let mut g = gang(i, i, 2, 4.0, 24 * 60);
                    g.gated_by_slowest = gated;
                    g
                })
                .collect();
            drive_fleet_chaos(&mut c, &jobs, None, Some(&RngStreams::new(9)))
        };
        let static_outcomes = run(true);
        assert!(
            static_outcomes.iter().any(|o| o.failed && o.finished.is_none()),
            "static gangs must die to organic churn: {static_outcomes:?}"
        );
        let elastic_outcomes = run(false);
        assert!(elastic_outcomes.iter().all(|o| !o.failed));
        assert!(
            elastic_outcomes.iter().all(|o| o.finished.is_some()),
            "elastic gangs absorb pod loss: {elastic_outcomes:?}"
        );
        assert!(elastic_outcomes.iter().any(|o| o.pod_failures > 0));
    }

    /// Scripted plan faults compose with the fleet: a node loss kills the
    /// static gang resident there; the node later recovers and admits the
    /// next job.
    #[test]
    fn plan_node_loss_composes_with_fleet() {
        let mut c = cluster(1);
        let mut victim = gang(1, 0, 2, 8.0, 60);
        victim.gated_by_slowest = true;
        let late = gang(2, 30 * 60, 2, 8.0, 10); // after the outage window
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_secs(600),
            kind: FaultKind::NodeLoss { node: 7 }, // resolves mod 1 -> node 0
        }]);
        let outcomes = drive_fleet_chaos(&mut c, &[victim, late], Some(&plan), None);
        assert!(outcomes[0].failed);
        assert_eq!(outcomes[0].finished, None);
        assert!(outcomes[0].pod_failures >= 1);
        // The node recovered after its outage: the late job runs normally.
        assert_eq!(outcomes[1].admitted, Some(SimTime::from_secs(30 * 60)));
        assert!(outcomes[1].finished.is_some());
        assert!(!outcomes[1].failed);
    }

    /// A preemption burst evicts low-priority training pods and the burst
    /// pods leave after their residency, freeing capacity again.
    #[test]
    fn preemption_burst_evicts_and_releases() {
        let mut c = cluster(1);
        let victim = gang(1, 0, 2, 8.0, 60);
        let late = gang(2, 20 * 60, 2, 8.0, 5); // after the burst residency
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_secs(300),
            kind: FaultKind::PreemptionBurst { pods: 4 },
        }]);
        let outcomes = drive_fleet_chaos(&mut c, &[victim, late], Some(&plan), None);
        assert!(outcomes[0].preempted, "{outcomes:?}");
        assert_eq!(outcomes[0].finished, None);
        assert!(outcomes[1].finished.is_some());
        assert_eq!(c.total_allocated(), Resources::ZERO, "burst pods must not leak");
    }

    #[test]
    fn chaos_driver_is_deterministic_and_plain_driver_unchanged() {
        let jobs: Vec<GangJob> =
            (0..12).map(|i| gang(i, i * 30, 1 + (i as usize % 3), 4.0, 60 + i % 7)).collect();
        let plan = FaultPlan::from_events(vec![
            FaultEvent { at: SimTime::from_secs(900), kind: FaultKind::WorkerKill { worker: 5 } },
            FaultEvent { at: SimTime::from_secs(1800), kind: FaultKind::NodeLoss { node: 1 } },
        ]);
        let run = || {
            let mut c = cluster(3);
            drive_fleet_chaos(&mut c, &jobs, Some(&plan), Some(&RngStreams::new(4)))
        };
        assert_eq!(run(), run());
        // And the churn-free entry point matches the chaos path given no
        // plan and no streams (same code, no draws).
        let mut c1 = cluster(3);
        let mut c2 = cluster(3);
        assert_eq!(drive_fleet(&mut c1, &jobs), drive_fleet_chaos(&mut c2, &jobs, None, None));
    }
}
