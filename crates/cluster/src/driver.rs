//! Pod-level fleet driver: gang-schedules whole jobs through the cluster
//! in virtual time.
//!
//! The coarse admission model in the experiment harness treats the cluster
//! as one big resource pool; this driver is the *exact* counterpart — every
//! job is a gang of pods placed onto concrete nodes (best-fit, preemption,
//! heterogeneity), jobs queue FIFO when they don't fit, and completion
//! events free their nodes. Used to cross-validate pending-time
//! distributions and to give per-pod node speeds to stragglers-from-
//! placement analyses.

use dlrover_sim::{EventQueue, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::pod::{Pod, PodId, PodPhase, PodSpec};

/// One job to drive through the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GangJob {
    /// Caller's job identifier.
    pub job_id: u64,
    /// Submission time.
    pub submit: SimTime,
    /// Pod specs that must be placed together.
    pub pods: Vec<PodSpec>,
    /// How long the job runs once admitted, at nominal node speed. The
    /// driver stretches this by the gang's slowest node (a pod on a
    /// 0.45-speed node slows a synchronous job by 1/0.45).
    pub nominal_duration: SimDuration,
    /// Whether the slowest node gates the job (synchronous/static jobs)
    /// or the mean speed applies (elastic jobs with dynamic sharding).
    pub gated_by_slowest: bool,
}

/// Outcome of one driven job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GangOutcome {
    /// Caller's job identifier.
    pub job_id: u64,
    /// Submission time.
    pub submitted: SimTime,
    /// When the gang was admitted (None = never fit before the trace ended).
    pub admitted: Option<SimTime>,
    /// When the job finished.
    pub finished: Option<SimTime>,
    /// Speeds of the nodes the pods landed on.
    pub node_speeds: Vec<f64>,
    /// Pods preempted from *other* jobs to admit this one.
    pub preempted_others: usize,
    /// True when this gang was itself killed by a higher-priority gang's
    /// preemption before finishing (its `finished` stays `None`; recovery
    /// is the job master's concern, not this driver's).
    pub preempted: bool,
}

impl GangOutcome {
    /// Time spent waiting for admission (zero if never admitted).
    pub fn pending(&self) -> SimDuration {
        match self.admitted {
            Some(t) => t.saturating_since(self.submitted),
            None => SimDuration::ZERO,
        }
    }

    /// Realised job duration.
    pub fn duration(&self) -> Option<SimDuration> {
        Some(self.finished?.saturating_since(self.admitted?))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Submit(usize),
    Finish(usize),
}

/// Drives `jobs` through `cluster` to completion; returns per-job outcomes
/// sorted by job id. Jobs that never fit remain `admitted: None`.
pub fn drive_fleet(cluster: &mut Cluster, jobs: &[GangJob]) -> Vec<GangOutcome> {
    let mut outcomes: Vec<GangOutcome> = jobs
        .iter()
        .map(|j| GangOutcome {
            job_id: j.job_id,
            submitted: j.submit,
            admitted: None,
            finished: None,
            node_speeds: Vec::new(),
            preempted_others: 0,
            preempted: false,
        })
        .collect();
    let mut queue: EventQueue<Ev> = EventQueue::new();
    for (i, j) in jobs.iter().enumerate() {
        queue.push(j.submit, Ev::Submit(i));
    }
    let mut waiting: Vec<usize> = Vec::new();
    let mut held_pods: Vec<Vec<PodId>> = vec![Vec::new(); jobs.len()];

    while let Some(ev) = queue.pop() {
        let now = ev.at;
        match ev.event {
            Ev::Submit(i) => {
                waiting.push(i);
            }
            Ev::Finish(i) => {
                // A gang whose pods were preempted mid-run did NOT finish;
                // its stale Finish event must not record a phantom
                // completion.
                if !outcomes[i].preempted {
                    for &pod in &held_pods[i] {
                        cluster.terminate_pod(pod, PodPhase::Succeeded);
                    }
                    outcomes[i].finished = Some(now);
                }
            }
        }
        // Admission pass after every event: FIFO-ordered *backfill* — the
        // queue is scanned in submission order, but a later gang that fits
        // may admit while an earlier, larger gang keeps waiting (what the
        // k8s gang plugins do). Head-of-line blocking is thereby traded
        // for utilisation.
        let mut still_waiting = Vec::new();
        for &i in &waiting {
            let job = &jobs[i];
            match cluster.try_place_gang(&job.pods, now) {
                Some((ids, events)) => {
                    for &id in &ids {
                        cluster.mark_running(id, now);
                    }
                    let speeds: Vec<f64> =
                        ids.iter().filter_map(|&id| cluster.pod(id).map(Pod::speed_of)).collect();
                    // Mark victim gangs as preempted: their resources are
                    // gone and their scheduled Finish must not fire as a
                    // completion. (They are not rescheduled here — the
                    // caller decides; this driver measures.)
                    let mut preempted = 0;
                    for e in &events {
                        if let crate::cluster::ClusterEvent::PodPreempted(pod) = e {
                            preempted += 1;
                            if let Some(victim) =
                                held_pods.iter().position(|pods| pods.contains(pod))
                            {
                                outcomes[victim].preempted = true;
                                // Release the victim's surviving pods too:
                                // a gang cannot run partially.
                                for &other in &held_pods[victim] {
                                    cluster.terminate_pod(other, PodPhase::Preempted);
                                }
                                held_pods[victim].clear();
                            }
                        }
                    }
                    let slowdown = if job.gated_by_slowest {
                        1.0 / speeds.iter().cloned().fold(1.0f64, f64::min).max(1e-3)
                    } else {
                        let mean = speeds.iter().sum::<f64>() / speeds.len().max(1) as f64;
                        1.0 / mean.max(1e-3)
                    };
                    let duration = job.nominal_duration.mul_f64(slowdown);
                    queue.push(now + duration, Ev::Finish(i));
                    held_pods[i] = ids;
                    outcomes[i].admitted = Some(now);
                    outcomes[i].node_speeds = speeds;
                    outcomes[i].preempted_others = preempted;
                }
                None => still_waiting.push(i),
            }
        }
        waiting = still_waiting;
    }
    outcomes
}

impl Pod {
    /// The node speed recorded at binding (1.0 before placement).
    fn speed_of(&self) -> f64 {
        self.node_speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::pod::{PodRole, Priority};
    use crate::resources::Resources;
    use dlrover_sim::RngStreams;

    fn pod_spec(cores: f64, job_id: u64, priority: Priority) -> PodSpec {
        PodSpec { resources: Resources::new(cores, 8.0), role: PodRole::Worker, priority, job_id }
    }

    fn gang(job_id: u64, submit_s: u64, pods: usize, cores: f64, mins: u64) -> GangJob {
        GangJob {
            job_id,
            submit: SimTime::from_secs(submit_s),
            pods: vec![pod_spec(cores, job_id, Priority::Low); pods],
            nominal_duration: SimDuration::from_mins(mins),
            gated_by_slowest: false,
        }
    }

    fn cluster(nodes: usize) -> Cluster {
        Cluster::new(
            ClusterConfig {
                nodes,
                node_capacity: Resources::new(16.0, 64.0),
                slow_node_fraction: 0.0,
                slow_node_speed: 0.5,
                pod_daily_failure_rate: 0.0,
            },
            &RngStreams::new(1),
        )
    }

    #[test]
    fn single_job_admits_immediately() {
        let mut c = cluster(4);
        let outcomes = drive_fleet(&mut c, &[gang(1, 10, 2, 8.0, 30)]);
        assert_eq!(outcomes[0].admitted, Some(SimTime::from_secs(10)));
        assert_eq!(outcomes[0].pending(), SimDuration::ZERO);
        assert_eq!(outcomes[0].finished, Some(SimTime::from_secs(10) + SimDuration::from_mins(30)));
    }

    #[test]
    fn gang_is_all_or_nothing() {
        // 4 nodes x 16 cores; a 5-pod x 16-core gang can never fit.
        let mut c = cluster(4);
        let outcomes = drive_fleet(&mut c, &[gang(1, 0, 5, 16.0, 10)]);
        assert_eq!(outcomes[0].admitted, None);
        // And the failed attempt leaked nothing.
        assert_eq!(c.total_allocated(), Resources::ZERO);
    }

    #[test]
    fn contention_queues_fifo_and_drains() {
        // Each job occupies the whole cluster; three jobs serialize.
        let mut c = cluster(2);
        let jobs = vec![gang(1, 0, 4, 8.0, 10), gang(2, 60, 4, 8.0, 10), gang(3, 120, 4, 8.0, 10)];
        let outcomes = drive_fleet(&mut c, &jobs);
        assert_eq!(outcomes[0].pending(), SimDuration::ZERO);
        // Job 2 waits for job 1 to finish at t=600.
        assert_eq!(outcomes[1].admitted, Some(SimTime::from_secs(600)));
        // Job 3 waits for job 2: finishes at 1200.
        assert_eq!(outcomes[2].admitted, Some(SimTime::from_secs(1200)));
        assert!(outcomes.iter().all(|o| o.finished.is_some()));
    }

    #[test]
    fn slow_node_stretches_gated_jobs() {
        let mut c = Cluster::new(
            ClusterConfig {
                nodes: 2,
                node_capacity: Resources::new(16.0, 64.0),
                slow_node_fraction: 1.0, // every node slow
                slow_node_speed: 0.5,
                pod_daily_failure_rate: 0.0,
            },
            &RngStreams::new(1),
        );
        let mut job = gang(1, 0, 2, 8.0, 10);
        job.gated_by_slowest = true;
        let outcomes = drive_fleet(&mut c, &[job]);
        assert_eq!(
            outcomes[0].duration(),
            Some(SimDuration::from_mins(20)),
            "0.5-speed nodes must double the gated duration"
        );
        assert!(outcomes[0].node_speeds.iter().all(|&s| s == 0.5));
    }

    #[test]
    fn high_priority_gang_preempts_low() {
        let mut c = cluster(1); // one 16-core node
        let low = gang(1, 0, 2, 8.0, 60);
        let mut high = gang(2, 60, 2, 8.0, 10);
        for p in &mut high.pods {
            p.priority = Priority::High;
        }
        let outcomes = drive_fleet(&mut c, &[low, high]);
        assert_eq!(outcomes[1].admitted, Some(SimTime::from_secs(60)));
        assert!(outcomes[1].preempted_others > 0);
        // The victim must NOT be recorded as finishing (regression: its
        // stale Finish event used to mark a phantom completion).
        assert!(outcomes[0].preempted);
        assert_eq!(outcomes[0].finished, None);
        assert!(!outcomes[1].preempted);
        assert!(outcomes[1].finished.is_some());
    }

    #[test]
    fn driver_is_deterministic() {
        let jobs: Vec<GangJob> = (0..20)
            .map(|i| gang(i, i * 30, 1 + (i as usize % 3), 4.0 + (i % 4) as f64, 5 + i % 7))
            .collect();
        let run = || {
            let mut c = cluster(3);
            drive_fleet(&mut c, &jobs)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pending_grows_under_load() {
        // Saturating arrival: pending times increase down the queue.
        let jobs: Vec<GangJob> = (0..6).map(|i| gang(i, i, 4, 8.0, 30)).collect();
        let mut c = cluster(2);
        let outcomes = drive_fleet(&mut c, &jobs);
        let pendings: Vec<f64> = outcomes.iter().map(|o| o.pending().as_mins_f64()).collect();
        assert!(pendings.windows(2).all(|w| w[1] >= w[0]), "{pendings:?}");
        assert!(pendings[5] > 100.0, "deep queue should wait hours: {pendings:?}");
    }
}
