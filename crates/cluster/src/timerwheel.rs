//! A hierarchical timer wheel with exact [`dlrover_sim::EventQueue`]
//! semantics.
//!
//! [`TimerWheel`] replaces the binary-heap event queue on the fleet-scale
//! path: push/pop are O(1) amortised instead of O(log n), and — more
//! importantly at a million pods — the hot slots for near-future events stay
//! cache-resident instead of churning a heap that spans the whole horizon.
//!
//! Layout: virtual time is bucketed into ticks of 2^10 µs (≈1 ms). Seven
//! levels of 64 slots each cover 64^7 ≈ 4.4·10^12 ticks (≈140 years of
//! virtual time); events beyond the horizon park in an overflow list (only
//! sentinel timestamps ever get there). Each level keeps a 64-bit occupancy
//! bitmap, so "find the next pending slot" is a mask + `trailing_zeros`.
//!
//! Determinism contract (property-tested against a `BTreeMap` reference
//! model in the tests below):
//! `push` returns the same monotone sequence numbers, and `pop` yields events
//! in exactly `(fire_time, sequence)` order — same-instant events fire in
//! insertion order. The golden-trace corpus therefore cannot tell the two
//! apart, which is what lets `driver.rs` switch over without re-blessing 18
//! experiment digests.

use std::collections::VecDeque;

use dlrover_sim::{ScheduledEvent, SimTime};

/// log2 of the tick length in microseconds (tick = 1024 µs).
const TICK_SHIFT: u32 = 10;
/// log2 of the slots per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels; level `l` spans 64^(l+1) ticks.
const LEVELS: usize = 7;

/// A deterministic hierarchical timer wheel, API-compatible with
/// [`dlrover_sim::EventQueue`].
///
/// ```
/// use dlrover_cluster::TimerWheel;
/// use dlrover_sim::SimTime;
///
/// let mut w = TimerWheel::new();
/// w.push(SimTime::from_secs(2), "late");
/// w.push(SimTime::from_secs(1), "early");
/// w.push(SimTime::from_secs(1), "early-second");
/// assert_eq!(w.pop().unwrap().event, "early");
/// assert_eq!(w.pop().unwrap().event, "early-second");
/// assert_eq!(w.pop().unwrap().event, "late");
/// assert!(w.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct TimerWheel<E> {
    /// `LEVELS * SLOTS` buckets, level-major.
    slots: Vec<Vec<ScheduledEvent<E>>>,
    /// Per-level occupancy bitmaps.
    occupancy: [u64; LEVELS],
    /// Events due at (or re-inserted at/before) the cursor tick, sorted by
    /// `(at, seq)` and popped from the front.
    ready: VecDeque<ScheduledEvent<E>>,
    /// Events beyond the wheel horizon.
    overflow: Vec<ScheduledEvent<E>>,
    /// The tick the wheel has advanced to.
    cursor: u64,
    /// Fire time of the last popped event.
    now: SimTime,
    next_seq: u64,
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

fn tick_of(at: SimTime) -> u64 {
    at.as_micros() >> TICK_SHIFT
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel with the clock at time zero.
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            ready: VecDeque::new(),
            overflow: Vec::new(),
            cursor: 0,
            now: SimTime::ZERO,
            next_seq: 0,
            len: 0,
        }
    }

    /// The current virtual time: the fire time of the last popped event
    /// (or zero before anything fired).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` to fire at `at`, returning its sequence number.
    ///
    /// # Panics
    /// Panics in debug builds if `at` is before the current virtual time.
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        debug_assert!(at >= self.now, "scheduling into the past: {:?} < {:?}", at, self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let ev = ScheduledEvent { at, seq, event };
        if tick_of(at) <= self.cursor {
            // Due within (or before) the tick the wheel already advanced to —
            // this happens when `peek_time` cascaded ahead and the caller then
            // scheduled something nearer. Merge straight into the ready run.
            self.insert_ready(ev);
        } else {
            self.place(ev);
        }
        seq
    }

    /// Pops the earliest event and advances the clock to its fire time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.ready.is_empty() && !self.advance() {
            return None;
        }
        let ev = self.ready.pop_front().expect("advance filled ready");
        self.now = ev.at;
        self.len -= 1;
        Some(ev)
    }

    /// Fire time of the earliest pending event, if any.
    ///
    /// Takes `&mut self` because peeking may cascade wheel levels to locate
    /// the next occupied slot; the observable state (pending set, clock,
    /// pop order) is unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.ready.is_empty() && !self.advance() {
            return None;
        }
        self.ready.front().map(|e| e.at)
    }

    /// Drops all pending events (the clock is left where it is).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.occupancy = [0; LEVELS];
        self.ready.clear();
        self.overflow.clear();
        self.len = 0;
    }

    /// Inserts into the sorted ready run at its `(at, seq)` position.
    fn insert_ready(&mut self, ev: ScheduledEvent<E>) {
        let pos = self.ready.partition_point(|e| (e.at, e.seq) <= (ev.at, ev.seq));
        self.ready.insert(pos, ev);
    }

    /// Places an event whose tick is strictly after the cursor into the
    /// wheel (or the overflow list when it is beyond the horizon).
    fn place(&mut self, ev: ScheduledEvent<E>) {
        let tick = tick_of(ev.at);
        debug_assert!(tick > self.cursor);
        for level in 0..LEVELS {
            let window = LEVEL_BITS * (level as u32 + 1);
            if tick >> window == self.cursor >> window {
                let slot = ((tick >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                self.slots[level * SLOTS + slot].push(ev);
                self.occupancy[level] |= 1 << slot;
                return;
            }
        }
        self.overflow.push(ev);
    }

    /// Advances the cursor to the next occupied tick and drains that tick's
    /// events into `ready`, cascading higher levels as needed. Returns false
    /// when the wheel is drained. Does not touch `now`.
    fn advance(&mut self) -> bool {
        debug_assert!(self.ready.is_empty());
        loop {
            // Level 0: slots at or after the cursor position are due ticks.
            let c0 = (self.cursor & (SLOTS as u64 - 1)) as u32;
            let masked = self.occupancy[0] & (!0u64 << c0);
            if masked != 0 {
                let slot = masked.trailing_zeros() as u64;
                self.cursor = (self.cursor & !(SLOTS as u64 - 1)) | slot;
                self.occupancy[0] &= !(1 << slot);
                let mut due = std::mem::take(&mut self.slots[slot as usize]);
                // One tick spans 1024 µs, so same-slot events can differ in
                // fire time; restore exact (at, seq) order.
                due.sort_unstable_by_key(|e| (e.at, e.seq));
                self.ready.extend(due);
                return true;
            }
            // Higher levels: cascade the earliest occupied slot down.
            let mut cascaded = false;
            for level in 1..LEVELS {
                let cl = ((self.cursor >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as u32;
                let masked = self.occupancy[level] & (!0u64 << cl);
                if masked == 0 {
                    continue;
                }
                let slot = masked.trailing_zeros() as u64;
                let window = LEVEL_BITS * (level as u32 + 1);
                self.cursor =
                    (self.cursor >> window << window) | (slot << (LEVEL_BITS * level as u32));
                self.occupancy[level] &= !(1 << slot);
                let pending = std::mem::take(&mut self.slots[level * SLOTS + slot as usize]);
                for ev in pending {
                    // An event landing exactly on the new cursor tick is due
                    // now; `place` only accepts strictly-future ticks.
                    if tick_of(ev.at) <= self.cursor {
                        self.insert_ready(ev);
                    } else {
                        self.place(ev);
                    }
                }
                if !self.ready.is_empty() {
                    return true;
                }
                cascaded = true;
                break;
            }
            if cascaded {
                continue;
            }
            // Wheel empty: pull the overflow list back into range.
            if self.overflow.is_empty() {
                return false;
            }
            let min_tick =
                self.overflow.iter().map(|e| tick_of(e.at)).min().expect("non-empty overflow");
            self.cursor = min_tick;
            for ev in std::mem::take(&mut self.overflow) {
                if tick_of(ev.at) <= self.cursor {
                    self.insert_ready(ev);
                } else {
                    self.place(ev);
                }
            }
            debug_assert!(!self.ready.is_empty());
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_sim::{EventQueue, SimDuration};
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(5), 5u32);
        w.push(SimTime::from_secs(1), 1u32);
        w.push(SimTime::from_secs(3), 3u32);
        let order: Vec<u32> = std::iter::from_fn(|| w.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            w.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| w.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn same_slot_different_micros_stay_ordered() {
        // Two events land in the same 1024 µs tick but at different instants.
        let mut w = TimerWheel::new();
        w.push(SimTime::from_micros(2_000), "later-in-tick");
        w.push(SimTime::from_micros(1_100), "earlier-in-tick");
        assert_eq!(w.pop().unwrap().event, "earlier-in-tick");
        assert_eq!(w.pop().unwrap().event, "later-in-tick");
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut w = TimerWheel::new();
        assert_eq!(w.now(), SimTime::ZERO);
        w.push(SimTime::from_secs(2), ());
        w.push(SimTime::from_secs(7), ());
        w.pop();
        assert_eq!(w.now(), SimTime::from_secs(2));
        w.pop();
        assert_eq!(w.now(), SimTime::from_secs(7));
        assert!(w.pop().is_none());
        assert_eq!(w.now(), SimTime::from_secs(7));
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(4), ());
        assert_eq!(w.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(w.now(), SimTime::ZERO);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn push_after_peek_cascade_keeps_order() {
        // peek_time cascades the cursor out to the day-scale event; a
        // subsequent near-term push must still fire first.
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(86_400), "tomorrow");
        assert_eq!(w.peek_time(), Some(SimTime::from_secs(86_400)));
        w.push(SimTime::from_secs(5), "soon");
        w.push(SimTime::from_secs(86_400), "tomorrow-2");
        assert_eq!(w.pop().unwrap().event, "soon");
        assert_eq!(w.pop().unwrap().event, "tomorrow");
        assert_eq!(w.pop().unwrap().event, "tomorrow-2");
    }

    #[test]
    fn multi_level_cascade() {
        // Spread events across wildly different magnitudes so every level
        // (and the cascade path) is exercised.
        let mut w = TimerWheel::new();
        let times = [
            SimTime::from_micros(1),
            SimTime::from_micros(70_000),
            SimTime::from_secs(5),
            SimTime::from_secs(400),
            SimTime::from_secs(3 * 3_600),
            SimTime::from_secs(86_400 * 30),
            SimTime::from_secs(86_400 * 365 * 12),
        ];
        for (i, t) in times.iter().enumerate() {
            w.push(*t, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| w.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..times.len()).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_beyond_horizon() {
        let mut w = TimerWheel::new();
        w.push(SimTime::MAX, "sentinel");
        w.push(SimTime::from_secs(1), "near");
        assert_eq!(w.pop().unwrap().event, "near");
        let ev = w.pop().unwrap();
        assert_eq!(ev.event, "sentinel");
        assert_eq!(ev.at, SimTime::MAX);
        assert!(w.pop().is_none());
    }

    #[test]
    fn clear_empties_wheel() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(1), ());
        w.push(SimTime::from_secs(86_400), ());
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert!(w.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)] // the guard is a debug_assert!; release builds skip it
    fn scheduling_into_past_panics_in_debug() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(5), ());
        w.pop();
        w.push(SimTime::from_secs(1), ());
    }

    /// Operations for the equivalence property test.
    #[derive(Debug, Clone)]
    enum Op {
        /// Push at now + delta µs.
        Push(u64),
        Pop,
        Peek,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            // Mix of magnitudes: same-tick, level-0, and deep-cascade deltas.
            (0u64..2_000).prop_map(Op::Push),
            (0u64..5_000_000).prop_map(Op::Push),
            (0u64..10_000_000_000_000).prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Pop),
            Just(Op::Peek),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The wheel is observationally identical to the reference
        /// binary-heap queue: same sequence numbers from push, same
        /// (at, seq, payload) stream from pop, same peeked times.
        #[test]
        fn matches_event_queue(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            let mut wheel = TimerWheel::new();
            let mut queue = EventQueue::new();
            let mut next_payload = 0u32;
            for op in ops {
                match op {
                    Op::Push(delta) => {
                        let at = wheel.now() + SimDuration::from_micros(delta);
                        let payload = next_payload;
                        next_payload += 1;
                        let ws = wheel.push(at, payload);
                        let qs = queue.push(at, payload);
                        prop_assert_eq!(ws, qs);
                    }
                    Op::Pop => {
                        let w = wheel.pop();
                        let q = queue.pop();
                        match (w, q) {
                            (None, None) => {}
                            (Some(w), Some(q)) => {
                                prop_assert_eq!(w.at, q.at);
                                prop_assert_eq!(w.seq, q.seq);
                                prop_assert_eq!(w.event, q.event);
                                prop_assert_eq!(wheel.now(), queue.now());
                            }
                            (w, q) => prop_assert!(false, "pop mismatch: {:?} vs {:?}", w, q),
                        }
                        prop_assert_eq!(wheel.len(), queue.len());
                    }
                    Op::Peek => {
                        prop_assert_eq!(wheel.peek_time(), queue.peek_time());
                    }
                }
            }
            // Drain both completely.
            loop {
                match (wheel.pop(), queue.pop()) {
                    (None, None) => break,
                    (Some(w), Some(q)) => {
                        prop_assert_eq!((w.at, w.seq, w.event), (q.at, q.seq, q.event));
                    }
                    (w, q) => prop_assert!(false, "drain mismatch: {:?} vs {:?}", w, q),
                }
            }
        }
    }
}
