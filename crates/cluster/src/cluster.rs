//! The cluster state machine: placement, preemption, failures.
//!
//! The cluster is deliberately *passive*: it owns node/pod state and
//! placement policy, while time lives in the caller's event queue. Callers
//! request pods, later mark them running (after a startup latency they
//! sample from [`crate::StartupLatencyModel`]), and feed failures in from
//! their own hazard processes. Every mutating call returns the list of
//! [`ClusterEvent`]s it caused so drivers can react (e.g. reschedule a
//! preempted worker).

use std::collections::{BTreeMap, BTreeSet};

use dlrover_sim::{RngStreams, SimTime};
use dlrover_telemetry::{EventKind, SpanCategory, Telemetry};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::node::{Node, NodeId};
use crate::pod::{Pod, PodId, PodPhase, PodSpec, Priority};
use crate::resources::Resources;
use crate::store::PodTable;

/// Cluster construction parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Capacity per node. The paper's small-scale testbed is 20 nodes of
    /// 2×16 cores + 192 GB, which is the default here.
    pub node_capacity: Resources,
    /// Fraction of nodes with slow hardware (straggler source).
    pub slow_node_fraction: f64,
    /// Relative speed of slow nodes.
    pub slow_node_speed: f64,
    /// Daily failure probability of a single pod (§2.2 reports 1.5 %/day).
    pub pod_daily_failure_rate: f64,
    /// Pod failures on one node before the scheduler blacklists it for the
    /// rest of the run (repeated failures on the same machine indicate bad
    /// hardware, not bad pods — DLRover's controller cordons such nodes).
    /// Correlated node-loss failures do not count; `0` disables the
    /// blacklist.
    pub node_blacklist_threshold: u32,
}

fn default_blacklist_threshold() -> u32 {
    3
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 20,
            node_capacity: Resources::new(32.0, 192.0),
            slow_node_fraction: 0.15,
            slow_node_speed: 0.45,
            pod_daily_failure_rate: 0.015,
            node_blacklist_threshold: default_blacklist_threshold(),
        }
    }
}

/// Why a pod could not be placed immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// The request exceeds even an empty node's capacity — it can never run.
    NeverSchedulable,
}

/// Why a schedulable pod is parked in the pending queue right now — the
/// request-denial reason the master's degraded-mode fallback keys on
/// (shrinking the ask only helps against capacity problems, not against a
/// fully cordoned fleet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenialReason {
    /// No healthy, non-blacklisted node has enough free capacity, but the
    /// cluster-wide free pool could hold the request — fragmentation or
    /// transient contention; worth retrying.
    Contention,
    /// Even the cluster-wide free pool cannot hold the request: capacity
    /// is genuinely exhausted; a smaller ask may still fit.
    CapacityExhausted,
    /// The request would fit, but only on blacklisted or failed nodes.
    NodesCordoned,
}

impl DenialReason {
    /// Stable short name, for counters and reports.
    pub fn name(&self) -> &'static str {
        match self {
            DenialReason::Contention => "contention",
            DenialReason::CapacityExhausted => "capacity_exhausted",
            DenialReason::NodesCordoned => "nodes_cordoned",
        }
    }
}

/// Things that happen inside the cluster as a result of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A pod was bound to a node and began starting up.
    PodPlaced(PodId, NodeId),
    /// A low-priority pod was evicted to make room.
    PodPreempted(PodId),
    /// A pod died with its node.
    PodFailed(PodId),
    /// A node went down.
    NodeFailed(NodeId),
}

/// The simulated cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    pods: PodTable,
    pending: Vec<PodId>,
    /// Reusable buffer `schedule_pending` drains the queue through — the
    /// scheduler runs after every submit/finish/failure, so per-pass clones
    /// of the queue were measurable churn at fleet scale.
    scratch: Vec<PodId>,
    next_pod_id: u64,
    config: ClusterConfig,
    telemetry: Telemetry,
    /// Last time a timed entry point saw; stamps events from untimed calls
    /// (the cluster itself is passive — time lives in the caller's queue).
    clock: SimTime,
    /// Uncorrelated pod failures observed per node (node-loss casualties
    /// excluded — those say nothing about the node coming back).
    node_failures: BTreeMap<u32, u32>,
    /// Nodes past the failure threshold: the placer never binds there
    /// again this run.
    blacklisted: BTreeSet<u32>,
}

impl Cluster {
    /// Builds a cluster; node heterogeneity is sampled from the `"nodes"`
    /// RNG stream of `streams`.
    pub fn new(config: ClusterConfig, streams: &RngStreams) -> Self {
        let mut rng = streams.stream("nodes");
        let nodes = (0..config.nodes)
            .map(|i| {
                let slow = rng.gen::<f64>() < config.slow_node_fraction;
                let speed = if slow { config.slow_node_speed } else { 1.0 };
                Node::new(NodeId(i as u32), config.node_capacity, speed)
            })
            .collect();
        Cluster {
            nodes,
            pods: PodTable::new(),
            pending: Vec::new(),
            scratch: Vec::new(),
            next_pod_id: 0,
            config,
            telemetry: Telemetry::default(),
            clock: SimTime::ZERO,
            node_failures: BTreeMap::new(),
            blacklisted: BTreeSet::new(),
        }
    }

    /// Routes this cluster's telemetry into `sink` (a shared handle).
    pub fn set_telemetry(&mut self, sink: Telemetry) {
        self.telemetry = sink;
    }

    /// The cluster's telemetry handle (clone to share).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mirrors scheduler outcomes into the telemetry sink, stamped with the
    /// last-known virtual time. A placement also closes the pod's
    /// `scheduling` span (request → grant, on the pod's own track); a
    /// preemption records an instant `preemption` span.
    fn record_events(&self, events: &[ClusterEvent]) {
        for e in events {
            let kind = match *e {
                ClusterEvent::PodPlaced(p, n) => {
                    self.telemetry.count("cluster.pods_placed", 1);
                    if let Some(pod) = self.pods.get(p) {
                        self.telemetry.span_complete(
                            pod.requested_at,
                            self.clock,
                            SpanCategory::Scheduling,
                            "place",
                            p.0,
                            None,
                        );
                    }
                    EventKind::PodPlaced { pod: p.0, node: n.0 }
                }
                ClusterEvent::PodPreempted(p) => {
                    self.telemetry.count("cluster.preemptions", 1);
                    self.telemetry.span_complete(
                        self.clock,
                        self.clock,
                        SpanCategory::Preemption,
                        "evict",
                        p.0,
                        None,
                    );
                    EventKind::PodPreempted { pod: p.0 }
                }
                ClusterEvent::PodFailed(p) => {
                    self.telemetry.count("cluster.pod_failures", 1);
                    EventKind::PodFailed { pod: p.0 }
                }
                ClusterEvent::NodeFailed(n) => EventKind::NodeFailed { node: n.0 },
            };
            self.telemetry.record(self.clock, kind);
        }
    }

    /// The construction config.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a pod.
    pub fn pod(&self, id: PodId) -> Option<&Pod> {
        self.pods.get(id)
    }

    /// Iterates all pods (including terminal ones).
    pub fn pods(&self) -> impl Iterator<Item = &Pod> {
        self.pods.values()
    }

    /// Total capacity across healthy nodes.
    pub fn total_capacity(&self) -> Resources {
        self.nodes.iter().filter(|n| n.healthy).fold(Resources::ZERO, |acc, n| acc + n.capacity)
    }

    /// Total resources currently allocated.
    pub fn total_allocated(&self) -> Resources {
        self.nodes.iter().fold(Resources::ZERO, |acc, n| acc + n.allocated)
    }

    /// Free capacity across healthy nodes.
    pub fn total_free(&self) -> Resources {
        self.total_capacity().saturating_sub(&self.total_allocated())
    }

    /// Submits a pod. If it fits nowhere right now it parks in the pending
    /// queue (FIFO, high priority first) and will be placed by
    /// [`Self::schedule_pending`]. High-priority pods may preempt.
    ///
    /// Returns the new pod id plus any events (placement/preemptions).
    pub fn request_pod(
        &mut self,
        spec: PodSpec,
        now: SimTime,
    ) -> Result<(PodId, Vec<ClusterEvent>), ScheduleError> {
        self.clock = now;
        if !self.config.node_capacity.fits(&spec.resources) {
            return Err(ScheduleError::NeverSchedulable);
        }
        let id = PodId(self.next_pod_id);
        self.next_pod_id += 1;
        self.pods.insert(Pod {
            id,
            spec,
            phase: PodPhase::Pending,
            node: None,
            requested_at: now,
            placed_at: None,
            running_at: None,
            node_speed: 1.0,
        });
        self.pending.push(id);
        self.telemetry.record(now, EventKind::PodRequested { job: spec.job_id, pod: id.0 });
        let events = self.schedule_pending();
        if self.pending.contains(&id) {
            // A denial for now; `schedule_pending` may grant it later.
            self.telemetry.record(now, EventKind::PodPending { pod: id.0 });
            self.telemetry.count("cluster.denials", 1);
            let reason = self.denial_reason(&spec.resources);
            self.telemetry.count(&format!("cluster.denials.{}", reason.name()), 1);
        }
        Ok((id, events))
    }

    /// Tries to place pending pods (high priority first, then FIFO),
    /// preempting low-priority pods for high-priority demands when needed.
    pub fn schedule_pending(&mut self) -> Vec<ClusterEvent> {
        let mut events = Vec::new();
        // Order: High first, then submission order.
        self.pending.sort_by_key(|id| {
            let p = &self.pods[id];
            (std::cmp::Reverse(p.spec.priority), p.id)
        });
        // Drain the queue through the reusable scratch buffer instead of
        // cloning it: the swap is O(1) and both vectors keep their capacity
        // across passes, so steady-state scheduling allocates nothing.
        let mut queue = std::mem::replace(&mut self.pending, std::mem::take(&mut self.scratch));
        debug_assert!(self.pending.is_empty());
        for id in queue.drain(..) {
            let spec = self.pods[&id].spec;
            match self.place(&spec.resources) {
                Some(node_id) => {
                    self.bind(id, node_id, &mut events);
                }
                None if spec.priority == Priority::High => {
                    if let Some(node_id) = self.preempt_for(&spec.resources, &mut events) {
                        self.bind(id, node_id, &mut events);
                    } else {
                        self.pending.push(id);
                    }
                }
                None => self.pending.push(id),
            }
        }
        self.scratch = queue;
        self.record_events(&events);
        events
    }

    /// Best-fit placement: the healthy, non-blacklisted node with the
    /// least free CPU that still fits (keeps large holes for large pods).
    fn place(&self, req: &Resources) -> Option<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.fits(req) && !self.blacklisted.contains(&n.id.0))
            .min_by_key(|n| (n.free().cpu_millis, n.free().mem_bytes))
            .map(|n| n.id)
    }

    /// Why a request that fits *some* node shape is parked right now. See
    /// [`DenialReason`]; callers use this to choose between backing off
    /// (contention) and shrinking the ask (capacity exhausted).
    pub fn denial_reason(&self, req: &Resources) -> DenialReason {
        let cordoned_would_fit = self.nodes.iter().any(|n| {
            (!n.healthy || self.blacklisted.contains(&n.id.0))
                && n.capacity.saturating_sub(&n.allocated).fits(req)
        });
        let usable_free = self
            .nodes
            .iter()
            .filter(|n| n.healthy && !self.blacklisted.contains(&n.id.0))
            .fold(Resources::ZERO, |acc, n| acc + n.free());
        if usable_free.fits(req) {
            DenialReason::Contention
        } else if cordoned_would_fit {
            DenialReason::NodesCordoned
        } else {
            DenialReason::CapacityExhausted
        }
    }

    /// Nodes currently blacklisted for repeated uncorrelated pod failures.
    pub fn blacklisted_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.blacklisted.iter().map(|&n| NodeId(n))
    }

    /// Counts one uncorrelated pod failure against `node`; crossing the
    /// configured threshold blacklists the node (permanently for this run)
    /// and reports [`EventKind::NodeBlacklisted`].
    fn note_node_failure(&mut self, node: NodeId) {
        let threshold = self.config.node_blacklist_threshold;
        if threshold == 0 || self.blacklisted.contains(&node.0) {
            return;
        }
        let count = self.node_failures.entry(node.0).or_insert(0);
        *count += 1;
        if *count >= threshold {
            let failures = *count;
            self.blacklisted.insert(node.0);
            self.telemetry
                .record(self.clock, EventKind::NodeBlacklisted { node: node.0, failures });
            self.telemetry.count("cluster.nodes_blacklisted", 1);
        }
    }

    fn bind(&mut self, id: PodId, node_id: NodeId, events: &mut Vec<ClusterEvent>) {
        let node = &mut self.nodes[node_id.0 as usize];
        let pod = self.pods.get_mut(id).expect("binding unknown pod");
        node.reserve(pod.spec.resources);
        pod.node = Some(node_id);
        pod.phase = PodPhase::Starting;
        pod.placed_at = Some(self.clock);
        pod.node_speed = node.speed;
        events.push(ClusterEvent::PodPlaced(id, node_id));
    }

    /// Frees room for a high-priority request by evicting low-priority pods
    /// from a single victim node. Returns the node that now fits.
    fn preempt_for(&mut self, req: &Resources, events: &mut Vec<ClusterEvent>) -> Option<NodeId> {
        // Choose the node where (free + evictable-low) covers the request
        // and the evicted amount is smallest.
        let mut best: Option<(NodeId, u64)> = None;
        for node in &self.nodes {
            if !node.healthy || self.blacklisted.contains(&node.id.0) {
                continue;
            }
            let evictable: Resources = self
                .pods
                .values()
                .filter(|p| {
                    p.node == Some(node.id)
                        && p.phase.holds_resources()
                        && p.spec.priority == Priority::Low
                })
                .fold(Resources::ZERO, |acc, p| acc + p.spec.resources);
            let potential = node.free() + evictable;
            if potential.fits(req) {
                let waste = evictable.cpu_millis;
                if best.is_none_or(|(_, w)| waste < w) {
                    best = Some((node.id, waste));
                }
            }
        }
        let (victim_node, _) = best?;

        // Evict low pods (largest CPU first) until the request fits.
        let mut victims: Vec<PodId> = self
            .pods
            .values()
            .filter(|p| {
                p.node == Some(victim_node)
                    && p.phase.holds_resources()
                    && p.spec.priority == Priority::Low
            })
            .map(|p| p.id)
            .collect();
        victims.sort_by_key(|id| std::cmp::Reverse(self.pods[id].spec.resources.cpu_millis));
        for victim in victims {
            if self.nodes[victim_node.0 as usize].fits(req) {
                break;
            }
            self.detach(victim, PodPhase::Preempted);
            events.push(ClusterEvent::PodPreempted(victim));
        }
        self.nodes[victim_node.0 as usize].fits(req).then_some(victim_node)
    }

    /// Gang placement: places *all* of `specs` or none (distributed
    /// training needs its full pod set before it can start; partially
    /// placed jobs would deadlock the cluster). High-priority gangs may
    /// preempt. Returns the pod ids and the placement/preemption events on
    /// success; leaves the cluster untouched on failure.
    ///
    /// Gangs are placed directly, *without* consulting the single-pod
    /// pending queue — they neither admit parked pods as a side effect nor
    /// compete with them inside the trial. (Callers that mix both APIs
    /// decide queue order themselves.)
    pub fn try_place_gang(
        &mut self,
        specs: &[PodSpec],
        now: SimTime,
    ) -> Option<(Vec<PodId>, Vec<ClusterEvent>)> {
        if specs.is_empty() {
            return Some((Vec::new(), Vec::new()));
        }
        self.clock = now;
        // Attempt on a scratch copy; commit only if every pod binds. The
        // trial gets a detached sink so abandoned attempts leave no
        // phantom events; committed events are recorded below.
        let mut trial = self.clone();
        trial.telemetry = Telemetry::default();
        let mut ids = Vec::with_capacity(specs.len());
        let mut events = Vec::new();
        for spec in specs {
            if !trial.config.node_capacity.fits(&spec.resources) {
                return None; // can never fit on any node
            }
            let id = PodId(trial.next_pod_id);
            trial.next_pod_id += 1;
            trial.pods.insert(Pod {
                id,
                spec: *spec,
                phase: PodPhase::Pending,
                node: None,
                requested_at: now,
                placed_at: None,
                running_at: None,
                node_speed: 1.0,
            });
            let node = match trial.place(&spec.resources) {
                Some(n) => Some(n),
                None if spec.priority == Priority::High => {
                    trial.preempt_for(&spec.resources, &mut events)
                }
                None => None,
            }?;
            trial.bind(id, node, &mut events);
            ids.push(id);
        }
        trial.telemetry = self.telemetry.clone();
        *self = trial;
        for (id, spec) in ids.iter().zip(specs) {
            self.telemetry.record(now, EventKind::PodRequested { job: spec.job_id, pod: id.0 });
        }
        self.record_events(&events);
        Some((ids, events))
    }

    /// Marks a starting pod as running (caller applies the startup latency).
    /// Records the pod's `pod-startup` span (placement → running — the
    /// image-pull/init latency §5.2's seamless migration hides).
    ///
    /// # Panics
    /// Panics if the pod is unknown or not in `Starting`.
    pub fn mark_running(&mut self, id: PodId, now: SimTime) {
        let pod = self.pods.get_mut(id).expect("unknown pod");
        assert_eq!(pod.phase, PodPhase::Starting, "pod {id:?} not starting");
        pod.phase = PodPhase::Running;
        pod.running_at = Some(now);
        let started = pod.placed_at.unwrap_or(now);
        self.telemetry.span_complete(started, now, SpanCategory::PodStartup, "init", id.0, None);
    }

    /// Terminates a pod into a terminal phase, releasing its resources.
    /// No-op for already-terminal pods.
    pub fn terminate_pod(&mut self, id: PodId, phase: PodPhase) {
        assert!(phase.is_terminal(), "terminate requires a terminal phase");
        self.detach(id, phase);
        self.pending.retain(|&p| p != id);
    }

    fn detach(&mut self, id: PodId, phase: PodPhase) {
        let Some(pod) = self.pods.get_mut(id) else { return };
        if pod.phase.is_terminal() {
            return;
        }
        if pod.phase.holds_resources() {
            if let Some(node_id) = pod.node {
                self.nodes[node_id.0 as usize].release(pod.spec.resources);
            }
        }
        pod.phase = phase;
        pod.node = None;
    }

    /// Fails one pod (process kill, OOM kill, organic churn, chaos
    /// injection): releases its resources and records a `PodFailed` event.
    /// Unlike [`Self::terminate_pod`] this is a *failure*, visible in the
    /// telemetry stream for the oracle to audit. Returns the events (empty
    /// when the pod was already terminal or unknown).
    pub fn fail_pod(&mut self, id: PodId) -> Vec<ClusterEvent> {
        let alive = self.pods.get(id).is_some_and(|p| !p.phase.is_terminal());
        if !alive {
            return Vec::new();
        }
        // Read the binding *before* detach nulls it: this failure counts
        // against the node's blacklist threshold (node-loss casualties go
        // through `fail_node` and deliberately bypass this).
        let node = self.pods.get(id).and_then(|p| p.node);
        self.detach(id, PodPhase::Failed);
        if let Some(node) = node {
            self.note_node_failure(node);
        }
        self.pending.retain(|&p| p != id);
        let events = vec![ClusterEvent::PodFailed(id)];
        self.record_events(&events);
        events
    }

    /// Advances the cluster's passive clock (used to stamp events from
    /// untimed entry points such as [`Self::fail_pod`]/[`Self::fail_node`])
    /// without submitting anything. Never moves time backwards.
    pub fn advance_clock(&mut self, now: SimTime) {
        self.clock = self.clock.max(now);
    }

    /// Fails a node: all resident pods fail, the node goes unhealthy.
    pub fn fail_node(&mut self, node_id: NodeId) -> Vec<ClusterEvent> {
        let mut events = vec![ClusterEvent::NodeFailed(node_id)];
        let residents: Vec<PodId> = self
            .pods
            .values()
            .filter(|p| p.node == Some(node_id) && p.phase.holds_resources())
            .map(|p| p.id)
            .collect();
        for id in residents {
            self.detach(id, PodPhase::Failed);
            events.push(ClusterEvent::PodFailed(id));
        }
        self.nodes[node_id.0 as usize].healthy = false;
        self.record_events(&events);
        events
    }

    /// Brings a failed node back.
    pub fn recover_node(&mut self, node_id: NodeId) {
        self.nodes[node_id.0 as usize].healthy = true;
    }

    /// Samples the delay until a single pod's next failure from the
    /// configured daily hazard (exponential inter-arrival). Returns `None`
    /// when the hazard is zero.
    pub fn sample_pod_failure_delay<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<dlrover_sim::SimDuration> {
        let daily = self.config.pod_daily_failure_rate;
        if daily <= 0.0 {
            return None;
        }
        // P(fail within a day) = 1 - exp(-λ·86400) = daily  =>  λ = -ln(1-p)/86400.
        let lambda = -(1.0 - daily.min(0.999_999)).ln() / 86_400.0;
        let u: f64 = rng.gen();
        let delay_s = -(1.0 - u).ln() / lambda;
        Some(dlrover_sim::SimDuration::from_secs_f64(delay_s))
    }

    /// Number of pending pods.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::PodRole;

    fn streams() -> RngStreams {
        RngStreams::new(1)
    }

    fn small_cluster() -> Cluster {
        Cluster::new(
            ClusterConfig {
                nodes: 2,
                node_capacity: Resources::new(8.0, 32.0),
                slow_node_fraction: 0.0,
                slow_node_speed: 0.5,
                pod_daily_failure_rate: 0.015,
                ..ClusterConfig::default()
            },
            &streams(),
        )
    }

    fn spec(cores: f64, mem: f64, priority: Priority) -> PodSpec {
        PodSpec {
            resources: Resources::new(cores, mem),
            role: PodRole::Worker,
            priority,
            job_id: 1,
        }
    }

    #[test]
    fn placement_reserves_resources() {
        let mut c = small_cluster();
        let (id, events) = c.request_pod(spec(4.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        assert!(matches!(events[0], ClusterEvent::PodPlaced(p, _) if p == id));
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Starting);
        assert_eq!(c.total_allocated(), Resources::new(4.0, 8.0));
    }

    #[test]
    fn fail_pod_releases_resources_and_reports() {
        let mut c = small_cluster();
        let (id, _) = c.request_pod(spec(4.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        c.mark_running(id, SimTime::from_secs(10));
        let events = c.fail_pod(id);
        assert_eq!(events, vec![ClusterEvent::PodFailed(id)]);
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Failed);
        assert_eq!(c.total_allocated(), Resources::default());
        // Idempotent: a dead pod cannot fail again, and unknown ids are
        // ignored (chaos plans may race organic churn).
        assert!(c.fail_pod(id).is_empty());
        assert!(c.fail_pod(PodId(999)).is_empty());
    }

    #[test]
    fn oversized_request_rejected() {
        let mut c = small_cluster();
        assert_eq!(
            c.request_pod(spec(100.0, 8.0, Priority::Low), SimTime::ZERO).unwrap_err(),
            ScheduleError::NeverSchedulable
        );
    }

    #[test]
    fn full_cluster_parks_pods_pending() {
        let mut c = small_cluster();
        // Fill both nodes (2 × 8 cores).
        for _ in 0..4 {
            c.request_pod(spec(4.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        }
        let (id, events) = c.request_pod(spec(4.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        assert!(events.is_empty());
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Pending);
        assert_eq!(c.pending_count(), 1);

        // Terminating one pod frees room; schedule_pending picks it up.
        let victim = PodId(0);
        c.terminate_pod(victim, PodPhase::Succeeded);
        let events = c.schedule_pending();
        assert!(matches!(events[0], ClusterEvent::PodPlaced(p, _) if p == id));
        assert_eq!(c.pending_count(), 0);
    }

    #[test]
    fn best_fit_packs_tight_nodes_first() {
        let mut c = small_cluster();
        // Node A gets a 6-core pod → 2 free. Node B empty → 8 free.
        let (_, ev) = c.request_pod(spec(6.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        let ClusterEvent::PodPlaced(_, first_node) = ev[0] else { panic!() };
        // A 2-core pod should go to the tighter node (best fit).
        let (_, ev) = c.request_pod(spec(2.0, 4.0, Priority::Low), SimTime::ZERO).unwrap();
        let ClusterEvent::PodPlaced(_, second_node) = ev[0] else { panic!() };
        assert_eq!(first_node, second_node, "best-fit must reuse the fuller node");
    }

    #[test]
    fn high_priority_preempts_low() {
        let mut c = small_cluster();
        for _ in 0..4 {
            c.request_pod(spec(4.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        }
        let (id, events) = c.request_pod(spec(8.0, 8.0, Priority::High), SimTime::ZERO).unwrap();
        let preempted: Vec<_> =
            events.iter().filter(|e| matches!(e, ClusterEvent::PodPreempted(_))).collect();
        assert_eq!(preempted.len(), 2, "needs both 4-core pods off one node");
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Starting);
    }

    #[test]
    fn low_priority_cannot_preempt() {
        let mut c = small_cluster();
        for _ in 0..4 {
            c.request_pod(spec(4.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        }
        let (id, events) = c.request_pod(spec(8.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        assert!(events.is_empty());
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Pending);
    }

    #[test]
    fn node_failure_kills_residents_and_removes_capacity() {
        let mut c = small_cluster();
        let (id, ev) = c.request_pod(spec(4.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        let ClusterEvent::PodPlaced(_, node) = ev[0] else { panic!() };
        let cap_before = c.total_capacity();
        let events = c.fail_node(node);
        assert!(events.contains(&ClusterEvent::NodeFailed(node)));
        assert!(events.contains(&ClusterEvent::PodFailed(id)));
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Failed);
        assert!(c.total_capacity().cpu_millis < cap_before.cpu_millis);
        c.recover_node(node);
        assert_eq!(c.total_capacity(), cap_before);
    }

    #[test]
    fn mark_running_transitions() {
        let mut c = small_cluster();
        let (id, _) = c.request_pod(spec(1.0, 1.0, Priority::Low), SimTime::ZERO).unwrap();
        c.mark_running(id, SimTime::from_secs(30));
        let p = c.pod(id).unwrap();
        assert_eq!(p.phase, PodPhase::Running);
        assert_eq!(p.running_at, Some(SimTime::from_secs(30)));
    }

    #[test]
    fn terminate_is_idempotent() {
        let mut c = small_cluster();
        let (id, _) = c.request_pod(spec(1.0, 1.0, Priority::Low), SimTime::ZERO).unwrap();
        c.terminate_pod(id, PodPhase::Succeeded);
        let allocated = c.total_allocated();
        c.terminate_pod(id, PodPhase::Failed);
        // Phase unchanged, no double-release.
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Succeeded);
        assert_eq!(c.total_allocated(), allocated);
    }

    #[test]
    fn failure_delay_matches_daily_hazard() {
        let c = small_cluster();
        let mut rng = streams().stream("failure-test");
        let n = 20_000;
        let within_day = (0..n)
            .filter(|_| {
                c.sample_pod_failure_delay(&mut rng).expect("hazard configured")
                    <= dlrover_sim::SimDuration::from_days(1)
            })
            .count();
        let frac = within_day as f64 / n as f64;
        assert!((frac - 0.015).abs() < 0.004, "daily failure fraction {frac} vs configured 0.015");
    }

    #[test]
    fn zero_hazard_gives_none() {
        let cfg = ClusterConfig { pod_daily_failure_rate: 0.0, ..ClusterConfig::default() };
        let c = Cluster::new(cfg, &streams());
        let mut rng = streams().stream("x");
        assert!(c.sample_pod_failure_delay(&mut rng).is_none());
    }

    #[test]
    fn heterogeneity_sampling_is_deterministic() {
        let cfg = ClusterConfig { slow_node_fraction: 0.5, ..ClusterConfig::default() };
        let a = Cluster::new(cfg.clone(), &RngStreams::new(5));
        let b = Cluster::new(cfg, &RngStreams::new(5));
        let speeds_a: Vec<f64> = a.nodes().iter().map(|n| n.speed).collect();
        let speeds_b: Vec<f64> = b.nodes().iter().map(|n| n.speed).collect();
        assert_eq!(speeds_a, speeds_b);
        assert!(speeds_a.iter().any(|&s| s < 1.0), "some nodes should be slow");
        assert!(speeds_a.contains(&1.0), "some nodes should be fast");
    }

    #[test]
    fn gang_placement_does_not_disturb_pending_pods() {
        // Regression: a failed gang trial must not admit parked pods, and
        // a successful one must not smuggle their placements into its
        // event list.
        let mut c = small_cluster();
        for _ in 0..4 {
            c.request_pod(spec(4.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        }
        // Park one pod pending.
        let (parked, _) = c.request_pod(spec(4.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        assert_eq!(c.pod(parked).unwrap().phase, PodPhase::Pending);
        // Free one slot, then gang-place a one-pod gang: it takes the slot
        // directly; the parked pod stays parked (the caller decides order).
        c.terminate_pod(PodId(0), PodPhase::Succeeded);
        let gang = [spec(4.0, 8.0, Priority::Low)];
        let (ids, events) = c.try_place_gang(&gang, SimTime::from_secs(1)).expect("slot free");
        assert_eq!(ids.len(), 1);
        assert_eq!(c.pod(parked).unwrap().phase, PodPhase::Pending, "parked pod untouched");
        // Every event refers to the gang's own pod.
        for e in events {
            if let ClusterEvent::PodPlaced(p, _) = e {
                assert_eq!(p, ids[0]);
            }
        }
        // A gang that cannot fit leaves everything untouched.
        let big = [spec(8.0, 8.0, Priority::Low); 3];
        let before = c.total_allocated();
        assert!(c.try_place_gang(&big, SimTime::from_secs(2)).is_none());
        assert_eq!(c.total_allocated(), before);
        assert_eq!(c.pod(parked).unwrap().phase, PodPhase::Pending);
    }

    /// ISSUE-4: repeated uncorrelated pod failures on one node blacklist
    /// it; later placements avoid it even when it has the most free room.
    #[test]
    fn repeated_pod_failures_blacklist_the_node() {
        let mut c = small_cluster();
        let sink = Telemetry::default();
        c.set_telemetry(sink.clone());
        // Anchor a pod on node 1 so best-fit sends small pods to node 0.
        let (anchor, ev) = c.request_pod(spec(6.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        let ClusterEvent::PodPlaced(_, bad_node) = ev[0] else { panic!() };
        let _ = anchor;
        // Fail three pods in a row on the same (fuller, best-fit) node.
        for k in 0..3 {
            let (id, ev) =
                c.request_pod(spec(1.0, 1.0, Priority::Low), SimTime::from_secs(k)).unwrap();
            let ClusterEvent::PodPlaced(_, n) = ev[0] else { panic!() };
            assert_eq!(n, bad_node, "best-fit lands on the fuller node");
            c.fail_pod(id);
        }
        assert_eq!(c.blacklisted_nodes().collect::<Vec<_>>(), vec![bad_node]);
        let snap = sink.snapshot();
        assert_eq!(
            snap.events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::NodeBlacklisted { .. }))
                .count(),
            1,
            "blacklisting reported exactly once"
        );
        // The next pod avoids the blacklisted node despite best fit.
        let (_, ev) = c.request_pod(spec(1.0, 1.0, Priority::Low), SimTime::from_secs(10)).unwrap();
        let ClusterEvent::PodPlaced(_, n) = ev[0] else { panic!() };
        assert_ne!(n, bad_node, "blacklisted node must not receive pods");
        // A fourth failure elsewhere does not re-report the same node.
        assert_eq!(sink.snapshot().metrics.counters.get("cluster.nodes_blacklisted"), Some(&1));
    }

    /// Node-loss casualties are correlated failures: they must not count
    /// toward the blacklist (the node comes back after its outage).
    #[test]
    fn node_loss_casualties_do_not_blacklist() {
        let mut c = small_cluster();
        for _ in 0..3 {
            let (id, ev) = c.request_pod(spec(1.0, 1.0, Priority::Low), SimTime::ZERO).unwrap();
            let ClusterEvent::PodPlaced(_, node) = ev[0] else { panic!() };
            let _ = id;
            c.fail_node(node);
            c.recover_node(node);
        }
        assert_eq!(c.blacklisted_nodes().count(), 0, "correlated failures are exempt");
    }

    #[test]
    fn zero_threshold_disables_the_blacklist() {
        let mut c = Cluster::new(
            ClusterConfig { node_blacklist_threshold: 0, ..ClusterConfig::default() },
            &streams(),
        );
        for k in 0..5 {
            let (id, _) =
                c.request_pod(spec(1.0, 1.0, Priority::Low), SimTime::from_secs(k)).unwrap();
            c.fail_pod(id);
        }
        assert_eq!(c.blacklisted_nodes().count(), 0);
    }

    /// ISSUE-4: denial reasons distinguish contention, exhaustion, and
    /// cordoned capacity.
    #[test]
    fn denial_reasons_classify_the_shortage() {
        let mut c = small_cluster();
        // Fragmentation: 2 nodes × 8 cores with 5 cores taken on each —
        // 6 cores free in total but no node fits a 4-core pod... actually
        // 3 free per node fits nothing above 3 cores.
        for _ in 0..2 {
            c.request_pod(spec(5.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        }
        assert_eq!(c.denial_reason(&Resources::new(4.0, 8.0)), DenialReason::Contention);
        // Exhaustion: ask for more than the whole free pool.
        assert_eq!(c.denial_reason(&Resources::new(7.0, 8.0)), DenialReason::CapacityExhausted);
        // Cordoned: fail a node; its capacity would fit the ask.
        let mut c2 = small_cluster();
        c2.fail_node(NodeId(0));
        // Fill the surviving node.
        c2.request_pod(spec(8.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        assert_eq!(c2.denial_reason(&Resources::new(4.0, 8.0)), DenialReason::NodesCordoned);
    }

    /// Regression for the `schedule_pending` allocation churn fix: the
    /// queue is drained through a reused scratch buffer, and the pass must
    /// still grant high-priority pods first and keep FIFO order within a
    /// priority class — byte-identical behavior to the old clone-the-queue
    /// implementation.
    #[test]
    fn schedule_pending_scratch_reuse_preserves_order() {
        let mut c = small_cluster();
        // Fill both nodes with High pods so parked pods cannot preempt.
        for _ in 0..4 {
            c.request_pod(spec(4.0, 8.0, Priority::High), SimTime::ZERO).unwrap();
        }
        // Park four full-node pods: low, high, low, high (submission order).
        let mut parked = Vec::new();
        for (i, prio) in
            [Priority::Low, Priority::High, Priority::Low, Priority::High].iter().enumerate()
        {
            let (id, _) =
                c.request_pod(spec(8.0, 8.0, *prio), SimTime::from_secs(i as u64)).unwrap();
            parked.push(id);
        }
        assert_eq!(c.pending_count(), 4);
        // An empty pass leaves the queue intact (and seeds the scratch).
        assert!(c.schedule_pending().is_empty());
        assert_eq!(c.pending_count(), 4);
        // Free both nodes; one pass then grants the two highs (FIFO within
        // the class) and leaves the lows parked — exactly what the old
        // clone-the-queue implementation did.
        for id in 0..4 {
            c.terminate_pod(PodId(id), PodPhase::Succeeded);
        }
        let events = c.schedule_pending();
        let placed: Vec<PodId> = events
            .iter()
            .filter_map(|e| match e {
                ClusterEvent::PodPlaced(p, _) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(placed, vec![parked[1], parked[3]], "highs first, FIFO within class");
        assert_eq!(c.pending_count(), 2);
        assert!(c.scratch.capacity() >= 4, "drain buffer retained across passes");
        assert!(c.scratch.is_empty(), "scratch holds no pods between passes");
    }

    #[test]
    fn pending_high_priority_scheduled_before_low() {
        let mut c = small_cluster();
        for _ in 0..4 {
            c.request_pod(spec(4.0, 8.0, Priority::High), SimTime::ZERO).unwrap();
        }
        // Queue a low pod then a high pod; both pending (no preemptible pods).
        let (low, _) = c.request_pod(spec(4.0, 8.0, Priority::Low), SimTime::ZERO).unwrap();
        let (high, _) = c.request_pod(spec(4.0, 8.0, Priority::High), SimTime::ZERO).unwrap();
        // Free one slot.
        c.terminate_pod(PodId(0), PodPhase::Succeeded);
        c.schedule_pending();
        assert_eq!(c.pod(high).unwrap().phase, PodPhase::Starting, "high jumps the queue");
        assert_eq!(c.pod(low).unwrap().phase, PodPhase::Pending);
    }
}
