//! Fleet workload generator: the statistical stand-in for AntGroup's
//! production traces.
//!
//! Figs. 3, 14, 15 and Tables 2, 4 report *fleet-level* aggregates. This
//! module plants the pathologies the paper documents so the experiments can
//! measure whether DLRover-RM removes them:
//!
//! * **User misconfiguration** (§2.2): each training job has an *ideal*
//!   per-role allocation; the user's request is that ideal scaled by a
//!   log-normal over-provisioning factor (most users ask for ~1.5–3× what
//!   they need — hence the <50 % utilisation of Fig. 3), while a tail of
//!   jobs *under*-provisions (the slow-training and OOM populations of
//!   Table 4).
//! * **Workload consolidation** (Table 2): training shares the cluster with
//!   stream-processing and high-priority inference/search services.
//! * **Heavy-tailed job sizes**: sample counts are Pareto-distributed, so a
//!   few jobs dominate cluster time, as in any production trace.

use dlrover_sim::{
    Exponential, LogNormal, Pareto, RngStreams, Sample, SimDuration, SimTime, Uniform,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::pod::Priority;
use crate::resources::Resources;

/// Job families co-located in the cluster (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobClass {
    /// DLRM training (the subject of the paper; >70 % of jobs).
    Training,
    /// Stream processing (Low priority, long-lived).
    StreamProcessing,
    /// Online inference services (High priority).
    InferenceService,
    /// Search services (High priority, memory-heavy).
    SearchService,
    /// Everything else.
    Other,
}

impl JobClass {
    /// Scheduling priority per class.
    pub fn priority(&self) -> Priority {
        match self {
            JobClass::InferenceService | JobClass::SearchService => Priority::High,
            _ => Priority::Low,
        }
    }
}

/// One generated job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetJob {
    /// Unique id within the workload.
    pub id: u64,
    /// Job family.
    pub class: JobClass,
    /// Submitting user (training only; used by warm-start similarity).
    pub owner: String,
    /// Model family label (training only): "wide_deep" | "xdeepfm" | "dcn".
    pub model: String,
    /// Submission time.
    pub submit: SimTime,
    /// Worker count (training) or replica count (services).
    pub workers: u32,
    /// PS count (training only; 0 otherwise).
    pub ps: u32,
    /// What one worker actually needs to hit full throughput.
    pub ideal_worker: Resources,
    /// What one PS actually needs.
    pub ideal_ps: Resources,
    /// What the user asked for per worker.
    pub requested_worker: Resources,
    /// What the user asked for per PS.
    pub requested_ps: Resources,
    /// Total training samples (training only).
    pub total_samples: u64,
    /// Lifetime for service-style jobs.
    pub service_duration: Option<SimDuration>,
}

impl FleetJob {
    /// Total requested resources across all pods.
    pub fn total_requested(&self) -> Resources {
        self.requested_worker.scale(f64::from(self.workers))
            + self.requested_ps.scale(f64::from(self.ps))
    }

    /// Expected CPU utilisation under the user's (static) request:
    /// ideal demand over requested, capped at 1.
    pub fn expected_cpu_utilisation(&self) -> f64 {
        let need = self.ideal_worker.cpu_millis * u64::from(self.workers)
            + self.ideal_ps.cpu_millis * u64::from(self.ps);
        let req = self.total_requested().cpu_millis;
        if req == 0 {
            return 0.0;
        }
        (need as f64 / req as f64).min(1.0)
    }

    /// Expected memory utilisation under the user's request.
    pub fn expected_mem_utilisation(&self) -> f64 {
        let need = self.ideal_worker.mem_bytes * u64::from(self.workers)
            + self.ideal_ps.mem_bytes * u64::from(self.ps);
        let req = self.total_requested().mem_bytes;
        if req == 0 {
            return 0.0;
        }
        (need as f64 / req as f64).min(1.0)
    }

    /// True when the user under-provisioned CPU (slow-training pathology).
    pub fn cpu_starved(&self) -> bool {
        self.requested_worker.cpu_millis < self.ideal_worker.cpu_millis
            || self.requested_ps.cpu_millis < self.ideal_ps.cpu_millis
    }

    /// True when the user under-provisioned PS memory (OOM pathology).
    pub fn oom_prone(&self) -> bool {
        self.requested_ps.mem_bytes < self.ideal_ps.mem_bytes
    }
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of training jobs to generate.
    pub training_jobs: usize,
    /// Number of co-located service/stream jobs.
    pub background_jobs: usize,
    /// Mean inter-arrival time between submissions.
    pub mean_interarrival: SimDuration,
    /// Median over-provisioning ratio (log-normal median; >1 wastes).
    pub overprovision_median: f64,
    /// Log-normal sigma of the over-provisioning ratio.
    pub overprovision_sigma: f64,
    /// Fraction of training jobs that under-provision PS CPU
    /// (paper: ~6 % of jobs have insufficient PS CPU).
    pub cpu_starved_fraction: f64,
    /// Fraction of training jobs that under-provision PS memory
    /// (paper: 5–8 % of jobs hit OOM).
    pub oom_fraction: f64,
    /// Number of distinct users submitting training jobs.
    pub users: usize,
    /// Largest pod a user may request (the cluster's node size caps it;
    /// Kubernetes rejects anything bigger).
    pub max_pod: Resources,
    /// Probability that a running pod fails within a day (organic cloud
    /// churn; §2.2 / Table 4). Flows into the [`crate::ClusterConfig`] built by
    /// [`FleetConfig::cluster_config`], so fleet drivers and chaos plans
    /// share one hazard instead of hardcoding zero.
    pub pod_daily_failure_rate: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            training_jobs: 500,
            background_jobs: 120,
            mean_interarrival: SimDuration::from_secs(90),
            overprovision_median: 4.0,
            overprovision_sigma: 0.45,
            cpu_starved_fraction: 0.06,
            oom_fraction: 0.065,
            users: 24,
            max_pod: Resources::new(32.0, 192.0),
            pod_daily_failure_rate: 0.015,
        }
    }
}

impl FleetConfig {
    /// Builds the cluster configuration this fleet should run on: `nodes`
    /// nodes sized to the largest allowed pod, with the fleet's organic
    /// pod-failure hazard threaded through (rather than the zero rate the
    /// driver paths used to hardcode).
    pub fn cluster_config(&self, nodes: usize) -> crate::cluster::ClusterConfig {
        crate::cluster::ClusterConfig {
            nodes,
            node_capacity: self.max_pod,
            pod_daily_failure_rate: self.pod_daily_failure_rate,
            ..crate::cluster::ClusterConfig::default()
        }
    }
}

/// A generated fleet workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetWorkload {
    /// All jobs, sorted by submission time.
    pub jobs: Vec<FleetJob>,
}

impl FleetWorkload {
    /// Generates a workload deterministically from `streams`.
    pub fn generate(config: &FleetConfig, streams: &RngStreams) -> Self {
        let mut rng = streams.stream("fleet");
        let interarrival = Exponential::from_mean(config.mean_interarrival.as_secs_f64());
        let overprov = LogNormal::new(config.overprovision_median.ln(), config.overprovision_sigma);
        let job_size = Pareto::new(2.0, 1.6); // workers; heavy-tailed
        let sample_count = Pareto::new(2.0e7, 1.3); // total samples
        let cpu_need = Uniform::new(2.0, 10.0);
        let models = ["wide_deep", "xdeepfm", "dcn"];

        let mut jobs = Vec::with_capacity(config.training_jobs + config.background_jobs);
        let mut t = SimTime::ZERO;
        let mut id = 0u64;

        for _ in 0..config.training_jobs {
            t += SimDuration::from_secs_f64(interarrival.sample(&mut rng));
            let workers = (job_size.sample(&mut rng).round() as u32).clamp(2, 64);
            let ps = (f64::from(workers) / 3.0).ceil() as u32;
            let worker_cores = cpu_need.sample(&mut rng);
            let ps_cores = worker_cores * 0.8;
            let ideal_worker = Resources::new(worker_cores, worker_cores * 3.0);
            let ideal_ps = Resources::new(ps_cores, ps_cores * 6.0);

            // User misconfiguration.
            let r: f64 = rng.gen();
            let (req_worker, req_ps) = if r < config.cpu_starved_fraction {
                // PS CPU under-provisioned (hot/slow PS pathology).
                (
                    ideal_worker.scale(overprov.sample_clamped(&mut rng, 1.0, 6.0)),
                    Resources::from_raw(
                        (ideal_ps.cpu_millis as f64 * rng.gen_range(0.2..0.7)) as u64,
                        (ideal_ps.mem_bytes as f64 * 1.2) as u64,
                    ),
                )
            } else if r < config.cpu_starved_fraction + config.oom_fraction {
                // PS memory under-provisioned (OOM pathology).
                (
                    ideal_worker.scale(overprov.sample_clamped(&mut rng, 1.0, 6.0)),
                    Resources::from_raw(
                        (ideal_ps.cpu_millis as f64 * 1.2) as u64,
                        (ideal_ps.mem_bytes as f64 * rng.gen_range(0.3..0.8)) as u64,
                    ),
                )
            } else {
                // Ordinary over-provisioner.
                (
                    ideal_worker.scale(overprov.sample_clamped(&mut rng, 1.0, 8.0)),
                    ideal_ps.scale(overprov.sample_clamped(&mut rng, 1.0, 8.0)),
                )
            };

            jobs.push(FleetJob {
                id,
                class: JobClass::Training,
                owner: format!("user-{}", rng.gen_range(0..config.users.max(1))),
                model: models[rng.gen_range(0..models.len())].to_string(),
                submit: t,
                workers,
                ps,
                ideal_worker,
                ideal_ps,
                requested_worker: req_worker.component_min(&config.max_pod),
                requested_ps: req_ps.component_min(&config.max_pod),
                total_samples: sample_count.sample(&mut rng) as u64,
                service_duration: None,
            });
            id += 1;
        }

        // Background services (Table 2 mix by share of non-training jobs).
        let service_life = Exponential::from_mean(6.0 * 3_600.0);
        for _ in 0..config.background_jobs {
            t += SimDuration::from_secs_f64(interarrival.sample(&mut rng) * 0.5);
            let class = match rng.gen_range(0..100) {
                0..=55 => JobClass::StreamProcessing,
                56..=75 => JobClass::InferenceService,
                76..=88 => JobClass::SearchService,
                _ => JobClass::Other,
            };
            let cores = match class {
                JobClass::SearchService => rng.gen_range(8.0..24.0),
                JobClass::InferenceService => rng.gen_range(4.0..16.0),
                _ => rng.gen_range(2.0..10.0),
            };
            let mem = match class {
                JobClass::SearchService => cores * 6.0,
                _ => cores * 2.0,
            };
            let res = Resources::new(cores, mem);
            // Services over-provision too (they are sized for peak load).
            let service_overprov = overprov.sample_clamped(&mut rng, 2.0, 10.0);
            jobs.push(FleetJob {
                id,
                class,
                owner: String::new(),
                model: String::new(),
                submit: t,
                workers: rng.gen_range(1..4),
                ps: 0,
                ideal_worker: res,
                ideal_ps: Resources::ZERO,
                requested_worker: res.scale(service_overprov),
                requested_ps: Resources::ZERO,
                total_samples: 0,
                service_duration: Some(SimDuration::from_secs_f64(
                    service_life.sample(&mut rng).max(600.0),
                )),
            });
            id += 1;
        }

        jobs.sort_by_key(|j| (j.submit, j.id));
        FleetWorkload { jobs }
    }

    /// Training jobs only.
    pub fn training_jobs(&self) -> impl Iterator<Item = &FleetJob> {
        self.jobs.iter().filter(|j| j.class == JobClass::Training)
    }

    /// Table 2-style per-class summary: (class, count, total vCPU,
    /// mean expected CPU util, total memory GB).
    pub fn summary_by_class(&self) -> Vec<(JobClass, usize, f64, f64, f64)> {
        let classes = [
            JobClass::Training,
            JobClass::StreamProcessing,
            JobClass::InferenceService,
            JobClass::SearchService,
            JobClass::Other,
        ];
        classes
            .iter()
            .map(|&class| {
                let members: Vec<&FleetJob> =
                    self.jobs.iter().filter(|j| j.class == class).collect();
                let count = members.len();
                let vcpu: f64 = members.iter().map(|j| j.total_requested().cores()).sum();
                let mem: f64 = members.iter().map(|j| j.total_requested().mem_gb()).sum();
                let util = if count == 0 {
                    0.0
                } else {
                    members.iter().map(|j| j.expected_cpu_utilisation()).sum::<f64>() / count as f64
                };
                (class, count, vcpu, util, mem)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> FleetWorkload {
        FleetWorkload::generate(&FleetConfig::default(), &RngStreams::new(77))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = workload();
        let b = FleetWorkload::generate(&FleetConfig::default(), &RngStreams::new(77));
        assert_eq!(a, b);
        let c = FleetWorkload::generate(&FleetConfig::default(), &RngStreams::new(78));
        assert_ne!(a, c);
    }

    #[test]
    fn counts_match_config() {
        let w = workload();
        let cfg = FleetConfig::default();
        assert_eq!(w.jobs.len(), cfg.training_jobs + cfg.background_jobs);
        assert_eq!(w.training_jobs().count(), cfg.training_jobs);
    }

    #[test]
    fn submissions_are_time_ordered() {
        let w = workload();
        assert!(w.jobs.windows(2).all(|p| p[0].submit <= p[1].submit));
    }

    #[test]
    fn majority_of_training_jobs_underutilise() {
        // The Fig. 3 pathology: most jobs run below 50 % expected CPU util.
        let w = workload();
        let utils: Vec<f64> = w.training_jobs().map(|j| j.expected_cpu_utilisation()).collect();
        let below_half = utils.iter().filter(|&&u| u < 0.5).count();
        let frac = below_half as f64 / utils.len() as f64;
        assert!(frac > 0.7, "only {frac} of jobs below 50% util — trace too healthy");
    }

    #[test]
    fn pathological_fractions_roughly_match_config() {
        let w = workload();
        let n = w.training_jobs().count() as f64;
        let starved = w.training_jobs().filter(|j| j.cpu_starved()).count() as f64 / n;
        let oom = w.training_jobs().filter(|j| j.oom_prone()).count() as f64 / n;
        assert!((starved - 0.06).abs() < 0.04, "cpu-starved fraction {starved}");
        assert!((oom - 0.065).abs() < 0.04, "oom fraction {oom}");
    }

    #[test]
    fn job_sizes_are_heavy_tailed() {
        let w = workload();
        let mut workers: Vec<u32> = w.training_jobs().map(|j| j.workers).collect();
        workers.sort_unstable();
        let median = workers[workers.len() / 2];
        let max = *workers.last().unwrap();
        assert!(max >= median * 4, "no heavy tail: median {median}, max {max}");
    }

    #[test]
    fn background_jobs_have_durations_and_priorities() {
        let w = workload();
        for j in w.jobs.iter().filter(|j| j.class != JobClass::Training) {
            assert!(j.service_duration.is_some());
            assert_eq!(j.ps, 0);
        }
        assert!(w.jobs.iter().any(|j| j.class.priority() == Priority::High));
    }

    #[test]
    fn summary_covers_all_jobs() {
        let w = workload();
        let summary = w.summary_by_class();
        let total: usize = summary.iter().map(|(_, c, _, _, _)| c).sum();
        assert_eq!(total, w.jobs.len());
        // Training dominates the job count, echoing Table 2.
        let training = summary.iter().find(|(c, ..)| *c == JobClass::Training).unwrap();
        assert!(training.1 > w.jobs.len() / 2);
    }

    #[test]
    fn training_requests_exceed_ideals_for_overprovisioners() {
        let w = workload();
        for j in w.training_jobs().filter(|j| !j.cpu_starved() && !j.oom_prone()) {
            assert!(j.requested_worker.cpu_millis >= j.ideal_worker.cpu_millis);
        }
    }

    #[test]
    fn owners_are_bounded_by_user_count() {
        let w = workload();
        let users: std::collections::HashSet<&str> =
            w.training_jobs().map(|j| j.owner.as_str()).collect();
        assert!(users.len() <= FleetConfig::default().users);
        assert!(users.len() > 1);
    }
}
