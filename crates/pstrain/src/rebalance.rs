//! PS parameter rebalancing — the DeepRec-style fix for hot PSes (§4.3).
//!
//! "The size of tensor-based parameters assigned to PSes can differ
//! substantially, resulting in unbalanced workloads … we adopt DeepRec to
//! ensure that the embedding parameters are evenly distributed across the
//! new set of PS nodes." A DLRM's parameters are *blocks* (one per
//! embedding table plus the dense slabs) of wildly different sizes; naïve
//! round-robin assignment can land several huge tables on one PS.
//!
//! Two pieces:
//!
//! * [`balance_blocks`] — LPT (longest-processing-time) greedy assignment of
//!   blocks to `p` servers. LPT is the classic 4/3-approximation for
//!   makespan, which here bounds the hottest PS's share.
//! * [`RebalancePlan`] — diff between an old and a new assignment: which
//!   blocks move, how many bytes travel (the seamless-migration payload),
//!   and the resulting [`PsPartition`] shares for the cost model.

use serde::{Deserialize, Serialize};

use crate::cost::{PodState, PsPartition};

/// A parameter block: one embedding table or dense slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamBlock {
    /// Stable identifier (table index).
    pub id: u32,
    /// Size in bytes.
    pub bytes: u64,
}

/// Assignment of blocks to PSes: `assignment[ps]` lists block indices.
pub type Assignment = Vec<Vec<u32>>;

/// LPT greedy: sort blocks by size descending, always give the next block
/// to the least-loaded server. Returns the assignment.
///
/// # Panics
/// Panics if `servers == 0`.
pub fn balance_blocks(blocks: &[ParamBlock], servers: usize) -> Assignment {
    assert!(servers > 0, "need at least one PS");
    let mut order: Vec<&ParamBlock> = blocks.iter().collect();
    order.sort_by_key(|b| (std::cmp::Reverse(b.bytes), b.id));
    let mut loads = vec![0u64; servers];
    let mut assignment: Assignment = vec![Vec::new(); servers];
    for block in order {
        let target = loads
            .iter()
            .enumerate()
            .min_by_key(|(i, &l)| (l, *i))
            .map(|(i, _)| i)
            .expect("servers > 0");
        loads[target] += block.bytes;
        assignment[target].push(block.id);
    }
    assignment
}

/// Per-server byte loads of an assignment.
pub fn loads(blocks: &[ParamBlock], assignment: &Assignment) -> Vec<u64> {
    let size_of = |id: u32| blocks.iter().find(|b| b.id == id).map(|b| b.bytes).unwrap_or(0);
    assignment.iter().map(|ids| ids.iter().map(|&id| size_of(id)).sum()).collect()
}

/// Imbalance factor: hottest load over the perfectly even load
/// (1.0 = perfectly balanced).
pub fn imbalance(blocks: &[ParamBlock], assignment: &Assignment) -> f64 {
    let l = loads(blocks, assignment);
    let total: u64 = l.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let even = total as f64 / l.len() as f64;
    l.iter().copied().max().unwrap_or(0) as f64 / even
}

/// A rebalancing plan: the new assignment plus its migration cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebalancePlan {
    /// New assignment of blocks to servers.
    pub assignment: Assignment,
    /// Blocks that change servers: `(block_id, from, to)`.
    pub moves: Vec<(u32, usize, usize)>,
    /// Total bytes that must travel between PSes.
    pub moved_bytes: u64,
    /// Imbalance factor before.
    pub imbalance_before: f64,
    /// Imbalance factor after.
    pub imbalance_after: f64,
}

/// Builds a rebalancing plan from `old` onto `servers` PSes (the new count
/// may differ — PS scale-out/in re-shards the tables).
///
/// Block→server matching for move accounting keeps a block in place when
/// its old server still exists and LPT would tolerate it; otherwise the
/// block travels. (We run plain LPT for the target and then count moves —
/// minimising moves subject to balance is NP-hard; LPT plus stable
/// tie-breaking keeps movement modest in practice.)
pub fn plan_rebalance(blocks: &[ParamBlock], old: &Assignment, servers: usize) -> RebalancePlan {
    let new = balance_blocks(blocks, servers);
    let locate = |assignment: &Assignment, id: u32| -> Option<usize> {
        assignment.iter().position(|ids| ids.contains(&id))
    };
    let mut moves = Vec::new();
    let mut moved_bytes = 0;
    for block in blocks {
        let from = locate(old, block.id);
        let to = locate(&new, block.id).expect("every block assigned");
        match from {
            Some(f) if f == to => {}
            Some(f) => {
                moves.push((block.id, f, to));
                moved_bytes += block.bytes;
            }
            None => {
                // Newly created block (e.g. restored from checkpoint):
                // counts as a move from nowhere; bytes still travel.
                moves.push((block.id, usize::MAX, to));
                moved_bytes += block.bytes;
            }
        }
    }
    RebalancePlan {
        imbalance_before: if old.is_empty() { f64::INFINITY } else { imbalance(blocks, old) },
        imbalance_after: imbalance(blocks, &new),
        assignment: new,
        moves,
        moved_bytes,
    }
}

/// Converts an assignment into [`PsPartition`]s for the cost model, using
/// byte shares as workload shares and the given per-PS pods.
///
/// # Panics
/// Panics if `pods.len() != assignment.len()`.
pub fn partitions_from_assignment(
    blocks: &[ParamBlock],
    assignment: &Assignment,
    pods: &[PodState],
) -> Vec<PsPartition> {
    assert_eq!(pods.len(), assignment.len(), "one pod per server");
    let l = loads(blocks, assignment);
    let total: u64 = l.iter().sum();
    l.iter()
        .zip(pods)
        .map(|(&bytes, &pod)| PsPartition {
            share: if total == 0 { 1.0 / l.len() as f64 } else { bytes as f64 / total as f64 },
            pod,
        })
        .collect()
}

/// Synthesises a DLRM-shaped block list: `tables` embedding tables with
/// Zipf-skewed sizes plus one dense slab. This mirrors real CTR models,
/// where a handful of high-cardinality tables dominate the bytes.
pub fn dlrm_blocks(tables: u32, total_embedding_bytes: u64, dense_bytes: u64) -> Vec<ParamBlock> {
    let mut blocks = Vec::with_capacity(tables as usize + 1);
    // Zipf-ish sizes: table k gets weight 1/(k+1).
    let weight_sum: f64 = (0..tables).map(|k| 1.0 / f64::from(k + 1)).sum();
    for k in 0..tables {
        let w = (1.0 / f64::from(k + 1)) / weight_sum;
        blocks.push(ParamBlock { id: k, bytes: (total_embedding_bytes as f64 * w) as u64 });
    }
    blocks.push(ParamBlock { id: tables, bytes: dense_bytes });
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(sizes: &[u64]) -> Vec<ParamBlock> {
        sizes.iter().enumerate().map(|(i, &bytes)| ParamBlock { id: i as u32, bytes }).collect()
    }

    #[test]
    fn lpt_balances_uniform_blocks_perfectly() {
        let b = blocks(&[10; 12]);
        let a = balance_blocks(&b, 4);
        let l = loads(&b, &a);
        assert!(l.iter().all(|&x| x == 30), "{l:?}");
        assert!((imbalance(&b, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_respects_makespan_bound() {
        // Any list scheduling satisfies
        // makespan <= total/m + (1 - 1/m) * max_block (Graham 1966);
        // LPT is a list schedule, so this is a hard guarantee.
        let b = blocks(&[70, 60, 50, 40, 30, 20, 10, 10, 5, 5]);
        for p in 1..=5usize {
            let a = balance_blocks(&b, p);
            let l = loads(&b, &a);
            let total: u64 = l.iter().sum();
            let max = *l.iter().max().unwrap();
            let bound = total as f64 / p as f64 + (1.0 - 1.0 / p as f64) * 70.0;
            assert!(max as f64 <= bound + 1e-9, "p={p}: makespan {max} vs Graham bound {bound}");
        }
    }

    #[test]
    fn every_block_assigned_exactly_once() {
        let b = blocks(&[9, 8, 7, 3, 2, 1, 1]);
        let a = balance_blocks(&b, 3);
        let mut seen: Vec<u32> = a.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_blocks_balance_much_better_than_round_robin() {
        let b = dlrm_blocks(26, 100_000_000, 5_000_000);
        // Round robin by id (what naive TF placement does).
        let p = 4;
        let mut rr: Assignment = vec![Vec::new(); p];
        for block in &b {
            rr[(block.id as usize) % p].push(block.id);
        }
        let lpt = balance_blocks(&b, p);
        assert!(
            imbalance(&b, &lpt) < imbalance(&b, &rr),
            "LPT {} !< RR {}",
            imbalance(&b, &lpt),
            imbalance(&b, &rr)
        );
        assert!(imbalance(&b, &lpt) < 1.1, "LPT imbalance {}", imbalance(&b, &lpt));
    }

    #[test]
    fn rebalance_plan_reports_improvement_and_moves() {
        let b = dlrm_blocks(12, 10_000_000, 500_000);
        // Pathological old assignment: everything on PS 0 of 4.
        let mut old: Assignment = vec![Vec::new(); 4];
        old[0] = b.iter().map(|x| x.id).collect();
        let plan = plan_rebalance(&b, &old, 4);
        assert!(plan.imbalance_before > 3.0);
        // No assignment can beat the largest block's share; LPT must be
        // within 4/3 of that lower bound.
        let total: u64 = b.iter().map(|x| x.bytes).sum();
        let even = total as f64 / 4.0;
        let lower = (b.iter().map(|x| x.bytes).max().unwrap() as f64 / even).max(1.0);
        assert!(
            plan.imbalance_after <= lower * 4.0 / 3.0 + 1e-9,
            "imbalance {} vs bound {}",
            plan.imbalance_after,
            lower * 4.0 / 3.0
        );
        assert!(plan.imbalance_after < plan.imbalance_before);
        assert!(!plan.moves.is_empty());
        // Moved bytes is the size of everything that left PS 0.
        let kept: u64 =
            plan.assignment[0].iter().map(|&id| b.iter().find(|x| x.id == id).unwrap().bytes).sum();
        let total: u64 = b.iter().map(|x| x.bytes).sum();
        assert_eq!(plan.moved_bytes, total - kept);
    }

    #[test]
    fn rebalance_to_more_servers() {
        let b = dlrm_blocks(20, 40_000_000, 1_000_000);
        let old = balance_blocks(&b, 2);
        let plan = plan_rebalance(&b, &old, 5);
        assert_eq!(plan.assignment.len(), 5);
        let total: u64 = b.iter().map(|x| x.bytes).sum();
        let even = total as f64 / 5.0;
        let lower = (b.iter().map(|x| x.bytes).max().unwrap() as f64 / even).max(1.0);
        assert!(
            plan.imbalance_after <= lower * 4.0 / 3.0 + 1e-9,
            "imbalance {} vs bound {}",
            plan.imbalance_after,
            lower * 4.0 / 3.0
        );
        // Scale-out must move something.
        assert!(plan.moved_bytes > 0);
    }

    #[test]
    fn stable_assignment_moves_nothing() {
        let b = blocks(&[5, 5, 5, 5]);
        let old = balance_blocks(&b, 2);
        let plan = plan_rebalance(&b, &old, 2);
        assert!(plan.moves.is_empty(), "{:?}", plan.moves);
        assert_eq!(plan.moved_bytes, 0);
    }

    #[test]
    fn partitions_reflect_byte_shares() {
        let b = blocks(&[30, 10]);
        let a: Assignment = vec![vec![0], vec![1]];
        let pods = vec![PodState::new(8.0); 2];
        let parts = partitions_from_assignment(&b, &a, &pods);
        assert!((parts[0].share - 0.75).abs() < 1e-12);
        assert!((parts[1].share - 0.25).abs() < 1e-12);
        let total: f64 = parts.iter().map(|p| p.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_blocks_yield_even_partitions() {
        let pods = vec![PodState::new(4.0); 3];
        let parts = partitions_from_assignment(&[], &vec![vec![], vec![], vec![]], &pods);
        for p in parts {
            assert!((p.share - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dlrm_blocks_are_skewed() {
        let b = dlrm_blocks(26, 100_000_000, 5_000_000);
        assert_eq!(b.len(), 27);
        assert!(b[0].bytes > 5 * b[10].bytes, "head table should dominate");
        let total: u64 = b.iter().take(26).map(|x| x.bytes).sum();
        assert!((total as i64 - 100_000_000i64).abs() < 100, "sizes sum to the budget");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every block is assigned exactly once, for arbitrary sizes and
        /// server counts.
        #[test]
        fn assignment_is_a_partition(
            sizes in proptest::collection::vec(0u64..1_000_000, 1..40),
            servers in 1usize..8,
        ) {
            let blocks: Vec<ParamBlock> = sizes
                .iter()
                .enumerate()
                .map(|(i, &bytes)| ParamBlock { id: i as u32, bytes })
                .collect();
            let a = balance_blocks(&blocks, servers);
            prop_assert_eq!(a.len(), servers);
            let mut seen: Vec<u32> = a.iter().flatten().copied().collect();
            seen.sort_unstable();
            let expect: Vec<u32> = (0..blocks.len() as u32).collect();
            prop_assert_eq!(seen, expect);
        }

        /// Graham's list-scheduling guarantee holds:
        /// makespan <= total/m + (1 - 1/m) * max_block.
        #[test]
        fn lpt_bound_holds(
            sizes in proptest::collection::vec(1u64..1_000_000, 1..40),
            servers in 1usize..8,
        ) {
            let blocks: Vec<ParamBlock> = sizes
                .iter()
                .enumerate()
                .map(|(i, &bytes)| ParamBlock { id: i as u32, bytes })
                .collect();
            let a = balance_blocks(&blocks, servers);
            let l = loads(&blocks, &a);
            let total: u64 = l.iter().sum();
            let max_block = *sizes.iter().max().unwrap();
            let bound = total as f64 / servers as f64
                + (1.0 - 1.0 / servers as f64) * max_block as f64;
            prop_assert!(
                *l.iter().max().unwrap() as f64 <= bound + 1.0,
                "makespan {} vs Graham bound {bound}",
                l.iter().max().unwrap()
            );
        }
    }
}
