//! Seamless migration timelines (§5.2, Figs. 12–13).
//!
//! Scaling or replacing PSes conventionally means *stop-and-restart*:
//! ① checkpoint to RDS, ② deploy/init new pods, ③ load and resume — with
//! training paused throughout. DLRover-RM's observation is that ② can
//! overlap ongoing training, and ①/③ can ride the flash-checkpoint tier, so
//! only a sub-second parameter handoff blocks the job.
//!
//! This module turns a strategy choice into an explicit [`MigrationTimeline`]
//! — a list of segments with durations and whether each one pauses, degrades,
//! or overlaps training. The instability-handling experiments integrate these
//! timelines into job completion times.

use dlrover_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::ckpt::{CheckpointStore, FlashStore, RdsStore};

/// How to react to a hot PS / needed migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationStrategy {
    /// Keep training in the unhealthy state (Fig. 12/13 baseline 1).
    NoIntervention,
    /// Classic stop-and-restart via RDS (baseline 2).
    StopAndRestart,
    /// DLRover-RM: overlap pod startup with training, hand off parameters
    /// through the flash-checkpoint tier.
    Seamless,
}

/// What a timeline segment does to the job while it lasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimelineSegment {
    /// Training continues at full speed (overlapped work).
    Overlapped,
    /// Training continues at the degraded (pre-recovery) rate.
    Degraded,
    /// Training is fully paused: checkpoint save.
    PauseSave,
    /// Training is fully paused: new-pod initialisation on the critical path.
    PauseInit,
    /// Training is fully paused: checkpoint load / parameter handoff.
    PauseLoad,
    /// Training is fully paused: data redistribution.
    PauseData,
}

impl TimelineSegment {
    /// True if the segment stops training entirely.
    pub fn pauses(&self) -> bool {
        matches!(
            self,
            TimelineSegment::PauseSave
                | TimelineSegment::PauseInit
                | TimelineSegment::PauseLoad
                | TimelineSegment::PauseData
        )
    }
}

/// A migration plan: ordered segments with durations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationTimeline {
    /// Segments in execution order.
    pub segments: Vec<(TimelineSegment, SimDuration)>,
}

impl MigrationTimeline {
    /// Total wall-clock the recovery occupies (paused + degraded +
    /// overlapped).
    pub fn total(&self) -> SimDuration {
        self.segments.iter().fold(SimDuration::ZERO, |acc, (_, d)| acc + *d)
    }

    /// Time during which training makes no progress at all.
    pub fn pause(&self) -> SimDuration {
        self.segments
            .iter()
            .filter(|(s, _)| s.pauses())
            .fold(SimDuration::ZERO, |acc, (_, d)| acc + *d)
    }

    /// Time training continues at the degraded rate while recovery runs.
    pub fn degraded(&self) -> SimDuration {
        self.segments
            .iter()
            .filter(|(s, _)| *s == TimelineSegment::Degraded)
            .fold(SimDuration::ZERO, |acc, (_, d)| acc + *d)
    }
}

/// Plans a PS migration (hot PS, PS re-shape, PS failure recovery).
///
/// * `ckpt_bytes` — model checkpoint size.
/// * `pod_startup` — time to deploy + initialise the replacement PSes.
/// * `flash` / `rds` — the two checkpoint tiers.
pub fn plan_ps_migration(
    strategy: MigrationStrategy,
    ckpt_bytes: u64,
    pod_startup: SimDuration,
    flash: &FlashStore,
    rds: &RdsStore,
) -> MigrationTimeline {
    match strategy {
        MigrationStrategy::NoIntervention => MigrationTimeline { segments: Vec::new() },
        MigrationStrategy::StopAndRestart => MigrationTimeline {
            segments: vec![
                (TimelineSegment::PauseSave, rds.save_duration(ckpt_bytes)),
                (TimelineSegment::PauseInit, pod_startup),
                (TimelineSegment::PauseLoad, rds.load_duration(ckpt_bytes)),
            ],
        },
        MigrationStrategy::Seamless => MigrationTimeline {
            segments: vec![
                // New pods come up while the old job keeps training —
                // degraded, because the hot PS is still hot.
                (TimelineSegment::Degraded, pod_startup),
                // Then the short critical path through the flash tier.
                (TimelineSegment::PauseSave, flash.save_duration(ckpt_bytes)),
                (TimelineSegment::PauseLoad, flash.load_duration(ckpt_bytes)),
            ],
        },
    }
}

/// Convenience: just the *pause* component of a PS migration plan — what a
/// job master must charge against training time.
pub fn plan_ps_migration_pause(
    strategy: MigrationStrategy,
    ckpt_bytes: u64,
    pod_startup: SimDuration,
    flash: &FlashStore,
    rds: &RdsStore,
) -> SimDuration {
    plan_ps_migration(strategy, ckpt_bytes, pod_startup, flash, rds).pause()
}

/// Plans a worker-straggler recovery (Fig. 13).
///
/// * `detection` — heartbeat/progress-lag detection delay.
/// * `pod_startup` — replacement worker startup (traditional only).
/// * `rds`/`ckpt_bytes` — stop-and-restart checkpoint round trip.
pub fn plan_worker_recovery(
    strategy: MigrationStrategy,
    ckpt_bytes: u64,
    detection: SimDuration,
    pod_startup: SimDuration,
    rds: &RdsStore,
) -> MigrationTimeline {
    match strategy {
        MigrationStrategy::NoIntervention => MigrationTimeline { segments: Vec::new() },
        // Traditional frameworks restart the whole job to replace a worker.
        MigrationStrategy::StopAndRestart => MigrationTimeline {
            segments: vec![
                (TimelineSegment::Degraded, detection),
                (TimelineSegment::PauseSave, rds.save_duration(ckpt_bytes)),
                (TimelineSegment::PauseInit, pod_startup),
                (TimelineSegment::PauseLoad, rds.load_duration(ckpt_bytes)),
                // Static partitioning must re-split data across workers.
                (TimelineSegment::PauseData, SimDuration::from_secs(60)),
            ],
        },
        // Dynamic data sharding: detect, shrink the straggler's shards,
        // requeue — the job never stops ("within 1 minute" in §6.2).
        MigrationStrategy::Seamless => {
            MigrationTimeline { segments: vec![(TimelineSegment::Degraded, detection)] }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    fn stores() -> (FlashStore, RdsStore) {
        (FlashStore::default(), RdsStore::default())
    }

    #[test]
    fn no_intervention_has_empty_timeline() {
        let (f, r) = stores();
        let t = plan_ps_migration(
            MigrationStrategy::NoIntervention,
            20 * GB,
            SimDuration::from_mins(5),
            &f,
            &r,
        );
        assert_eq!(t.pause(), SimDuration::ZERO);
        assert_eq!(t.total(), SimDuration::ZERO);
    }

    #[test]
    fn stop_and_restart_pauses_for_everything() {
        let (f, r) = stores();
        let startup = SimDuration::from_mins(6);
        let t = plan_ps_migration(MigrationStrategy::StopAndRestart, 20 * GB, startup, &f, &r);
        assert_eq!(t.pause(), t.total(), "every segment pauses");
        // Pause spans checkpoint round-trip + init: >10 minutes for 20 GB.
        assert!(t.pause().as_mins_f64() > 10.0, "pause {}", t.pause());
    }

    #[test]
    fn seamless_pause_is_subsecond_scale() {
        let (f, r) = stores();
        let startup = SimDuration::from_mins(6);
        let t = plan_ps_migration(MigrationStrategy::Seamless, 20 * GB, startup, &f, &r);
        assert!(t.pause().as_secs_f64() < 5.0, "pause {}", t.pause());
        // Startup rides along as degraded training, not a pause.
        assert_eq!(t.degraded(), startup);
    }

    #[test]
    fn seamless_saves_most_of_the_stop_and_restart_pause() {
        let (f, r) = stores();
        let startup = SimDuration::from_mins(6);
        let sr = plan_ps_migration(MigrationStrategy::StopAndRestart, 20 * GB, startup, &f, &r);
        let sm = plan_ps_migration(MigrationStrategy::Seamless, 20 * GB, startup, &f, &r);
        // Fig. 12's claim: ~5 min saved on init + ~3 min on checkpoints.
        let saved = sr.pause().saturating_sub(sm.pause());
        assert!(saved.as_mins_f64() > 8.0, "saved only {saved}");
    }

    #[test]
    fn worker_recovery_sharding_never_pauses() {
        let r = RdsStore::default();
        let t = plan_worker_recovery(
            MigrationStrategy::Seamless,
            20 * GB,
            SimDuration::from_secs(45),
            SimDuration::from_mins(5),
            &r,
        );
        assert_eq!(t.pause(), SimDuration::ZERO);
        assert!(t.total().as_mins_f64() < 1.0, "detection within a minute");
    }

    #[test]
    fn worker_recovery_traditional_pays_restart() {
        let r = RdsStore::default();
        let t = plan_worker_recovery(
            MigrationStrategy::StopAndRestart,
            20 * GB,
            SimDuration::from_secs(45),
            SimDuration::from_mins(5),
            &r,
        );
        assert!(t.pause().as_mins_f64() > 8.0);
        assert!(t.degraded() > SimDuration::ZERO, "detection time runs degraded");
    }

    #[test]
    fn segment_pause_classification() {
        assert!(TimelineSegment::PauseSave.pauses());
        assert!(TimelineSegment::PauseInit.pauses());
        assert!(TimelineSegment::PauseLoad.pauses());
        assert!(TimelineSegment::PauseData.pauses());
        assert!(!TimelineSegment::Degraded.pauses());
        assert!(!TimelineSegment::Overlapped.pauses());
    }

    #[test]
    fn totals_add_up() {
        let (f, r) = stores();
        let t =
            plan_ps_migration(MigrationStrategy::Seamless, GB, SimDuration::from_mins(3), &f, &r);
        let manual: SimDuration = t.segments.iter().fold(SimDuration::ZERO, |acc, (_, d)| acc + *d);
        assert_eq!(t.total(), manual);
        assert_eq!(t.total(), t.pause() + t.degraded());
    }
}
