//! The virtual-time PS training engine.
//!
//! One [`PsTrainingEngine`] simulates one asynchronous PS job end-to-end:
//! workers check data shards out of the [`crate::ShardQueue`] and consume
//! them at rates given by the [`crate::AsyncCostModel`]; PS memory grows
//! with the embedding-discovery curve; elasticity actions (add/remove
//! workers, re-shape PSes, pauses from migration timelines) reshape the job
//! mid-flight. Time advances in caller-chosen slices (the profiling interval
//! of the job master), so a 200k-step job simulates in microseconds while
//! preserving shard-level data accounting.

use dlrover_perfmodel::{
    ExecPlan, GradientMode, JobShape, MemoryModel, ThroughputObservation, WorkloadConstants,
};
use dlrover_sim::{SimDuration, SimTime};
use dlrover_telemetry::{EventKind, SpanCategory, Telemetry};
use serde::{Deserialize, Serialize};

use crate::cost::{AsyncCostModel, PodState, PsPartition};
use crate::sharding::{ShardQueue, ShardingConfig};

/// Static description of a training job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingJobSpec {
    /// Samples to train (one epoch; the paper trains fixed step counts).
    pub total_samples: u64,
    /// Per-worker mini-batch size.
    pub batch_size: u32,
    /// Ground-truth cost coefficients (the simulator's physics).
    pub coefficients: dlrover_perfmodel::ModelCoefficients,
    /// Workload constants (M, B, D).
    pub constants: WorkloadConstants,
    /// Embedding-memory growth ground truth.
    pub memory: MemoryModel,
    /// Data sharding configuration.
    pub sharding: ShardingConfig,
}

impl TrainingJobSpec {
    /// A representative job of `total_steps` steps of batch 512 (the paper
    /// trains 200k steps) with the scaled paper-reference coefficients, so
    /// a well-tuned job runs at the paper's 100–250 steps/s.
    pub fn paper_default(total_steps: u64) -> Self {
        let batch_size = 512;
        TrainingJobSpec {
            total_samples: total_steps * batch_size as u64,
            batch_size,
            coefficients: dlrover_perfmodel::ModelCoefficients::simulation_truth(),
            constants: WorkloadConstants::default(),
            memory: MemoryModel::new(2.0e9, 256.0, 5.0e7, 5.0e7),
            sharding: ShardingConfig { batch_size, ..ShardingConfig::default() },
        }
    }
}

/// Result of one `advance` slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobProgress {
    /// Samples processed during the slice.
    pub samples: f64,
    /// True when the dataset drained during this slice.
    pub completed: bool,
    /// Index of the first PS that exceeded its memory allocation, if any.
    pub oom_ps: Option<usize>,
}

/// A restorable snapshot of an engine's training state: the job spec plus
/// the *quiesced* shard queue. In-flight shards at snapshot time are
/// requeued, so a job restored from this checkpoint retrains at most one
/// shard per worker and never skips data — the consistency property behind
/// the paper's PS scaling (§5.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// The job spec (physics + data accounting parameters).
    pub spec: TrainingJobSpec,
    /// Quiesced data-shard state.
    pub shards: ShardQueue,
    /// Virtual time at snapshot.
    pub at: SimTime,
    /// Execution plan at snapshot (Rubick-style reconfiguration state).
    pub exec: ExecPlan,
}

/// Notable events the engine records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EngineEvent {
    /// A worker was added (index).
    WorkerAdded(usize),
    /// A worker failed; its shard was re-queued.
    WorkerFailed(usize),
    /// A worker was removed gracefully.
    WorkerRemoved(usize),
    /// The PS layout was re-shaped.
    Reshaped,
    /// The execution plan changed (gradient mode / batch / replication).
    Replanned,
    /// Training paused for a migration.
    Paused(SimDuration),
    /// A PS ran out of memory.
    Oom(usize),
    /// The job finished.
    Completed(SimTime),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WorkerSlot {
    pod: PodState,
    shard_worker_id: u64,
    alive: bool,
    /// A zombie: the process is up (slot stays alive and keeps its shard)
    /// but training and heartbeats have stopped. Only failure clears it.
    hung: bool,
    /// Fractional sample progress carried between slices.
    carry: f64,
}

/// The engine. See the module docs.
#[derive(Debug, Clone)]
pub struct PsTrainingEngine {
    spec: TrainingJobSpec,
    cost: AsyncCostModel,
    workers: Vec<WorkerSlot>,
    partitions: Vec<PsPartition>,
    /// Memory allocation per PS, bytes.
    ps_mem_alloc: Vec<u64>,
    /// External memory pressure per PS, bytes (chaos/interference
    /// injection; empty means none).
    mem_pressure: Vec<u64>,
    shards: ShardQueue,
    now: SimTime,
    pending_pause: SimDuration,
    next_shard_worker_id: u64,
    events: Vec<(SimTime, EngineEvent)>,
    oomed: bool,
    telemetry: Telemetry,
    /// Span-timeline lane (the owning job id; 0 for standalone engines).
    span_track: u64,
    /// Active execution plan (default = plain async PS training).
    exec: ExecPlan,
}

impl PsTrainingEngine {
    /// Creates an engine with the given worker pods and PS layout.
    ///
    /// # Panics
    /// Panics when `workers` or `partitions` is empty, or when the memory
    /// allocation count disagrees with the partition count.
    pub fn new(
        spec: TrainingJobSpec,
        workers: Vec<PodState>,
        partitions: Vec<PsPartition>,
        ps_mem_alloc: Vec<u64>,
    ) -> Self {
        let shards = ShardQueue::new(spec.total_samples, spec.sharding);
        Self::from_checkpoint(
            EngineCheckpoint { spec, shards, at: SimTime::ZERO, exec: ExecPlan::default() },
            workers,
            partitions,
            ps_mem_alloc,
        )
    }

    /// Snapshots the training state for fault-tolerant restore.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            spec: self.spec.clone(),
            shards: self.shards.quiesced(),
            at: self.now,
            exec: self.exec,
        }
    }

    /// Reconstructs an engine from a checkpoint with a fresh pod layout
    /// (the restored job may run on completely different resources).
    ///
    /// # Panics
    /// Panics on empty `workers`/`partitions` or mismatched memory vector,
    /// as in [`Self::new`].
    pub fn from_checkpoint(
        ckpt: EngineCheckpoint,
        workers: Vec<PodState>,
        partitions: Vec<PsPartition>,
        ps_mem_alloc: Vec<u64>,
    ) -> Self {
        assert!(!workers.is_empty(), "job needs at least one worker");
        assert!(!partitions.is_empty(), "job needs at least one PS");
        assert_eq!(partitions.len(), ps_mem_alloc.len(), "per-PS memory required");
        let cost = AsyncCostModel::new(
            ckpt.spec.coefficients,
            ckpt.spec.constants,
            ckpt.exec.effective_batch(ckpt.spec.batch_size),
        );
        let exec = ckpt.exec;
        let mut engine = PsTrainingEngine {
            spec: ckpt.spec,
            cost,
            workers: Vec::new(),
            partitions,
            ps_mem_alloc,
            mem_pressure: Vec::new(),
            shards: ckpt.shards,
            now: ckpt.at,
            pending_pause: SimDuration::ZERO,
            next_shard_worker_id: 0,
            events: Vec::new(),
            oomed: false,
            telemetry: Telemetry::default(),
            span_track: 0,
            exec,
        };
        for pod in workers {
            engine.add_worker(pod);
        }
        engine
    }

    /// Routes this engine's telemetry into `sink` (a shared handle). Until
    /// called, events go to a private default sink.
    pub fn set_telemetry(&mut self, sink: Telemetry) {
        self.telemetry = sink;
    }

    /// The engine's telemetry handle (clone to share).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Sets the span-timeline lane this engine records under (usually the
    /// owning job id, so multi-job traces keep their lanes apart).
    pub fn set_span_track(&mut self, track: u64) {
        self.span_track = track;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The job spec.
    pub fn spec(&self) -> &TrainingJobSpec {
        &self.spec
    }

    /// Recorded events.
    pub fn events(&self) -> &[(SimTime, EngineEvent)] {
        &self.events
    }

    /// Live worker pods (hung workers excluded: a zombie contributes no
    /// compute).
    pub fn workers(&self) -> Vec<PodState> {
        self.workers.iter().filter(|w| w.alive && !w.hung).map(|w| w.pod).collect()
    }

    /// Hangs a live worker: its pod stays up and it keeps any checked-out
    /// shard, but it stops training and stops heartbeating — the zombie
    /// failure mode that crash detection misses and §6.1's heartbeat
    /// timeout exists to catch. Only [`Self::fail_worker`] recovers the
    /// slot (re-queueing the shard); the master's silent-worker detector
    /// does exactly that.
    pub fn hang_worker(&mut self, idx: usize) {
        if let Some(slot) = self.workers.get_mut(idx) {
            if slot.alive {
                slot.hung = true;
                slot.carry = 0.0;
            }
        }
    }

    /// Engine indices of live workers whose last heartbeat is older than
    /// `timeout` — the failure detector's candidates (§6.1). Healthy
    /// workers heartbeat every [`Self::advance`] slice (even while paused
    /// or waiting on a drained queue), so only hung workers go silent.
    pub fn silent_workers(&self, timeout: SimDuration) -> Vec<usize> {
        let ids = self.shards.silent_workers(self.now, timeout);
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive && ids.contains(&w.shard_worker_id))
            .map(|(i, _)| i)
            .collect()
    }

    /// Current PS partitions.
    pub fn partitions(&self) -> &[PsPartition] {
        &self.partitions
    }

    /// Adds a worker; it immediately starts pulling shards. Returns its
    /// index.
    pub fn add_worker(&mut self, pod: PodState) -> usize {
        let id = self.next_shard_worker_id;
        self.next_shard_worker_id += 1;
        self.shards.register_worker(id, self.now);
        self.workers.push(WorkerSlot {
            pod,
            shard_worker_id: id,
            alive: true,
            hung: false,
            carry: 0.0,
        });
        let idx = self.workers.len() - 1;
        self.events.push((self.now, EngineEvent::WorkerAdded(idx)));
        self.telemetry.record(self.now, EventKind::WorkerAdded { worker: idx as u64 });
        idx
    }

    /// Fails a worker: its in-flight shard re-queues in full.
    pub fn fail_worker(&mut self, idx: usize) {
        let Some(slot) = self.workers.get_mut(idx) else { return };
        if !slot.alive {
            return;
        }
        slot.alive = false;
        slot.hung = false;
        slot.carry = 0.0;
        self.shards.fail_worker(slot.shard_worker_id);
        self.events.push((self.now, EngineEvent::WorkerFailed(idx)));
        self.telemetry.record(self.now, EventKind::WorkerFailed { worker: idx as u64 });
        self.telemetry.count("engine.worker_failures", 1);
    }

    /// Removes a worker gracefully (scale-down): processed work is kept.
    pub fn remove_worker(&mut self, idx: usize) {
        let Some(slot) = self.workers.get_mut(idx) else { return };
        if !slot.alive {
            return;
        }
        // Flush fractional progress as a final heartbeat before handoff.
        slot.alive = false;
        slot.carry = 0.0;
        self.shards.deregister_worker(slot.shard_worker_id);
        self.events.push((self.now, EngineEvent::WorkerRemoved(idx)));
        self.telemetry.record(self.now, EventKind::WorkerRemoved { worker: idx as u64 });
    }

    /// Changes a live worker's pod state (vertical scaling / contention).
    pub fn set_worker_pod(&mut self, idx: usize, pod: PodState) {
        if let Some(slot) = self.workers.get_mut(idx) {
            slot.pod = pod;
        }
    }

    /// Replaces the PS layout (horizontal/vertical PS scaling, rebalancing).
    /// The caller is responsible for scheduling the migration pause via
    /// [`Self::pause`].
    pub fn reshape_ps(&mut self, partitions: Vec<PsPartition>, ps_mem_alloc: Vec<u64>) {
        assert!(!partitions.is_empty(), "job needs at least one PS");
        assert_eq!(partitions.len(), ps_mem_alloc.len(), "per-PS memory required");
        self.partitions = partitions;
        self.ps_mem_alloc = ps_mem_alloc;
        // Interference is per-slot, not per-layout: pressure follows the
        // PS index across a reshape and vanishes for removed slots.
        self.mem_pressure.truncate(self.partitions.len());
        self.events.push((self.now, EngineEvent::Reshaped));
        self.telemetry.record(self.now, EventKind::PsReshaped { ps: self.partitions.len() as u64 });
    }

    /// The active execution plan.
    pub fn exec_plan(&self) -> &ExecPlan {
        &self.exec
    }

    /// Switches the execution plan (Rubick-style reconfiguration): gradient
    /// mode, PS replication factor, batch size. Takes effect on the next
    /// [`Self::advance`] slice; the caller charges the transition pause via
    /// [`Self::pause`] (the seamless-migration path, §5.2). The cost model
    /// is rebuilt at the plan's effective batch so rates, spans and
    /// observations all see the new physics.
    pub fn set_exec_plan(&mut self, exec: ExecPlan) {
        if exec == self.exec {
            return;
        }
        self.exec = exec;
        self.cost = AsyncCostModel::new(
            self.spec.coefficients,
            self.spec.constants,
            exec.effective_batch(self.spec.batch_size),
        );
        self.events.push((self.now, EngineEvent::Replanned));
    }

    /// FNV digest of the trained-sample coverage (see
    /// [`ShardQueue::coverage_digest`]): equal digests ⇒ the embedding
    /// tables folded exactly the same sample set.
    pub fn coverage_digest(&self) -> u64 {
        self.shards.coverage_digest()
    }

    /// Sets one PS pod's state (e.g. inject a hot PS).
    pub fn set_ps_pod(&mut self, idx: usize, pod: PodState) {
        if let Some(ps) = self.partitions.get_mut(idx) {
            ps.pod = pod;
        }
    }

    /// Schedules a full training pause (migration critical path). Pauses
    /// accumulate and are consumed by subsequent [`Self::advance`] calls.
    pub fn pause(&mut self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        self.pending_pause += d;
        self.events.push((self.now, EngineEvent::Paused(d)));
        self.telemetry.record(self.now, EventKind::TrainingPaused { micros: d.as_micros() });
        self.telemetry.observe("engine.pause_seconds", d.as_secs_f64());
    }

    /// Samples fully accounted (completed shards + in-flight progress).
    ///
    /// Note: this can *decrease* across a worker failure — the failed
    /// worker's partially processed shard re-queues in full and its
    /// in-flight offset is discarded, because the gradients from that
    /// prefix may be lost (§5.1 failure recovery re-trains the shard).
    pub fn samples_done(&self) -> u64 {
        let in_flight: u64 = self
            .workers
            .iter()
            .filter(|w| w.alive)
            .filter_map(|w| self.shards.worker(w.shard_worker_id))
            .map(|p| p.offset_in_shard)
            .sum();
        self.shards.completed_samples() + in_flight
    }

    /// Samples in fully completed (acked) shards — the monotone watermark
    /// an event-log replay recovers to. Unlike [`Self::samples_done`] this
    /// never decreases: in-flight progress (which a failure can discard)
    /// is excluded. Reconfig-window telemetry carries this value so the
    /// oracle's no-lost-samples invariant holds across crashes.
    pub fn completed_samples(&self) -> u64 {
        self.shards.completed_samples()
    }

    /// Remaining samples.
    pub fn remaining_samples(&self) -> u64 {
        self.spec.total_samples.saturating_sub(self.samples_done())
    }

    /// True when every sample has been consumed.
    pub fn is_complete(&self) -> bool {
        self.shards.is_drained()
    }

    /// True when the job died of OOM.
    pub fn is_oomed(&self) -> bool {
        self.oomed
    }

    /// Instantaneous throughput (samples/s) of the live configuration.
    pub fn throughput(&self) -> f64 {
        let pods: Vec<PodState> = self.workers();
        if pods.is_empty() || !self.pending_pause.is_zero() {
            return 0.0;
        }
        self.exec_throughput(&pods)
    }

    /// Throughput of `pods` under the active execution plan. Bit-identical
    /// to [`AsyncCostModel::throughput`] on the default plan; otherwise the
    /// per-phase times pass through [`dlrover_perfmodel::adjust_phases`]
    /// (the same transform the optimizer priced the plan with) and sync
    /// mode barriers every worker on the slowest iteration.
    fn exec_throughput(&self, pods: &[PodState]) -> f64 {
        if self.exec.is_default() {
            return self.cost.throughput(pods, &self.partitions);
        }
        let n = pods.len() as u32;
        let eb = f64::from(self.cost.batch_size);
        let iters: Vec<f64> = pods
            .iter()
            .map(|wk| self.cost.worker_iter_time_exec(wk, &self.partitions, n, &self.exec))
            .collect();
        if self.exec.gradient_mode == GradientMode::Sync {
            let worst = iters.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
            pods.len() as f64 * eb / worst
        } else {
            iters.iter().map(|t| eb / t).sum()
        }
    }

    /// Whole-job CPU utilisation under the cost model (busy core-seconds
    /// over allocated core-seconds); 0 while paused.
    pub fn cpu_utilisation(&self) -> f64 {
        if !self.pending_pause.is_zero() {
            return 0.0;
        }
        self.cost.job_cpu_utilisation(&self.workers(), &self.partitions)
    }

    /// Memory utilisation: PS bytes in use over bytes allocated.
    pub fn memory_utilisation(&self) -> f64 {
        let used: u64 = self.ps_memory_used().iter().sum();
        let alloc: u64 = self.ps_mem_alloc.iter().sum();
        if alloc == 0 {
            return 0.0;
        }
        (used as f64 / alloc as f64).min(1.0)
    }

    /// Memory in use per PS, bytes: its parameter share of the embedding
    /// plus an even slice of the static part.
    pub fn ps_memory_used(&self) -> Vec<u64> {
        let emb = self.spec.memory.embedding_bytes(self.samples_done() as f64);
        let static_slice = self.spec.memory.static_bytes / self.partitions.len() as f64;
        self.partitions
            .iter()
            .enumerate()
            .map(|(i, ps)| {
                (ps.share * emb + static_slice) as u64
                    + self.mem_pressure.get(i).copied().unwrap_or(0)
            })
            .collect()
    }

    /// Injects external memory pressure on one PS pod: `bytes` of
    /// co-located interference that count toward the pod's usage (and
    /// therefore toward the OOM check and the §5.3 memory forecast) until
    /// cleared with `bytes = 0`. No-op for an out-of-range index.
    ///
    /// Pressure is *not* part of the training state: checkpoints do not
    /// carry it, and a restore starts pressure-free.
    pub fn set_ps_mem_pressure(&mut self, idx: usize, bytes: u64) {
        if idx >= self.partitions.len() {
            return;
        }
        if self.mem_pressure.len() < self.partitions.len() {
            self.mem_pressure.resize(self.partitions.len(), 0);
        }
        self.mem_pressure[idx] = bytes;
    }

    /// Current external memory pressure per PS, bytes (empty when none
    /// was ever injected).
    pub fn ps_mem_pressure(&self) -> &[u64] {
        &self.mem_pressure
    }

    /// Per-PS memory allocations.
    pub fn ps_memory_alloc(&self) -> &[u64] {
        &self.ps_mem_alloc
    }

    /// Total worker slots ever created (dead slots keep their index).
    pub fn worker_slot_count(&self) -> usize {
        self.workers.len()
    }

    /// True when the worker at `idx` is alive.
    pub fn worker_is_alive(&self, idx: usize) -> bool {
        self.workers.get(idx).is_some_and(|w| w.alive)
    }

    /// Engine indices of workers whose progress lags the median by more
    /// than `lag_factor` (see [`ShardQueue::stragglers`]).
    pub fn straggling_workers(&self, lag_factor: f64) -> Vec<usize> {
        let ids = self.shards.stragglers(lag_factor);
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive && !w.hung && ids.contains(&w.shard_worker_id))
            .map(|(i, _)| i)
            .collect()
    }

    /// A profiling observation of the current configuration, suitable for
    /// the online model fitter: the homogeneous-equivalent shape plus the
    /// *measured* mean iteration time.
    ///
    /// Heterogeneous layouts are collapsed to their mean effective CPU.
    /// Under strong skew (a hot PS) the iteration time embeds a bottleneck
    /// slowdown the mean shape cannot express, which biases the fit — this
    /// is acceptable because the job master detects and rebalances hot PSes
    /// within one tick (see `JobMaster::detect_hot_ps`), so the fitter
    /// effectively only ever trains on near-homogeneous samples.
    pub fn observation(&self) -> Option<ThroughputObservation> {
        let pods = self.workers();
        if pods.is_empty() {
            return None;
        }
        let w = pods.len() as u32;
        let mean_cpu = pods.iter().map(|p| p.effective_cpu()).sum::<f64>() / pods.len() as f64;
        let p = self.partitions.len() as u32;
        let mean_ps_cpu = self.partitions.iter().map(|ps| ps.pod.effective_cpu()).sum::<f64>()
            / self.partitions.len() as f64;
        let thp = self.exec_throughput(&pods);
        if thp <= 0.0 {
            return None;
        }
        let batch = self.cost.batch_size;
        let iter_time = f64::from(w) * f64::from(batch) / thp;
        Some(ThroughputObservation {
            shape: JobShape::new(w, p, mean_cpu, mean_ps_cpu, batch),
            iter_time,
        })
    }

    /// Records one `iteration` span over the trained part of a slice, with
    /// `iteration/{lookup,compute,push,pull}` children split proportionally
    /// to the cost model's phase decomposition (Eqns. 2–6) for the mean
    /// live worker pod, plus a `straggler` child per worker whose rate fell
    /// under a third of the fastest (the §4.2 lag signal).
    fn record_iteration_spans(
        &self,
        start: SimTime,
        end: SimTime,
        workers: u32,
        stragglers: &[usize],
    ) {
        let pods = self.workers();
        if pods.is_empty() || end <= start {
            return;
        }
        let iter = self.telemetry.span_complete(
            start,
            end,
            SpanCategory::Iteration,
            "slice",
            self.span_track,
            None,
        );
        let mean = PodState {
            cpu: pods.iter().map(|p| p.cpu).sum::<f64>() / pods.len() as f64,
            speed: pods.iter().map(|p| p.speed).sum::<f64>() / pods.len() as f64,
        };
        // [t_grad, t_upd, t_sync, t_emb, β] → lookup, compute(+β), push, pull.
        let pt = self.cost.phase_times_exec(&mean, &self.partitions, workers, &self.exec);
        let phases = [
            (SpanCategory::IterLookup, pt[3]),
            (SpanCategory::IterCompute, pt[0] + pt[4]),
            (SpanCategory::IterPush, pt[1]),
            (SpanCategory::IterPull, pt[2]),
        ];
        let total: f64 = phases.iter().map(|(_, t)| t).sum();
        if total > 0.0 {
            let dur = end.saturating_since(start);
            let mut t = start;
            for (i, (cat, share)) in phases.iter().enumerate() {
                // The last phase absorbs rounding so the children tile the
                // parent exactly.
                let phase_end = if i == phases.len() - 1 {
                    end
                } else {
                    (t + dur.mul_f64(share / total)).min(end)
                };
                self.telemetry.span_complete(t, phase_end, *cat, "", self.span_track, Some(iter));
                t = phase_end;
            }
        }
        for &i in stragglers {
            self.telemetry.span_complete(
                start,
                end,
                SpanCategory::Straggler,
                &format!("w{i}"),
                self.span_track,
                Some(iter),
            );
        }
    }

    /// Liveness pings: every live, non-hung worker heartbeats once per
    /// slice even when it trained nothing (paused, queue drained, or
    /// waiting) — only a genuinely hung worker's heartbeat goes stale, so
    /// the silent-worker detector has no false positives across long
    /// migration pauses. An offset of zero leaves shard progress untouched
    /// (heartbeats are monotone).
    fn liveness_heartbeats(&mut self) {
        for w in &self.workers {
            if w.alive && !w.hung {
                self.shards.heartbeat(w.shard_worker_id, 0, self.now);
            }
        }
    }

    /// Advances virtual time by `dt`, consuming pending pauses first, then
    /// training. Returns the slice's progress.
    pub fn advance(&mut self, dt: SimDuration) -> JobProgress {
        let mut remaining = dt;
        // Consume pause.
        if !self.pending_pause.is_zero() {
            let consumed = self.pending_pause.min(remaining);
            self.pending_pause -= consumed;
            remaining = remaining.saturating_sub(consumed);
            let pause_start = self.now;
            self.now += consumed;
            if !consumed.is_zero() {
                self.telemetry.span_complete(
                    pause_start,
                    self.now,
                    SpanCategory::Migration,
                    "pause",
                    self.span_track,
                    None,
                );
            }
        }
        if remaining.is_zero() || self.oomed {
            self.now += remaining;
            self.liveness_heartbeats();
            return JobProgress { samples: 0.0, completed: self.is_complete(), oom_ps: None };
        }

        let dt_s = remaining.as_secs_f64();
        let train_start = self.now;
        let live: Vec<usize> = (0..self.workers.len())
            .filter(|&i| self.workers[i].alive && !self.workers[i].hung)
            .collect();
        let n = live.len() as u32;
        let mut total_new = 0.0f64;
        let mut stragglers: Vec<usize> = Vec::new();

        if n > 0 {
            // Per-worker rates under the current layout and execution plan
            // (bit-identical to the legacy path on the default plan).
            let mut rates: Vec<f64> = live
                .iter()
                .map(|&i| {
                    f64::from(self.cost.batch_size)
                        / self.cost.worker_iter_time_exec(
                            &self.workers[i].pod,
                            &self.partitions,
                            n,
                            &self.exec,
                        )
                })
                .collect();
            let mut max_rate = rates.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
            stragglers = live
                .iter()
                .enumerate()
                .filter(|(k, _)| rates[*k] < max_rate / 3.0)
                .map(|(_, &i)| i)
                .collect();
            if self.exec.gradient_mode == GradientMode::Sync {
                // Synchronous gradients barrier every iteration on the
                // slowest worker (the Rubick trade the optimizer prices:
                // cheaper updates, a shared pace).
                let min_rate = rates.iter().cloned().fold(f64::INFINITY, f64::min);
                rates.iter_mut().for_each(|r| *r = min_rate);
                max_rate = min_rate.max(1e-12);
            }

            for (k, &i) in live.iter().enumerate() {
                let mut budget = rates[k] * dt_s + self.workers[i].carry;
                let pace = (rates[k] / max_rate).clamp(0.01, 1.0);
                let wid = self.workers[i].shard_worker_id;
                let mut produced = 0.0f64;
                loop {
                    // Ensure the worker holds a shard.
                    let holding = self.shards.worker(wid).and_then(|s| s.current_shard).is_some();
                    if !holding {
                        match self.shards.checkout(wid, pace, self.now) {
                            Some(shard) => {
                                self.telemetry.record(
                                    self.now,
                                    EventKind::ShardCheckedOut { worker: wid, len: shard.len },
                                );
                            }
                            None => break, // dataset drained
                        }
                    }
                    let state = self.shards.worker(wid).expect("registered");
                    let shard = state.current_shard.expect("just ensured");
                    let left_in_shard = (shard.len - state.offset_in_shard) as f64;
                    if budget + 1e-9 >= left_in_shard {
                        budget -= left_in_shard;
                        produced += left_in_shard;
                        self.shards.heartbeat(wid, shard.len, self.now);
                        let acked = self.shards.complete(wid, self.now);
                        self.telemetry.record(
                            self.now,
                            EventKind::ShardAcked { worker: wid, len: acked.len },
                        );
                        self.telemetry.count("engine.shards_acked", 1);
                    } else {
                        let whole = budget.floor() as u64;
                        let state_off = state.offset_in_shard;
                        self.shards.heartbeat(wid, state_off + whole, self.now);
                        produced += whole as f64;
                        self.workers[i].carry = budget - whole as f64;
                        budget = 0.0;
                        break;
                    }
                }
                if budget > 0.0 {
                    // Drained mid-slice: drop the leftover budget.
                    self.workers[i].carry = 0.0;
                }
                total_new += produced;
            }
        }
        self.now += remaining;
        self.liveness_heartbeats();
        if total_new > 0.0 {
            self.record_iteration_spans(train_start, self.now, n, &stragglers);
        }

        // Memory / OOM check.
        let oom_ps = self
            .ps_memory_used()
            .iter()
            .zip(&self.ps_mem_alloc)
            .position(|(used, alloc)| used > alloc);
        if let Some(ps) = oom_ps {
            self.oomed = true;
            self.events.push((self.now, EngineEvent::Oom(ps)));
            self.telemetry.record(self.now, EventKind::Oomed { job: 0, ps: ps as u64 });
        }

        let completed = self.is_complete();
        if completed && !self.events.iter().any(|(_, e)| matches!(e, EngineEvent::Completed(_))) {
            self.events.push((self.now, EngineEvent::Completed(self.now)));
        }
        JobProgress { samples: total_new, completed, oom_ps }
    }

    /// Runs until completion or OOM, advancing in `slice` steps; returns the
    /// completion time, or `None` on OOM / missing capacity.
    pub fn run_to_completion(&mut self, slice: SimDuration, deadline: SimTime) -> Option<SimTime> {
        while !self.is_complete() {
            if self.oomed || self.now >= deadline {
                return None;
            }
            let p = self.advance(slice);
            if p.oom_ps.is_some() {
                return None;
            }
            if p.samples <= 0.0 && self.pending_pause.is_zero() && self.throughput() <= 0.0 {
                return None; // wedged: no workers
            }
        }
        Some(self.now)
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Advance(u16),
        FailWorker(u8),
        AddWorker,
        RemoveWorker(u8),
        Pause(u16),
        SetWorkerSpeed(u8, u8),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u16..600).prop_map(Op::Advance),
            (0u8..8).prop_map(Op::FailWorker),
            Just(Op::AddWorker),
            (0u8..8).prop_map(Op::RemoveWorker),
            (1u16..120).prop_map(Op::Pause),
            (0u8..8, 1u8..100).prop_map(|(w, s)| Op::SetWorkerSpeed(w, s)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Under arbitrary elastic chaos, accounting invariants hold:
        /// samples_done never exceeds the dataset, never decreases, and a
        /// final drain completes with exactly-once accounting.
        #[test]
        fn accounting_invariants_under_chaos(ops in proptest::collection::vec(op(), 1..40)) {
            let spec = TrainingJobSpec::paper_default(400);
            let total = spec.total_samples;
            let mut e = PsTrainingEngine::new(
                spec,
                vec![PodState::new(8.0); 3],
                AsyncCostModel::balanced_partitions(2, 8.0),
                vec![u64::MAX / 2; 2],
            );
            let mut last_done = 0u64;
            for o in ops {
                let mut failed_someone = false;
                match o {
                    Op::Advance(s) => {
                        e.advance(SimDuration::from_secs(u64::from(s)));
                    }
                    Op::FailWorker(i) => {
                        e.fail_worker(i as usize);
                        // A failure legitimately discards in-flight progress
                        // (the shard will be retrained), so the monotonicity
                        // baseline resets.
                        failed_someone = true;
                    }
                    Op::AddWorker => {
                        e.add_worker(PodState::new(8.0));
                    }
                    Op::RemoveWorker(i) => {
                        // Keep at least one live worker so the drain below
                        // can finish.
                        if e.workers().len() > 1 {
                            e.remove_worker(i as usize);
                        }
                    }
                    Op::Pause(s) => e.pause(SimDuration::from_secs(u64::from(s))),
                    Op::SetWorkerSpeed(i, s) => e.set_worker_pod(
                        i as usize,
                        PodState { cpu: 8.0, speed: f64::from(s) / 100.0 },
                    ),
                }
                let done = e.samples_done();
                prop_assert!(done <= total, "overcounted: {done} > {total}");
                if failed_someone {
                    last_done = done; // retrained prefix may lower the count
                } else {
                    prop_assert!(done >= last_done, "progress went backwards");
                    last_done = done;
                }
            }
            // Ensure at least one live worker, then drain.
            if e.workers().is_empty() {
                e.add_worker(PodState::new(8.0));
            }
            e.run_to_completion(SimDuration::from_secs(600), SimTime::MAX)
                .expect("drain finishes");
            prop_assert_eq!(e.samples_done(), total, "exactly-once violated");
        }

        /// The spans a chaos-driven engine records form well-formed trees
        /// (children nest within their parents in SimTime, parents exist)
        /// and identical replays serialize byte-identically (ISSUE-2
        /// satellite; engine-driven half of the span proptests).
        #[test]
        fn recorded_span_trees_are_well_formed(ops in proptest::collection::vec(op(), 1..30)) {
            let run = |ops: &[Op]| {
                let sink = Telemetry::default();
                let spec = TrainingJobSpec::paper_default(400);
                let mut e = PsTrainingEngine::new(
                    spec,
                    vec![PodState::new(8.0); 3],
                    AsyncCostModel::balanced_partitions(2, 8.0),
                    vec![u64::MAX / 2; 2],
                );
                e.set_telemetry(sink.clone());
                e.set_span_track(42);
                for o in ops {
                    match *o {
                        Op::Advance(s) => {
                            e.advance(SimDuration::from_secs(u64::from(s)));
                        }
                        Op::FailWorker(i) => e.fail_worker(i as usize),
                        Op::AddWorker => {
                            e.add_worker(PodState::new(8.0));
                        }
                        Op::RemoveWorker(i) => {
                            if e.workers().len() > 1 {
                                e.remove_worker(i as usize);
                            }
                        }
                        Op::Pause(s) => e.pause(SimDuration::from_secs(u64::from(s))),
                        Op::SetWorkerSpeed(i, s) => e.set_worker_pod(
                            i as usize,
                            PodState { cpu: 8.0, speed: f64::from(s) / 100.0 },
                        ),
                    }
                }
                sink
            };
            let sink = run(&ops);
            let spans = sink.snapshot().spans;
            for child in &spans {
                prop_assert!(child.end_us >= child.start_us);
                prop_assert_eq!(child.track, 42);
                if let Some(pid) = child.parent {
                    let parent = spans
                        .iter()
                        .find(|s| s.id == pid)
                        .expect("parent span retained");
                    prop_assert!(parent.start_us <= child.start_us, "child starts inside parent");
                    prop_assert!(child.end_us <= parent.end_us, "child ends inside parent");
                }
            }
            // Same script, fresh engine → byte-identical span log.
            prop_assert_eq!(sink.spans_to_jsonl(), run(&ops).spans_to_jsonl());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(steps: u64) -> TrainingJobSpec {
        TrainingJobSpec::paper_default(steps)
    }

    fn engine(steps: u64, w: u32, p: u32, cpu: f64) -> PsTrainingEngine {
        let workers = vec![PodState::new(cpu); w as usize];
        let parts = AsyncCostModel::balanced_partitions(p, cpu);
        let mem = vec![256 * 1024 * 1024 * 1024u64; p as usize];
        PsTrainingEngine::new(spec(steps), workers, parts, mem)
    }

    const SLICE: SimDuration = SimDuration::from_secs(30);

    #[test]
    fn job_runs_to_completion() {
        let mut e = engine(200, 4, 2, 8.0);
        let jct = e.run_to_completion(SLICE, SimTime::from_secs(1_000_000)).expect("should finish");
        assert!(jct > SimTime::ZERO);
        assert!(e.is_complete());
        assert_eq!(e.samples_done(), e.spec().total_samples);
    }

    #[test]
    fn more_resources_finish_faster() {
        let mut small = engine(500, 2, 1, 2.0);
        let mut big = engine(500, 8, 4, 16.0);
        let deadline = SimTime::from_secs(100_000_000);
        let jct_small = small.run_to_completion(SLICE, deadline).unwrap();
        let jct_big = big.run_to_completion(SLICE, deadline).unwrap();
        assert!(jct_big < jct_small, "{jct_big} !< {jct_small}");
    }

    #[test]
    fn progress_accounting_is_conserved() {
        let mut e = engine(300, 4, 2, 8.0);
        let mut accumulated = 0.0;
        for _ in 0..10 {
            accumulated += e.advance(SLICE).samples;
        }
        let done = e.samples_done() as f64;
        assert!(
            (accumulated - done).abs() <= 4.0 + 1e-6,
            "slice sum {accumulated} vs accounted {done} (carry tolerance)"
        );
    }

    #[test]
    fn memory_pressure_counts_toward_usage_and_oom() {
        let mut e = engine(1000, 4, 2, 8.0);
        e.advance(SLICE);
        let base = e.ps_memory_used();
        // Pressure shows up in usage and clears back out.
        e.set_ps_mem_pressure(1, 7_000_000);
        let pressed = e.ps_memory_used();
        assert_eq!(pressed[0], base[0]);
        assert_eq!(pressed[1], base[1] + 7_000_000);
        e.set_ps_mem_pressure(1, 0);
        assert_eq!(e.ps_memory_used(), base);
        // Out-of-range injection is a no-op.
        e.set_ps_mem_pressure(99, 1);
        assert!(!e.is_oomed());
        // Pressure past the allocation OOMs the PS on the next slice.
        let alloc = e.ps_memory_alloc()[0];
        e.set_ps_mem_pressure(0, alloc);
        let progress = e.advance(SLICE);
        assert_eq!(progress.oom_ps, Some(0));
        assert!(e.is_oomed());
    }

    #[test]
    fn memory_pressure_survives_reshape_but_not_restore() {
        let mut e = engine(1000, 4, 2, 8.0);
        e.advance(SLICE);
        e.set_ps_mem_pressure(1, 5_000_000);
        // Reshape to one PS: the pressured slot disappears with its slot.
        let parts = AsyncCostModel::balanced_partitions(1, 8.0);
        e.reshape_ps(parts, vec![256 * 1024 * 1024 * 1024u64]);
        assert!(e.ps_mem_pressure().iter().all(|&b| b == 0));
        // A checkpoint restore starts pressure-free.
        e.set_ps_mem_pressure(0, 5_000_000);
        let restored = PsTrainingEngine::from_checkpoint(
            e.checkpoint(),
            vec![PodState::new(8.0); 4],
            AsyncCostModel::balanced_partitions(2, 8.0),
            vec![256 * 1024 * 1024 * 1024u64; 2],
        );
        assert!(restored.ps_mem_pressure().is_empty());
    }

    #[test]
    fn pause_stops_progress() {
        let mut e = engine(1000, 4, 2, 8.0);
        e.advance(SLICE);
        let before = e.samples_done();
        e.pause(SLICE * 2);
        let p1 = e.advance(SLICE);
        assert_eq!(p1.samples, 0.0);
        assert_eq!(e.samples_done(), before);
        let p2 = e.advance(SLICE);
        assert_eq!(p2.samples, 0.0);
        // Pause consumed; next slice trains again.
        let p3 = e.advance(SLICE);
        assert!(p3.samples > 0.0);
    }

    #[test]
    fn partial_pause_trains_the_remainder() {
        let mut e = engine(1000, 4, 2, 8.0);
        e.pause(SimDuration::from_secs(10));
        let p = e.advance(SimDuration::from_secs(40));
        // 30 seconds of training happened.
        let full = {
            let mut f = engine(1000, 4, 2, 8.0);
            f.advance(SimDuration::from_secs(30)).samples
        };
        assert!((p.samples - full).abs() < f64::from(e.spec().batch_size));
    }

    #[test]
    fn failed_worker_data_is_not_lost() {
        let mut a = engine(400, 4, 2, 8.0);
        let deadline = SimTime::from_secs(100_000_000);
        a.advance(SLICE);
        a.fail_worker(0);
        a.add_worker(PodState::new(8.0));
        let jct = a.run_to_completion(SLICE, deadline).expect("finishes");
        assert!(a.is_complete());
        assert_eq!(a.samples_done(), a.spec().total_samples, "exactly-once after failure");
        assert!(jct > SimTime::ZERO);
    }

    #[test]
    fn losing_workers_without_replacement_still_completes_slower() {
        let deadline = SimTime::from_secs(100_000_000);
        let mut healthy = engine(400, 4, 2, 8.0);
        let jct_healthy = healthy.run_to_completion(SLICE, deadline).unwrap();
        let mut degraded = engine(400, 4, 2, 8.0);
        degraded.advance(SLICE);
        degraded.fail_worker(0);
        degraded.fail_worker(1);
        let jct_degraded = degraded.run_to_completion(SLICE, deadline).unwrap();
        assert!(jct_degraded > jct_healthy);
    }

    #[test]
    fn all_workers_dead_wedges() {
        let mut e = engine(400, 2, 1, 8.0);
        e.advance(SLICE);
        e.fail_worker(0);
        e.fail_worker(1);
        assert!(e.run_to_completion(SLICE, SimTime::from_secs(10_000)).is_none());
    }

    #[test]
    fn hot_ps_slows_everyone_and_reshape_recovers() {
        let deadline = SimTime::from_secs(100_000_000);
        let mut e = engine(2000, 8, 4, 8.0);
        e.advance(SLICE);
        let healthy_thp = e.throughput();
        e.set_ps_pod(0, PodState { cpu: 8.0, speed: 0.03 });
        let hot_thp = e.throughput();
        assert!(hot_thp < healthy_thp * 0.4, "hot {hot_thp} vs {healthy_thp}");
        // Seamless migration: rebalance onto healthy pods + short pause.
        e.reshape_ps(
            AsyncCostModel::balanced_partitions(4, 8.0),
            vec![256 * 1024 * 1024 * 1024u64; 4],
        );
        e.pause(SimDuration::from_secs(2));
        assert!(e.run_to_completion(SLICE, deadline).is_some());
    }

    #[test]
    fn worker_straggler_gets_smaller_shards() {
        let mut e = engine(5000, 4, 2, 8.0);
        e.set_worker_pod(0, PodState { cpu: 8.0, speed: 0.03 });
        e.advance(SLICE);
        e.advance(SLICE);
        // The slow worker's current shard should be smaller than a fast
        // worker's (pace-shrunken).
        let slow_shard =
            e.shards.worker(e.workers[0].shard_worker_id).and_then(|s| s.current_shard);
        let fast_shard =
            e.shards.worker(e.workers[1].shard_worker_id).and_then(|s| s.current_shard);
        if let (Some(slow), Some(fast)) = (slow_shard, fast_shard) {
            assert!(
                slow.len < fast.len,
                "straggler shard {} !< healthy shard {}",
                slow.len,
                fast.len
            );
        }
    }

    #[test]
    fn memory_grows_and_ooms_small_ps() {
        let mut s = spec(100_000);
        // Tiny PS memory: must OOM early.
        let workers = vec![PodState::new(8.0); 4];
        let parts = AsyncCostModel::balanced_partitions(2, 8.0);
        let mem = vec![2 * 1024 * 1024 * 1024u64; 2]; // 2 GB each; static alone is 2 GB
        s.memory = MemoryModel::new(2.0e9, 256.0, 5.0e8, 1.0e6);
        let mut e = PsTrainingEngine::new(s, workers, parts, mem);
        let result = e.run_to_completion(SLICE, SimTime::from_secs(100_000_000));
        assert!(result.is_none(), "tiny PSes must OOM");
        assert!(e.is_oomed());
        assert!(e.events().iter().any(|(_, ev)| matches!(ev, EngineEvent::Oom(_))));
    }

    #[test]
    fn observation_reflects_configuration() {
        let e = engine(1000, 4, 2, 8.0);
        let obs = e.observation().expect("live workers");
        assert_eq!(obs.shape.workers, 4);
        assert_eq!(obs.shape.ps, 2);
        assert!(obs.iter_time > 0.0);
        // Cross-check with throughput: Ψ = w·m/T.
        let thp = e.throughput();
        assert!((4.0 * 512.0 / obs.iter_time - thp).abs() / thp < 1e-9);
    }

    #[test]
    fn throughput_is_zero_while_paused() {
        let mut e = engine(1000, 4, 2, 8.0);
        assert!(e.throughput() > 0.0);
        e.pause(SimDuration::from_secs(100));
        assert_eq!(e.throughput(), 0.0);
    }

    #[test]
    fn adding_workers_mid_job_accelerates() {
        let deadline = SimTime::from_secs(100_000_000);
        let mut baseline = engine(20_000, 2, 2, 8.0);
        let jct_base = baseline.run_to_completion(SLICE, deadline).unwrap();
        let mut scaled = engine(20_000, 2, 2, 8.0);
        scaled.advance(SLICE * 4);
        for _ in 0..6 {
            scaled.add_worker(PodState::new(8.0));
        }
        let jct_scaled = scaled.run_to_completion(SLICE, deadline).unwrap();
        assert!(jct_scaled < jct_base, "{jct_scaled} !< {jct_base}");
    }

    #[test]
    fn checkpoint_restore_preserves_exactly_once() {
        let mut e = engine(500, 4, 2, 8.0);
        for _ in 0..5 {
            e.advance(SLICE);
        }
        let done_before = e.shards.completed_samples();
        let ckpt = e.checkpoint();
        // The original job dies here; a new one resumes from the snapshot
        // on a different shape.
        let mut restored = PsTrainingEngine::from_checkpoint(
            ckpt,
            vec![PodState::new(16.0); 6],
            AsyncCostModel::balanced_partitions(3, 16.0),
            vec![256 * 1024 * 1024 * 1024u64; 3],
        );
        assert_eq!(restored.samples_done(), done_before, "completed work survives");
        restored
            .run_to_completion(SLICE, SimTime::from_secs(100_000_000))
            .expect("restored job finishes");
        assert_eq!(
            restored.samples_done(),
            restored.spec().total_samples,
            "no omission, no duplication after restore"
        );
    }

    #[test]
    fn checkpoint_restore_resumes_virtual_time() {
        let mut e = engine(10_000, 4, 2, 8.0);
        e.advance(SLICE * 10);
        let ckpt = e.checkpoint();
        let restored = PsTrainingEngine::from_checkpoint(
            ckpt,
            vec![PodState::new(8.0); 4],
            AsyncCostModel::balanced_partitions(2, 8.0),
            vec![256 * 1024 * 1024 * 1024u64; 2],
        );
        assert_eq!(restored.now(), SimTime::from_secs(300));
    }

    #[test]
    fn hung_worker_goes_silent_and_failing_it_recovers_the_shard() {
        let timeout = SimDuration::from_secs(120);
        let mut e = engine(400, 4, 2, 8.0);
        e.advance(SLICE);
        assert!(e.silent_workers(timeout).is_empty(), "everyone heartbeats");
        e.hang_worker(1);
        assert_eq!(e.workers().len(), 3, "zombie contributes no compute");
        // Long pauses must not trip the detector for healthy workers.
        e.pause(SimDuration::from_secs(300));
        for _ in 0..12 {
            e.advance(SLICE);
        }
        assert_eq!(e.silent_workers(timeout), vec![1], "only the zombie is silent");
        // The detector's remedy: fail the zombie (shard re-queues) and
        // exactly-once still holds end to end.
        e.fail_worker(1);
        assert!(e.silent_workers(timeout).is_empty());
        e.run_to_completion(SLICE, SimTime::from_secs(100_000_000)).expect("finishes");
        assert_eq!(e.samples_done(), e.spec().total_samples);
    }

    #[test]
    fn hanging_every_worker_wedges_until_one_is_failed() {
        let mut e = engine(400, 2, 1, 8.0);
        e.advance(SLICE);
        e.hang_worker(0);
        e.hang_worker(1);
        let before = e.samples_done();
        e.advance(SLICE * 4);
        assert_eq!(e.samples_done(), before, "zombies make no progress");
        e.fail_worker(0);
        e.add_worker(PodState::new(8.0));
        e.fail_worker(1);
        e.run_to_completion(SLICE, SimTime::from_secs(100_000_000)).expect("finishes");
        assert_eq!(e.samples_done(), e.spec().total_samples);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut e = engine(300, 3, 2, 6.0);
            e.advance(SLICE);
            e.fail_worker(1);
            e.add_worker(PodState::new(6.0));
            e.run_to_completion(SLICE, SimTime::from_secs(100_000_000)).unwrap()
        };
        assert_eq!(run(), run());
    }
}
