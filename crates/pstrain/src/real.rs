//! Real-compute mode: genuine gradient descent under elastic semantics.
//!
//! The convergence experiment (Fig. 8) cannot be faked with a cost model —
//! it asks whether *model quality* survives elasticity. This trainer runs
//! actual `dlrover-dlrm` models with the same dynamic-sharding semantics as
//! the virtual-time engine:
//!
//! * workers check shards out of the same [`ShardQueue`];
//! * within a training *round*, every live worker computes its gradient
//!   against the round-start parameters, and the gradients are applied
//!   sequentially — exactly the staleness profile of asynchronous PS
//!   training (gradients within a round are mutually stale);
//! * elastic events (add / remove / fail a worker) can fire between rounds,
//!   and the shard queue guarantees no sample is dropped or duplicated.

use dlrover_dlrm::model::{CtrModel, DlrmModel, ModelConfig, ModelKind};
use dlrover_dlrm::{auc, logloss, DatasetConfig, SyntheticCriteo};
use dlrover_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::sharding::{ShardQueue, ShardingConfig};

/// Configuration of a real-compute training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealModeConfig {
    /// Which model family to train.
    pub kind: ModelKind,
    /// Model hyper-parameters.
    pub model: ModelConfig,
    /// Synthetic dataset parameters.
    pub dataset: DatasetConfig,
    /// Training-data budget in samples.
    pub total_samples: u64,
    /// Shard layout.
    pub sharding: ShardingConfig,
    /// Experiment seed.
    pub seed: u64,
}

impl RealModeConfig {
    /// A laptop-scale configuration that still exhibits learnable signal.
    pub fn small(kind: ModelKind, seed: u64) -> Self {
        let sharding =
            ShardingConfig { batches_per_shard: 8, batch_size: 64, min_batches_per_shard: 1 };
        RealModeConfig {
            kind,
            model: ModelConfig {
                embedding_dim: 4,
                hash_size: 1 << 16,
                hidden: vec![16, 8],
                cross_layers: 2,
                learning_rate: 0.05,
            },
            dataset: DatasetConfig::default(),
            total_samples: 64 * 64 * 40, // 40 nominal shards of 8 batches
            sharding,
            seed,
        }
    }
}

/// Elastic actions applied between training rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElasticEvent {
    /// Scale out by one worker.
    AddWorker,
    /// Graceful scale-in of the given worker slot.
    RemoveWorker(usize),
    /// Crash the given worker slot (its shard re-queues in full).
    FailWorker(usize),
}

#[derive(Debug, Clone)]
struct RealWorker {
    shard_id: u64,
    alive: bool,
    /// Samples already consumed of the current shard.
    offset: u64,
}

/// A full job checkpoint in real-compute mode: model parameters +
/// optimizer state + the quiesced data-shard frontier. Restoring one
/// resumes training with exactly-once data accounting — the paper's
/// flash-checkpoint payload (§5.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobCheckpoint {
    /// Model weights and Adagrad accumulators.
    pub model: dlrover_dlrm::ModelCheckpoint,
    /// Quiesced shard-queue state.
    pub shards: ShardQueue,
    /// Training round at snapshot.
    pub round: u64,
}

impl JobCheckpoint {
    /// Approximate serialised size, for checkpoint-latency modelling.
    pub fn approx_bytes(&self) -> usize {
        self.model.approx_bytes() + 4096
    }
}

/// The real-compute trainer.
pub struct RealModeTrainer {
    config: RealModeConfig,
    model: DlrmModel,
    dataset: SyntheticCriteo,
    shards: ShardQueue,
    workers: Vec<RealWorker>,
    next_worker_id: u64,
    round: u64,
    loss_history: Vec<(u64, f32)>,
}

impl RealModeTrainer {
    /// Creates a trainer with `initial_workers` live workers.
    pub fn new(config: RealModeConfig, initial_workers: usize) -> Self {
        assert!(initial_workers > 0, "need at least one worker");
        let model = DlrmModel::new(config.kind, config.model.clone(), config.seed);
        let dataset = SyntheticCriteo::new(config.dataset.clone(), config.seed);
        let shards = ShardQueue::new(config.total_samples, config.sharding);
        let mut t = RealModeTrainer {
            config,
            model,
            dataset,
            shards,
            workers: Vec::new(),
            next_worker_id: 0,
            round: 0,
            loss_history: Vec::new(),
        };
        for _ in 0..initial_workers {
            t.apply(ElasticEvent::AddWorker);
        }
        t
    }

    /// The configuration.
    pub fn config(&self) -> &RealModeConfig {
        &self.config
    }

    /// Snapshots the job (model + quiesced shard frontier).
    pub fn checkpoint(&self) -> JobCheckpoint {
        JobCheckpoint {
            model: self.model.snapshot(),
            shards: self.shards.quiesced(),
            round: self.round,
        }
    }

    /// Resumes a job from a checkpoint with `initial_workers` fresh
    /// workers. Completed shards stay completed; the shard a dead worker
    /// held is retrained; nothing is skipped.
    ///
    /// # Panics
    /// Panics if the checkpoint's model family differs from `config.kind`
    /// or `initial_workers == 0`.
    pub fn from_checkpoint(
        config: RealModeConfig,
        ckpt: JobCheckpoint,
        initial_workers: usize,
    ) -> Self {
        assert!(initial_workers > 0, "need at least one worker");
        let mut model = DlrmModel::new(config.kind, config.model.clone(), config.seed);
        model.restore(&ckpt.model);
        let dataset = SyntheticCriteo::new(config.dataset.clone(), config.seed);
        let mut t = RealModeTrainer {
            config,
            model,
            dataset,
            shards: ckpt.shards,
            workers: Vec::new(),
            next_worker_id: 0,
            round: ckpt.round,
            loss_history: Vec::new(),
        };
        for _ in 0..initial_workers {
            t.apply(ElasticEvent::AddWorker);
        }
        t
    }

    /// Applies an elastic event.
    pub fn apply(&mut self, event: ElasticEvent) {
        let now = SimTime::from_secs(self.round);
        match event {
            ElasticEvent::AddWorker => {
                let id = self.next_worker_id;
                self.next_worker_id += 1;
                self.shards.register_worker(id, now);
                self.workers.push(RealWorker { shard_id: id, alive: true, offset: 0 });
            }
            ElasticEvent::RemoveWorker(idx) => {
                if let Some(w) = self.workers.get_mut(idx) {
                    if w.alive {
                        w.alive = false;
                        self.shards.deregister_worker(w.shard_id);
                    }
                }
            }
            ElasticEvent::FailWorker(idx) => {
                if let Some(w) = self.workers.get_mut(idx) {
                    if w.alive {
                        w.alive = false;
                        w.offset = 0;
                        self.shards.fail_worker(w.shard_id);
                    }
                }
            }
        }
    }

    /// Number of live workers.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Samples consumed so far (completed shards only — the conservative
    /// count used for epoch accounting).
    pub fn samples_trained(&self) -> u64 {
        self.shards.completed_samples()
    }

    /// True once the dataset has been fully consumed.
    pub fn is_complete(&self) -> bool {
        self.shards.is_drained()
    }

    /// Mean training loss per round so far: `(round, loss)` pairs.
    pub fn loss_history(&self) -> &[(u64, f32)] {
        &self.loss_history
    }

    /// Runs one asynchronous training round: every live worker draws one
    /// batch from its shard, computes a gradient against the round-start
    /// parameters, and the gradients apply sequentially. Returns the round's
    /// mean loss, or `None` when the dataset is drained.
    pub fn train_round(&mut self) -> Option<f32> {
        self.round += 1;
        let now = SimTime::from_secs(self.round);
        let batch_size = self.config.sharding.batch_size as u64;
        let mut grads = Vec::new();

        let live: Vec<usize> = (0..self.workers.len()).filter(|&i| self.workers[i].alive).collect();
        if live.is_empty() {
            return None;
        }
        for &i in &live {
            let wid = self.workers[i].shard_id;
            // Ensure a shard.
            let holding = self.shards.worker(wid).and_then(|s| s.current_shard);
            let shard = match holding {
                Some(s) => s,
                None => match self.shards.checkout(wid, 1.0, now) {
                    Some(s) => {
                        self.workers[i].offset = 0;
                        s
                    }
                    None => continue, // drained for this worker
                },
            };
            let offset = self.workers[i].offset;
            let take = batch_size.min(shard.len - offset);
            if take == 0 {
                continue;
            }
            let batch = self.dataset.batch(shard.start + offset, take as usize);
            // Gradient against the *round-start* parameters: all gradients
            // in this round are computed before any is applied below.
            grads.push(self.model.compute_gradients(&batch));
            let new_offset = offset + take;
            self.shards.heartbeat(wid, new_offset, now);
            if new_offset >= shard.len {
                self.shards.complete(wid, now);
                self.workers[i].offset = 0;
            } else {
                self.workers[i].offset = new_offset;
            }
        }
        if grads.is_empty() {
            return None;
        }
        let mean_loss = grads.iter().map(|g| g.mean_loss).sum::<f32>() / grads.len() as f32;
        for g in &grads {
            self.model.apply_gradients(g);
        }
        self.loss_history.push((self.round, mean_loss));
        Some(mean_loss)
    }

    /// Trains until the dataset drains (or `max_rounds` as a safety net).
    pub fn train_to_completion(&mut self, max_rounds: u64) -> u64 {
        let mut rounds = 0;
        while !self.is_complete() && rounds < max_rounds {
            if self.train_round().is_none() && !self.is_complete() {
                break; // wedged (no live workers)
            }
            rounds += 1;
        }
        rounds
    }

    /// Evaluates on a held-out index range: `(logloss, auc)`.
    pub fn evaluate(&self, start: u64, n: usize) -> (f64, f64) {
        let batch = self.dataset.batch(start, n);
        let probs = self.model.predict(&batch);
        let labels: Vec<bool> = batch.iter().map(|s| s.label).collect();
        (logloss(&probs, &labels), auc(&probs, &labels))
    }

    /// Bytes resident in the model's embedding tables (memory-growth probe).
    pub fn embedding_bytes(&self) -> usize {
        self.model.embedding_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EVAL_START: u64 = 50_000_000;

    fn trainer(seed: u64, workers: usize) -> RealModeTrainer {
        RealModeTrainer::new(RealModeConfig::small(ModelKind::WideDeep, seed), workers)
    }

    #[test]
    fn training_consumes_exactly_the_dataset() {
        let mut t = trainer(1, 3);
        let rounds = t.train_to_completion(1_000_000);
        assert!(t.is_complete(), "did not drain after {rounds} rounds");
        assert_eq!(t.samples_trained(), t.config().total_samples);
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut t = trainer(2, 3);
        t.train_to_completion(1_000_000);
        let hist = t.loss_history();
        assert!(hist.len() > 20);
        let early: f32 = hist[..10].iter().map(|(_, l)| l).sum::<f32>() / 10.0;
        let late: f32 = hist[hist.len() - 10..].iter().map(|(_, l)| l).sum::<f32>() / 10.0;
        assert!(late < early, "loss did not fall: {early} -> {late}");
    }

    #[test]
    fn trained_model_beats_chance_on_holdout() {
        let mut t = trainer(3, 3);
        t.train_to_completion(1_000_000);
        let (_, auc) = t.evaluate(EVAL_START, 1_000);
        assert!(auc > 0.55, "holdout AUC {auc}");
    }

    #[test]
    fn elasticity_preserves_exactly_once_and_quality() {
        // The Fig. 8 property in miniature: a chaotic elastic run consumes
        // the same dataset exactly once and converges comparably to a
        // static run.
        let mut stat = trainer(4, 3);
        stat.train_to_completion(1_000_000);
        let (static_loss, static_auc) = stat.evaluate(EVAL_START, 1_500);

        let mut elastic = trainer(4, 3);
        let mut round = 0;
        while !elastic.is_complete() && round < 1_000_000 {
            match round {
                40 => elastic.apply(ElasticEvent::FailWorker(0)),
                60 => elastic.apply(ElasticEvent::AddWorker),
                90 => elastic.apply(ElasticEvent::AddWorker),
                130 => elastic.apply(ElasticEvent::RemoveWorker(1)),
                _ => {}
            }
            if elastic.train_round().is_none() && !elastic.is_complete() {
                panic!("wedged");
            }
            round += 1;
        }
        assert!(elastic.is_complete());
        assert_eq!(elastic.samples_trained(), elastic.config().total_samples);
        let (elastic_loss, elastic_auc) = elastic.evaluate(EVAL_START, 1_500);
        assert!(
            (static_auc - elastic_auc).abs() < 0.05,
            "elasticity broke convergence: static AUC {static_auc}, elastic {elastic_auc}"
        );
        assert!(
            (static_loss - elastic_loss).abs() < 0.1,
            "elasticity broke loss: {static_loss} vs {elastic_loss}"
        );
    }

    #[test]
    fn failing_all_workers_wedges_until_new_worker_arrives() {
        let mut t = trainer(5, 2);
        t.train_round();
        t.apply(ElasticEvent::FailWorker(0));
        t.apply(ElasticEvent::FailWorker(1));
        assert_eq!(t.live_workers(), 0);
        assert!(t.train_round().is_none());
        t.apply(ElasticEvent::AddWorker);
        assert!(t.train_round().is_some());
    }

    #[test]
    fn embedding_memory_grows_during_training() {
        let mut t = trainer(6, 2);
        let before = t.embedding_bytes();
        for _ in 0..20 {
            t.train_round();
        }
        assert!(t.embedding_bytes() > before);
    }

    #[test]
    fn double_fail_is_idempotent() {
        let mut t = trainer(7, 2);
        t.train_round();
        t.apply(ElasticEvent::FailWorker(0));
        t.apply(ElasticEvent::FailWorker(0));
        assert_eq!(t.live_workers(), 1);
        let mut u = trainer(7, 2);
        u.train_round();
        u.apply(ElasticEvent::FailWorker(0));
        assert_eq!(u.live_workers(), 1);
    }

    #[test]
    fn checkpoint_restore_preserves_data_and_quality() {
        // Train halfway, checkpoint, "crash", restore on different worker
        // count, finish: exactly-once accounting and comparable quality.
        let mut t = trainer(20, 3);
        for _ in 0..60 {
            t.train_round();
        }
        let ckpt = t.checkpoint();
        assert!(ckpt.approx_bytes() > 0);
        drop(t); // the original job dies

        let mut restored = RealModeTrainer::from_checkpoint(
            RealModeConfig::small(ModelKind::WideDeep, 20),
            ckpt,
            5,
        );
        restored.train_to_completion(1_000_000);
        assert!(restored.is_complete());
        assert_eq!(
            restored.samples_trained(),
            restored.config().total_samples,
            "restore must not skip or double-count data"
        );
        let (_, auc) = restored.evaluate(EVAL_START, 1_000);
        assert!(auc > 0.55, "restored run failed to learn: {auc}");
    }

    #[test]
    fn restored_model_predicts_identically_at_snapshot() {
        let mut t = trainer(21, 2);
        for _ in 0..30 {
            t.train_round();
        }
        let before = t.evaluate(EVAL_START, 500);
        let ckpt = t.checkpoint();
        let restored = RealModeTrainer::from_checkpoint(
            RealModeConfig::small(ModelKind::WideDeep, 21),
            ckpt,
            2,
        );
        let after = restored.evaluate(EVAL_START, 500);
        assert_eq!(before, after, "restore must be bit-exact");
    }

    #[test]
    #[should_panic(expected = "different model family")]
    fn restore_rejects_wrong_family() {
        let t = trainer(22, 2);
        let ckpt = t.checkpoint();
        let _ =
            RealModeTrainer::from_checkpoint(RealModeConfig::small(ModelKind::Dcn, 22), ckpt, 2);
    }

    #[test]
    fn more_workers_drain_in_fewer_rounds() {
        let mut few = trainer(8, 1);
        let rounds_few = few.train_to_completion(1_000_000);
        let mut many = trainer(8, 6);
        let rounds_many = many.train_to_completion(1_000_000);
        assert!(rounds_many < rounds_few, "{rounds_many} !< {rounds_few}");
    }
}
