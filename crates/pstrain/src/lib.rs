//! The parameter-server training engine: DLRover-RM's execution substrate.
//!
//! At AntGroup, DLRM jobs run as asynchronous parameter-server training on
//! TensorFlow (§2.1). This crate rebuilds that runtime as a deterministic
//! simulation with a real-compute escape hatch:
//!
//! * [`cost`] — the asynchronous iteration cost model. It extends the
//!   analytic throughput model of `dlrover-perfmodel` with *per-pod* state:
//!   heterogeneous worker speeds (stragglers), skewed PS parameter
//!   partitions (hot PSes), and a CPU-GPU hybrid variant for the Table 1
//!   cost comparison.
//! * [`sharding`] — the **dynamic data sharding** service (§5.1): a queue of
//!   small, variably-sized shards checked out by workers on demand, with
//!   progress offsets, straggler-aware shard sizing, failure requeueing, and
//!   an exactly-once consumption guarantee (property-tested).
//! * [`ckpt`] — checkpoint stores (§5.2): a slow remote RDS tier, a fast
//!   in-memory **flash-checkpoint** tier, and the tiered writer that saves to
//!   cache synchronously and flushes to RDS asynchronously.
//! * [`migration`] — the **seamless migration** state machine (§5.2):
//!   timelines for no-intervention, stop-and-restart, and
//!   seamless+flash-checkpoint strategies (Figs. 12–13).
//! * [`engine`] — the virtual-time job engine gluing it together: workers
//!   draw shards and advance at cost-model rates, PS memory grows with the
//!   embedding model, elasticity actions re-shape the job mid-flight.
//! * [`real`] — the real-compute mode: the same sharding/elasticity
//!   semantics driving actual `dlrover-dlrm` gradient descent, used for the
//!   convergence experiment (Fig. 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckpt;
pub mod cost;
pub mod engine;
pub mod migration;
pub mod real;
pub mod rebalance;
pub mod sharding;

pub use ckpt::{CheckpointStore, FlashStore, RdsStore, TieredCheckpointer};
pub use cost::{
    dynamic_sharding_completion_seconds, static_partition_completion_seconds, AsyncCostModel,
    HybridCostModel, PodState, PsPartition,
};
pub use engine::{EngineCheckpoint, EngineEvent, JobProgress, PsTrainingEngine, TrainingJobSpec};
pub use migration::{
    plan_ps_migration, plan_ps_migration_pause, plan_worker_recovery, MigrationStrategy,
    MigrationTimeline, TimelineSegment,
};
pub use real::{ElasticEvent, JobCheckpoint, RealModeConfig, RealModeTrainer};
pub use rebalance::{
    balance_blocks, dlrm_blocks, imbalance, partitions_from_assignment, plan_rebalance, Assignment,
    ParamBlock, RebalancePlan,
};
pub use sharding::{DataShard, ShardId, ShardQueue, ShardingConfig, WorkerProgress};
