//! Dynamic data sharding (§5.1).
//!
//! DLRover-RM "splits the dataset into numerous, much smaller, and
//! variably-sized shards (e.g., 64, 128, or 256 data batches), each labeled
//! with a unique index" and serves them to workers *on demand* from a shards
//! queue. The mechanism delivers three guarantees the experiments rely on:
//!
//! 1. **Exactly-once consumption** — a failed worker's unfinished shards
//!    rejoin the queue; the union of completed shards covers the dataset
//!    with no omission and no duplication (property-tested below).
//! 2. **Straggler pacing** — slow workers receive *smaller* shards so their
//!    gradient-submission cadence matches their peers', bounding staleness.
//! 3. **Fast elasticity** — a new worker just pulls the next shard; no
//!    global data re-partitioning.
//!
//! Progress offsets piggyback on worker heartbeats; the job master uses them
//! for liveness, straggler detection, and completion accounting.

use std::collections::BTreeMap;

use dlrover_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Identifier of a data shard (its queue index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardId(pub u64);

/// A contiguous slice of the training data, in *samples*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataShard {
    /// Unique index.
    pub id: ShardId,
    /// First sample index (the synthetic dataset is indexable, so a shard
    /// is fully described by its range).
    pub start: u64,
    /// Number of samples.
    pub len: u64,
}

impl DataShard {
    /// One past the last sample index.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Sharding configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardingConfig {
    /// Nominal shard size in batches (paper: 64/128/256).
    pub batches_per_shard: u32,
    /// Batch size in samples.
    pub batch_size: u32,
    /// Minimum shard size in batches when shrinking for stragglers.
    pub min_batches_per_shard: u32,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        ShardingConfig { batches_per_shard: 128, batch_size: 512, min_batches_per_shard: 16 }
    }
}

/// Per-worker progress bookkeeping, fed by heartbeats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerProgress {
    /// Samples processed across all completed shards.
    pub completed_samples: u64,
    /// Samples processed within the currently held shard.
    pub offset_in_shard: u64,
    /// Last heartbeat time.
    pub last_heartbeat: SimTime,
    /// Shard currently checked out, if any.
    pub current_shard: Option<DataShard>,
}

impl WorkerProgress {
    /// Total samples this worker has processed (completed + in-flight).
    pub fn total_samples(&self) -> u64 {
        self.completed_samples + self.offset_in_shard
    }
}

/// The shards queue plus worker accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardQueue {
    config: ShardingConfig,
    /// Shards waiting to be served, FIFO (re-queued shards go to the front
    /// so recovery data is consumed promptly).
    pending: std::collections::VecDeque<DataShard>,
    /// Total samples in the epoch.
    total_samples: u64,
    /// Samples covered by *completed* shards.
    completed_samples: u64,
    next_shard_id: u64,
    /// Worker states, keyed by caller-assigned worker ids.
    workers: BTreeMap<u64, WorkerProgress>,
}

impl ShardQueue {
    /// Splits `[0, total_samples)` into shards of the configured size.
    pub fn new(total_samples: u64, config: ShardingConfig) -> Self {
        let shard_samples =
            u64::from(config.batches_per_shard.max(1)) * u64::from(config.batch_size.max(1));
        let mut pending = std::collections::VecDeque::new();
        let mut start = 0;
        let mut id = 0;
        while start < total_samples {
            let len = shard_samples.min(total_samples - start);
            pending.push_back(DataShard { id: ShardId(id), start, len });
            id += 1;
            start += len;
        }
        ShardQueue {
            config,
            pending,
            total_samples,
            completed_samples: 0,
            next_shard_id: id,
            workers: BTreeMap::new(),
        }
    }

    /// Rebuilds a queue from a replayed completion watermark (master
    /// failover, §6): the first `completed_samples` stay completed and the
    /// tail `[completed_samples, total_samples)` is re-sharded fresh.
    /// Progress that was in flight at crash time was never acked, so it is
    /// *not* in the watermark and re-trains — the same bounded-rollback
    /// contract as [`ShardQueue::fail_worker`].
    pub fn resume(total_samples: u64, completed_samples: u64, config: ShardingConfig) -> Self {
        let done = completed_samples.min(total_samples);
        let mut q = ShardQueue::new(total_samples - done, config);
        // Shift the fresh shards up past the watermark so completed ranges
        // plus served shards still tile `[0, total_samples)` exactly.
        for s in q.pending.iter_mut() {
            s.start += done;
        }
        q.total_samples = total_samples;
        q.completed_samples = done;
        q
    }

    /// The sharding configuration.
    pub fn config(&self) -> &ShardingConfig {
        &self.config
    }

    /// Registers a worker (idempotent).
    pub fn register_worker(&mut self, worker: u64, now: SimTime) {
        self.workers.entry(worker).or_insert(WorkerProgress {
            completed_samples: 0,
            offset_in_shard: 0,
            last_heartbeat: now,
            current_shard: None,
        });
    }

    /// Removes a worker *gracefully* (e.g. scale-down): its unfinished data
    /// returns to the queue **minus what it already processed**, so nothing
    /// is trained twice.
    pub fn deregister_worker(&mut self, worker: u64) {
        let Some(state) = self.workers.remove(&worker) else { return };
        if let Some(shard) = state.current_shard {
            // The processed prefix counts as done; the tail is re-queued.
            self.completed_samples += state.offset_in_shard;
            let remaining = shard.len - state.offset_in_shard;
            if remaining > 0 {
                let tail = DataShard {
                    id: ShardId(self.next_shard_id),
                    start: shard.start + state.offset_in_shard,
                    len: remaining,
                };
                self.next_shard_id += 1;
                self.pending.push_front(tail);
            }
        }
    }

    /// Handles a worker *failure*: gradients from the partially processed
    /// shard may be lost, so the **whole** shard re-queues (the paper's
    /// recovery path — "re-joins the unfinished data shard(s) of the failed
    /// worker to the shards queue"). No data is omitted; the partially done
    /// prefix is retrained, which is safe for model quality.
    pub fn fail_worker(&mut self, worker: u64) {
        let Some(state) = self.workers.remove(&worker) else { return };
        if let Some(shard) = state.current_shard {
            self.pending.push_front(shard);
        }
    }

    /// A worker asks for its next shard. Slow workers (`pace < 1`) receive
    /// proportionally smaller shards so they submit gradients on the same
    /// cadence as their peers; `pace = 1` serves the nominal size.
    ///
    /// Returns `None` when the queue is drained.
    pub fn checkout(&mut self, worker: u64, pace: f64, now: SimTime) -> Option<DataShard> {
        self.register_worker(worker, now);
        let state = self.workers.get_mut(&worker).expect("just registered");
        assert!(state.current_shard.is_none(), "worker {worker} already holds a shard");
        let mut shard = self.pending.pop_front()?;

        // Straggler pacing: shrink the shard to match the worker's pace.
        let nominal = u64::from(self.config.batches_per_shard) * u64::from(self.config.batch_size);
        let min = u64::from(self.config.min_batches_per_shard) * u64::from(self.config.batch_size);
        let target = ((nominal as f64) * pace.clamp(0.01, 1.0)).round() as u64;
        let target = target.clamp(min.min(shard.len), shard.len).max(1);
        if target < shard.len {
            let tail = DataShard {
                id: ShardId(self.next_shard_id),
                start: shard.start + target,
                len: shard.len - target,
            };
            self.next_shard_id += 1;
            self.pending.push_front(tail);
            shard.len = target;
        }

        state.current_shard = Some(shard);
        state.offset_in_shard = 0;
        state.last_heartbeat = now;
        Some(shard)
    }

    /// Heartbeat: the worker reports progress within its current shard.
    /// Progress is monotone; regressions are ignored.
    pub fn heartbeat(&mut self, worker: u64, offset_in_shard: u64, now: SimTime) {
        let Some(state) = self.workers.get_mut(&worker) else { return };
        state.last_heartbeat = now;
        if let Some(shard) = state.current_shard {
            state.offset_in_shard = state.offset_in_shard.max(offset_in_shard.min(shard.len));
        }
    }

    /// The worker finished its current shard.
    ///
    /// # Panics
    /// Panics if the worker holds no shard.
    pub fn complete(&mut self, worker: u64, now: SimTime) -> DataShard {
        let state = self.workers.get_mut(&worker).expect("unknown worker");
        let shard = state.current_shard.take().expect("worker holds no shard");
        state.completed_samples += shard.len;
        state.offset_in_shard = 0;
        state.last_heartbeat = now;
        self.completed_samples += shard.len;
        shard
    }

    /// Workers whose last heartbeat is older than `timeout` — the failure
    /// detector's candidates.
    pub fn silent_workers(&self, now: SimTime, timeout: dlrover_sim::SimDuration) -> Vec<u64> {
        self.workers
            .iter()
            .filter(|(_, s)| now.saturating_since(s.last_heartbeat) > timeout)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Straggler detection: workers whose total progress lags the median of
    /// their peers by more than `lag_factor` (e.g. 0.5 = less than half the
    /// median progress).
    pub fn stragglers(&self, lag_factor: f64) -> Vec<u64> {
        if self.workers.len() < 2 {
            return Vec::new();
        }
        let mut totals: Vec<u64> = self.workers.values().map(|s| s.total_samples()).collect();
        totals.sort_unstable();
        let median = totals[totals.len() / 2];
        if median == 0 {
            return Vec::new();
        }
        let threshold = (median as f64 * lag_factor.clamp(0.0, 1.0)) as u64;
        self.workers
            .iter()
            .filter(|(_, s)| s.total_samples() < threshold)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Worker state (for the job master).
    pub fn worker(&self, worker: u64) -> Option<&WorkerProgress> {
        self.workers.get(&worker)
    }

    /// Registered workers.
    pub fn worker_ids(&self) -> Vec<u64> {
        self.workers.keys().copied().collect()
    }

    /// Samples in completed shards.
    pub fn completed_samples(&self) -> u64 {
        self.completed_samples
    }

    /// Samples in the epoch.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Shards still waiting in the queue.
    pub fn pending_shards(&self) -> usize {
        self.pending.len()
    }

    /// A quiesced copy for checkpointing: every in-flight shard is returned
    /// to the queue (as on worker failure) and all workers are dropped, so
    /// a restore sees a consistent frontier — completed work stays
    /// completed, in-flight work will be retrained, nothing is skipped.
    /// This is the "checkpointing unused data shards" half of the paper's
    /// PS-scaling consistency story (§5.2 / related work).
    pub fn quiesced(&self) -> ShardQueue {
        let mut q = self.clone();
        for id in q.worker_ids() {
            q.fail_worker(id);
        }
        q
    }

    /// True when every sample has been consumed by a completed shard and no
    /// worker holds an in-flight shard.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
            && self.workers.values().all(|s| s.current_shard.is_none())
            && self.completed_samples >= self.total_samples
    }

    /// FNV-1a digest of the quiesced coverage state: the sorted pending
    /// `(start, len)` sample ranges plus the completed/total counts.
    /// In-flight shards are first requeued (as in [`Self::quiesced`]), so
    /// two queues with equal digests have trained — and therefore folded
    /// into the embedding tables — exactly the same sample set. This is
    /// the "embedding digest" the differential reconfiguration tests
    /// compare: a reconfiguration must never lose samples (§5.2).
    pub fn coverage_digest(&self) -> u64 {
        fn mix(mut h: u64, v: u64) -> u64 {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        }
        let q = self.quiesced();
        let mut ranges: Vec<(u64, u64)> = q.pending.iter().map(|s| (s.start, s.len)).collect();
        ranges.sort_unstable();
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        h = mix(h, q.total_samples);
        h = mix(h, q.completed_samples);
        for (start, len) in ranges {
            h = mix(h, start);
            h = mix(h, len);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_sim::SimDuration;

    fn cfg(batches: u32, batch: u32) -> ShardingConfig {
        ShardingConfig { batches_per_shard: batches, batch_size: batch, min_batches_per_shard: 2 }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn shards_cover_dataset_without_overlap() {
        let q = ShardQueue::new(100_000, cfg(8, 32));
        let mut covered = 0;
        let mut expected_start = 0;
        for shard in &q.pending {
            assert_eq!(shard.start, expected_start, "gap or overlap");
            covered += shard.len;
            expected_start = shard.end();
        }
        assert_eq!(covered, 100_000);
    }

    #[test]
    fn ragged_tail_shard() {
        let q = ShardQueue::new(1000, cfg(2, 300)); // shard = 600 samples
        let lens: Vec<u64> = q.pending.iter().map(|s| s.len).collect();
        assert_eq!(lens, vec![600, 400]);
    }

    #[test]
    fn checkout_complete_accounting() {
        let mut q = ShardQueue::new(2_000, cfg(2, 500)); // 2 shards of 1000
        let s = q.checkout(1, 1.0, t(0)).unwrap();
        assert_eq!(s.len, 1000);
        assert_eq!(q.completed_samples(), 0);
        q.complete(1, t(10));
        assert_eq!(q.completed_samples(), 1000);
        q.checkout(1, 1.0, t(11)).unwrap();
        q.complete(1, t(20));
        assert!(q.is_drained());
        assert!(q.checkout(1, 1.0, t(21)).is_none());
    }

    #[test]
    fn straggler_gets_smaller_shard() {
        let mut q = ShardQueue::new(100_000, cfg(8, 100)); // nominal 800
        let fast = q.checkout(1, 1.0, t(0)).unwrap();
        let slow = q.checkout(2, 0.25, t(0)).unwrap();
        assert_eq!(fast.len, 800);
        assert_eq!(slow.len, 200, "pace 0.25 should quarter the shard");
        // The split-off tail is not lost.
        q.complete(1, t(1));
        q.complete(2, t(1));
        let next = q.checkout(3, 1.0, t(2)).unwrap();
        assert_eq!(next.start, slow.end(), "tail of split shard served next");
    }

    #[test]
    fn shard_shrink_respects_minimum() {
        let mut q = ShardQueue::new(100_000, cfg(8, 100)); // min = 2 batches = 200
        let tiny = q.checkout(1, 0.0001, t(0)).unwrap();
        assert_eq!(tiny.len, 200);
    }

    #[test]
    fn failed_worker_requeues_whole_shard() {
        let mut q = ShardQueue::new(10_000, cfg(10, 100));
        let s = q.checkout(1, 1.0, t(0)).unwrap();
        q.heartbeat(1, 400, t(5));
        q.fail_worker(1);
        // The shard returns in full; completed samples unchanged.
        assert_eq!(q.completed_samples(), 0);
        let again = q.checkout(2, 1.0, t(6)).unwrap();
        assert_eq!(again, s, "failed shard must be served first and whole");
    }

    #[test]
    fn graceful_deregister_keeps_processed_prefix() {
        let mut q = ShardQueue::new(10_000, cfg(10, 100)); // shard = 1000
        let s = q.checkout(1, 1.0, t(0)).unwrap();
        q.heartbeat(1, 400, t(5));
        q.deregister_worker(1);
        assert_eq!(q.completed_samples(), 400);
        let tail = q.checkout(2, 1.0, t(6)).unwrap();
        assert_eq!(tail.start, s.start + 400);
        assert_eq!(tail.len, 600);
    }

    #[test]
    fn heartbeat_progress_is_monotone_and_bounded() {
        let mut q = ShardQueue::new(10_000, cfg(10, 100));
        q.checkout(1, 1.0, t(0)).unwrap();
        q.heartbeat(1, 500, t(1));
        q.heartbeat(1, 300, t(2)); // regression ignored
        assert_eq!(q.worker(1).unwrap().offset_in_shard, 500);
        q.heartbeat(1, 99_999, t(3)); // clamped to shard length
        assert_eq!(q.worker(1).unwrap().offset_in_shard, 1000);
    }

    #[test]
    fn silent_worker_detection() {
        let mut q = ShardQueue::new(10_000, cfg(10, 100));
        q.register_worker(1, t(0));
        q.register_worker(2, t(0));
        q.heartbeat(1, 0, t(100));
        let silent = q.silent_workers(t(130), SimDuration::from_secs(60));
        assert_eq!(silent, vec![2]);
    }

    #[test]
    fn straggler_detection_by_progress_lag() {
        let mut q = ShardQueue::new(1_000_000, cfg(10, 100));
        for w in 1..=4 {
            q.checkout(w, 1.0, t(0)).unwrap();
        }
        // Workers 1-3 cruise; worker 4 crawls.
        for w in 1..=3u64 {
            q.heartbeat(w, 1000, t(1));
            q.complete(w, t(1));
            q.checkout(w, 1.0, t(1)).unwrap();
            q.heartbeat(w, 500, t(2));
        }
        q.heartbeat(4, 100, t(2));
        let stragglers = q.stragglers(0.5);
        assert_eq!(stragglers, vec![4]);
    }

    #[test]
    fn no_stragglers_with_single_worker() {
        let mut q = ShardQueue::new(10_000, cfg(10, 100));
        q.checkout(1, 1.0, t(0)).unwrap();
        q.heartbeat(1, 10, t(1));
        assert!(q.stragglers(0.5).is_empty());
    }

    #[test]
    fn quiesced_requeues_in_flight_work() {
        let mut q = ShardQueue::new(10_000, cfg(10, 100));
        q.checkout(1, 1.0, t(0)).unwrap();
        q.heartbeat(1, 400, t(1));
        q.checkout(2, 1.0, t(0)).unwrap();
        q.complete(2, t(2));
        let snap = q.quiesced();
        // Completed work is preserved; in-flight shard is back in the queue.
        assert_eq!(snap.completed_samples(), 1000);
        assert_eq!(snap.pending_shards(), q.pending_shards() + 1);
        assert!(snap.worker_ids().is_empty());
        // The original queue is untouched.
        assert_eq!(q.worker_ids().len(), 2);
        // Draining the snapshot covers everything not completed.
        let mut snap = snap;
        let mut covered = snap.completed_samples();
        snap.register_worker(9, t(3));
        while let Some(s) = snap.checkout(9, 1.0, t(3)) {
            covered += s.len;
            snap.complete(9, t(3));
        }
        assert_eq!(covered, 10_000);
    }

    #[test]
    fn resume_from_watermark_tiles_the_tail_exactly() {
        let mut q = ShardQueue::resume(10_000, 3_300, cfg(10, 100));
        assert_eq!(q.completed_samples(), 3_300);
        assert_eq!(q.total_samples(), 10_000);
        assert!(!q.is_drained());
        // Draining the resumed queue covers exactly [3300, 10000).
        let mut cursor = 3_300;
        while let Some(s) = q.checkout(1, 1.0, t(0)) {
            assert_eq!(s.start, cursor, "gap or duplicate at {}", s.start);
            cursor = s.end();
            q.complete(1, t(1));
        }
        assert_eq!(cursor, 10_000);
        assert!(q.is_drained());
        // Degenerate watermarks: complete job and past-the-end clamp.
        assert!(ShardQueue::resume(5_000, 5_000, cfg(10, 100)).is_drained());
        assert!(ShardQueue::resume(5_000, 9_999, cfg(10, 100)).is_drained());
    }

    #[test]
    #[should_panic(expected = "already holds a shard")]
    fn double_checkout_panics() {
        let mut q = ShardQueue::new(10_000, cfg(10, 100));
        q.checkout(1, 1.0, t(0)).unwrap();
        let _ = q.checkout(1, 1.0, t(1));
    }

    #[test]
    fn exactly_once_under_failures_scripted() {
        // Scripted chaos: 3 workers, one fails mid-shard, one deregisters.
        let mut q = ShardQueue::new(50_000, cfg(10, 100));
        let mut consumed: Vec<(u64, u64)> = Vec::new(); // (start, len) of *completed* work
        let mut clock = 0u64;
        q.checkout(1, 1.0, t(clock)).unwrap();
        q.checkout(2, 1.0, t(clock)).unwrap();
        q.checkout(3, 0.5, t(clock)).unwrap();
        // Worker 2 fails after partial progress.
        q.heartbeat(2, 700, t(1));
        q.fail_worker(2);
        // Worker 3 completes, then deregisters mid-second-shard.
        let s3 = q.worker(3).unwrap().current_shard.unwrap();
        consumed.push((s3.start, s3.len));
        q.complete(3, t(2));
        let s3b = q.checkout(3, 1.0, t(2)).unwrap();
        q.heartbeat(3, 300, t(3));
        consumed.push((s3b.start, 300));
        q.deregister_worker(3);
        // Worker 1 grinds through the rest.
        let s1 = q.worker(1).unwrap().current_shard.unwrap();
        consumed.push((s1.start, s1.len));
        q.complete(1, t(4));
        clock = 5;
        while let Some(s) = q.checkout(1, 1.0, t(clock)) {
            consumed.push((s.start, s.len));
            q.complete(1, t(clock));
            clock += 1;
        }
        assert!(q.is_drained());
        // Coverage check: completed ranges tile [0, 50_000) exactly.
        consumed.sort_unstable();
        let mut cursor = 0;
        for (start, len) in consumed {
            assert_eq!(start, cursor, "gap or duplicate at {start}");
            cursor = start + len;
        }
        assert_eq!(cursor, 50_000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dlrover_sim::SimTime;
    use proptest::prelude::*;

    /// Random walks over the queue API must preserve the exactly-once
    /// invariant: when drained, completed ranges tile the dataset.
    #[derive(Debug, Clone)]
    enum Op {
        Checkout(u64, f64),
        Complete(u64),
        Fail(u64),
        Deregister(u64),
        Heartbeat(u64, u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..4, 0.05f64..1.0).prop_map(|(w, p)| Op::Checkout(w, p)),
            (0u64..4).prop_map(Op::Complete),
            (0u64..4).prop_map(Op::Fail),
            (0u64..4).prop_map(Op::Deregister),
            (0u64..4, 0u64..2000).prop_map(|(w, o)| Op::Heartbeat(w, o)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn exactly_once_under_arbitrary_chaos(
            ops in proptest::collection::vec(op_strategy(), 1..200),
            total in 1_000u64..20_000,
        ) {
            let cfg = ShardingConfig {
                batches_per_shard: 4,
                batch_size: 128,
                min_batches_per_shard: 1,
            };
            let mut q = ShardQueue::new(total, cfg);
            let mut completed: Vec<(u64, u64)> = Vec::new();
            let mut clock = 0u64;
            for op in ops {
                clock += 1;
                let now = SimTime::from_secs(clock);
                match op {
                    Op::Checkout(w, pace) => {
                        q.register_worker(w, now);
                        if q.worker(w).unwrap().current_shard.is_none() {
                            let _ = q.checkout(w, pace, now);
                        }
                    }
                    Op::Complete(w) => {
                        if q.worker(w).and_then(|s| s.current_shard).is_some() {
                            let s = q.complete(w, now);
                            completed.push((s.start, s.len));
                        }
                    }
                    Op::Fail(w) => q.fail_worker(w),
                    Op::Deregister(w) => {
                        // Record the kept prefix before the API consumes it.
                        if let Some(state) = q.worker(w) {
                            if let Some(shard) = state.current_shard {
                                let prefix = state.offset_in_shard;
                                if prefix > 0 {
                                    completed.push((shard.start, prefix));
                                }
                            }
                        }
                        q.deregister_worker(w);
                    }
                    Op::Heartbeat(w, off) => q.heartbeat(w, off, now),
                }
            }
            // Drain with one fresh worker.
            let mut clock = clock + 1;
            q.register_worker(99, SimTime::from_secs(clock));
            while let Some(s) = q.checkout(99, 1.0, SimTime::from_secs(clock)) {
                completed.push((s.start, s.len));
                q.complete(99, SimTime::from_secs(clock));
                clock += 1;
            }
            // Any still-held shards belong to workers that never completed:
            // finish them too.
            for w in q.worker_ids() {
                if q.worker(w).and_then(|s| s.current_shard).is_some() {
                    let s = q.complete(w, SimTime::from_secs(clock));
                    completed.push((s.start, s.len));
                }
            }
            prop_assert!(q.is_drained());
            completed.sort_unstable();
            let mut cursor = 0;
            for (start, len) in completed {
                prop_assert_eq!(start, cursor, "gap or duplicate");
                cursor = start + len;
            }
            prop_assert_eq!(cursor, total);
        }
    }
}
