//! Checkpoint stores: remote RDS vs in-memory flash-checkpoint (§5.2).
//!
//! "Checkpointing a job to remote disk storage (RDS) typically takes 5-10
//! minutes" because the RDS bandwidth is shared and throttled; the
//! flash-checkpoint path writes to a distributed caching service instead
//! ("less than 1 second for a 20GB model") and flushes to RDS
//! *asynchronously* for durability. [`TieredCheckpointer`] models both tiers
//! and reports the synchronous (critical-path) and asynchronous components
//! of every save/load.

use dlrover_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A storage tier for checkpoints: bandwidth + fixed latency.
pub trait CheckpointStore {
    /// Time to persist `bytes`.
    fn save_duration(&self, bytes: u64) -> SimDuration;
    /// Time to read back `bytes`.
    fn load_duration(&self, bytes: u64) -> SimDuration;
    /// Human label for reports.
    fn label(&self) -> &'static str;
}

/// Remote disk storage: shared, throttled, durable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RdsStore {
    /// Effective write bandwidth, bytes/s (shared across tenants).
    pub write_bandwidth: f64,
    /// Effective read bandwidth, bytes/s.
    pub read_bandwidth: f64,
    /// Fixed per-operation latency.
    pub base_latency: SimDuration,
}

impl Default for RdsStore {
    fn default() -> Self {
        // Tuned so a 20 GB model takes ~5-7 minutes to save, matching §2.2.
        RdsStore {
            write_bandwidth: 60.0e6,
            read_bandwidth: 120.0e6,
            base_latency: SimDuration::from_secs(15),
        }
    }
}

impl CheckpointStore for RdsStore {
    fn save_duration(&self, bytes: u64) -> SimDuration {
        self.base_latency + SimDuration::from_secs_f64(bytes as f64 / self.write_bandwidth)
    }

    fn load_duration(&self, bytes: u64) -> SimDuration {
        self.base_latency + SimDuration::from_secs_f64(bytes as f64 / self.read_bandwidth)
    }

    fn label(&self) -> &'static str {
        "rds"
    }
}

/// The distributed caching tier (AntGroup uses Alluxio): memory-speed,
/// shared between old and new pods on the same node, *not* durable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashStore {
    /// Write bandwidth, bytes/s.
    pub write_bandwidth: f64,
    /// Read bandwidth, bytes/s.
    pub read_bandwidth: f64,
    /// Fixed per-operation latency.
    pub base_latency: SimDuration,
}

impl Default for FlashStore {
    fn default() -> Self {
        // "less than 1 second for a 20GB model".
        FlashStore {
            write_bandwidth: 25.0e9,
            read_bandwidth: 30.0e9,
            base_latency: SimDuration::from_millis(50),
        }
    }
}

impl CheckpointStore for FlashStore {
    fn save_duration(&self, bytes: u64) -> SimDuration {
        self.base_latency + SimDuration::from_secs_f64(bytes as f64 / self.write_bandwidth)
    }

    fn load_duration(&self, bytes: u64) -> SimDuration {
        self.base_latency + SimDuration::from_secs_f64(bytes as f64 / self.read_bandwidth)
    }

    fn label(&self) -> &'static str {
        "flash"
    }
}

/// Record of the most recent checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointRecord {
    /// Training step at which the checkpoint was taken.
    pub step: u64,
    /// Serialized size.
    pub bytes: u64,
    /// When the synchronous (flash) write completed.
    pub cached_at: SimTime,
    /// When the asynchronous RDS flush will complete (durability point).
    pub durable_at: SimTime,
}

/// Two-tier checkpointer: synchronous flash write + asynchronous RDS flush.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TieredCheckpointer {
    /// Fast tier.
    pub flash: FlashStore,
    /// Durable tier.
    pub rds: RdsStore,
    /// Latest checkpoint, if any.
    pub latest: Option<CheckpointRecord>,
}

impl TieredCheckpointer {
    /// Creates a tiered checkpointer.
    pub fn new(flash: FlashStore, rds: RdsStore) -> Self {
        TieredCheckpointer { flash, rds, latest: None }
    }

    /// Saves a checkpoint of `bytes` at `now`. Returns the *synchronous*
    /// pause (flash write); the RDS flush happens in the background and
    /// completes at the recorded `durable_at`.
    pub fn save(&mut self, step: u64, bytes: u64, now: SimTime) -> SimDuration {
        let sync = self.flash.save_duration(bytes);
        let cached_at = now + sync;
        let durable_at = cached_at + self.rds.save_duration(bytes);
        self.latest = Some(CheckpointRecord { step, bytes, cached_at, durable_at });
        sync
    }

    /// Loads the latest checkpoint at `now`. Prefers the flash tier when the
    /// cached copy exists (migration path); falls back to RDS when only the
    /// durable copy would be available (recovery after cache loss, i.e. the
    /// flash copy is only usable if `now >= cached_at`; RDS only if
    /// `now >= durable_at`).
    ///
    /// Returns `(load_duration, from_flash)` or `None` when nothing usable
    /// exists yet.
    pub fn load(&self, now: SimTime, cache_intact: bool) -> Option<(SimDuration, bool)> {
        let rec = self.latest?;
        if cache_intact && now >= rec.cached_at {
            Some((self.flash.load_duration(rec.bytes), true))
        } else if now >= rec.durable_at {
            Some((self.rds.load_duration(rec.bytes), false))
        } else {
            None
        }
    }

    /// Steps of training lost if the job crashes at `now` and must restore
    /// from the best available copy, given training progressed to
    /// `current_step`.
    pub fn lost_steps(&self, current_step: u64, now: SimTime, cache_intact: bool) -> u64 {
        match self.load(now, cache_intact) {
            Some((_, _)) => {
                let rec = self.latest.expect("load implies record");
                current_step.saturating_sub(rec.step)
            }
            None => current_step,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    #[test]
    fn rds_is_minutes_for_20gb() {
        let rds = RdsStore::default();
        let d = rds.save_duration(20 * GB);
        assert!(
            (4.0..11.0).contains(&d.as_mins_f64()),
            "RDS save of 20GB took {d} — paper says 5-10 minutes"
        );
    }

    #[test]
    fn flash_is_subsecond_for_20gb() {
        let flash = FlashStore::default();
        let d = flash.save_duration(20 * GB);
        assert!(d.as_secs_f64() < 1.0, "flash save of 20GB took {d} — paper says <1s");
    }

    #[test]
    fn flash_load_is_fast_too() {
        let flash = FlashStore::default();
        assert!(flash.load_duration(20 * GB).as_secs_f64() < 1.0);
    }

    #[test]
    fn tiered_save_returns_only_sync_cost() {
        let mut t = TieredCheckpointer::new(FlashStore::default(), RdsStore::default());
        let pause = t.save(1000, 20 * GB, SimTime::from_secs(100));
        assert!(pause.as_secs_f64() < 1.0, "critical path must be the flash write");
        let rec = t.latest.unwrap();
        assert!(rec.durable_at > rec.cached_at, "RDS flush is asynchronous");
        assert!(rec.durable_at.saturating_since(rec.cached_at).as_mins_f64() > 3.0);
    }

    #[test]
    fn load_prefers_flash_when_cache_intact() {
        let mut t = TieredCheckpointer::new(FlashStore::default(), RdsStore::default());
        t.save(1000, 20 * GB, SimTime::from_secs(100));
        let later = SimTime::from_secs(2_000);
        let (d, from_flash) = t.load(later, true).unwrap();
        assert!(from_flash);
        assert!(d.as_secs_f64() < 1.0);
    }

    #[test]
    fn load_falls_back_to_rds_when_cache_lost() {
        let mut t = TieredCheckpointer::new(FlashStore::default(), RdsStore::default());
        t.save(1000, 20 * GB, SimTime::from_secs(100));
        let after_flush = t.latest.unwrap().durable_at + SimDuration::from_secs(1);
        let (d, from_flash) = t.load(after_flush, false).unwrap();
        assert!(!from_flash);
        assert!(d.as_mins_f64() > 2.0, "RDS load should be slow: {d}");
    }

    #[test]
    fn crash_before_durability_with_lost_cache_loses_everything() {
        let mut t = TieredCheckpointer::new(FlashStore::default(), RdsStore::default());
        t.save(1000, 20 * GB, SimTime::from_secs(100));
        // Crash 10s later: flash gone, RDS flush incomplete.
        let crash = SimTime::from_secs(110);
        assert!(t.load(crash, false).is_none());
        assert_eq!(t.lost_steps(1500, crash, false), 1500);
    }

    #[test]
    fn lost_steps_counts_since_checkpoint() {
        let mut t = TieredCheckpointer::new(FlashStore::default(), RdsStore::default());
        t.save(1000, GB, SimTime::from_secs(100));
        let later = SimTime::from_secs(5_000);
        assert_eq!(t.lost_steps(1700, later, true), 700);
    }

    #[test]
    fn no_checkpoint_means_total_loss() {
        let t = TieredCheckpointer::new(FlashStore::default(), RdsStore::default());
        assert!(t.load(SimTime::from_secs(10), true).is_none());
        assert_eq!(t.lost_steps(500, SimTime::from_secs(10), true), 500);
    }

    #[test]
    fn durations_scale_with_size() {
        let rds = RdsStore::default();
        assert!(rds.save_duration(40 * GB) > rds.save_duration(20 * GB));
        let flash = FlashStore::default();
        assert!(flash.save_duration(40 * GB) > flash.save_duration(20 * GB));
    }
}
