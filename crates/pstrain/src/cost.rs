//! Asynchronous iteration cost model with per-pod state.
//!
//! The analytic model of `dlrover-perfmodel` describes a *homogeneous* job.
//! Real jobs are not homogeneous: workers land on slow nodes, PSes receive
//! skewed tensor partitions ("The size of tensor-based parameters assigned
//! to PSes can differ substantially, resulting in unbalanced workloads",
//! §4.3). This module extends the model:
//!
//! * each **worker** `j` has an effective compute rate `λ_j · v_j`
//!   (allocation × node speed); in asynchronous PS training it iterates
//!   independently, so job throughput is the *sum* of per-worker rates
//!   rather than `w/T_iter`;
//! * each **PS** `i` has a parameter share `s_i` and effective rate
//!   `λ_i · v_i`; server-side phases are gated by the *bottleneck* PS,
//!   `max_i s_i / (λ_i · v_i)` — a 3 %-CPU PS therefore drags every worker,
//!   which is exactly the hot-PS pathology of Fig. 12.
//!
//! [`HybridCostModel`] adds the CPU-GPU variant for Table 1: GPUs speed up
//! the dense compute but pay host-device embedding transfer, so GPU
//! utilisation stays marginal and samples/$ favours CPUs.

use dlrover_perfmodel::{ModelCoefficients, WorkloadConstants};
use serde::{Deserialize, Serialize};

/// Per-pod effective capacity: allocation × node speed × contention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PodState {
    /// Allocated CPU cores.
    pub cpu: f64,
    /// Node speed / contention factor (1.0 nominal; 0.03 = the paper's
    /// injected straggler).
    pub speed: f64,
}

impl PodState {
    /// A nominal pod with `cpu` cores.
    pub fn new(cpu: f64) -> Self {
        PodState { cpu, speed: 1.0 }
    }

    /// Effective compute rate.
    pub fn effective_cpu(&self) -> f64 {
        (self.cpu * self.speed).max(1e-3)
    }
}

/// A parameter-server partition: its parameter share and pod state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsPartition {
    /// Fraction of model parameters hosted (shares sum to 1).
    pub share: f64,
    /// Pod capacity.
    pub pod: PodState,
}

/// The per-pod asynchronous cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncCostModel {
    /// Ground-truth coefficients (the simulator's physics).
    pub coefficients: ModelCoefficients,
    /// Workload constants (M, B, D).
    pub constants: WorkloadConstants,
    /// Mini-batch size per worker.
    pub batch_size: u32,
}

impl AsyncCostModel {
    /// Creates a cost model.
    pub fn new(
        coefficients: ModelCoefficients,
        constants: WorkloadConstants,
        batch_size: u32,
    ) -> Self {
        AsyncCostModel { coefficients, constants, batch_size: batch_size.max(1) }
    }

    /// Balanced partitions for `p` PSes with `cpu` cores each.
    pub fn balanced_partitions(p: u32, cpu: f64) -> Vec<PsPartition> {
        let p = p.max(1);
        (0..p).map(|_| PsPartition { share: 1.0 / f64::from(p), pod: PodState::new(cpu) }).collect()
    }

    /// Skewed partitions: the first PS holds `hot_share`, the rest split the
    /// remainder evenly (the tensor-skew pathology).
    pub fn skewed_partitions(p: u32, cpu: f64, hot_share: f64) -> Vec<PsPartition> {
        let p = p.max(1);
        let hot = hot_share.clamp(1.0 / f64::from(p), 1.0);
        let rest = if p > 1 { (1.0 - hot) / f64::from(p - 1) } else { 0.0 };
        (0..p)
            .map(|i| PsPartition {
                share: if i == 0 { hot } else { rest },
                pod: PodState::new(cpu),
            })
            .collect()
    }

    /// The PS bottleneck factor: `p_eff` such that a balanced homogeneous
    /// job gets `p_eff = p·λ_p`, and any skew or slow PS reduces it.
    /// Server-side phase times scale as `1 / p_eff`.
    fn ps_effective_capacity(&self, partitions: &[PsPartition]) -> f64 {
        debug_assert!(!partitions.is_empty(), "job needs at least one PS");
        // Balanced case: share = 1/p, rate = λ_p → s/(λ·v) = 1/(p·λ_p).
        // The slowest partition gates the phase.
        let worst = partitions
            .iter()
            .map(|ps| ps.share.max(1e-9) / ps.pod.effective_cpu())
            .fold(0.0f64, f64::max);
        1.0 / worst
    }

    /// How much slower the server side runs than a balanced homogeneous
    /// layout with the same total PS CPU (1.0 = balanced; > 1 = degraded by
    /// skew or a slow PS pod).
    fn ps_slowdown(&self, partitions: &[PsPartition]) -> f64 {
        let p = partitions.len() as f64;
        let balanced_capacity = p * self.mean_ps_cpu(partitions);
        (balanced_capacity / self.ps_effective_capacity(partitions)).max(1.0)
    }

    /// The five phase times `[t_grad, t_upd, t_sync, t_emb, β]` of one
    /// iteration of `worker` under the given PS layout — the single source
    /// of truth shared by [`Self::worker_iter_time`] and
    /// [`Self::phase_fractions`].
    ///
    /// Server phases: the homogeneous `1/(p·λ_p)` becomes the bottleneck
    /// capacity, and the lookup phase inherits the same slowdown (a slow or
    /// overloaded PS serves its partition's lookups late). `T_sync` is
    /// bandwidth-bound and keeps the plain `1/p`.
    pub fn phase_times(
        &self,
        worker: &PodState,
        partitions: &[PsPartition],
        workers: u32,
    ) -> [f64; 5] {
        let _p = dlrover_telemetry::prof::scope("cost/phase_times");
        let c = self.coefficients;
        let m = f64::from(self.batch_size);
        let w = f64::from(workers.max(1));
        let ps_cap = self.ps_effective_capacity(partitions);
        let p = partitions.len() as f64;
        [
            c.alpha_grad * m / worker.effective_cpu(),
            c.alpha_upd * w / ps_cap,
            c.alpha_sync * self.constants.model_size * w / (p * self.constants.bandwidth),
            c.alpha_emb * m * self.constants.embedding_dim / p * self.ps_slowdown(partitions),
            c.beta_total,
        ]
    }

    /// Per-iteration time of worker `j` (seconds): its own gradient
    /// computation plus the shared server-side phases.
    ///
    /// `worker` is the worker pod, `partitions` the PS layout, `workers`
    /// the total worker count (server load scales with it).
    pub fn worker_iter_time(
        &self,
        worker: &PodState,
        partitions: &[PsPartition],
        workers: u32,
    ) -> f64 {
        self.phase_times(worker, partitions, workers).iter().sum()
    }

    /// [`Self::phase_times`] transformed by a Rubick-style execution plan
    /// via [`dlrover_perfmodel::adjust_phases`] — the *same* function the
    /// optimizer prices plans with, so reconfiguration predictions come
    /// true in simulation. On the default plan this is bit-identical to
    /// [`Self::phase_times`] (`adjust_phases` early-returns).
    pub fn phase_times_exec(
        &self,
        worker: &PodState,
        partitions: &[PsPartition],
        workers: u32,
        exec: &dlrover_perfmodel::ExecPlan,
    ) -> [f64; 5] {
        dlrover_perfmodel::adjust_phases(
            exec,
            self.phase_times(worker, partitions, workers),
            workers,
        )
    }

    /// Per-iteration time of `worker` under an execution plan; equals
    /// [`Self::worker_iter_time`] bit-for-bit on the default plan.
    pub fn worker_iter_time_exec(
        &self,
        worker: &PodState,
        partitions: &[PsPartition],
        workers: u32,
        exec: &dlrover_perfmodel::ExecPlan,
    ) -> f64 {
        self.phase_times_exec(worker, partitions, workers, exec).iter().sum()
    }

    fn mean_ps_cpu(&self, partitions: &[PsPartition]) -> f64 {
        partitions.iter().map(|p| p.pod.effective_cpu()).sum::<f64>() / partitions.len() as f64
    }

    /// Job throughput in samples/second: asynchronous workers iterate
    /// independently, so rates add.
    pub fn throughput(&self, workers: &[PodState], partitions: &[PsPartition]) -> f64 {
        let _p = dlrover_telemetry::prof::scope("cost/throughput");
        dlrover_telemetry::prof::add_items(workers.len() as u64);
        let n = workers.len() as u32;
        workers
            .iter()
            .map(|wk| f64::from(self.batch_size) / self.worker_iter_time(wk, partitions, n))
            .sum()
    }

    /// Per-phase share of one (homogeneous) iteration — drives Fig. 1a.
    /// Returns `(grad, update, sync, lookup, overhead)` fractions.
    pub fn phase_fractions(
        &self,
        worker: &PodState,
        partitions: &[PsPartition],
        workers: u32,
    ) -> [f64; 5] {
        let parts = self.phase_times(worker, partitions, workers);
        let total: f64 = parts.iter().sum();
        parts.map(|t| t / total)
    }

    /// CPU utilisation of one worker: busy core-seconds per iteration over
    /// allocated core-seconds. Gradient computation costs `α_grad·m` busy
    /// core-seconds regardless of the core count, so over-provisioning CPU
    /// directly lowers utilisation — the §2.2 pathology.
    pub fn worker_utilisation(
        &self,
        worker: &PodState,
        partitions: &[PsPartition],
        workers: u32,
    ) -> f64 {
        let busy = self.coefficients.alpha_grad * f64::from(self.batch_size);
        let iter = self.worker_iter_time(worker, partitions, workers);
        (busy / (worker.cpu.max(1e-9) * iter)).min(1.0)
    }

    /// Per-PS CPU utilisation: each PS's share of the server-side busy
    /// core-seconds per iteration *round* (every worker completing one
    /// iteration) over its allocated core-seconds. Each worker-iteration
    /// costs the server one parameter update (`α_upd`) and one batch of
    /// lookups (`α_emb·m·D`), so both terms scale with the worker count.
    pub fn ps_utilisation(&self, workers: &[PodState], partitions: &[PsPartition]) -> Vec<f64> {
        let n = workers.len() as u32;
        if workers.is_empty() {
            return vec![0.0; partitions.len()];
        }
        let mean_iter =
            workers.iter().map(|w| self.worker_iter_time(w, partitions, n)).sum::<f64>()
                / workers.len() as f64;
        let c = self.coefficients;
        let server_busy = f64::from(n)
            * (c.alpha_upd
                + c.alpha_emb * f64::from(self.batch_size) * self.constants.embedding_dim);
        partitions
            .iter()
            .map(|ps| (server_busy * ps.share / (ps.pod.cpu.max(1e-9) * mean_iter)).min(1.0))
            .collect()
    }

    /// Whole-job CPU utilisation: busy core-seconds over allocated
    /// core-seconds, across workers and PSes.
    pub fn job_cpu_utilisation(&self, workers: &[PodState], partitions: &[PsPartition]) -> f64 {
        if workers.is_empty() {
            return 0.0;
        }
        let n = workers.len() as u32;
        let total_cores: f64 = workers.iter().map(|w| w.cpu).sum::<f64>()
            + partitions.iter().map(|p| p.pod.cpu).sum::<f64>();
        if total_cores <= 0.0 {
            return 0.0;
        }
        let worker_busy: f64 =
            workers.iter().map(|w| self.worker_utilisation(w, partitions, n) * w.cpu).sum();
        let ps_busy: f64 = self
            .ps_utilisation(workers, partitions)
            .iter()
            .zip(partitions)
            .map(|(u, p)| u * p.pod.cpu)
            .sum();
        ((worker_busy + ps_busy) / total_cores).min(1.0)
    }

    /// Staleness bound of the slowest worker: how many iterations the
    /// fastest worker completes per slow-worker iteration. Values ≫ 1 mean
    /// the straggler submits badly stale gradients (§5.1).
    pub fn staleness_ratio(&self, workers: &[PodState], partitions: &[PsPartition]) -> f64 {
        let n = workers.len() as u32;
        let times: Vec<f64> =
            workers.iter().map(|wk| self.worker_iter_time(wk, partitions, n)).collect();
        let fastest = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let slowest = times.iter().cloned().fold(0.0f64, f64::max);
        slowest / fastest
    }
}

/// Completion time (seconds) of `remaining_samples` under *static* data
/// partitioning: each worker owns an equal slice up front, so the job ends
/// when the **slowest** worker finishes its slice. This is the baseline
/// semantics dynamic data sharding replaces — a straggler that processes at
/// 3 % speed stretches the whole job by its private tail, while under the
/// shards-queue model healthy workers absorb the load.
///
/// `rates` are per-worker sample rates (samples/second).
///
/// # Panics
/// Panics if `rates` is empty.
pub fn static_partition_completion_seconds(remaining_samples: f64, rates: &[f64]) -> f64 {
    assert!(!rates.is_empty(), "need at least one worker");
    let slice = remaining_samples.max(0.0) / rates.len() as f64;
    rates.iter().map(|&r| slice / r.max(1e-9)).fold(0.0f64, f64::max)
}

/// Completion time (seconds) of `remaining_samples` under *dynamic* data
/// sharding: work flows to whoever is free, so the aggregate rate is the
/// sum of per-worker rates (plus at most one shard of tail effect, which we
/// neglect at the fleet scale this is used for).
pub fn dynamic_sharding_completion_seconds(remaining_samples: f64, rates: &[f64]) -> f64 {
    let total: f64 = rates.iter().sum();
    remaining_samples.max(0.0) / total.max(1e-9)
}

/// CPU-GPU hybrid training cost (Table 1): GPUs accelerate the dense part
/// but embeddings stay on CPU, adding a host↔device transfer phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridCostModel {
    /// GPU speed-up of the gradient-computation phase.
    pub gpu_grad_speedup: f64,
    /// Host↔device embedding transfer, as a fraction of the baseline
    /// iteration time (the paper cites up to 22 % of training time).
    pub transfer_fraction: f64,
    /// Instance price per hour, USD (e.g. p3.2xlarge ≈ $3.06 + host).
    pub hybrid_price_per_hour: f64,
    /// CPU-only instance price per hour, USD (e.g. c5.4xlarge ≈ $0.68).
    pub cpu_price_per_hour: f64,
}

impl Default for HybridCostModel {
    fn default() -> Self {
        HybridCostModel {
            // A datacenter GPU accelerates the dense math by 1-2 orders of
            // magnitude over a handful of CPU cores — which is precisely
            // why it then sits idle during lookups and transfers.
            gpu_grad_speedup: 30.0,
            transfer_fraction: 0.22,
            hybrid_price_per_hour: 3.59,
            cpu_price_per_hour: 0.53,
        }
    }
}

/// Outcome of one Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridComparison {
    /// CPU-only training time for the workload, hours.
    pub cpu_hours: f64,
    /// Hybrid training time, hours.
    pub hybrid_hours: f64,
    /// CPU-only samples per dollar (millions/USD).
    pub cpu_samples_per_usd: f64,
    /// Hybrid samples per dollar (millions/USD).
    pub hybrid_samples_per_usd: f64,
    /// Mean GPU utilisation under the hybrid plan.
    pub gpu_utilisation: f64,
}

impl HybridCostModel {
    /// Compares CPU-only vs hybrid on a workload of `total_samples` with the
    /// given homogeneous job cost model.
    pub fn compare(
        &self,
        cost: &AsyncCostModel,
        workers: &[PodState],
        partitions: &[PsPartition],
        total_samples: f64,
    ) -> HybridComparison {
        let n = workers.len() as u32;
        let cpu_thp = cost.throughput(workers, partitions);
        let cpu_hours = total_samples / cpu_thp / 3_600.0;

        // Hybrid: shrink t_grad by the GPU speed-up, add transfer overhead.
        let c = cost.coefficients;
        let m = f64::from(cost.batch_size);
        let hybrid_thp: f64 = workers
            .iter()
            .map(|wk| {
                let base = cost.worker_iter_time(wk, partitions, n);
                let t_grad = c.alpha_grad * m / wk.effective_cpu();
                let t_grad_gpu = t_grad / self.gpu_grad_speedup.max(1.0);
                let transfer = base * self.transfer_fraction;
                m / (base - t_grad + t_grad_gpu + transfer)
            })
            .sum();
        let hybrid_hours = total_samples / hybrid_thp / 3_600.0;

        // GPU busy only during the (shrunken) grad phase.
        let gpu_util: f64 = workers
            .iter()
            .map(|wk| {
                let base = cost.worker_iter_time(wk, partitions, n);
                let t_grad = c.alpha_grad * m / wk.effective_cpu();
                let t_grad_gpu = t_grad / self.gpu_grad_speedup.max(1.0);
                let hybrid_iter = base - t_grad + t_grad_gpu + base * self.transfer_fraction;
                t_grad_gpu / hybrid_iter
            })
            .sum::<f64>()
            / workers.len() as f64;

        HybridComparison {
            cpu_hours,
            hybrid_hours,
            cpu_samples_per_usd: total_samples / (cpu_hours * self.cpu_price_per_hour) / 1e6,
            hybrid_samples_per_usd: total_samples
                / (hybrid_hours * self.hybrid_price_per_hour)
                / 1e6,
            gpu_utilisation: gpu_util,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AsyncCostModel {
        AsyncCostModel::new(ModelCoefficients::paper_reference(), WorkloadConstants::default(), 512)
    }

    fn uniform_workers(n: usize, cpu: f64) -> Vec<PodState> {
        vec![PodState::new(cpu); n]
    }

    #[test]
    fn balanced_partitions_sum_to_one() {
        let p = AsyncCostModel::balanced_partitions(4, 8.0);
        let total: f64 = p.iter().map(|x| x.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn skewed_partitions_sum_to_one() {
        let p = AsyncCostModel::skewed_partitions(4, 8.0, 0.7);
        let total: f64 = p.iter().map(|x| x.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(p[0].share > p[1].share);
    }

    #[test]
    fn throughput_increases_with_workers_sublinearly() {
        let m = model();
        let ps = AsyncCostModel::balanced_partitions(4, 8.0);
        let t2 = m.throughput(&uniform_workers(2, 8.0), &ps);
        let t8 = m.throughput(&uniform_workers(8, 8.0), &ps);
        assert!(t8 > t2);
        assert!(t8 < 4.0 * t2, "server contention must bite");
    }

    #[test]
    fn slow_ps_gates_every_worker() {
        let m = model();
        let healthy = AsyncCostModel::balanced_partitions(4, 8.0);
        let mut hot = healthy.clone();
        hot[0].pod.speed = 0.03; // the paper's injected hot PS
        let workers = uniform_workers(8, 8.0);
        let thp_healthy = m.throughput(&workers, &healthy);
        let thp_hot = m.throughput(&workers, &hot);
        assert!(
            thp_hot < thp_healthy * 0.4,
            "hot PS should crater throughput: {thp_hot} vs {thp_healthy}"
        );
    }

    #[test]
    fn skewed_share_behaves_like_slow_ps() {
        let m = model();
        let workers = uniform_workers(8, 8.0);
        let balanced = m.throughput(&workers, &AsyncCostModel::balanced_partitions(4, 8.0));
        let skewed = m.throughput(&workers, &AsyncCostModel::skewed_partitions(4, 8.0, 0.8));
        assert!(skewed < balanced * 0.6, "skew {skewed} vs balanced {balanced}");
    }

    #[test]
    fn slow_worker_hurts_only_its_own_rate() {
        let m = model();
        let ps = AsyncCostModel::balanced_partitions(4, 8.0);
        let healthy = uniform_workers(8, 8.0);
        let mut one_slow = healthy.clone();
        one_slow[0].speed = 0.03;
        let thp_healthy = m.throughput(&healthy, &ps);
        let thp_slow = m.throughput(&one_slow, &ps);
        // Losing one of eight workers' compute costs ≈ 1/8, not everything —
        // async training isolates worker stragglers (unlike sync training).
        assert!(thp_slow > thp_healthy * 0.8);
        assert!(thp_slow < thp_healthy);
    }

    #[test]
    fn straggler_staleness_ratio_explodes() {
        let m = model();
        let ps = AsyncCostModel::balanced_partitions(4, 8.0);
        let healthy = uniform_workers(8, 8.0);
        assert!((m.staleness_ratio(&healthy, &ps) - 1.0).abs() < 1e-9);
        let mut one_slow = healthy;
        one_slow[0].speed = 0.03;
        assert!(m.staleness_ratio(&one_slow, &ps) > 3.0);
    }

    #[test]
    fn lookup_fraction_lands_in_paper_band() {
        // Fig. 1a: lookups take 30-48 % of iteration time for typical jobs.
        let m = model();
        let ps = AsyncCostModel::balanced_partitions(4, 8.0);
        let f = m.phase_fractions(&PodState::new(8.0), &ps, 8);
        let lookup = f[3];
        assert!(
            (0.25..0.55).contains(&lookup),
            "lookup fraction {lookup} outside plausible band; fractions {f:?}"
        );
        let total: f64 = f.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_ps_cpu_raises_throughput() {
        let m = model();
        let workers = uniform_workers(8, 8.0);
        let small = m.throughput(&workers, &AsyncCostModel::balanced_partitions(4, 2.0));
        let big = m.throughput(&workers, &AsyncCostModel::balanced_partitions(4, 16.0));
        assert!(big > small);
    }

    #[test]
    fn hybrid_is_faster_but_less_cost_efficient() {
        // Table 1's shape: hybrid shortens wall-clock but loses on
        // samples/$, and GPU utilisation is tiny.
        let m = model();
        let workers = uniform_workers(4, 8.0);
        let ps = AsyncCostModel::balanced_partitions(2, 8.0);
        let h = HybridCostModel::default();
        let cmp = h.compare(&m, &workers, &ps, 5.0e8);
        assert!(cmp.hybrid_hours < cmp.cpu_hours, "{cmp:?}");
        assert!(cmp.cpu_samples_per_usd > cmp.hybrid_samples_per_usd, "{cmp:?}");
        assert!(cmp.gpu_utilisation < 0.10, "GPU util {}", cmp.gpu_utilisation);
    }

    #[test]
    fn static_partitioning_is_straggler_bound() {
        // 8 workers at 100 samples/s, one at 3: the slow slice dominates.
        let mut rates = vec![100.0; 7];
        rates.push(3.0);
        let remaining = 80_000.0;
        let static_t = static_partition_completion_seconds(remaining, &rates);
        let dynamic_t = dynamic_sharding_completion_seconds(remaining, &rates);
        assert!((static_t - (remaining / 8.0) / 3.0).abs() < 1e-9);
        assert!(static_t > 2.5 * dynamic_t, "static {static_t} should dwarf dynamic {dynamic_t}");
    }

    #[test]
    fn homogeneous_workers_tie_both_schemes() {
        let rates = vec![50.0; 4];
        let s = static_partition_completion_seconds(10_000.0, &rates);
        let d = dynamic_sharding_completion_seconds(10_000.0, &rates);
        assert!((s - d).abs() < 1e-9);
    }

    #[test]
    fn zero_remaining_is_instant() {
        let rates = vec![10.0, 20.0];
        assert_eq!(static_partition_completion_seconds(0.0, &rates), 0.0);
        assert_eq!(dynamic_sharding_completion_seconds(0.0, &rates), 0.0);
    }

    #[test]
    fn overprovisioned_cpu_lowers_utilisation() {
        let m = model();
        let ps4 = AsyncCostModel::balanced_partitions(2, 4.0);
        let ps32 = AsyncCostModel::balanced_partitions(2, 32.0);
        let lean = m.job_cpu_utilisation(&uniform_workers(4, 4.0), &ps4);
        let fat = m.job_cpu_utilisation(&uniform_workers(4, 32.0), &ps32);
        assert!(fat < lean, "8x CPU should crater utilisation: {fat} !< {lean}");
        assert!((0.0..=1.0).contains(&lean));
        assert!((0.0..=1.0).contains(&fat));
    }

    #[test]
    fn hot_ps_runs_at_full_utilisation() {
        let m = model();
        let mut parts = AsyncCostModel::balanced_partitions(4, 8.0);
        parts[0].pod = PodState { cpu: 0.3, speed: 1.0 }; // starved PS
        let utils = m.ps_utilisation(&uniform_workers(8, 8.0), &parts);
        assert!(utils[0] > utils[1], "starved PS should be busier: {utils:?}");
    }

    #[test]
    fn degenerate_inputs_survive() {
        let m = model();
        let ps = AsyncCostModel::balanced_partitions(1, 0.0);
        let workers = vec![PodState { cpu: 0.0, speed: 0.0 }];
        let t = m.throughput(&workers, &ps);
        assert!(t.is_finite());
        assert!(t >= 0.0);
    }
}
