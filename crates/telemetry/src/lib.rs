//! Structured telemetry for the DLRover-RM reproduction: a virtual-time
//! event log plus a metrics registry, threaded through every layer of the
//! stack.
//!
//! Two design rules make it safe to leave on by default:
//!
//! * **Deterministic.** Events are stamped with [`SimTime`] (never the wall
//!   clock), maps are `BTreeMap`s, and sequence numbers are assigned at
//!   append time — so two runs with the same seed serialize to
//!   byte-identical logs (the determinism integration tests enforce this).
//! * **Bounded.** The event log is a ring buffer ([`EventLog`]) and time
//!   series aggregate into fixed-width virtual-time buckets, so a 12-month
//!   fleet trace costs the same memory as a 10-minute one.
//!
//! The [`Telemetry`] handle is a cheaply clonable reference to one shared
//! sink: the runner creates it, hands clones to the job master, engine,
//! cluster, and brain, and each component records into the same interleaved
//! log. Components constructed without a caller-provided handle get a
//! private default sink, which keeps instrumentation unconditional (no
//! `Option` plumbing) at the cost of an `Arc` per component.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod log;
pub mod metrics;
pub mod oracle;
pub mod prof;
pub mod span;

pub use event::{Event, EventKind, MigrationKind};
pub use log::{diff_jsonl, EventLog, LogDiff, DEFAULT_EVENT_CAPACITY};
pub use metrics::{Histogram, MetricsRegistry, SeriesPoint, TimeSeries};
pub use oracle::{GroundTruth, Invariant, InvariantCheck, Oracle, OracleConfig, OracleReport};
pub use span::{parse_spans_jsonl, Span, SpanCategory, SpanId, SpanLog, DEFAULT_SPAN_CAPACITY};

use dlrover_sim::SimTime;
use serde::Serialize;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Inner {
    log: EventLog,
    metrics: MetricsRegistry,
    spans: SpanLog,
}

/// A shared telemetry sink. Clones are handles to the *same* log and
/// registry; see the crate docs for the threading model.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<Mutex<Inner>>,
}

impl Telemetry {
    /// A sink whose event log holds at most `capacity` events.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Arc::new(Mutex::new(Inner {
                log: EventLog::with_capacity(capacity),
                metrics: MetricsRegistry::default(),
                spans: SpanLog::default(),
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("telemetry lock poisoned")
    }

    /// Pre-allocates the event log for about `hint` more events (bounded
    /// by the ring capacity). An allocation hint only — see
    /// [`EventLog::reserve`]; recorded state and serialized bytes are
    /// unaffected.
    pub fn reserve_events(&self, hint: usize) {
        self.lock().log.reserve(hint);
    }

    /// Records an event stamped `at`.
    pub fn record(&self, at: SimTime, kind: EventKind) {
        let _p = prof::scope("telemetry/record");
        self.lock().log.record(at, kind);
    }

    /// Increments counter `name` by `n`.
    pub fn count(&self, name: &str, n: u64) {
        self.lock().metrics.count(name, n);
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge(&self, name: &str, value: f64) {
        self.lock().metrics.gauge(name, value);
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        self.lock().metrics.observe(name, value);
    }

    /// Appends a time-series sample.
    pub fn sample(&self, name: &str, at: SimTime, value: f64) {
        self.lock().metrics.sample(name, at, value);
    }

    /// Total events ever recorded.
    pub fn event_count(&self) -> u64 {
        self.lock().log.total_recorded()
    }

    /// Current counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().metrics.counter(name)
    }

    /// Serializes the retained events as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        self.lock().log.to_jsonl()
    }

    /// Opens a span starting at `at`; pair with [`Self::span_close`].
    pub fn span_open(
        &self,
        at: SimTime,
        cat: SpanCategory,
        label: &str,
        track: u64,
        parent: Option<SpanId>,
    ) -> SpanId {
        self.lock().spans.open(at, cat, label, track, parent)
    }

    /// Closes an open span at `at` (unmatched ids are counted, not fatal).
    pub fn span_close(&self, at: SimTime, id: SpanId) {
        self.lock().spans.close(at, id);
    }

    /// Records an already-complete span `[start, end]`.
    pub fn span_complete(
        &self,
        start: SimTime,
        end: SimTime,
        cat: SpanCategory,
        label: &str,
        track: u64,
        parent: Option<SpanId>,
    ) -> SpanId {
        self.lock().spans.complete(start, end, cat, label, track, parent)
    }

    /// Total spans ever closed.
    pub fn span_count(&self) -> u64 {
        self.lock().spans.total_closed()
    }

    /// Serializes the retained closed spans as JSON Lines.
    pub fn spans_to_jsonl(&self) -> String {
        self.lock().spans.to_jsonl()
    }

    /// Absorbs another sink's state into this one (`other` is left
    /// untouched). Events are re-sequenced and span ids remapped in absorb
    /// order; see [`EventLog::absorb_owned`], [`SpanLog::absorb_owned`],
    /// and [`MetricsRegistry::absorb_owned`] for the per-store rules.
    ///
    /// Cost: one snapshot copy of `other`'s stores; the merge itself then
    /// moves that snapshot in (bulk appends + in-place remaps), so events
    /// and span labels are copied once, not twice.
    ///
    /// Locking: `other` is snapshotted under its own lock *before* this
    /// sink's lock is taken, so the two locks are never held together and
    /// concurrent absorbs cannot deadlock. Absorbing a sink into itself is
    /// a no-op.
    pub fn absorb(&self, other: &Telemetry) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let _p = prof::scope("telemetry/absorb");
        let (log, metrics, spans) = {
            let theirs = other.lock();
            (theirs.log.clone(), theirs.metrics.clone(), theirs.spans.clone())
        };
        prof::add_items(log.len() as u64 + spans.len() as u64);
        let mut inner = self.lock();
        inner.log.absorb_owned(log);
        inner.metrics.absorb_owned(metrics);
        inner.spans.absorb_owned(spans);
    }

    /// Merges per-unit sinks into one fresh sink, in the given order.
    ///
    /// This is the reduction step of the parallel experiment engine:
    /// callers pass unit sinks sorted by unit key, so the merged log is a
    /// pure function of the unit results — byte-identical however many
    /// threads produced them. The merged sink has *default* capacities: if
    /// the parts together retain more events/spans than one sink holds,
    /// the merge evicts oldest-first like any other recording (the drops
    /// are counted and surface in the summary line), keeping merged
    /// artefacts the same bounded size as serial ones.
    pub fn merge_ordered<'a>(parts: impl IntoIterator<Item = &'a Telemetry>) -> Telemetry {
        let merged = Telemetry::default();
        for part in parts {
            merged.absorb(part);
        }
        merged
    }

    /// An owned, serializable snapshot of the sink's current state.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.lock();
        TelemetrySnapshot {
            events: inner.log.iter().cloned().collect(),
            total_events: inner.log.total_recorded(),
            dropped_events: inner.log.dropped(),
            spans: inner.spans.iter().cloned().collect(),
            total_spans: inner.spans.total_closed(),
            dropped_spans: inner.spans.dropped(),
            metrics: inner.metrics.clone(),
        }
    }

    /// A compact run summary (event totals + top kinds).
    pub fn summary(&self) -> TelemetrySummary {
        let inner = self.lock();
        TelemetrySummary {
            total_events: inner.log.total_recorded(),
            dropped_events: inner.log.dropped(),
            total_spans: inner.spans.total_closed(),
            dropped_spans: inner.spans.dropped(),
            top_kinds: inner
                .log
                .top_kinds(5)
                .into_iter()
                .map(|(k, n)| (k.to_string(), n))
                .collect(),
            counters: inner.metrics.counters.clone(),
            hist_p95: inner
                .metrics
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.p95()))
                .collect(),
        }
    }
}

/// Owned copy of a sink's state, for export next to experiment results.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetrySnapshot {
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Total events ever recorded (retained + evicted).
    pub total_events: u64,
    /// Events evicted by the ring buffer.
    pub dropped_events: u64,
    /// Retained closed spans, close order (oldest first).
    pub spans: Vec<Span>,
    /// Total spans ever closed (retained + evicted).
    pub total_spans: u64,
    /// Closed spans evicted by the ring buffer.
    pub dropped_spans: u64,
    /// The metrics registry.
    pub metrics: MetricsRegistry,
}

/// One-line-able summary of a run's telemetry.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetrySummary {
    /// Total events ever recorded.
    pub total_events: u64,
    /// Events evicted by the ring buffer.
    pub dropped_events: u64,
    /// Total spans ever closed.
    pub total_spans: u64,
    /// Closed spans evicted by the ring buffer.
    pub dropped_spans: u64,
    /// Up to five most frequent event kinds, `(name, count)` descending.
    pub top_kinds: Vec<(String, u64)>,
    /// Final counter values.
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Per-histogram p95 (deterministic bucket interpolation, see
    /// [`Histogram::quantile`]), name-ordered.
    pub hist_p95: Vec<(String, f64)>,
}

impl TelemetrySummary {
    /// Renders the summary as one log line, e.g.
    /// `events=1204 (0 dropped); spans=88 (0 dropped); top: ShardAcked x612;
    /// p95: pause=0.512s`. A non-zero drop count is always visible here, so
    /// no experiment can silently report from a truncated log; histogram
    /// p95s (up to three, name order) surface tail latency the mean hides.
    pub fn one_line(&self) -> String {
        let tops: Vec<String> = self.top_kinds.iter().map(|(k, n)| format!("{k} x{n}")).collect();
        let mut line = format!(
            "events={} ({} dropped); spans={} ({} dropped); top: {}",
            self.total_events,
            self.dropped_events,
            self.total_spans,
            self.dropped_spans,
            if tops.is_empty() { "-".to_string() } else { tops.join(", ") }
        );
        if !self.hist_p95.is_empty() {
            let p95s: Vec<String> =
                self.hist_p95.iter().take(3).map(|(k, v)| format!("{k}={v:.3}")).collect();
            line.push_str("; p95: ");
            line.push_str(&p95s.join(", "));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_sink() {
        let t = Telemetry::default();
        let u = t.clone();
        u.record(SimTime::from_secs(1), EventKind::JobStarted { job: 7 });
        u.count("ticks", 3);
        assert_eq!(t.event_count(), 1);
        assert_eq!(t.counter("ticks"), 3);
    }

    #[test]
    fn snapshot_serializes_deterministically() {
        let build = || {
            let t = Telemetry::with_capacity(8);
            for i in 0..12u64 {
                t.record(SimTime::from_secs(i), EventKind::WorkerAdded { worker: i });
            }
            t.sample("thp", SimTime::from_secs(3), 2.0);
            t.observe("pause", 0.5);
            serde_json::to_string(&t.snapshot()).unwrap()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"dropped_events\":4"));
    }

    #[test]
    fn span_handles_share_one_sink_and_surface_drops() {
        let t = Telemetry::default();
        let u = t.clone();
        let id = u.span_open(SimTime::from_secs(1), SpanCategory::Migration, "pause", 3, None);
        u.span_close(SimTime::from_secs(2), id);
        t.span_complete(
            SimTime::from_secs(2),
            SimTime::from_secs(3),
            SpanCategory::Checkpoint,
            "save",
            3,
            Some(id),
        );
        assert_eq!(t.span_count(), 2);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[1].parent, Some(id.0));
        let line = t.summary().one_line();
        assert!(line.contains("spans=2 (0 dropped)"), "{line}");
        assert_eq!(t.spans_to_jsonl().lines().count(), 2);
    }

    #[test]
    fn merge_ordered_is_a_pure_function_of_the_parts() {
        let unit = |track: u64| {
            let t = Telemetry::default();
            t.record(SimTime::from_secs(track), EventKind::JobStarted { job: track });
            t.count("jobs", 1);
            let p = t.span_open(SimTime::from_secs(track), SpanCategory::Job, "job", track, None);
            t.span_complete(
                SimTime::from_secs(track),
                SimTime::from_secs(track + 1),
                SpanCategory::Checkpoint,
                "save",
                track,
                Some(p),
            );
            t.span_close(SimTime::from_secs(track + 2), p);
            t
        };
        let parts = [unit(1), unit(2), unit(3)];
        let a = Telemetry::merge_ordered(&parts);
        let b = Telemetry::merge_ordered(&parts);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.spans_to_jsonl(), b.spans_to_jsonl());
        assert_eq!(a.event_count(), 3);
        assert_eq!(a.span_count(), 6);
        assert_eq!(a.counter("jobs"), 3);
        // Nesting survives the unit boundary: every child's parent is on
        // the same track.
        let spans = a.snapshot().spans;
        for child in spans.iter().filter(|s| s.parent.is_some()) {
            let parent = spans.iter().find(|s| s.id == child.parent.unwrap()).unwrap();
            assert_eq!(parent.track, child.track);
        }
    }

    #[test]
    fn absorbing_self_is_a_noop() {
        let t = Telemetry::default();
        t.record(SimTime::ZERO, EventKind::JobStarted { job: 1 });
        t.absorb(&t.clone());
        assert_eq!(t.event_count(), 1);
    }

    #[test]
    fn summary_one_line_mentions_top_kind() {
        let t = Telemetry::default();
        for i in 0..3u64 {
            t.record(SimTime::ZERO, EventKind::ShardAcked { worker: i, len: 10 });
        }
        let line = t.summary().one_line();
        assert!(line.contains("events=3"), "{line}");
        assert!(line.contains("ShardAcked x3"), "{line}");
    }
}
