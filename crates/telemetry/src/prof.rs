//! Self-profiling plane: scoped *wall-clock* timers over the hot paths of
//! the reproduction itself.
//!
//! Everything else in this crate runs on virtual time so artefacts are
//! byte-reproducible per seed. This module is the deliberate exception: it
//! measures how long the *harness* takes on real hardware, so the perf
//! program (ROADMAP open item 1) has numbers to steer by. Two rules keep
//! the determinism contract intact:
//!
//! * **Off by default.** [`scope`] is a no-op (one relaxed atomic load,
//!   no allocation, no clock read) unless [`set_enabled`]`(true)` was
//!   called or `DLROVER_PROF=1` is in the environment.
//! * **Side-channel output only.** Profiles are read back explicitly via
//!   [`take_profile`] and written to `BENCH_*.json` / `results/prof/`
//!   by the `exp perf` subcommand — never into `results/<id>.json`, the
//!   trace/span JSONL artefacts, or anything a golden digest covers. A
//!   determinism test in `dlrover-bench` runs an experiment with
//!   profiling on vs off and asserts byte-identical artefacts.
//!
//! # Accumulator design
//!
//! Each thread owns a path-interned call tree in a `thread_local!`:
//! entering a site pushes a frame (interning `(parent, site)` on first
//! visit), leaving it pops the frame and adds elapsed wall time to the
//! node. Attribution is nesting-aware: a node's *self* time is its
//! elapsed time minus the time spent in child scopes, so for every node
//! `self + Σ(child totals) == total` exactly. Because the accumulators
//! are thread-local there is no cross-thread contention on the hot path;
//! a thread folds its tree into the global [`Mutex`]-guarded table once,
//! when the thread exits (TLS drop) or on an explicit [`flush`].
//!
//! Sites also carry throughput counters: [`add_items`] / [`add_bytes`]
//! attribute work units to the innermost active scope, which turns the
//! timer table into items-per-second rates for free.
//!
//! # Folded-stack export
//!
//! [`Profile::folded`] renders `path;to;site <self-µs>` lines — the
//! format `flamegraph.pl` and speedscope ingest directly — weighted by
//! self time so the flame widths sum correctly.

use serde::Serialize;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global enable gate. Relaxed ordering is fine: the flag is a sampling
/// switch, not a synchronization point, and scopes opened around a
/// toggle are allowed to land on either side of it.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Global fold of every exited thread's accumulators, keyed by folded
/// path (`"a;b;c"`). Only touched at thread exit / flush / read time.
static GLOBAL: OnceLock<Mutex<BTreeMap<String, SiteStats>>> = OnceLock::new();

fn global() -> &'static Mutex<BTreeMap<String, SiteStats>> {
    GLOBAL.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Turns profiling on or off process-wide. Off is the default; the
/// simulation paths stay wall-clock-free unless a harness opts in.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is currently enabled (either via [`set_enabled`] or
/// the `DLROVER_PROF=1` environment variable, checked once at first use).
pub fn enabled() -> bool {
    static ENV_CHECKED: OnceLock<()> = OnceLock::new();
    ENV_CHECKED.get_or_init(|| {
        if std::env::var("DLROVER_PROF").is_ok_and(|v| v == "1") {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Accumulated measurements for one call-tree path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct SiteStats {
    /// Times the scope was entered.
    pub calls: u64,
    /// Total wall nanoseconds inside the scope (including children).
    pub total_ns: u64,
    /// Wall nanoseconds attributed to the scope itself (total minus
    /// time spent in child scopes).
    pub self_ns: u64,
    /// Work items attributed via [`add_items`].
    pub items: u64,
    /// Bytes attributed via [`add_bytes`].
    pub bytes: u64,
}

impl SiteStats {
    fn merge(&mut self, other: &SiteStats) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        self.items += other.items;
        self.bytes += other.bytes;
    }
}

/// One interned node of a thread's call tree.
#[derive(Debug)]
struct PathNode {
    /// Static site name (the last path segment).
    site: &'static str,
    /// Index of the parent node, or `usize::MAX` for roots.
    parent: usize,
    stats: SiteStats,
}

/// A live scope on the thread's stack.
#[derive(Debug)]
struct ActiveFrame {
    node: usize,
    started: Instant,
    /// Wall nanoseconds already attributed to completed children, so the
    /// parent's self time is `elapsed - child_ns` on pop.
    child_ns: u64,
}

const NO_PARENT: usize = usize::MAX;

/// Per-thread accumulator: interned path tree + active scope stack.
#[derive(Debug, Default)]
struct ThreadProf {
    nodes: Vec<PathNode>,
    /// `(parent index, site) -> node index` interning table.
    children: BTreeMap<(usize, &'static str), usize>,
    stack: Vec<ActiveFrame>,
    /// Guards dropped out of LIFO order (a bug in instrumentation, not
    /// in the profiled code); counted rather than panicking.
    mismatched: u64,
}

impl ThreadProf {
    fn intern(&mut self, parent: usize, site: &'static str) -> usize {
        if let Some(&idx) = self.children.get(&(parent, site)) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(PathNode { site, parent, stats: SiteStats::default() });
        self.children.insert((parent, site), idx);
        idx
    }

    fn enter(&mut self, site: &'static str) {
        let parent = self.stack.last().map_or(NO_PARENT, |f| f.node);
        let node = self.intern(parent, site);
        self.stack.push(ActiveFrame { node, started: Instant::now(), child_ns: 0 });
    }

    fn exit(&mut self, site: &'static str) {
        let Some(frame) = self.stack.pop() else {
            self.mismatched += 1;
            return;
        };
        if self.nodes[frame.node].site != site {
            // Out-of-order drop: put nothing back, count it.
            self.mismatched += 1;
            return;
        }
        let elapsed = frame.started.elapsed().as_nanos() as u64;
        let stats = &mut self.nodes[frame.node].stats;
        stats.calls += 1;
        stats.total_ns += elapsed;
        stats.self_ns += elapsed.saturating_sub(frame.child_ns);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += elapsed;
        }
    }

    fn add_items(&mut self, n: u64) {
        if let Some(f) = self.stack.last() {
            self.nodes[f.node].stats.items += n;
        }
    }

    fn add_bytes(&mut self, n: u64) {
        if let Some(f) = self.stack.last() {
            self.nodes[f.node].stats.bytes += n;
        }
    }

    /// Folded path (`"a;b;c"`) of node `idx`.
    fn path_of(&self, idx: usize) -> String {
        let mut segs = Vec::new();
        let mut cur = idx;
        while cur != NO_PARENT {
            segs.push(self.nodes[cur].site);
            cur = self.nodes[cur].parent;
        }
        segs.reverse();
        segs.join(";")
    }

    /// Folds this thread's tree into the global table and clears it.
    fn flush_into_global(&mut self) {
        if self.nodes.is_empty() && self.mismatched == 0 {
            return;
        }
        let mut table = global().lock().expect("prof global lock poisoned");
        for idx in 0..self.nodes.len() {
            let stats = self.nodes[idx].stats;
            if stats == SiteStats::default() {
                continue;
            }
            table.entry(self.path_of(idx)).or_default().merge(&stats);
        }
        if self.mismatched > 0 {
            let slot = table.entry("prof/mismatched-guards".to_string()).or_default();
            slot.calls += self.mismatched;
        }
        self.nodes.clear();
        self.children.clear();
        self.mismatched = 0;
    }
}

impl Drop for ThreadProf {
    fn drop(&mut self) {
        self.flush_into_global();
    }
}

thread_local! {
    static TLS: RefCell<ThreadProf> = RefCell::new(ThreadProf::default());
}

/// RAII guard for one profiled scope; see [`scope`].
///
/// Not `Send`: the guard must drop on the thread that opened it, because
/// the accumulator it closes is thread-local.
#[derive(Debug)]
pub struct ProfGuard {
    /// `None` when profiling was disabled at entry (no-op guard).
    site: Option<&'static str>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        if let Some(site) = self.site {
            TLS.with(|tls| tls.borrow_mut().exit(site));
        }
    }
}

/// Opens a profiled scope named `site`; the scope closes when the
/// returned guard drops. Nested scopes build a call tree and time inside
/// a child is subtracted from the parent's self time. When profiling is
/// disabled this is a no-op costing one atomic load.
///
/// `site` should be a short static `area/op` name (`"cost/throughput"`,
/// `"shard/epoch"`); nesting supplies the rest of the path.
#[must_use = "the scope ends when the guard drops"]
pub fn scope(site: &'static str) -> ProfGuard {
    if !enabled() {
        return ProfGuard { site: None, _not_send: PhantomData };
    }
    TLS.with(|tls| tls.borrow_mut().enter(site));
    ProfGuard { site: Some(site), _not_send: PhantomData }
}

/// Attributes `n` work items to the innermost active scope on this
/// thread (no-op when profiling is off or no scope is open).
pub fn add_items(n: u64) {
    if enabled() {
        TLS.with(|tls| tls.borrow_mut().add_items(n));
    }
}

/// Attributes `n` bytes to the innermost active scope on this thread
/// (no-op when profiling is off or no scope is open).
pub fn add_bytes(n: u64) {
    if enabled() {
        TLS.with(|tls| tls.borrow_mut().add_bytes(n));
    }
}

/// Folds the *current thread's* accumulators into the global table
/// without waiting for thread exit. Call on the main thread before
/// [`take_profile`]; worker threads flush automatically when their TLS
/// drops at `std::thread::scope` exit.
pub fn flush() {
    TLS.with(|tls| tls.borrow_mut().flush_into_global());
}

/// A merged snapshot of every flushed thread's accumulators.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Profile {
    /// Folded path (`"a;b;c"`) → accumulated stats, sorted by path.
    pub sites: BTreeMap<String, SiteStats>,
}

impl Profile {
    /// Total self-time nanoseconds across all sites (equals the sum of
    /// root totals when every guard closed cleanly).
    pub fn total_self_ns(&self) -> u64 {
        self.sites.values().map(|s| s.self_ns).sum()
    }

    /// Stats for an exact folded path, if recorded.
    pub fn site(&self, path: &str) -> Option<&SiteStats> {
        self.sites.get(path)
    }

    /// Sums stats over every path whose *last* segment is `site`,
    /// regardless of where in the tree it was reached from.
    pub fn by_site(&self, site: &str) -> SiteStats {
        let mut acc = SiteStats::default();
        for (path, stats) in &self.sites {
            if path.rsplit(';').next() == Some(site) {
                acc.merge(stats);
            }
        }
        acc
    }

    /// Renders the flamegraph-compatible folded-stack form: one
    /// `path;to;site <weight>` line per site, weighted by self-time
    /// microseconds (sites that round to zero weight are kept at 1 µs if
    /// they were entered at all, so no visited path vanishes).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, stats) in &self.sites {
            let us = (stats.self_ns / 1_000).max(u64::from(stats.calls > 0));
            out.push_str(path);
            out.push(' ');
            out.push_str(&us.to_string());
            out.push('\n');
        }
        out
    }

    /// Merges another profile into this one (summing shared paths).
    pub fn merge(&mut self, other: &Profile) {
        for (path, stats) in &other.sites {
            self.sites.entry(path.clone()).or_default().merge(stats);
        }
    }
}

/// Flushes the calling thread, then drains and returns the global table.
/// The table is left empty, so successive calls bracket distinct
/// measurement windows.
pub fn take_profile() -> Profile {
    flush();
    let mut table = global().lock().expect("prof global lock poisoned");
    Profile { sites: std::mem::take(&mut *table) }
}

/// Clears all accumulated state (calling thread + global table) without
/// returning it.
pub fn reset() {
    let _ = take_profile();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the enable flag across tests: cargo runs tests on
    /// concurrent threads and this module's gate is process-global.
    fn with_prof<T>(f: impl FnOnce() -> T) -> T {
        static GATE: Mutex<()> = Mutex::new(());
        let _g = GATE.lock().expect("prof test gate poisoned");
        reset();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        reset();
        out
    }

    #[test]
    fn disabled_scope_records_nothing() {
        // Outside with_prof: the default-off path.
        set_enabled(false);
        {
            let _g = scope("off/site");
            add_items(10);
        }
        flush();
        let p = take_profile();
        assert!(p.site("off/site").is_none());
    }

    #[test]
    fn nesting_attributes_self_vs_child_exactly() {
        let p = with_prof(|| {
            {
                let _outer = scope("outer");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _inner = scope("inner");
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            take_profile()
        });
        let outer = p.site("outer").copied().expect("outer recorded");
        let inner = p.site("outer;inner").copied().expect("inner nested under outer");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        // Exact identity: outer.total == outer.self + inner.total.
        assert_eq!(outer.total_ns, outer.self_ns + inner.total_ns);
        assert!(inner.total_ns > 0);
        assert_eq!(p.total_self_ns(), outer.self_ns + inner.self_ns);
    }

    #[test]
    fn items_and_bytes_attach_to_innermost_scope() {
        let p = with_prof(|| {
            {
                let _a = scope("a");
                add_items(3);
                {
                    let _b = scope("b");
                    add_items(7);
                    add_bytes(100);
                }
                add_bytes(5);
            }
            take_profile()
        });
        assert_eq!(p.site("a").unwrap().items, 3);
        assert_eq!(p.site("a").unwrap().bytes, 5);
        assert_eq!(p.site("a;b").unwrap().items, 7);
        assert_eq!(p.site("a;b").unwrap().bytes, 100);
        // by_site sums across paths ending in the segment.
        assert_eq!(p.by_site("b").items, 7);
    }

    #[test]
    fn worker_threads_flush_on_exit_and_merge_by_path() {
        let p = with_prof(|| {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let _g = scope("pool/unit");
                        add_items(10);
                    });
                }
            });
            take_profile()
        });
        let unit = p.site("pool/unit").copied().expect("workers flushed at exit");
        assert_eq!(unit.calls, 4);
        assert_eq!(unit.items, 40);
    }

    #[test]
    fn same_site_under_different_parents_stays_distinct() {
        let p = with_prof(|| {
            {
                let _a = scope("a");
                let _m = scope("merge");
            }
            {
                let _b = scope("b");
                let _m = scope("merge");
            }
            take_profile()
        });
        assert!(p.site("a;merge").is_some());
        assert!(p.site("b;merge").is_some());
        assert_eq!(p.by_site("merge").calls, 2);
    }

    #[test]
    fn folded_lines_are_flamegraph_shaped() {
        let p = with_prof(|| {
            {
                let _a = scope("root");
                let _b = scope("leaf");
            }
            take_profile()
        });
        let folded = p.folded();
        for line in folded.lines() {
            let (path, weight) = line.rsplit_once(' ').expect("`path weight` shape");
            assert!(!path.is_empty());
            assert!(weight.parse::<u64>().is_ok(), "weight must be integer µs: {line}");
        }
        assert!(folded.contains("root;leaf "));
    }

    #[test]
    fn take_profile_drains_the_table() {
        let first = with_prof(|| {
            {
                let _g = scope("drain/me");
            }
            take_profile()
        });
        assert!(first.site("drain/me").is_some());
        let second = take_profile();
        assert!(second.site("drain/me").is_none());
    }

    #[test]
    fn profile_merge_sums_shared_paths() {
        let mut a = Profile::default();
        a.sites.insert(
            "x".into(),
            SiteStats { calls: 1, total_ns: 10, self_ns: 10, items: 2, bytes: 0 },
        );
        let mut b = Profile::default();
        b.sites.insert(
            "x".into(),
            SiteStats { calls: 2, total_ns: 30, self_ns: 20, items: 3, bytes: 7 },
        );
        b.sites.insert(
            "y".into(),
            SiteStats { calls: 1, total_ns: 5, self_ns: 5, items: 0, bytes: 0 },
        );
        a.merge(&b);
        assert_eq!(a.site("x").unwrap().calls, 3);
        assert_eq!(a.site("x").unwrap().total_ns, 40);
        assert_eq!(a.site("x").unwrap().items, 5);
        assert_eq!(a.site("y").unwrap().self_ns, 5);
    }

    #[test]
    fn mismatched_drop_order_is_counted_not_fatal() {
        let p = with_prof(|| {
            let a = scope("first");
            let b = scope("second");
            drop(a); // out of order: pops "second"'s frame under "first"'s name
            drop(b);
            take_profile()
        });
        let mm = p.site("prof/mismatched-guards").copied().unwrap_or_default();
        assert!(mm.calls >= 1, "out-of-order guard drops must be counted");
    }
}
