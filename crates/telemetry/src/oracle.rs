//! System-wide invariant oracle for chaos runs.
//!
//! The oracle rides the structured event stream that every subsystem
//! already emits and, given the [`FaultPlan`] that was injected plus a
//! little ground truth from the driver, asserts the paper's §6
//! fault-tolerance properties *as properties* rather than as hand-picked
//! examples:
//!
//! * **Exactly-once** — dynamic data sharding (§6.1) never loses or
//!   double-counts a sample, no matter which workers died when.
//! * **No leaks** — every pod the driver created is terminal at the end
//!   and the cluster's allocation accounting returns to zero.
//! * **Checkpoint monotonicity** — flash-checkpoint steps (§6.3) never
//!   regress except across an intervening failure, where a bounded
//!   rollback to the last checkpoint is the contract.
//! * **OOM reaction** — the memory predictor (§5.3, Eqn. 14) reacts to
//!   injected memory pressure before the pod actually OOMs; an `Oomed`
//!   event is by definition a missed deadline.
//! * **Bounded slowdown** — the job still completes, within a
//!   configurable multiple of its fault-free baseline plus the plan's own
//!   slowdown budget.
//! * **Recovery deadline** — every kill-type fault that hit a live pod is
//!   followed by the matching recovery signal (replacement worker joined,
//!   PS reshaped) within a deadline; latencies are reported so the bench
//!   can track worst-case recovery.
//! * **No retry storm** — the control plane's retries per operation stay
//!   under a bound: a denied request backs off and eventually degrades,
//!   it never hammers the scheduler forever.
//! * **Blacklist effectiveness** — once repeated failures blacklist a
//!   node, no pod is ever placed there again for the rest of the run.
//! * **Durable restore** — no job ever restores from an uncommitted
//!   manifest: a `"remote"` restore needs a prior commit record, a
//!   `"witness"` restore needs a prior co-sign quorum, and a `"hot"`
//!   restore needs the staged copy still resident (not evicted or
//!   invalidated). Corrupted manifests are never restorable.
//! * **Restore bytes bounded** — a restore can only read bytes that were
//!   actually written: every `CheckpointRestored` must stay within the
//!   byte count its manifest staged.

use dlrover_sim::{FaultPlan, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind};

/// Oracle knobs. Defaults match the paper's operating regime: §2.2 puts
/// pod preparation at 5–10 minutes (tail past 30 under scarcity), so half
/// an hour is a generous-but-real recovery deadline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// How long after a kill-type fault the recovery signal must appear.
    pub recovery_deadline: SimDuration,
    /// Completion bound: `baseline × factor + plan budget × factor +
    /// grace`.
    pub slowdown_factor: f64,
    /// Additive grace on the completion bound (absorbs startup draws).
    pub slowdown_grace: SimDuration,
    /// Most [`EventKind::RetryAttempt`]s any single operation may record
    /// before the no-retry-storm invariant trips. Sized above the chaos
    /// driver's retry policy (which must outlast a 10-minute preemption
    /// burst at a 60 s backoff cap) but far under the per-tick hammering
    /// the invariant exists to catch.
    pub max_retry_attempts: u32,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            recovery_deadline: SimDuration::from_mins(30),
            slowdown_factor: 3.0,
            slowdown_grace: SimDuration::from_hours(1),
            max_retry_attempts: 40,
        }
    }
}

/// Facts the event stream alone cannot witness, supplied by the chaos
/// driver after the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Samples the job was asked to process.
    pub total_samples: u64,
    /// Samples the engine accounted as done at the end of the run.
    pub samples_done: u64,
    /// Completion instant, if the job finished.
    pub completed_at: Option<SimTime>,
    /// Fault-free JCT of the same job under the same seed.
    pub baseline_jct: SimDuration,
    /// Pods still non-terminal after the driver's final cleanup.
    pub leaked_pods: u64,
    /// Cluster CPU still accounted as allocated after cleanup, millicores.
    pub leaked_cpu_millis: u64,
    /// Cluster memory still accounted as allocated after cleanup, bytes.
    pub leaked_mem_bytes: u64,
}

/// The invariant vocabulary. Order is the reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Invariant {
    /// `samples_done == total_samples` on completion; never an overcount.
    ExactlyOnce,
    /// No pods or allocations survive the run.
    NoLeaks,
    /// Checkpoint steps only regress across a failure.
    CheckpointMonotonic,
    /// Memory pressure never ends in an actual OOM.
    OomReaction,
    /// The job completes within the slowdown bound.
    BoundedSlowdown,
    /// Kill-type faults recover within the deadline.
    RecoveryDeadline,
    /// No operation retries more than the configured bound.
    NoRetryStorm,
    /// Blacklisted nodes never receive another pod.
    BlacklistEffectiveness,
    /// Restores only read committed / witnessed / resident-hot manifests.
    DurableRestore,
    /// Restored bytes never exceed the manifest's staged bytes.
    RestoreBytesBounded,
    /// Reconfiguration windows resolve exactly once (applied XOR rolled
    /// back), never lose samples, and always land in a consistent layout.
    ReconfigConsistent,
}

impl Invariant {
    /// All invariants, in reporting order.
    pub const ALL: [Invariant; 11] = [
        Invariant::ExactlyOnce,
        Invariant::NoLeaks,
        Invariant::CheckpointMonotonic,
        Invariant::OomReaction,
        Invariant::BoundedSlowdown,
        Invariant::RecoveryDeadline,
        Invariant::NoRetryStorm,
        Invariant::BlacklistEffectiveness,
        Invariant::DurableRestore,
        Invariant::RestoreBytesBounded,
        Invariant::ReconfigConsistent,
    ];

    /// Stable short name, used as the JSON key in `results/chaos.json`.
    pub fn name(&self) -> &'static str {
        match self {
            Invariant::ExactlyOnce => "exactly_once",
            Invariant::NoLeaks => "no_leaks",
            Invariant::CheckpointMonotonic => "checkpoint_monotonic",
            Invariant::OomReaction => "oom_reaction",
            Invariant::BoundedSlowdown => "bounded_slowdown",
            Invariant::RecoveryDeadline => "recovery_deadline",
            Invariant::NoRetryStorm => "no_retry_storm",
            Invariant::BlacklistEffectiveness => "blacklist_effectiveness",
            Invariant::DurableRestore => "durable_restore",
            Invariant::RestoreBytesBounded => "restore_bytes_bounded",
            Invariant::ReconfigConsistent => "reconfig_consistent",
        }
    }
}

/// Verdict for one invariant on one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvariantCheck {
    /// Which invariant.
    pub invariant: Invariant,
    /// Whether it held.
    pub passed: bool,
    /// Human-readable descriptions of each violation (empty when passed).
    pub violations: Vec<String>,
}

/// Everything the oracle concluded about one chaos run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleReport {
    /// One verdict per [`Invariant::ALL`] entry, in order.
    pub checks: Vec<InvariantCheck>,
    /// Fault-to-recovery latency for each recovered kill, microseconds.
    pub recovery_latencies_us: Vec<u64>,
    /// The worst recovery latency observed, microseconds.
    pub worst_recovery_us: Option<u64>,
    /// Pressure-injection-to-`OomPrevented` reaction latencies, µs.
    pub oom_reactions_us: Vec<u64>,
}

impl OracleReport {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Total violation count across invariants.
    pub fn violation_count(&self) -> usize {
        self.checks.iter().map(|c| c.violations.len()).sum()
    }

    /// All violation messages, prefixed with their invariant name.
    pub fn violations(&self) -> Vec<String> {
        self.checks
            .iter()
            .flat_map(|c| c.violations.iter().map(move |v| format!("{}: {v}", c.invariant.name())))
            .collect()
    }
}

/// The invariant checker. Stateless: one [`Oracle::check`] call audits one
/// completed run from its event stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct Oracle {
    config: OracleConfig,
}

impl Oracle {
    /// Builds an oracle with the given deadlines and bounds.
    pub fn new(config: OracleConfig) -> Self {
        Oracle { config }
    }

    /// Audits one run: `plan` is what was injected, `events` the full
    /// telemetry event log (the driver must size the ring so nothing was
    /// evicted), `truth` the driver's end-of-run facts.
    pub fn check(&self, plan: &FaultPlan, events: &[Event], truth: &GroundTruth) -> OracleReport {
        let mut checks = Vec::with_capacity(Invariant::ALL.len());
        checks.push(self.check_exactly_once(truth));
        checks.push(self.check_no_leaks(truth));
        checks.push(self.check_checkpoint_monotonic(events));
        let (oom_check, oom_reactions_us) = self.check_oom_reaction(events);
        checks.push(oom_check);
        checks.push(self.check_bounded_slowdown(plan, truth));
        let (recovery_check, recovery_latencies_us) = self.check_recovery(events, truth);
        checks.push(recovery_check);
        checks.push(self.check_no_retry_storm(events));
        checks.push(self.check_blacklist_effectiveness(events));
        let (durable, bytes_bounded) = Self::check_durability(events);
        checks.push(durable);
        checks.push(bytes_bounded);
        checks.push(Self::check_reconfig_consistency(events));
        let worst_recovery_us = recovery_latencies_us.iter().copied().max();
        OracleReport { checks, recovery_latencies_us, worst_recovery_us, oom_reactions_us }
    }

    /// The two checkpoint-plane durability invariants on their own, so
    /// drivers without a full [`GroundTruth`] (e.g. the ckptplane fleet
    /// experiment) can audit an event log.
    ///
    /// The audit is log-ordered: a restore is only as legitimate as the
    /// commit/quorum/stage records that *precede* it in the stream, so
    /// drivers must drain plane transfers (recording commit events) before
    /// recording the restores that depend on them.
    pub fn check_durability(events: &[Event]) -> (InvariantCheck, InvariantCheck) {
        use std::collections::{BTreeMap, BTreeSet};
        let mut staged_bytes: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut committed: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut witnessed: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut hot_dead: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut corrupted: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut durable_violations = Vec::new();
        let mut bytes_violations = Vec::new();
        for e in events {
            match &e.kind {
                EventKind::CheckpointStaged { job, manifest, bytes, .. } => {
                    staged_bytes.insert((*job, *manifest), *bytes);
                }
                EventKind::CheckpointCommitted { job, manifest, .. } => {
                    committed.insert((*job, *manifest));
                }
                EventKind::WitnessQuorumReached { job, manifest, .. } => {
                    witnessed.insert((*job, *manifest));
                }
                EventKind::CheckpointHotEvicted { job, manifest } => {
                    hot_dead.insert((*job, *manifest));
                }
                EventKind::ManifestCorrupted { job, manifest } => {
                    corrupted.insert((*job, *manifest));
                }
                EventKind::CheckpointRestored { job, manifest, bytes, source, .. } => {
                    let key = (*job, *manifest);
                    let legitimate = match source.as_str() {
                        "hot" => {
                            staged_bytes.contains_key(&key)
                                && !hot_dead.contains(&key)
                                && !corrupted.contains(&key)
                        }
                        "remote" => committed.contains(&key) && !corrupted.contains(&key),
                        "witness" => witnessed.contains(&key),
                        _ => false,
                    };
                    if !legitimate {
                        durable_violations.push(format!(
                            "job {job} restored manifest {manifest} from {source} at t={}s \
                             without a matching commit/quorum/stage record",
                            e.at().as_secs_f64()
                        ));
                    }
                    match staged_bytes.get(&key) {
                        Some(written) if *bytes <= *written => {}
                        Some(written) => bytes_violations.push(format!(
                            "job {job} restored {bytes} bytes of manifest {manifest}, which \
                             staged only {written}"
                        )),
                        None => bytes_violations.push(format!(
                            "job {job} restored {bytes} bytes of never-staged manifest {manifest}"
                        )),
                    }
                }
                _ => {}
            }
        }
        (
            InvariantCheck {
                invariant: Invariant::DurableRestore,
                passed: durable_violations.is_empty(),
                violations: durable_violations,
            },
            InvariantCheck {
                invariant: Invariant::RestoreBytesBounded,
                passed: bytes_violations.is_empty(),
                violations: bytes_violations,
            },
        )
    }

    /// Reconfiguration invariant (ROADMAP open item 3): every
    /// reconfiguration window resolves **exactly once** — it either
    /// commits (`ReconfigApplied`) or aborts (`ReconfigRolledBack`), never
    /// both and never twice — a reconfig never loses samples (the
    /// samples-done watermark carried on reconfig events is non-decreasing
    /// in log order per job), and a committed plan always lands in a
    /// consistent layout (≥ 1 replica, ≥ 1 shard, ≥ 1 batch, a known
    /// gradient mode). Standalone like [`Oracle::check_durability`] so
    /// event-log-only drivers can audit reconfigurations too.
    pub fn check_reconfig_consistency(events: &[Event]) -> InvariantCheck {
        use std::collections::BTreeMap;
        let mut resolved: BTreeMap<(u64, u64), &'static str> = BTreeMap::new();
        let mut watermark: BTreeMap<u64, u64> = BTreeMap::new();
        let mut violations = Vec::new();
        let mut check_watermark = |job: u64, samples: u64, what: &str, v: &mut Vec<String>| {
            let w = watermark.entry(job).or_insert(0);
            if samples < *w {
                v.push(format!(
                    "job {job}: {what} reports samples_done {samples} below the \
                     previous reconfig watermark {w} — a reconfig lost samples"
                ));
            }
            *w = (*w).max(samples);
        };
        for e in events {
            match &e.kind {
                EventKind::ReconfigApplied {
                    job,
                    window,
                    mode,
                    batch,
                    replicas,
                    shards,
                    samples_done,
                    ..
                } => {
                    if let Some(prev) = resolved.insert((*job, *window), "applied") {
                        violations.push(format!(
                            "job {job}: reconfig window {window} resolved twice \
                             ({prev}, then applied)"
                        ));
                    }
                    if *replicas < 1 || *shards < 1 || *batch < 1 {
                        violations.push(format!(
                            "job {job}: reconfig window {window} committed a degenerate \
                             layout (batch {batch}, replicas {replicas}, shards {shards})"
                        ));
                    }
                    if mode != "async" && mode != "sync" {
                        violations.push(format!(
                            "job {job}: reconfig window {window} committed unknown \
                             gradient mode {mode:?}"
                        ));
                    }
                    check_watermark(*job, *samples_done, "ReconfigApplied", &mut violations);
                }
                EventKind::ReconfigRolledBack { job, window, samples_done, .. } => {
                    if let Some(prev) = resolved.insert((*job, *window), "rolled back") {
                        violations.push(format!(
                            "job {job}: reconfig window {window} resolved twice \
                             ({prev}, then rolled back)"
                        ));
                    }
                    check_watermark(*job, *samples_done, "ReconfigRolledBack", &mut violations);
                }
                _ => {}
            }
        }
        InvariantCheck {
            invariant: Invariant::ReconfigConsistent,
            passed: violations.is_empty(),
            violations,
        }
    }

    /// §6.1: dynamic sharding must account every sample exactly once.
    fn check_exactly_once(&self, truth: &GroundTruth) -> InvariantCheck {
        let mut violations = Vec::new();
        if truth.samples_done > truth.total_samples {
            violations.push(format!(
                "overcount: {} samples done of {} total",
                truth.samples_done, truth.total_samples
            ));
        }
        if truth.completed_at.is_some() && truth.samples_done != truth.total_samples {
            violations.push(format!(
                "completed with {} of {} samples accounted",
                truth.samples_done, truth.total_samples
            ));
        }
        InvariantCheck {
            invariant: Invariant::ExactlyOnce,
            passed: violations.is_empty(),
            violations,
        }
    }

    fn check_no_leaks(&self, truth: &GroundTruth) -> InvariantCheck {
        let mut violations = Vec::new();
        if truth.leaked_pods > 0 {
            violations.push(format!("{} pods non-terminal after cleanup", truth.leaked_pods));
        }
        if truth.leaked_cpu_millis > 0 || truth.leaked_mem_bytes > 0 {
            violations.push(format!(
                "cluster still accounts {}m CPU / {} bytes after cleanup",
                truth.leaked_cpu_millis, truth.leaked_mem_bytes
            ));
        }
        InvariantCheck { invariant: Invariant::NoLeaks, passed: violations.is_empty(), violations }
    }

    /// §6.3: flash-checkpoint steps move forward; a regression is legal
    /// only when a failure fired since the previous checkpoint (restore
    /// rolls back to the last saved step).
    fn check_checkpoint_monotonic(&self, events: &[Event]) -> InvariantCheck {
        let mut violations = Vec::new();
        let mut last_step: Option<u64> = None;
        let mut failure_since_last = false;
        for e in events {
            match &e.kind {
                EventKind::WorkerFailed { .. }
                | EventKind::PodFailed { .. }
                | EventKind::PodPreempted { .. }
                | EventKind::NodeFailed { .. }
                | EventKind::FaultInjected { .. } => failure_since_last = true,
                EventKind::CheckpointSaved { step, .. } => {
                    if let Some(prev) = last_step {
                        if *step < prev && !failure_since_last {
                            violations.push(format!(
                                "checkpoint step regressed {prev} -> {step} at t={}s with no \
                                 intervening failure",
                                e.at().as_secs_f64()
                            ));
                        }
                    }
                    last_step = Some(*step);
                    failure_since_last = false;
                }
                _ => {}
            }
        }
        InvariantCheck {
            invariant: Invariant::CheckpointMonotonic,
            passed: violations.is_empty(),
            violations,
        }
    }

    /// §5.3: the predictor's deadline is the OOM itself — prevention must
    /// land first. Also measures pressure→prevention reaction latency.
    fn check_oom_reaction(&self, events: &[Event]) -> (InvariantCheck, Vec<u64>) {
        let mut violations = Vec::new();
        let mut reactions = Vec::new();
        let mut open_pressure: Vec<u64> = Vec::new(); // injection at_us, FIFO
        for e in events {
            match &e.kind {
                EventKind::FaultInjected { kind, .. } if kind == "MemoryPressure" => {
                    open_pressure.push(e.at_us);
                }
                EventKind::OomPrevented { .. } => {
                    if let Some(at) = open_pressure.first().copied() {
                        open_pressure.remove(0);
                        reactions.push(e.at_us.saturating_sub(at));
                    }
                }
                EventKind::Oomed { job, ps } => {
                    violations.push(format!(
                        "job {job} PS {ps} actually OOMed at t={}s (prevention missed its \
                         deadline)",
                        e.at().as_secs_f64()
                    ));
                }
                _ => {}
            }
        }
        (
            InvariantCheck {
                invariant: Invariant::OomReaction,
                passed: violations.is_empty(),
                violations,
            },
            reactions,
        )
    }

    fn check_bounded_slowdown(&self, plan: &FaultPlan, truth: &GroundTruth) -> InvariantCheck {
        let budget = plan.slowdown_budget() + truth.baseline_jct;
        let bound_us = (budget.as_micros() as f64 * self.config.slowdown_factor) as u64
            + self.config.slowdown_grace.as_micros();
        let mut violations = Vec::new();
        match truth.completed_at {
            None => violations.push("job never completed under the plan".to_string()),
            Some(at) => {
                if at.as_micros() > bound_us {
                    violations.push(format!(
                        "completed at {:.0}s, bound was {:.0}s (baseline {:.0}s)",
                        at.as_secs_f64(),
                        bound_us as f64 / 1e6,
                        truth.baseline_jct.as_secs_f64()
                    ));
                }
            }
        }
        InvariantCheck {
            invariant: Invariant::BoundedSlowdown,
            passed: violations.is_empty(),
            violations,
        }
    }

    /// Kill-type faults must be followed by their recovery signal —
    /// a `WorkerAdded` for each same-instant `WorkerFailed`, a
    /// `PsReshaped` for a PS kill — within the deadline. Recovery is
    /// waived when the job completed first (nothing left to recover),
    /// when the master degraded inside the deadline (falling back to the
    /// surviving shape is the sanctioned alternative to relaunching once
    /// retries or the failure budget are exhausted), or when a scheduler
    /// policy applied a scaling plan inside the deadline: an elastic
    /// policy that deliberately reshapes the job post-fault owns its size
    /// — a scale-*down* decision legitimately cancels the pending
    /// replacement, so "the gang must be restored" no longer applies.
    /// (`ScalingPlanApplied` is only ever emitted on policy decisions, so
    /// static-gang chaos runs are unaffected by this waiver.)
    fn check_recovery(&self, events: &[Event], truth: &GroundTruth) -> (InvariantCheck, Vec<u64>) {
        let deadline = self.config.recovery_deadline.as_micros();
        let mut violations = Vec::new();
        let mut latencies = Vec::new();
        // Index of the next not-yet-consumed WorkerAdded, for greedy
        // one-to-one matching of kills to replacements (replacements
        // materialize in request order, so greedy matching is exact).
        let mut next_added = 0usize;
        for (i, e) in events.iter().enumerate() {
            let EventKind::FaultInjected { fault, kind, .. } = &e.kind else { continue };
            let is_ps_kill = kind == "PsKill";
            let is_kill = is_ps_kill
                || kind == "WorkerKill"
                || kind == "NodeLoss"
                || kind == "PreemptionBurst";
            // A master crash kills no pods, but the job must still come
            // back — via replay or witness quorum — within the deadline,
            // even when a remote-tier outage stalls the restore read (the
            // outage windows are bounded well under the deadline).
            if kind == "MasterCrash" {
                let recovered = events[i + 1..].iter().find(|f| {
                    matches!(
                        f.kind,
                        EventKind::MasterRestarted { .. } | EventKind::JobRecovered { .. }
                    )
                });
                let waived = truth
                    .completed_at
                    .map(|done| done.as_micros() <= e.at_us + deadline)
                    .unwrap_or(false);
                match recovered {
                    Some(f) if f.at_us.saturating_sub(e.at_us) <= deadline => {
                        latencies.push(f.at_us.saturating_sub(e.at_us));
                    }
                    _ if waived => {}
                    _ => violations.push(format!(
                        "fault {fault} (MasterCrash) at t={}s: no recovery within {}s",
                        e.at().as_secs_f64(),
                        self.config.recovery_deadline.as_secs_f64()
                    )),
                }
                continue;
            }
            if !is_kill {
                continue;
            }
            let degraded_or_reshaped = events.iter().any(|f| {
                f.at_us > e.at_us
                    && f.at_us <= e.at_us + deadline
                    && matches!(
                        f.kind,
                        EventKind::JobDegraded { .. } | EventKind::ScalingPlanApplied { .. }
                    )
            });
            let waived = degraded_or_reshaped
                || truth
                    .completed_at
                    .map(|done| done.as_micros() <= e.at_us + deadline)
                    .unwrap_or(false);
            // Count the workers this fault actually killed (driver emits
            // them at the same instant, after the injection marker).
            let killed = events[i + 1..]
                .iter()
                .take_while(|f| f.at_us == e.at_us)
                .filter(|f| matches!(f.kind, EventKind::WorkerFailed { .. }))
                .count();
            for _ in 0..killed {
                let found = events.iter().enumerate().skip(next_added.max(i)).find(|(_, f)| {
                    f.at_us > e.at_us && matches!(f.kind, EventKind::WorkerAdded { .. })
                });
                match found {
                    Some((j, f)) if f.at_us.saturating_sub(e.at_us) <= deadline => {
                        latencies.push(f.at_us - e.at_us);
                        next_added = j + 1;
                    }
                    _ if waived => {}
                    _ => violations.push(format!(
                        "fault {fault} ({kind}) at t={}s: no replacement worker within {}s",
                        e.at().as_secs_f64(),
                        self.config.recovery_deadline.as_secs_f64()
                    )),
                }
            }
            if is_ps_kill {
                let reshaped =
                    events[i + 1..].iter().find(|f| matches!(f.kind, EventKind::PsReshaped { .. }));
                match reshaped {
                    Some(f) if f.at_us.saturating_sub(e.at_us) <= deadline => {
                        latencies.push(f.at_us.saturating_sub(e.at_us));
                    }
                    _ if waived => {}
                    _ => violations.push(format!(
                        "fault {fault} (PsKill) at t={}s: no PS reshape within {}s",
                        e.at().as_secs_f64(),
                        self.config.recovery_deadline.as_secs_f64()
                    )),
                }
            }
        }
        (
            InvariantCheck {
                invariant: Invariant::RecoveryDeadline,
                passed: violations.is_empty(),
                violations,
            },
            latencies,
        )
    }

    /// Retry/backoff discipline: every `RetryAttempt` carries the attempt
    /// ordinal its supervisor assigned, so the highest ordinal seen per
    /// operation *is* that operation's retry count. A count past the bound
    /// means some caller bypassed the backoff policy and hammered the
    /// scheduler (the pre-resilience chaos driver retried every tick —
    /// exactly the storm this invariant exists to reject).
    fn check_no_retry_storm(&self, events: &[Event]) -> InvariantCheck {
        let mut worst: std::collections::BTreeMap<&str, u32> = std::collections::BTreeMap::new();
        for e in events {
            if let EventKind::RetryAttempt { op, attempt } = &e.kind {
                let w = worst.entry(op.as_str()).or_insert(0);
                *w = (*w).max(*attempt);
            }
        }
        let violations: Vec<String> = worst
            .iter()
            .filter(|(_, &n)| n > self.config.max_retry_attempts)
            .map(|(op, n)| {
                format!(
                    "operation {op} retried {n} times, bound is {}",
                    self.config.max_retry_attempts
                )
            })
            .collect();
        InvariantCheck {
            invariant: Invariant::NoRetryStorm,
            passed: violations.is_empty(),
            violations,
        }
    }

    /// Once the cluster blacklists a node (repeated pod failures on it),
    /// the scheduler must never place another pod there: a later
    /// `PodPlaced` on a blacklisted node means the blacklist is decorative.
    fn check_blacklist_effectiveness(&self, events: &[Event]) -> InvariantCheck {
        let mut blacklisted: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        let mut violations = Vec::new();
        for e in events {
            match &e.kind {
                EventKind::NodeBlacklisted { node, .. } => {
                    blacklisted.insert(*node);
                }
                EventKind::PodPlaced { pod, node } if blacklisted.contains(node) => {
                    violations.push(format!(
                        "pod {pod} placed on blacklisted node {node} at t={}s",
                        e.at().as_secs_f64()
                    ));
                }
                _ => {}
            }
        }
        InvariantCheck {
            invariant: Invariant::BlacklistEffectiveness,
            passed: violations.is_empty(),
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_sim::{FaultEvent, FaultKind};

    fn ev(at_s: u64, seq: u64, kind: EventKind) -> Event {
        Event { at_us: at_s * 1_000_000, seq, kind }
    }

    fn clean_truth() -> GroundTruth {
        GroundTruth {
            total_samples: 1000,
            samples_done: 1000,
            completed_at: Some(SimTime::from_secs(600)),
            baseline_jct: SimDuration::from_secs(500),
            leaked_pods: 0,
            leaked_cpu_millis: 0,
            leaked_mem_bytes: 0,
        }
    }

    fn kill_plan() -> FaultPlan {
        FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_secs(100),
            kind: FaultKind::WorkerKill { worker: 0 },
        }])
    }

    #[test]
    fn clean_run_passes_every_invariant() {
        let events = vec![
            ev(100, 0, EventKind::FaultInjected { fault: 0, kind: "WorkerKill".into(), target: 1 }),
            ev(100, 1, EventKind::WorkerFailed { worker: 1 }),
            ev(130, 2, EventKind::WorkerAdded { worker: 3 }),
            ev(200, 3, EventKind::CheckpointSaved { step: 50, bytes: 1 }),
            ev(300, 4, EventKind::CheckpointSaved { step: 90, bytes: 1 }),
            ev(600, 5, EventKind::JobCompleted { job: 0 }),
        ];
        let report = Oracle::default().check(&kill_plan(), &events, &clean_truth());
        assert!(report.passed(), "violations: {:?}", report.violations());
        assert_eq!(report.worst_recovery_us, Some(30_000_000));
    }

    #[test]
    fn lost_samples_and_leaks_are_flagged() {
        let truth = GroundTruth {
            samples_done: 990,
            leaked_pods: 2,
            leaked_cpu_millis: 4000,
            ..clean_truth()
        };
        let report = Oracle::default().check(&FaultPlan::default(), &[], &truth);
        assert!(!report.passed());
        let names: Vec<&str> =
            report.checks.iter().filter(|c| !c.passed).map(|c| c.invariant.name()).collect();
        assert!(names.contains(&"exactly_once"));
        assert!(names.contains(&"no_leaks"));
    }

    #[test]
    fn checkpoint_regression_needs_a_failure() {
        let legal = vec![
            ev(100, 0, EventKind::CheckpointSaved { step: 80, bytes: 1 }),
            ev(150, 1, EventKind::WorkerFailed { worker: 0 }),
            ev(200, 2, EventKind::CheckpointSaved { step: 75, bytes: 1 }),
        ];
        let report = Oracle::default().check(&FaultPlan::default(), &legal, &clean_truth());
        assert!(report
            .checks
            .iter()
            .all(|c| { c.invariant != Invariant::CheckpointMonotonic || c.passed }));

        let illegal = vec![
            ev(100, 0, EventKind::CheckpointSaved { step: 80, bytes: 1 }),
            ev(200, 1, EventKind::CheckpointSaved { step: 75, bytes: 1 }),
        ];
        let report = Oracle::default().check(&FaultPlan::default(), &illegal, &clean_truth());
        let ck =
            report.checks.iter().find(|c| c.invariant == Invariant::CheckpointMonotonic).unwrap();
        assert!(!ck.passed);
    }

    #[test]
    fn an_actual_oom_is_a_missed_deadline() {
        let events = vec![
            ev(
                100,
                0,
                EventKind::FaultInjected { fault: 0, kind: "MemoryPressure".into(), target: 0 },
            ),
            ev(160, 1, EventKind::Oomed { job: 0, ps: 0 }),
        ];
        let report = Oracle::default().check(&FaultPlan::default(), &events, &clean_truth());
        let ck = report.checks.iter().find(|c| c.invariant == Invariant::OomReaction).unwrap();
        assert!(!ck.passed);

        let prevented = vec![
            ev(
                100,
                0,
                EventKind::FaultInjected { fault: 0, kind: "MemoryPressure".into(), target: 0 },
            ),
            ev(130, 1, EventKind::OomPrevented { job: 0, new_alloc_bytes: 1 }),
        ];
        let report = Oracle::default().check(&FaultPlan::default(), &prevented, &clean_truth());
        assert!(report.passed(), "{:?}", report.violations());
        assert_eq!(report.oom_reactions_us, vec![30_000_000]);
    }

    #[test]
    fn missing_recovery_violates_unless_job_completed_first() {
        let events = vec![
            ev(100, 0, EventKind::FaultInjected { fault: 0, kind: "WorkerKill".into(), target: 1 }),
            ev(100, 1, EventKind::WorkerFailed { worker: 1 }),
        ];
        // Job ran on for hours with no replacement: violation.
        let truth = GroundTruth { completed_at: Some(SimTime::from_secs(36_000)), ..clean_truth() };
        let report = Oracle::default().check(&kill_plan(), &events, &truth);
        let ck = report.checks.iter().find(|c| c.invariant == Invariant::RecoveryDeadline).unwrap();
        assert!(!ck.passed);

        // Job completed 20s after the kill: recovery waived.
        let truth = GroundTruth { completed_at: Some(SimTime::from_secs(120)), ..clean_truth() };
        let report = Oracle::default().check(&kill_plan(), &events, &truth);
        let ck = report.checks.iter().find(|c| c.invariant == Invariant::RecoveryDeadline).unwrap();
        assert!(ck.passed);
    }

    #[test]
    fn incomplete_job_fails_bounded_slowdown() {
        let truth = GroundTruth { completed_at: None, samples_done: 400, ..clean_truth() };
        let report = Oracle::default().check(&FaultPlan::default(), &[], &truth);
        let ck = report.checks.iter().find(|c| c.invariant == Invariant::BoundedSlowdown).unwrap();
        assert!(!ck.passed);
        // Not an exactly-once violation: nothing was overcounted.
        let eo = report.checks.iter().find(|c| c.invariant == Invariant::ExactlyOnce).unwrap();
        assert!(eo.passed);
    }

    #[test]
    fn bounded_retries_pass_but_a_storm_is_flagged() {
        let bounded = vec![
            ev(100, 0, EventKind::RetryAttempt { op: "replace_worker".into(), attempt: 1 }),
            ev(105, 1, EventKind::RetryAttempt { op: "replace_worker".into(), attempt: 2 }),
            ev(115, 2, EventKind::RetryExhausted { op: "replace_worker".into(), attempts: 2 }),
        ];
        let report = Oracle::default().check(&FaultPlan::default(), &bounded, &clean_truth());
        assert!(report.passed(), "{:?}", report.violations());

        // A caller that bypassed the backoff policy and hammered away.
        let storm: Vec<Event> = (0..60)
            .map(|i| {
                ev(
                    100 + i,
                    i,
                    EventKind::RetryAttempt { op: "scale_out".into(), attempt: i as u32 + 1 },
                )
            })
            .collect();
        let report = Oracle::default().check(&FaultPlan::default(), &storm, &clean_truth());
        let ck = report.checks.iter().find(|c| c.invariant == Invariant::NoRetryStorm).unwrap();
        assert!(!ck.passed);
        assert!(ck.violations[0].contains("scale_out"));
    }

    #[test]
    fn placement_on_a_blacklisted_node_is_flagged() {
        // Placement *before* the blacklisting is fine; after it, violation.
        let events = vec![
            ev(50, 0, EventKind::PodPlaced { pod: 1, node: 7 }),
            ev(100, 1, EventKind::NodeBlacklisted { node: 7, failures: 3 }),
            ev(150, 2, EventKind::PodPlaced { pod: 2, node: 3 }),
        ];
        let report = Oracle::default().check(&FaultPlan::default(), &events, &clean_truth());
        assert!(report.passed(), "{:?}", report.violations());

        let mut bad = events;
        bad.push(ev(200, 3, EventKind::PodPlaced { pod: 9, node: 7 }));
        let report = Oracle::default().check(&FaultPlan::default(), &bad, &clean_truth());
        let ck = report
            .checks
            .iter()
            .find(|c| c.invariant == Invariant::BlacklistEffectiveness)
            .unwrap();
        assert!(!ck.passed);
        assert!(ck.violations[0].contains("node 7"));
    }

    #[test]
    fn uncommitted_restore_is_flagged_and_committed_passes() {
        // Staged but never committed: a "remote" restore is a violation.
        let bad = vec![
            ev(
                10,
                0,
                EventKind::CheckpointStaged {
                    job: 0,
                    manifest: 1,
                    step: 5,
                    bytes: 100,
                    new_bytes: 100,
                },
            ),
            ev(
                50,
                1,
                EventKind::CheckpointRestored {
                    job: 0,
                    manifest: 1,
                    step: 5,
                    bytes: 100,
                    source: "remote".into(),
                },
            ),
        ];
        let (durable, bytes_ok) = Oracle::check_durability(&bad);
        assert!(!durable.passed, "restore before the commit record must be flagged");
        assert!(bytes_ok.passed, "the byte bound itself holds");

        // Commit first, restore after: legitimate.
        let good = vec![
            ev(
                10,
                0,
                EventKind::CheckpointStaged {
                    job: 0,
                    manifest: 1,
                    step: 5,
                    bytes: 100,
                    new_bytes: 100,
                },
            ),
            ev(40, 1, EventKind::CheckpointCommitted { job: 0, manifest: 1, step: 5 }),
            ev(
                50,
                2,
                EventKind::CheckpointRestored {
                    job: 0,
                    manifest: 1,
                    step: 5,
                    bytes: 100,
                    source: "remote".into(),
                },
            ),
        ];
        let (durable, bytes_ok) = Oracle::check_durability(&good);
        assert!(durable.passed, "{:?}", durable.violations);
        assert!(bytes_ok.passed);
    }

    #[test]
    fn hot_witness_and_corruption_rules() {
        // Hot restore after eviction is a violation; witness restore needs
        // a quorum record; a corrupted manifest is never restorable.
        let events = vec![
            ev(
                10,
                0,
                EventKind::CheckpointStaged {
                    job: 1,
                    manifest: 7,
                    step: 3,
                    bytes: 64,
                    new_bytes: 64,
                },
            ),
            ev(15, 1, EventKind::CheckpointHotEvicted { job: 1, manifest: 7 }),
            ev(
                20,
                2,
                EventKind::CheckpointRestored {
                    job: 1,
                    manifest: 7,
                    step: 3,
                    bytes: 64,
                    source: "hot".into(),
                },
            ),
            ev(30, 3, EventKind::WitnessQuorumReached { job: 2, manifest: 9, peers: 3 }),
            ev(
                35,
                4,
                EventKind::CheckpointRestored {
                    job: 2,
                    manifest: 9,
                    step: 1,
                    bytes: 10,
                    source: "witness".into(),
                },
            ),
            ev(40, 5, EventKind::CheckpointCommitted { job: 3, manifest: 11, step: 2 }),
            ev(41, 6, EventKind::ManifestCorrupted { job: 3, manifest: 11 }),
            ev(
                45,
                7,
                EventKind::CheckpointRestored {
                    job: 3,
                    manifest: 11,
                    step: 2,
                    bytes: 5,
                    source: "remote".into(),
                },
            ),
        ];
        let (durable, _) = Oracle::check_durability(&events);
        assert!(!durable.passed);
        assert_eq!(durable.violations.len(), 2, "{:?}", durable.violations);
        assert!(durable.violations[0].contains("manifest 7"), "evicted-hot restore flagged");
        assert!(durable.violations[1].contains("manifest 11"), "corrupted restore flagged");
    }

    #[test]
    fn restore_bytes_exceeding_staged_are_flagged() {
        let events = vec![
            ev(
                10,
                0,
                EventKind::CheckpointStaged {
                    job: 0,
                    manifest: 1,
                    step: 5,
                    bytes: 100,
                    new_bytes: 40,
                },
            ),
            ev(20, 1, EventKind::CheckpointCommitted { job: 0, manifest: 1, step: 5 }),
            ev(
                30,
                2,
                EventKind::CheckpointRestored {
                    job: 0,
                    manifest: 1,
                    step: 5,
                    bytes: 150,
                    source: "remote".into(),
                },
            ),
        ];
        let (_, bytes_ok) = Oracle::check_durability(&events);
        assert!(!bytes_ok.passed);
        assert!(bytes_ok.violations[0].contains("staged only 100"));
        // And the full check() surfaces both durability invariants.
        let report = Oracle::default().check(&FaultPlan::default(), &events, &clean_truth());
        assert_eq!(report.checks.len(), Invariant::ALL.len());
        let rb =
            report.checks.iter().find(|c| c.invariant == Invariant::RestoreBytesBounded).unwrap();
        assert!(!rb.passed);
    }

    #[test]
    fn master_crash_needs_recovery_within_deadline() {
        let crash_plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_secs(100),
            kind: FaultKind::MasterCrash { restart: SimDuration::from_secs(60) },
        }]);
        // Recovered (witness path) 90s later: latency recorded.
        let good = vec![
            ev(
                100,
                0,
                EventKind::FaultInjected { fault: 0, kind: "MasterCrash".into(), target: 0 },
            ),
            ev(
                190,
                1,
                EventKind::JobRecovered {
                    job: 0,
                    path: "witness-quorum".into(),
                    latency_us: 90_000_000,
                    step: 4,
                },
            ),
        ];
        let truth = GroundTruth { completed_at: Some(SimTime::from_secs(36_000)), ..clean_truth() };
        let report = Oracle::default().check(&crash_plan, &good, &truth);
        let ck = report.checks.iter().find(|c| c.invariant == Invariant::RecoveryDeadline).unwrap();
        assert!(ck.passed, "{:?}", ck.violations);
        assert!(report.recovery_latencies_us.contains(&90_000_000));

        // No restart signal at all and the job dragged on: violation.
        let bad = vec![ev(
            100,
            0,
            EventKind::FaultInjected { fault: 0, kind: "MasterCrash".into(), target: 0 },
        )];
        let report = Oracle::default().check(&crash_plan, &bad, &truth);
        let ck = report.checks.iter().find(|c| c.invariant == Invariant::RecoveryDeadline).unwrap();
        assert!(!ck.passed);
    }

    #[test]
    fn report_serializes_deterministically() {
        let report = Oracle::default().check(&kill_plan(), &[], &clean_truth());
        let a = serde_json::to_string(&report).unwrap();
        let b = serde_json::to_string(&report).unwrap();
        assert_eq!(a, b);
        let back: OracleReport = serde_json::from_str(&a).unwrap();
        assert_eq!(back, report);
    }

    fn applied(seq: u64, window: u64, samples_done: u64) -> Event {
        ev(
            10 * (seq + 1),
            seq,
            EventKind::ReconfigApplied {
                job: 0,
                window,
                mode: "sync".into(),
                batch: 512,
                replicas: 1,
                shards: 2,
                samples_done,
                pause_us: 20_000_000,
            },
        )
    }

    #[test]
    fn reconfig_windows_resolve_exactly_once() {
        // One applied, one rolled back: clean.
        let clean = vec![
            applied(0, 0, 1_000),
            ev(
                30,
                1,
                EventKind::ReconfigRolledBack {
                    job: 0,
                    window: 1,
                    reason: "master-crash".into(),
                    samples_done: 2_000,
                },
            ),
        ];
        assert!(Oracle::check_reconfig_consistency(&clean).passed);

        // The same window resolving twice is a violation, in any mix.
        let twice = vec![applied(0, 0, 1_000), applied(1, 0, 2_000)];
        let ck = Oracle::check_reconfig_consistency(&twice);
        assert!(!ck.passed);
        assert!(ck.violations[0].contains("resolved twice"), "{:?}", ck.violations);

        let apply_then_rollback = vec![
            applied(0, 0, 1_000),
            ev(
                30,
                1,
                EventKind::ReconfigRolledBack {
                    job: 0,
                    window: 0,
                    reason: "late".into(),
                    samples_done: 1_500,
                },
            ),
        ];
        assert!(!Oracle::check_reconfig_consistency(&apply_then_rollback).passed);
    }

    #[test]
    fn reconfig_must_not_lose_samples() {
        let regressing = vec![applied(0, 0, 5_000), applied(1, 1, 4_000)];
        let ck = Oracle::check_reconfig_consistency(&regressing);
        assert!(!ck.passed);
        assert!(ck.violations[0].contains("lost samples"), "{:?}", ck.violations);
    }

    #[test]
    fn reconfig_layout_must_be_consistent() {
        let degenerate = vec![ev(
            10,
            0,
            EventKind::ReconfigApplied {
                job: 0,
                window: 0,
                mode: "warp".into(),
                batch: 0,
                replicas: 0,
                shards: 0,
                samples_done: 0,
                pause_us: 0,
            },
        )];
        let ck = Oracle::check_reconfig_consistency(&degenerate);
        assert!(!ck.passed);
        assert_eq!(ck.violations.len(), 2, "{:?}", ck.violations);
        // And the full check() carries the verdict.
        let report = Oracle::default().check(&FaultPlan::default(), &degenerate, &clean_truth());
        let rc =
            report.checks.iter().find(|c| c.invariant == Invariant::ReconfigConsistent).unwrap();
        assert!(!rc.passed);
    }
}
