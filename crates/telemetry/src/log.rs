//! Bounded, deterministic event log.
//!
//! A ring buffer of [`Event`]s: appends are O(1), the capacity bounds
//! memory for arbitrarily long runs (a 12-month fleet trace), and evicted
//! events are *counted* so a summary never silently pretends the log is
//! complete. Sequence numbers are assigned at append time and survive
//! eviction, which makes two logs comparable line-by-line even when both
//! wrapped.

use crate::event::{Event, EventKind};
use dlrover_sim::SimTime;
use serde::Serialize;
use std::collections::BTreeMap;

/// Default event capacity (events beyond this evict the oldest).
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Ring-buffered event log. See the module docs.
#[derive(Debug, Clone)]
pub struct EventLog {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    next_seq: u64,
    dropped: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// Creates a log holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "event log capacity must be positive");
        EventLog { buf: Vec::new(), capacity, head: 0, next_seq: 0, dropped: 0 }
    }

    /// Pre-allocates room for `hint` more events, bounded by the ring
    /// capacity. Purely an allocation hint: retained events, sequence
    /// numbers, and serialized bytes are unchanged, so pre-sized and
    /// default-grown logs stay byte-identical.
    pub fn reserve(&mut self, hint: usize) {
        let target = self.capacity.min(self.buf.len().saturating_add(hint));
        self.buf.reserve(target.saturating_sub(self.buf.len()));
    }

    /// Appends an event stamped `at`.
    pub fn record(&mut self, at: SimTime, kind: EventKind) {
        let e = Event { at_us: at.as_micros(), seq: self.next_seq, kind };
        self.next_seq += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (wrapped, first) = self.buf.split_at(self.head);
        first.iter().chain(wrapped.iter())
    }

    /// Events retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted by the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count of retained events per kind name, sorted by name.
    pub fn kind_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in self.iter() {
            *counts.entry(e.kind.name()).or_insert(0) += 1;
        }
        counts
    }

    /// The `n` most frequent kinds, descending by count (name-ordered ties).
    pub fn top_kinds(&self, n: usize) -> Vec<(&'static str, u64)> {
        let mut v: Vec<(&'static str, u64)> = self.kind_counts().into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(n);
        v
    }

    /// Appends every event retained by `other` (re-stamping sequence
    /// numbers in merge order) and carries over its eviction count.
    ///
    /// This is the event half of the parallel experiment engine's per-unit
    /// log merge: each unit records into a private log, and the harness
    /// absorbs the unit logs in sorted-unit-key order. Because the merged
    /// sequence numbers depend only on that fixed order (never on thread
    /// interleaving), the merged log is byte-identical at any thread count.
    /// `other`'s evicted events are accounted into both `dropped` and
    /// `next_seq`, so `total_recorded` of the merge equals the sum of the
    /// parts; the merge target's own ring buffer may evict further (counted
    /// as usual) when the parts together exceed its capacity.
    pub fn absorb(&mut self, other: &EventLog) {
        self.absorb_owned(other.clone());
    }

    /// [`Self::absorb`], consuming the other log: events *move* in (no
    /// per-event `kind` clone), sequence numbers are rewritten in place,
    /// and when the target ring has room the batch lands via one bulk
    /// append. Byte-for-byte the same merged log as [`Self::absorb`].
    pub fn absorb_owned(&mut self, mut other: EventLog) {
        self.next_seq += other.dropped;
        self.dropped += other.dropped;
        other.buf.rotate_left(other.head);
        other.head = 0;
        if self.head == 0 && self.buf.len() + other.buf.len() <= self.capacity {
            for e in &mut other.buf {
                e.seq = self.next_seq;
                self.next_seq += 1;
            }
            self.buf.append(&mut other.buf);
        } else {
            for e in other.buf.drain(..) {
                self.record(SimTime::from_micros(e.at_us), e.kind);
            }
        }
    }

    /// Serializes the retained events as JSON Lines (one compact JSON
    /// object per line, trailing newline). Byte-identical across runs with
    /// identical event streams.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.iter() {
            out.push_str(&serde_json::to_string(e).expect("event serializes"));
            out.push('\n');
        }
        out
    }
}

/// One difference between two JSONL event logs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LogDiff {
    /// Zero-based line number.
    pub line: usize,
    /// The line in the left log (`None` past its end).
    pub left: Option<String>,
    /// The line in the right log (`None` past its end).
    pub right: Option<String>,
}

/// Compares two JSONL event logs line-by-line, returning up to `limit`
/// differences (an empty result means the logs are identical).
pub fn diff_jsonl(left: &str, right: &str, limit: usize) -> Vec<LogDiff> {
    let mut diffs = Vec::new();
    let mut l = left.lines();
    let mut r = right.lines();
    let mut line = 0usize;
    loop {
        let (a, b) = (l.next(), r.next());
        if a.is_none() && b.is_none() {
            break;
        }
        if a != b {
            diffs.push(LogDiff { line, left: a.map(str::to_string), right: b.map(str::to_string) });
            if diffs.len() >= limit {
                break;
            }
        }
        line += 1;
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(i: u64) -> SimTime {
        SimTime::from_secs(i)
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::with_capacity(3);
        for i in 0..5u64 {
            log.record(stamp(i), EventKind::WorkerAdded { worker: i });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.total_recorded(), 5);
        let seqs: Vec<u64> = log.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest evicted, order preserved");
    }

    #[test]
    fn top_kinds_rank_by_count() {
        let mut log = EventLog::default();
        for i in 0..3 {
            log.record(stamp(i), EventKind::WorkerAdded { worker: i });
        }
        log.record(stamp(9), EventKind::JobCompleted { job: 0 });
        let top = log.top_kinds(5);
        assert_eq!(top[0], ("WorkerAdded", 3));
        assert_eq!(top[1], ("JobCompleted", 1));
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let mut log = EventLog::default();
        log.record(stamp(1), EventKind::PodPlaced { pod: 1, node: 2 });
        log.record(stamp(2), EventKind::PodPending { pod: 3 });
        let text = log.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"PodPlaced\""));
    }

    #[test]
    fn absorb_resequences_in_merge_order_and_totals_add_up() {
        let mut a = EventLog::default();
        a.record(stamp(1), EventKind::JobStarted { job: 1 });
        let mut b = EventLog::with_capacity(1);
        b.record(stamp(2), EventKind::WorkerAdded { worker: 1 });
        b.record(stamp(3), EventKind::WorkerAdded { worker: 2 }); // evicts the first
        let mut merged = EventLog::default();
        merged.absorb(&a);
        merged.absorb(&b);
        // total = 1 (from a) + 2 (from b, one evicted) — the merge never
        // undercounts work that a unit actually did.
        assert_eq!(merged.total_recorded(), 3);
        assert_eq!(merged.dropped(), 1);
        let seqs: Vec<u64> = merged.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 2], "b's retained event re-sequenced after b's drop");
        // Absorb order is the caller's contract: same parts, same order,
        // byte-identical JSONL.
        let mut again = EventLog::default();
        again.absorb(&a);
        again.absorb(&b);
        assert_eq!(merged.to_jsonl(), again.to_jsonl());
    }

    #[test]
    fn absorb_respects_target_capacity() {
        let mut part = EventLog::default();
        for i in 0..5u64 {
            part.record(stamp(i), EventKind::WorkerAdded { worker: i });
        }
        let mut merged = EventLog::with_capacity(3);
        merged.absorb(&part);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.dropped(), 2);
        assert_eq!(merged.total_recorded(), 5);
    }

    #[test]
    fn absorb_owned_matches_absorb_byte_for_byte() {
        let wrapped = {
            let mut log = EventLog::with_capacity(2);
            for i in 0..5u64 {
                log.record(stamp(i), EventKind::WorkerAdded { worker: i });
            }
            log
        };
        let plain = {
            let mut log = EventLog::default();
            log.record(stamp(9), EventKind::JobCompleted { job: 3 });
            log
        };
        for target_cap in [1usize, 3, 64] {
            let mut by_ref = EventLog::with_capacity(target_cap);
            let mut by_own = EventLog::with_capacity(target_cap);
            for part in [&plain, &wrapped, &EventLog::default(), &plain] {
                by_ref.absorb(part);
                by_own.absorb_owned(part.clone());
            }
            assert_eq!(by_ref.to_jsonl(), by_own.to_jsonl(), "cap {target_cap}");
            assert_eq!(by_ref.total_recorded(), by_own.total_recorded());
            assert_eq!(by_ref.dropped(), by_own.dropped());
        }
    }

    #[test]
    fn diff_reports_divergence_and_length_mismatch() {
        let a = "x\ny\nz\n";
        let b = "x\nY\n";
        let d = diff_jsonl(a, b, 10);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].left.as_deref(), Some("y"));
        assert_eq!(d[0].right.as_deref(), Some("Y"));
        assert_eq!(d[1].right, None);
        assert!(diff_jsonl(a, a, 10).is_empty());
    }
}
