//! Hierarchical, virtual-time spans: the causal companion to the flat
//! event log.
//!
//! An [`Event`](crate::Event) says *what* happened; a [`Span`] says *how
//! long a phase lasted* and *inside which larger phase* — which is exactly
//! the information the critical-path analyses of the paper's claims need
//! (migration stalls of §5.2 Table 2, straggler iterations of §4.2,
//! pod-startup latency under contention).
//!
//! Spans follow the same two rules as the event log:
//!
//! * **Deterministic.** Start/end stamps are [`SimTime`] (never the wall
//!   clock), ids are assigned in open order, open spans live in a
//!   `BTreeMap`, and closed spans serialize in close order — so two runs
//!   with the same seed produce byte-identical span logs.
//! * **Bounded.** Closed spans live in a ring buffer; evictions are
//!   *counted* ([`SpanLog::dropped`]) so a summary never silently pretends
//!   the log is complete.

use dlrover_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default closed-span capacity (spans beyond this evict the oldest).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Identifier of a span within one [`SpanLog`], assigned at open time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SpanId(pub u64);

/// The category taxonomy of the stack's phases.
///
/// Categories are coarse on purpose: analyzers key on them (e.g. the
/// critical-path extractor ranks them by blocking-ness), while free-form
/// detail goes in the span label. The `iteration/*` sub-categories mirror
/// the cost model's phase decomposition (Eqns. 2–6): embedding lookup,
/// gradient push (parameter update), parameter pull (sync), and dense
/// compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpanCategory {
    /// Whole-job lifetime (runner root span).
    Job,
    /// Pod request → placement decision (grant or still pending).
    Scheduling,
    /// Pod placement → running (image pull + init, §5.2's overlap target).
    PodStartup,
    /// A pod eviction for a higher-priority service (§2.2).
    Preemption,
    /// One engine slice of training iterations.
    Iteration,
    /// Embedding lookup phase (`t_emb`, Eqn. 5 — the Fig. 1a 30–48 %).
    IterLookup,
    /// Gradient push / parameter update phase (`t_upd`, Eqn. 3).
    IterPush,
    /// Parameter pull / sync phase (`t_sync`, Eqn. 4).
    IterPull,
    /// Dense gradient computation + fixed overheads (`t_grad + β`).
    IterCompute,
    /// Checkpoint save or load (flash or RDS tier, §5.2).
    Checkpoint,
    /// Migration activity: pauses, degraded running, plan execution (§5.2).
    Migration,
    /// PS partition rebalancing onto healthy capacity (§4.3).
    Rebalance,
    /// A worker running far below its peers (§4.2 / Fig. 13).
    Straggler,
    /// OOM forecasting verdicts (§5.3).
    OomPredict,
    /// Cluster-level plan generation / selection (Eqns. 11–14).
    Planning,
    /// Per-job policy evaluation (stage-2 adjustment).
    PolicyEval,
}

impl SpanCategory {
    /// Every category, in declaration order (for analyzers and tests).
    pub const ALL: [SpanCategory; 16] = [
        SpanCategory::Job,
        SpanCategory::Scheduling,
        SpanCategory::PodStartup,
        SpanCategory::Preemption,
        SpanCategory::Iteration,
        SpanCategory::IterLookup,
        SpanCategory::IterPush,
        SpanCategory::IterPull,
        SpanCategory::IterCompute,
        SpanCategory::Checkpoint,
        SpanCategory::Migration,
        SpanCategory::Rebalance,
        SpanCategory::Straggler,
        SpanCategory::OomPredict,
        SpanCategory::Planning,
        SpanCategory::PolicyEval,
    ];

    /// Stable taxonomy name (used in summaries, critical-path phase keys,
    /// and Chrome trace categories).
    pub fn name(&self) -> &'static str {
        match self {
            SpanCategory::Job => "job",
            SpanCategory::Scheduling => "scheduling",
            SpanCategory::PodStartup => "pod-startup",
            SpanCategory::Preemption => "preemption",
            SpanCategory::Iteration => "iteration",
            SpanCategory::IterLookup => "iteration/lookup",
            SpanCategory::IterPush => "iteration/push",
            SpanCategory::IterPull => "iteration/pull",
            SpanCategory::IterCompute => "iteration/compute",
            SpanCategory::Checkpoint => "checkpoint",
            SpanCategory::Migration => "migration",
            SpanCategory::Rebalance => "rebalance",
            SpanCategory::Straggler => "straggler",
            SpanCategory::OomPredict => "oom-predict",
            SpanCategory::Planning => "planning",
            SpanCategory::PolicyEval => "policy-eval",
        }
    }
}

/// One closed (or still-open) phase of virtual time.
///
/// `track` groups spans that belong to one sequential timeline — a job's
/// engine, a pod, a per-case experiment lane. Analyzers treat tracks as
/// Chrome trace `tid`s and sweep each track independently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Log-assigned id (open order; survives ring-buffer eviction).
    pub id: u64,
    /// Enclosing span's id, if any.
    pub parent: Option<u64>,
    /// Phase category.
    pub cat: SpanCategory,
    /// Free-form detail (e.g. `"w3"`, `"pause"`, `"save"`).
    pub label: String,
    /// Timeline lane (job id, pod id, or experiment case id).
    pub track: u64,
    /// Virtual start, microseconds since simulation start.
    pub start_us: u64,
    /// Virtual end, microseconds (`== start_us` for instant spans).
    pub end_us: u64,
}

impl Span {
    /// Virtual start time.
    pub fn start(&self) -> SimTime {
        SimTime::from_micros(self.start_us)
    }

    /// Virtual end time.
    pub fn end(&self) -> SimTime {
        SimTime::from_micros(self.end_us)
    }

    /// Duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Ring-buffered span log. See the module docs for the determinism and
/// boundedness rules.
#[derive(Debug, Clone)]
pub struct SpanLog {
    closed: Vec<Span>,
    capacity: usize,
    /// Index of the oldest closed span once the buffer has wrapped.
    head: usize,
    open: BTreeMap<u64, Span>,
    next_id: u64,
    closed_total: u64,
    dropped: u64,
    unmatched_closes: u64,
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanLog {
    /// Creates a log retaining at most `capacity` closed spans.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "span log capacity must be positive");
        SpanLog {
            closed: Vec::new(),
            capacity,
            head: 0,
            open: BTreeMap::new(),
            next_id: 0,
            closed_total: 0,
            dropped: 0,
            unmatched_closes: 0,
        }
    }

    /// Opens a span starting at `at`; close it with [`Self::close`].
    pub fn open(
        &mut self,
        at: SimTime,
        cat: SpanCategory,
        label: &str,
        track: u64,
        parent: Option<SpanId>,
    ) -> SpanId {
        let id = self.next_id;
        self.next_id += 1;
        self.open.insert(
            id,
            Span {
                id,
                parent: parent.map(|p| p.0),
                cat,
                label: label.to_string(),
                track,
                start_us: at.as_micros(),
                end_us: at.as_micros(),
            },
        );
        SpanId(id)
    }

    /// Closes an open span at `at`. A close without a matching open is
    /// counted ([`Self::unmatched_closes`]) and otherwise ignored; an end
    /// before the start clamps to the start (spans never run backwards).
    pub fn close(&mut self, at: SimTime, id: SpanId) {
        match self.open.remove(&id.0) {
            Some(mut span) => {
                span.end_us = at.as_micros().max(span.start_us);
                self.push_closed(span);
            }
            None => self.unmatched_closes += 1,
        }
    }

    /// Records an already-complete span `[start, end]` in one call.
    pub fn complete(
        &mut self,
        start: SimTime,
        end: SimTime,
        cat: SpanCategory,
        label: &str,
        track: u64,
        parent: Option<SpanId>,
    ) -> SpanId {
        let id = self.next_id;
        self.next_id += 1;
        self.push_closed(Span {
            id,
            parent: parent.map(|p| p.0),
            cat,
            label: label.to_string(),
            track,
            start_us: start.as_micros(),
            end_us: end.as_micros().max(start.as_micros()),
        });
        SpanId(id)
    }

    fn push_closed(&mut self, span: Span) {
        self.closed_total += 1;
        if self.closed.len() < self.capacity {
            self.closed.push(span);
        } else {
            self.closed[self.head] = span;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Closed spans currently retained, in close order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        let (wrapped, first) = self.closed.split_at(self.head);
        first.iter().chain(wrapped.iter())
    }

    /// Closed spans retained.
    pub fn len(&self) -> usize {
        self.closed.len()
    }

    /// True when no span was ever closed.
    pub fn is_empty(&self) -> bool {
        self.closed.is_empty()
    }

    /// Spans currently open (opened, not yet closed).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Total spans ever closed (retained + evicted).
    pub fn total_closed(&self) -> u64 {
        self.closed_total
    }

    /// Closed spans evicted by the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Closes received for ids that were not open.
    pub fn unmatched_closes(&self) -> u64 {
        self.unmatched_closes
    }

    /// Retained virtual time per category name, sorted by name.
    pub fn category_totals(&self) -> BTreeMap<&'static str, u64> {
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        for s in self.iter() {
            *totals.entry(s.cat.name()).or_insert(0) += s.dur_us();
        }
        totals
    }

    /// Appends every closed span retained by `other`, remapping ids into
    /// this log's id space so parent/child nesting survives the merge.
    ///
    /// This is the span half of the parallel experiment engine's per-unit
    /// log merge. Each absorbed span's `id` (and `parent`, when present) is
    /// shifted by this log's current `next_id`, which keeps (a) absorbed
    /// ids disjoint from existing ones and (b) every absorbed parent link
    /// pointing at the same absorbed span it did in the unit log — even
    /// when the parent itself was evicted or never closed. Merge order is
    /// the caller's (sorted-unit-key) order, so the remapped ids are
    /// independent of thread interleaving. `other`'s evictions and
    /// unmatched closes are carried over; spans still open in `other` are
    /// not copied (units are expected to close their spans before merge).
    pub fn absorb(&mut self, other: &SpanLog) {
        self.absorb_owned(other.clone());
    }

    /// [`Self::absorb`], consuming the other log: spans (and their heap
    /// `label`s) *move* into this log instead of being cloned, the base-id
    /// offset is applied in one in-place pass (skipped entirely when this
    /// log has never assigned an id, the common first-absorb case), and
    /// when the target ring has room the batch lands via one bulk append.
    /// Byte-for-byte the same merged log as [`Self::absorb`] — only the
    /// copies are gone.
    pub fn absorb_owned(&mut self, mut other: SpanLog) {
        let offset = self.next_id;
        self.closed_total += other.dropped;
        self.dropped += other.dropped;
        self.unmatched_closes += other.unmatched_closes;
        // Restore close order (oldest first) in place, then remap the
        // whole id space by the base offset.
        other.closed.rotate_left(other.head);
        other.head = 0;
        if offset != 0 {
            for span in &mut other.closed {
                span.id += offset;
                if let Some(p) = span.parent.as_mut() {
                    *p += offset;
                }
            }
        }
        if self.head == 0 && self.closed.len() + other.closed.len() <= self.capacity {
            self.closed_total += other.closed.len() as u64;
            self.closed.append(&mut other.closed);
        } else {
            for span in other.closed.drain(..) {
                self.push_closed(span);
            }
        }
        self.next_id = offset + other.next_id;
    }

    /// Serializes the retained closed spans as JSON Lines (one compact
    /// object per line, trailing newline). Byte-identical across runs with
    /// identical span streams.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.iter() {
            out.push_str(&serde_json::to_string(s).expect("span serializes"));
            out.push('\n');
        }
        out
    }
}

/// Parses a JSONL span dump back into spans (inverse of
/// [`SpanLog::to_jsonl`]). Returns `None` on the first malformed line.
pub fn parse_spans_jsonl(text: &str) -> Option<Vec<Span>> {
    text.lines().map(|l| serde_json::from_str(l).ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn open_close_roundtrip() {
        let mut log = SpanLog::default();
        let a = log.open(t(1), SpanCategory::Migration, "pause", 7, None);
        let b = log.open(t(2), SpanCategory::Checkpoint, "save", 7, Some(a));
        log.close(t(3), b);
        log.close(t(5), a);
        let spans: Vec<&Span> = log.iter().collect();
        assert_eq!(spans.len(), 2);
        // Close order: b first.
        assert_eq!(spans[0].cat, SpanCategory::Checkpoint);
        assert_eq!(spans[0].parent, Some(a.0));
        assert_eq!(spans[1].dur_us(), 4_000_000);
        assert_eq!(log.open_count(), 0);
    }

    #[test]
    fn unmatched_close_is_counted_not_fatal() {
        let mut log = SpanLog::default();
        log.close(t(1), SpanId(99));
        assert_eq!(log.unmatched_closes(), 1);
        assert!(log.is_empty());
    }

    #[test]
    fn backwards_close_clamps_to_start() {
        let mut log = SpanLog::default();
        let id = log.open(t(10), SpanCategory::Job, "", 0, None);
        log.close(t(5), id);
        assert_eq!(log.iter().next().unwrap().dur_us(), 0);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let mut log = SpanLog::with_capacity(2);
        for i in 0..5u64 {
            log.complete(t(i), t(i + 1), SpanCategory::Iteration, "", 0, None);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.total_closed(), 5);
        let ids: Vec<u64> = log.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![3, 4], "oldest evicted, order preserved");
    }

    #[test]
    fn jsonl_roundtrips_and_is_deterministic() {
        let build = || {
            let mut log = SpanLog::default();
            let p = log.open(t(0), SpanCategory::Iteration, "slice", 3, None);
            log.complete(t(0), t(1), SpanCategory::IterLookup, "", 3, Some(p));
            log.close(t(4), p);
            log.to_jsonl()
        };
        let a = build();
        assert_eq!(a, build());
        let parsed = parse_spans_jsonl(&a).expect("parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].cat, SpanCategory::Iteration);
    }

    #[test]
    fn absorb_preserves_parent_child_nesting_across_unit_boundaries() {
        // Two units each build a parent/child tree with ids starting at 0.
        let unit = |base: u64| {
            let mut log = SpanLog::default();
            let p = log.open(t(base), SpanCategory::Job, "job", base, None);
            log.complete(t(base), t(base + 1), SpanCategory::Checkpoint, "save", base, Some(p));
            log.close(t(base + 2), p);
            log
        };
        let (a, b) = (unit(10), unit(20));
        let mut merged = SpanLog::default();
        merged.absorb(&a);
        merged.absorb(&b);
        let spans: Vec<&Span> = merged.iter().collect();
        assert_eq!(spans.len(), 4);
        // Every child still points at *its own unit's* parent: the merge
        // must not alias unit B's child (original parent id 0) onto unit
        // A's parent (merged id 0).
        for child in spans.iter().filter(|s| s.parent.is_some()) {
            let parent = spans
                .iter()
                .find(|s| s.id == child.parent.unwrap())
                .expect("parent survives the merge");
            assert_eq!(parent.track, child.track, "child rebound to a foreign parent");
            assert!(parent.start_us <= child.start_us && child.end_us <= parent.end_us);
        }
        // Ids are disjoint across units.
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "merged ids must be unique");
    }

    #[test]
    fn absorb_carries_drop_and_unmatched_accounting() {
        let mut part = SpanLog::with_capacity(1);
        part.complete(t(0), t(1), SpanCategory::Iteration, "", 0, None);
        part.complete(t(1), t(2), SpanCategory::Iteration, "", 0, None); // evicts
        part.close(t(3), SpanId(999)); // unmatched
        let mut merged = SpanLog::default();
        merged.absorb(&part);
        assert_eq!(merged.total_closed(), 2, "evicted spans still count as closed work");
        assert_eq!(merged.dropped(), 1);
        assert_eq!(merged.unmatched_closes(), 1);
        // next_id advanced past the part's id space: fresh spans cannot
        // collide with absorbed ones.
        let fresh = merged.complete(t(5), t(6), SpanCategory::Job, "", 0, None);
        assert!(fresh.0 >= 2);
    }

    #[test]
    fn absorb_owned_matches_absorb_byte_for_byte() {
        // Parts exercising every path: wrapped ring in the source, empty
        // source, non-zero base offset, and capacity pressure in the
        // target (slow push path).
        let wrapped = {
            let mut log = SpanLog::with_capacity(2);
            for i in 0..4u64 {
                let p = log.open(t(i), SpanCategory::Job, "job", i, None);
                log.complete(t(i), t(i + 1), SpanCategory::Checkpoint, "save", i, Some(p));
                log.close(t(i + 2), p);
            }
            log
        };
        let plain = {
            let mut log = SpanLog::default();
            log.complete(t(0), t(9), SpanCategory::Migration, "pause", 1, None);
            log
        };
        for target_cap in [1usize, 3, 64] {
            let mut by_ref = SpanLog::with_capacity(target_cap);
            let mut by_own = SpanLog::with_capacity(target_cap);
            for part in [&plain, &wrapped, &SpanLog::default(), &plain] {
                by_ref.absorb(part);
                by_own.absorb_owned(part.clone());
            }
            assert_eq!(by_ref.to_jsonl(), by_own.to_jsonl(), "cap {target_cap}");
            assert_eq!(by_ref.total_closed(), by_own.total_closed());
            assert_eq!(by_ref.dropped(), by_own.dropped());
            assert_eq!(by_ref.next_id, by_own.next_id);
        }
    }

    #[test]
    fn category_names_are_stable_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for c in SpanCategory::ALL {
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
        }
        assert_eq!(SpanCategory::IterLookup.name(), "iteration/lookup");
        assert_eq!(SpanCategory::PodStartup.name(), "pod-startup");
    }

    #[test]
    fn category_totals_sum_durations() {
        let mut log = SpanLog::default();
        log.complete(t(0), t(2), SpanCategory::Migration, "", 0, None);
        log.complete(t(5), t(6), SpanCategory::Migration, "", 0, None);
        let totals = log.category_totals();
        assert_eq!(totals["migration"], 3_000_000);
    }
}
