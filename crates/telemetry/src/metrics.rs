//! Named counters, gauges, histograms, and virtual-time series.
//!
//! Everything is keyed by `BTreeMap`, so serialized registries are
//! deterministically ordered; everything is stamped with [`SimTime`], so a
//! registry never consults the wall clock. Histograms use fixed
//! power-of-ten buckets (no per-registry configuration to drift between
//! runs), and time series aggregate samples into fixed-width virtual-time
//! buckets so a 12-month trace stays small.

use dlrover_sim::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::BTreeMap;

/// Upper bounds (exclusive) of the histogram buckets: 1e-6 … 1e9, one
/// decade per bucket, plus an overflow bucket.
const DECADES: i32 = 16;
const FIRST_DECADE: i32 = -6;

/// A fixed-bucket histogram of `f64` observations.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Histogram {
    /// Per-decade counts (`counts[i]` ⇔ value < 10^(FIRST_DECADE + i)),
    /// final slot = overflow.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; DECADES as usize + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Records one observation (non-finite values are ignored).
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut idx = DECADES as usize; // overflow by default
        for i in 0..DECADES {
            if value < 10f64.powi(FIRST_DECADE + i) {
                idx = i as usize;
                break;
            }
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Deterministic quantile estimate (`q` in `[0, 1]`) by cumulative
    /// bucket walk + linear interpolation inside the landing bucket.
    ///
    /// The bucket layout is fixed (one power-of-ten decade per bucket),
    /// so the estimate is a pure function of the counts — identical
    /// across runs, merge orders, and thread counts, unlike a sample
    /// reservoir. Interpolation assumes observations spread uniformly
    /// within a bucket: the first bucket interpolates up from 0, the
    /// overflow bucket up to `max`, and the result is clamped to
    /// `[min, max]` so a single-value histogram reports that value
    /// exactly. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let through = below + c;
            if through as f64 >= target {
                let lo = if i == 0 { 0.0 } else { 10f64.powi(FIRST_DECADE + i as i32 - 1) };
                let hi = if i == DECADES as usize {
                    self.max
                } else {
                    10f64.powi(FIRST_DECADE + i as i32)
                };
                let frac = ((target - below as f64) / c as f64).clamp(0.0, 1.0);
                return (lo + (hi - lo) * frac).clamp(self.min, self.max);
            }
            below = through;
        }
        self.max
    }

    /// Median estimate (see [`Self::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (see [`Self::quantile`]).
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (see [`Self::quantile`]).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Adds `other`'s observations into this histogram (bucket-wise; the
    /// fixed bucket layout makes merging exact for counts, approximate for
    /// nothing — sum/min/max combine losslessly too).
    pub fn absorb(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One aggregated time-series bucket.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeriesPoint {
    /// Bucket index (`at / bucket_width`).
    pub bucket: u64,
    /// Sum of samples in the bucket.
    pub sum: f64,
    /// Sample count in the bucket.
    pub count: u64,
    /// Last sample in the bucket.
    pub last: f64,
}

impl SeriesPoint {
    /// Bucket mean.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A virtual-time-bucketed series of samples.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimeSeries {
    /// Bucket width in microseconds.
    pub bucket_us: u64,
    /// Buckets in time order (sparse: empty buckets are absent).
    pub points: Vec<SeriesPoint>,
}

impl TimeSeries {
    fn new(bucket: SimDuration) -> Self {
        TimeSeries { bucket_us: bucket.as_micros().max(1), points: Vec::new() }
    }

    fn sample(&mut self, at: SimTime, value: f64) {
        if !value.is_finite() {
            return;
        }
        let bucket = at.as_micros() / self.bucket_us;
        match self.points.last_mut() {
            Some(p) if p.bucket == bucket => {
                p.sum += value;
                p.count += 1;
                p.last = value;
            }
            _ => self.points.push(SeriesPoint { bucket, sum: value, count: 1, last: value }),
        }
    }

    /// Merges `other`'s buckets into this series (bucket widths must
    /// match). Same-index buckets combine sums and counts; `last` takes
    /// `other`'s value, consistent with the registry's merge-order
    /// last-wins rule for gauges. The result is re-sorted by bucket index.
    fn absorb(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.bucket_us, other.bucket_us,
            "cannot merge time series with different bucket widths"
        );
        let mut merged: BTreeMap<u64, SeriesPoint> =
            self.points.drain(..).map(|p| (p.bucket, p)).collect();
        for p in &other.points {
            match merged.get_mut(&p.bucket) {
                Some(mine) => {
                    mine.sum += p.sum;
                    mine.count += p.count;
                    mine.last = p.last;
                }
                None => {
                    merged.insert(p.bucket, p.clone());
                }
            }
        }
        self.points = merged.into_values().collect();
    }
}

/// Default time-series bucket width.
pub const DEFAULT_SERIES_BUCKET: SimDuration = SimDuration::from_secs(60);

/// The registry: named counters, gauges, histograms, and time series.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsRegistry {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Virtual-time series.
    pub series: BTreeMap<String, TimeSeries>,
}

impl MetricsRegistry {
    /// Increments counter `name` by `n`.
    pub fn count(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Appends a `(at, value)` sample to series `name`, aggregating into
    /// [`DEFAULT_SERIES_BUCKET`]-wide virtual-time buckets.
    pub fn sample(&mut self, name: &str, at: SimTime, value: f64) {
        if let Some(s) = self.series.get_mut(name) {
            s.sample(at, value);
        } else {
            let mut s = TimeSeries::new(DEFAULT_SERIES_BUCKET);
            s.sample(at, value);
            self.series.insert(name.to_string(), s);
        }
    }

    /// Merges another registry into this one (the metrics half of the
    /// parallel experiment engine's per-unit merge; callers absorb unit
    /// registries in sorted-unit-key order).
    ///
    /// Counters and histograms combine losslessly. Gauges are last-write
    /// wins in merge order — deterministic because merge order is fixed,
    /// but units that both set the same gauge should expect the
    /// highest-keyed unit's value to survive. Time series merge
    /// bucket-wise (see [`TimeSeries`]).
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        self.absorb_owned(other.clone());
    }

    /// [`Self::absorb`], consuming the other registry: names and payloads
    /// *move* in where this registry has no entry yet (the common case in
    /// a merge into a fresh sink), instead of being cloned key by key.
    pub fn absorb_owned(&mut self, other: MetricsRegistry) {
        for (name, n) in other.counters {
            match self.counters.get_mut(&name) {
                Some(mine) => *mine += n,
                None => {
                    self.counters.insert(name, n);
                }
            }
        }
        for (name, v) in other.gauges {
            self.gauges.insert(name, v);
        }
        for (name, h) in other.histograms {
            match self.histograms.get_mut(&name) {
                Some(mine) => mine.absorb(&h),
                None => {
                    self.histograms.insert(name, h);
                }
            }
        }
        for (name, s) in other.series {
            match self.series.get_mut(&name) {
                Some(mine) => mine.absorb(&s),
                None => {
                    self.series.insert(name, s);
                }
            }
        }
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Series by name.
    pub fn time_series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::default();
        m.count("scalings", 1);
        m.count("scalings", 2);
        m.gauge("throughput", 10.0);
        m.gauge("throughput", 12.5);
        assert_eq!(m.counter("scalings"), 3);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.gauge_value("throughput"), Some(12.5));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0.5, 5.0, 5.0, 500.0] {
            h.observe(v);
        }
        h.observe(f64::NAN); // ignored
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 500.0);
        assert!((h.mean() - 127.625).abs() < 1e-9);
        assert_eq!(h.counts.iter().sum::<u64>(), 4);
    }

    #[test]
    fn quantiles_interpolate_within_buckets_and_clamp_to_range() {
        let mut h = Histogram::default();
        // 100 observations spread across the [1, 10) decade.
        for i in 0..100 {
            h.observe(1.0 + 9.0 * (i as f64) / 100.0);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 > 1.0 && p50 < 10.0, "p50 inside the decade: {p50}");
        assert!(p95 > p50 && p99 >= p95, "quantiles must be monotone");
        assert!(p99 <= h.max, "clamped to observed range");
        // A single-valued histogram reports that value exactly.
        let mut single = Histogram::default();
        single.observe(0.25);
        assert_eq!(single.p50(), 0.25);
        assert_eq!(single.p99(), 0.25);
        // Empty histogram: defined, zero.
        assert_eq!(Histogram::default().p95(), 0.0);
    }

    #[test]
    fn quantiles_are_merge_order_invariant() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [0.01, 0.5, 2.0, 80.0] {
            a.observe(v);
        }
        for v in [0.3, 7.0, 7.0, 900.0] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab.p50(), ba.p50());
        assert_eq!(ab.p95(), ba.p95());
        assert_eq!(ab.p99(), ba.p99());
    }

    #[test]
    fn absorb_owned_matches_absorb() {
        let mut a = MetricsRegistry::default();
        a.count("iters", 3);
        a.gauge("thp", 1.0);
        a.observe("lat", 0.5);
        a.sample("s", SimTime::from_secs(10), 1.0);
        let mut b = MetricsRegistry::default();
        b.count("iters", 4);
        b.count("fresh", 1);
        b.gauge("thp", 2.0);
        b.observe("lat", 5.0);
        b.observe("lat2", 0.125);
        b.sample("s", SimTime::from_secs(30), 3.0);
        let mut by_ref = a.clone();
        by_ref.absorb(&b);
        let mut by_own = a.clone();
        by_own.absorb_owned(b.clone());
        assert_eq!(
            serde_json::to_string(&by_ref).unwrap(),
            serde_json::to_string(&by_own).unwrap()
        );
    }

    #[test]
    fn series_aggregates_within_buckets() {
        let mut m = MetricsRegistry::default();
        m.sample("thp", SimTime::from_secs(10), 1.0);
        m.sample("thp", SimTime::from_secs(50), 3.0);
        m.sample("thp", SimTime::from_secs(70), 5.0);
        let s = m.time_series("thp").unwrap();
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].count, 2);
        assert_eq!(s.points[0].mean(), 2.0);
        assert_eq!(s.points[0].last, 3.0);
        assert_eq!(s.points[1].bucket, 1);
    }

    #[test]
    fn absorb_combines_counters_histograms_and_series() {
        let mut a = MetricsRegistry::default();
        a.count("iters", 3);
        a.gauge("thp", 1.0);
        a.observe("lat", 0.5);
        a.sample("s", SimTime::from_secs(10), 1.0);
        let mut b = MetricsRegistry::default();
        b.count("iters", 4);
        b.gauge("thp", 2.0);
        b.observe("lat", 5.0);
        b.sample("s", SimTime::from_secs(30), 3.0); // same bucket as a's
        b.sample("s", SimTime::from_secs(70), 9.0);

        a.absorb(&b);
        assert_eq!(a.counter("iters"), 7);
        assert_eq!(a.gauge_value("thp"), Some(2.0), "gauges are merge-order last-wins");
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 5.0);
        let s = a.time_series("s").unwrap();
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].count, 2);
        assert_eq!(s.points[0].sum, 4.0);
        assert_eq!(s.points[0].last, 3.0);
        assert_eq!(s.points[1].bucket, 1);
    }

    #[test]
    fn registry_serializes_deterministically() {
        let build = || {
            let mut m = MetricsRegistry::default();
            m.count("b", 1);
            m.count("a", 2);
            m.observe("lat", 0.25);
            m.sample("s", SimTime::from_secs(1), 1.0);
            serde_json::to_string(&m).unwrap()
        };
        assert_eq!(build(), build());
        // BTreeMap ordering: "a" serializes before "b".
        let s = build();
        assert!(s.find("\"a\"").unwrap() < s.find("\"b\"").unwrap());
    }
}
