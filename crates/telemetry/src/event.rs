//! The typed event vocabulary of the whole stack.
//!
//! One flat enum covers every subsystem — pod lifecycle, scheduling,
//! scaling plans, migrations, checkpoints, data sharding, OOM prediction,
//! straggler detection, and the brain's three-stage decisions — so a single
//! trace interleaves the full causal story of a run. Variants carry only
//! primitive fields: the telemetry crate sits *below* every runtime crate
//! and cannot name their types.

use dlrover_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One structured occurrence somewhere in the stack.
///
/// Events are stamped with the virtual clock ([`SimTime`]) and a per-log
/// sequence number, so two events at the same instant keep their emission
/// order and serialized logs are bit-comparable across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Virtual-time stamp (microseconds since simulation start).
    pub at_us: u64,
    /// Monotonic per-log sequence number (survives ring-buffer eviction).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The event's virtual-time stamp.
    pub fn at(&self) -> SimTime {
        SimTime::from_micros(self.at_us)
    }
}

/// Everything the stack can report. See the module docs for the grouping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    // --- Pod / node lifecycle (cluster) ---
    /// A pod was submitted to the cluster scheduler.
    PodRequested {
        /// Owning job.
        job: u64,
        /// Cluster-assigned pod id.
        pod: u64,
    },
    /// The scheduler bound a pod to a node (a scheduling *grant*).
    PodPlaced {
        /// Pod id.
        pod: u64,
        /// Node the pod landed on.
        node: u32,
    },
    /// A pod could not be placed and parked in the pending queue (a
    /// scheduling *denial*; it may be granted later).
    PodPending {
        /// Pod id.
        pod: u64,
    },
    /// A low-priority pod was evicted to admit a high-priority one.
    PodPreempted {
        /// Pod id.
        pod: u64,
    },
    /// A pod died with its node.
    PodFailed {
        /// Pod id.
        pod: u64,
    },
    /// A node went down.
    NodeFailed {
        /// Node id.
        node: u32,
    },

    // --- Training-engine elasticity (pstrain) ---
    /// A worker joined the job and started pulling shards.
    WorkerAdded {
        /// Engine worker index.
        worker: u64,
    },
    /// A worker was removed gracefully (scale-in).
    WorkerRemoved {
        /// Engine worker index.
        worker: u64,
    },
    /// A worker failed; its in-flight shard re-queued in full.
    WorkerFailed {
        /// Engine worker index.
        worker: u64,
    },
    /// The PS layout was re-shaped (horizontal/vertical scaling, rebalance).
    PsReshaped {
        /// New PS count.
        ps: u64,
    },
    /// Training paused for a migration critical path.
    TrainingPaused {
        /// Pause length in microseconds.
        micros: u64,
    },

    // --- Data sharding (pstrain) ---
    /// A worker checked a data shard out of the queue.
    ShardCheckedOut {
        /// Shard-queue worker id.
        worker: u64,
        /// Shard length in samples.
        len: u64,
    },
    /// A worker reported a shard fully trained (the ack).
    ShardAcked {
        /// Shard-queue worker id.
        worker: u64,
        /// Shard length in samples.
        len: u64,
    },

    // --- Checkpoints / migration (pstrain, master) ---
    /// A flash checkpoint was written (synchronous tier).
    CheckpointSaved {
        /// Training step at the snapshot.
        step: u64,
        /// Serialized size in bytes.
        bytes: u64,
    },
    /// A scaling plan was applied to a live job.
    ScalingPlanApplied {
        /// Job id.
        job: u64,
        /// Target worker count.
        workers: u32,
        /// Target PS count.
        ps: u32,
        /// Migration strategy name (`"Seamless"`, `"StopAndRestart"`).
        strategy: MigrationKind,
    },

    // --- Instability handling (master) ---
    /// The forecaster predicted an OOM; auto-scaling was off, so this is a
    /// warning the driver must act on.
    OomPredicted {
        /// Job id.
        job: u64,
        /// Total PS bytes the forecast says are needed.
        required_bytes: u64,
    },
    /// A predicted OOM was averted by pre-scaling PS memory.
    OomPrevented {
        /// Job id.
        job: u64,
        /// New total PS allocation in bytes.
        new_alloc_bytes: u64,
    },
    /// A PS exceeded its memory allocation and the job died.
    Oomed {
        /// Job id.
        job: u64,
        /// Index of the PS that hit its wall.
        ps: u64,
    },
    /// A worker lags its peers; dynamic sharding is pacing it.
    StragglerDetected {
        /// Job id.
        job: u64,
        /// Engine worker index.
        worker: u64,
    },
    /// A hot PS was detected but auto-rebalancing is disabled.
    HotPsDetected {
        /// Job id.
        job: u64,
        /// Hot PS index.
        ps: u64,
    },
    /// A hot PS was detected and mitigated by a seamless rebalance.
    HotPsMitigated {
        /// Job id.
        job: u64,
        /// Hot PS index.
        ps: u64,
    },

    // --- Brain: three-stage decisions ---
    /// Stage 1: a job was admitted with an initial allocation.
    JobAdmitted {
        /// Job id (0 when the caller has none).
        job: u64,
        /// Initial worker count.
        workers: u32,
        /// Initial PS count.
        ps: u32,
        /// Whether history produced a warm start (vs the cold-start shape).
        warm_start: bool,
    },
    /// Stage 2: a per-job policy proposed a new allocation.
    PolicyAdjusted {
        /// Job id.
        job: u64,
        /// Proposed worker count.
        workers: u32,
        /// Proposed PS count.
        ps: u32,
    },
    /// Stage 3: cluster-level replanning selected a plan for a job.
    PlanSelected {
        /// Job id.
        job: u64,
        /// Predicted throughput gain of the selected plan.
        gain_x1000: u64,
    },

    // --- Job lifecycle (runner) ---
    /// A single-job run began.
    JobStarted {
        /// Job id.
        job: u64,
    },
    /// The job consumed all its data.
    JobCompleted {
        /// Job id.
        job: u64,
    },

    // --- Resilience layer (master, cluster) ---
    /// A supervised control-plane operation was (re)attempted under a
    /// retry policy. `attempt` is 1-based; attempt 1 is the initial try.
    RetryAttempt {
        /// Stable operation name (e.g. `"replace_worker"`).
        op: String,
        /// 1-based attempt number under the governing policy.
        attempt: u32,
    },
    /// A retry policy gave up on an operation: the budget or deadline was
    /// exhausted and the caller must degrade instead of retrying forever.
    RetryExhausted {
        /// Stable operation name.
        op: String,
        /// Total attempts made before giving up.
        attempts: u32,
    },
    /// Repeated pod failures on one node crossed the blacklist threshold;
    /// the scheduler stops placing pods there for the rest of the run.
    NodeBlacklisted {
        /// Node id.
        node: u32,
        /// Pod failures observed on the node at blacklisting time.
        failures: u32,
    },
    /// The master abandoned its nominal allocation and fell back to the
    /// best feasible plan (fewer replicas / smaller PS ask).
    JobDegraded {
        /// Job id.
        job: u64,
        /// Worker target after degradation.
        workers: u32,
        /// PS count after degradation.
        ps: u32,
    },
    /// A crashed master came back and rebuilt job state by replaying the
    /// event log (shard watermark, checkpoint step, live pod set).
    MasterRestarted {
        /// Job id.
        job: u64,
        /// Sample watermark recovered from the replayed shard acks.
        samples_done: u64,
        /// Live workers re-adopted after replay.
        workers: u32,
    },
    /// A worker stopped heart-beating past the supervision timeout; its
    /// in-flight shard lease was reclaimed (re-queued in full).
    SilentWorkerDetected {
        /// Job id.
        job: u64,
        /// Engine worker index.
        worker: u64,
    },

    // --- Learned schedulers (baselines: DL2 / DRL) ---
    /// A learned policy sampled a concrete scaling action. Unlike
    /// [`EventKind::PolicyAdjusted`] (recorded by the driver when a
    /// decision is *applied*), this marks the policy's own draw — noop
    /// actions included — so training trajectories can be replayed from
    /// the trace alone.
    PolicyDecisionMade {
        /// Job id.
        job: u64,
        /// Stable policy name (e.g. `"dl2"`, `"drl"`).
        policy: String,
        /// Action index in the policy's fixed action vocabulary.
        action: u32,
        /// Worker count after the action.
        workers: u32,
        /// PS count after the action.
        ps: u32,
    },
    /// A learned policy finished an episode and observed its mean reward
    /// (fixed-point, ×1000) — the signal its next update trains on.
    PolicyRewardObserved {
        /// Job id.
        job: u64,
        /// 0-based training episode index.
        episode: u32,
        /// Mean per-step reward over the episode, ×1000 (signed).
        reward_x1000: i64,
    },

    // --- Checkpoint plane (master::ckptplane) ---
    /// A checkpoint landed in the in-memory hot tier: its content chunks
    /// are staged and its transfer to the remote tier is enqueued. The
    /// checkpoint is NOT durable yet — only [`EventKind::CheckpointCommitted`]
    /// makes it restorable from the remote tier.
    CheckpointStaged {
        /// Owning job.
        job: u64,
        /// Plane-assigned manifest id (unique per save).
        manifest: u64,
        /// Training step at the snapshot.
        step: u64,
        /// Logical checkpoint size in bytes.
        bytes: u64,
        /// Bytes actually new to the plane (after content-chunk dedup).
        new_bytes: u64,
    },
    /// A manifest (and all its chunks) finished transferring to the remote
    /// tier: the crash-consistent commit record. Restores from the remote
    /// tier may only target committed manifests.
    CheckpointCommitted {
        /// Owning job.
        job: u64,
        /// Manifest id.
        manifest: u64,
        /// Training step of the committed checkpoint.
        step: u64,
    },
    /// A job restored from a checkpoint manifest. `source` is the tier the
    /// bytes came from: `"hot"` (in-memory copy), `"remote"` (committed
    /// manifest in the durable tier), or `"witness"` (peer-pinned,
    /// quorum-co-signed copy).
    CheckpointRestored {
        /// Owning job.
        job: u64,
        /// Manifest id restored from.
        manifest: u64,
        /// Training step restored to.
        step: u64,
        /// Bytes read for the restore.
        bytes: u64,
        /// Tier the restore read: `"hot"`, `"remote"`, or `"witness"`.
        source: String,
    },
    /// A manifest's hot-tier copy was dropped (capacity eviction, a newer
    /// save superseding it, or invalidation when its owner crashed). Until
    /// its commit record lands, the manifest is unrestorable.
    CheckpointHotEvicted {
        /// Owning job.
        job: u64,
        /// Manifest id whose hot copy is gone.
        manifest: u64,
    },
    /// A committed manifest was silently corrupted in the remote tier
    /// (scripted fault). Restores must detect this via the manifest
    /// checksum and fall back to the previous committed manifest.
    ManifestCorrupted {
        /// Owning job.
        job: u64,
        /// Corrupted manifest id.
        manifest: u64,
    },

    // --- Witness protocol (master::witness) ---
    /// Enough witness peers co-signed a manifest to form a commitment
    /// quorum: the manifest is pinned peer-side and becomes a valid
    /// master-less restore point.
    WitnessQuorumReached {
        /// Owning job.
        job: u64,
        /// Co-signed manifest id.
        manifest: u64,
        /// Peers whose signatures formed the quorum.
        peers: u32,
    },
    /// A job's state was recovered after a master loss. `path` names the
    /// recovery route: `"master-replay"` (event-log replay, §6) or
    /// `"witness-quorum"` (peer-elected recoverer restoring the co-signed
    /// manifest). Both paths report latency in the same unit so
    /// experiments can compare them row-for-row.
    JobRecovered {
        /// Job id.
        job: u64,
        /// Stable recovery-path name.
        path: String,
        /// Crash-to-resume downtime in microseconds (restore included).
        latency_us: u64,
        /// Training step the job resumed from.
        step: u64,
    },

    // --- Chaos harness (sim::faultplan) ---
    /// The chaos driver injected one scripted fault from a
    /// [`FaultPlan`](dlrover_sim::FaultPlan). `kind` is the stable
    /// [`FaultKind::name`](dlrover_sim::FaultKind::name) string and
    /// `target` the resolved target index, so the oracle can match each
    /// injection to the recovery that must follow it.
    FaultInjected {
        /// Position of the event in its plan.
        fault: u64,
        /// Stable fault-kind name (e.g. `"WorkerKill"`).
        kind: String,
        /// Resolved target index (worker/PS/node) or burst size.
        target: u64,
    },

    // --- Execution-plan reconfiguration (master, optimizer) ---
    /// A reconfiguration window committed: the job now runs under the new
    /// execution plan (Rubick-style plan switch riding the §5.2 seamless
    /// migration path). `samples_done` is the training watermark at commit
    /// — the oracle's reconfig invariant checks it never regresses.
    ReconfigApplied {
        /// Job id.
        job: u64,
        /// Monotone reconfiguration-window id (unique per job run).
        window: u64,
        /// Gradient mode label (`"async"` / `"sync"`).
        mode: String,
        /// Effective per-worker batch size under the new plan.
        batch: u32,
        /// PS replication factor.
        replicas: u32,
        /// Embedding-shard count of the layout (PS partitions).
        shards: u32,
        /// Samples-done watermark at commit time.
        samples_done: u64,
        /// Training pause charged for the handoff, microseconds.
        pause_us: u64,
    },
    /// An open reconfiguration window was rolled back — a fault landed
    /// inside the window, so the job reverted to its previous committed
    /// plan. Exactly one of `ReconfigApplied`/`ReconfigRolledBack` must be
    /// observed per window id.
    ReconfigRolledBack {
        /// Job id.
        job: u64,
        /// Window id that was aborted.
        window: u64,
        /// Why the window was aborted (e.g. `"master-crash"`).
        reason: String,
        /// Samples-done watermark at rollback time.
        samples_done: u64,
    },
}

/// Migration strategy, mirrored into the telemetry vocabulary (the crate
/// cannot depend on `dlrover-pstrain`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationKind {
    /// Flash-checkpoint handoff; startup overlaps training (§5.2).
    Seamless,
    /// Checkpoint → redeploy → restore; the whole job pauses.
    StopAndRestart,
    /// Advisory decision; nothing was reshaped.
    NoIntervention,
}

impl EventKind {
    /// Stable short name of the variant, for counting and filtering.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PodRequested { .. } => "PodRequested",
            EventKind::PodPlaced { .. } => "PodPlaced",
            EventKind::PodPending { .. } => "PodPending",
            EventKind::PodPreempted { .. } => "PodPreempted",
            EventKind::PodFailed { .. } => "PodFailed",
            EventKind::NodeFailed { .. } => "NodeFailed",
            EventKind::WorkerAdded { .. } => "WorkerAdded",
            EventKind::WorkerRemoved { .. } => "WorkerRemoved",
            EventKind::WorkerFailed { .. } => "WorkerFailed",
            EventKind::PsReshaped { .. } => "PsReshaped",
            EventKind::TrainingPaused { .. } => "TrainingPaused",
            EventKind::ShardCheckedOut { .. } => "ShardCheckedOut",
            EventKind::ShardAcked { .. } => "ShardAcked",
            EventKind::CheckpointSaved { .. } => "CheckpointSaved",
            EventKind::ScalingPlanApplied { .. } => "ScalingPlanApplied",
            EventKind::OomPredicted { .. } => "OomPredicted",
            EventKind::OomPrevented { .. } => "OomPrevented",
            EventKind::Oomed { .. } => "Oomed",
            EventKind::StragglerDetected { .. } => "StragglerDetected",
            EventKind::HotPsDetected { .. } => "HotPsDetected",
            EventKind::HotPsMitigated { .. } => "HotPsMitigated",
            EventKind::JobAdmitted { .. } => "JobAdmitted",
            EventKind::PolicyAdjusted { .. } => "PolicyAdjusted",
            EventKind::PlanSelected { .. } => "PlanSelected",
            EventKind::RetryAttempt { .. } => "RetryAttempt",
            EventKind::RetryExhausted { .. } => "RetryExhausted",
            EventKind::NodeBlacklisted { .. } => "NodeBlacklisted",
            EventKind::JobDegraded { .. } => "JobDegraded",
            EventKind::MasterRestarted { .. } => "MasterRestarted",
            EventKind::SilentWorkerDetected { .. } => "SilentWorkerDetected",
            EventKind::PolicyDecisionMade { .. } => "PolicyDecisionMade",
            EventKind::PolicyRewardObserved { .. } => "PolicyRewardObserved",
            EventKind::JobStarted { .. } => "JobStarted",
            EventKind::JobCompleted { .. } => "JobCompleted",
            EventKind::CheckpointStaged { .. } => "CheckpointStaged",
            EventKind::CheckpointCommitted { .. } => "CheckpointCommitted",
            EventKind::CheckpointRestored { .. } => "CheckpointRestored",
            EventKind::CheckpointHotEvicted { .. } => "CheckpointHotEvicted",
            EventKind::ManifestCorrupted { .. } => "ManifestCorrupted",
            EventKind::WitnessQuorumReached { .. } => "WitnessQuorumReached",
            EventKind::JobRecovered { .. } => "JobRecovered",
            EventKind::FaultInjected { .. } => "FaultInjected",
            EventKind::ReconfigApplied { .. } => "ReconfigApplied",
            EventKind::ReconfigRolledBack { .. } => "ReconfigRolledBack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_json() {
        let e = Event {
            at_us: 1_500_000,
            seq: 7,
            kind: EventKind::ScalingPlanApplied {
                job: 3,
                workers: 8,
                ps: 4,
                strategy: MigrationKind::Seamless,
            },
        };
        let s = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.at(), dlrover_sim::SimTime::from_secs_f64(1.5));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EventKind::PodPlaced { pod: 0, node: 0 }.name(), "PodPlaced");
        assert_eq!(EventKind::OomPrevented { job: 1, new_alloc_bytes: 2 }.name(), "OomPrevented");
        assert_eq!(
            EventKind::RetryAttempt { op: "replace_worker".into(), attempt: 2 }.name(),
            "RetryAttempt"
        );
        assert_eq!(EventKind::NodeBlacklisted { node: 3, failures: 3 }.name(), "NodeBlacklisted");
        assert_eq!(
            EventKind::MasterRestarted { job: 0, samples_done: 1, workers: 2 }.name(),
            "MasterRestarted"
        );
        assert_eq!(
            EventKind::PolicyDecisionMade {
                job: 0,
                policy: "dl2".into(),
                action: 1,
                workers: 3,
                ps: 2
            }
            .name(),
            "PolicyDecisionMade"
        );
        assert_eq!(
            EventKind::PolicyRewardObserved { job: 0, episode: 2, reward_x1000: -17 }.name(),
            "PolicyRewardObserved"
        );
        assert_eq!(
            EventKind::CheckpointStaged { job: 0, manifest: 1, step: 2, bytes: 3, new_bytes: 4 }
                .name(),
            "CheckpointStaged"
        );
        assert_eq!(
            EventKind::CheckpointRestored {
                job: 0,
                manifest: 1,
                step: 2,
                bytes: 3,
                source: "remote".into()
            }
            .name(),
            "CheckpointRestored"
        );
        assert_eq!(
            EventKind::JobRecovered {
                job: 0,
                path: "witness-quorum".into(),
                latency_us: 5,
                step: 2
            }
            .name(),
            "JobRecovered"
        );
        assert_eq!(
            EventKind::ReconfigApplied {
                job: 0,
                window: 1,
                mode: "sync".into(),
                batch: 512,
                replicas: 2,
                shards: 4,
                samples_done: 9000,
                pause_us: 20_000_000
            }
            .name(),
            "ReconfigApplied"
        );
        assert_eq!(
            EventKind::ReconfigRolledBack {
                job: 0,
                window: 1,
                reason: "master-crash".into(),
                samples_done: 9000
            }
            .name(),
            "ReconfigRolledBack"
        );
    }

    #[test]
    fn reconfig_events_roundtrip_through_json() {
        let e = Event {
            at_us: 3_000_000,
            seq: 9,
            kind: EventKind::ReconfigApplied {
                job: 2,
                window: 0,
                mode: "async".into(),
                batch: 1024,
                replicas: 1,
                shards: 2,
                samples_done: 4096,
                pause_us: 0,
            },
        };
        let s = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
    }
}
