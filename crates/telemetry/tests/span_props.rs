//! Property tests for the span log: well-formedness and determinism.
//!
//! These are the log-level halves of the ISSUE-2 satellite ("every close
//! matches an open, children nest strictly within parents in SimTime, and
//! same-seed span logs are byte-identical"); the engine-driven halves live
//! in `dlrover-pstrain`, where real instrumentation produces the trees.

use dlrover_sim::SimTime;
use dlrover_telemetry::{parse_spans_jsonl, SpanCategory, SpanId, SpanLog};
use proptest::prelude::*;

/// One scripted operation against a span log.
#[derive(Debug, Clone)]
enum Op {
    /// Open a child of the `n`-th most recently opened span (root if none).
    Open(usize),
    /// Close the most recently opened span still open.
    CloseNewest,
    /// Close a bogus id that was never opened.
    CloseBogus(u64),
    /// Advance virtual time by this many microseconds.
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4).prop_map(Op::Open),
        Just(Op::CloseNewest),
        (1_000_000u64..2_000_000).prop_map(Op::CloseBogus),
        (1u64..5_000_000).prop_map(Op::Advance),
    ]
}

/// Replays a script and returns the log (deterministic by construction).
fn replay(script: &[Op], capacity: usize) -> SpanLog {
    let mut log = SpanLog::with_capacity(capacity);
    let mut now = 0u64;
    let mut stack: Vec<SpanId> = Vec::new();
    for op in script {
        match op {
            Op::Open(depth) => {
                let parent = if stack.is_empty() {
                    None
                } else {
                    Some(stack[stack.len().saturating_sub(1 + depth % stack.len())])
                };
                let cat = if parent.is_some() {
                    SpanCategory::IterLookup
                } else {
                    SpanCategory::Iteration
                };
                let id = log.open(SimTime::from_micros(now), cat, "p", 1, parent);
                stack.push(id);
            }
            Op::CloseNewest => {
                if let Some(id) = stack.pop() {
                    log.close(SimTime::from_micros(now), id);
                }
            }
            Op::CloseBogus(offset) => {
                log.close(SimTime::from_micros(now), SpanId(u64::MAX - offset));
            }
            Op::Advance(dt) => now += dt,
        }
    }
    // Close stragglers innermost-first so nesting stays well-formed.
    while let Some(id) = stack.pop() {
        log.close(SimTime::from_micros(now), id);
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same script → byte-identical JSONL (the span determinism rule).
    #[test]
    fn same_script_gives_byte_identical_jsonl(
        script in proptest::collection::vec(op_strategy(), 0..80),
    ) {
        let a = replay(&script, 64).to_jsonl();
        let b = replay(&script, 64).to_jsonl();
        prop_assert_eq!(a, b);
    }

    /// Every close matched an open (only the scripted bogus ids count as
    /// unmatched), and closed spans never run backwards.
    #[test]
    fn closes_match_opens_and_time_is_monotone(
        script in proptest::collection::vec(op_strategy(), 0..80),
    ) {
        let bogus = script.iter().filter(|o| matches!(o, Op::CloseBogus(_))).count() as u64;
        let log = replay(&script, 1 << 16);
        prop_assert_eq!(log.unmatched_closes(), bogus);
        prop_assert_eq!(log.open_count(), 0, "replay closes everything it opened");
        for s in log.iter() {
            prop_assert!(s.end_us >= s.start_us);
        }
    }

    /// Children nest strictly within their parents in SimTime, and every
    /// parent id refers to a span that was opened before the child.
    #[test]
    fn children_nest_within_parents(
        script in proptest::collection::vec(op_strategy(), 0..80),
    ) {
        let log = replay(&script, 1 << 16);
        let spans: Vec<_> = log.iter().cloned().collect();
        for child in &spans {
            if let Some(pid) = child.parent {
                prop_assert!(pid < child.id, "parents open before children");
                // The parent may have been evicted from a small ring, but at
                // this capacity nothing drops.
                let parent = spans.iter().find(|s| s.id == pid).expect("parent retained");
                prop_assert!(parent.start_us <= child.start_us);
                prop_assert!(child.end_us <= parent.end_us);
            }
        }
    }

    /// Ring accounting: retained + dropped == total closed, and JSONL
    /// round-trips losslessly.
    #[test]
    fn ring_accounting_and_roundtrip(
        script in proptest::collection::vec(op_strategy(), 0..80),
        capacity in 1usize..16,
    ) {
        let log = replay(&script, capacity);
        prop_assert_eq!(log.len() as u64 + log.dropped(), log.total_closed());
        let parsed = parse_spans_jsonl(&log.to_jsonl()).expect("valid jsonl");
        prop_assert_eq!(parsed.len(), log.len());
        for (a, b) in parsed.iter().zip(log.iter()) {
            prop_assert_eq!(a, b);
        }
    }
}
