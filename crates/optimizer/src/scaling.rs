//! Job-level resource-plan candidate generation (§4.3, scaling stage).
//!
//! After the online fit of the throughput model, DLRover-RM uses NSGA-II to
//! generate allocation candidates on the Pareto frontier of *(Resource Cost,
//! 1/Throughput Gain)*. [`NsgaPlanGenerator`] is that generator; it is one
//! implementation of the [`ScalingAlgorithm`] plug-in trait the paper
//! exposes so "other customized algorithms can be plugged in easily".

use dlrover_perfmodel::{ExecPlan, JobShape, ThroughputModel};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::nsga2::{Nsga2, Nsga2Config};
use crate::plan::{PriceTable, ReconfigSpace, ResourceAllocation, ScalingOverheadModel};

/// One scored plan candidate on (or near) the Pareto frontier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanCandidate {
    /// The proposed allocation.
    pub allocation: ResourceAllocation,
    /// The proposed execution plan (default = keep the job's current mode;
    /// non-default plans come from the widened reconfiguration search).
    pub exec: ExecPlan,
    /// Predicted throughput at this allocation, samples/s.
    pub predicted_throughput: f64,
    /// Resource cost `RC(A)`, USD/hour.
    pub resource_cost: f64,
    /// Throughput gain `TG(A)` over the current allocation, samples/s.
    pub throughput_gain: f64,
}

/// Predicted throughput of `shape` running under execution plan `exec` —
/// the §4.1 model evaluated at the plan's effective batch, with the phase
/// decomposition rewritten by `perfmodel::exec::adjust_phases` (the same
/// physics the simulator applies, so this prediction is self-consistent
/// with the ground truth by construction).
pub fn plan_throughput(model: &ThroughputModel, shape: &JobShape, exec: &ExecPlan) -> f64 {
    let batch = exec.effective_batch(shape.batch_size);
    let shape = JobShape { batch_size: batch, ..*shape };
    let adjusted = exec.adjust_breakdown(model.breakdown(&shape), shape.workers);
    f64::from(shape.workers) * f64::from(batch) / adjusted.total()
}

impl PlanCandidate {
    /// Resource efficiency `RE(A) = TG(A)/RC(A)` (Eqn. 11).
    ///
    /// Defined only for plans with positive cost; zero-cost deltas get the
    /// raw gain (they are free wins).
    pub fn resource_efficiency(&self) -> f64 {
        if self.resource_cost > 1e-9 {
            self.throughput_gain / self.resource_cost
        } else {
            self.throughput_gain
        }
    }
}

/// Bounds of the allocation search space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanSearchSpace {
    /// Worker count range (inclusive).
    pub workers: (u32, u32),
    /// PS count range (inclusive).
    pub ps: (u32, u32),
    /// Worker CPU cores range.
    pub worker_cpu: (f64, f64),
    /// PS CPU cores range.
    pub ps_cpu: (f64, f64),
    /// Memory provisioned per worker CPU core, GB (fixed ratio).
    pub worker_mem_per_cpu: f64,
    /// Memory provisioned per PS CPU core, GB (fixed ratio).
    pub ps_mem_per_cpu: f64,
}

impl Default for PlanSearchSpace {
    fn default() -> Self {
        PlanSearchSpace {
            workers: (1, 32),
            ps: (1, 16),
            worker_cpu: (1.0, 32.0),
            ps_cpu: (1.0, 32.0),
            worker_mem_per_cpu: 4.0,
            ps_mem_per_cpu: 8.0,
        }
    }
}

impl PlanSearchSpace {
    /// Materialises an allocation from a genome `[w, p, λ_w, λ_p]`
    /// (reals rounded to the feasible grid).
    pub fn decode(&self, genome: &[f64], batch_size: u32) -> ResourceAllocation {
        debug_assert_eq!(genome.len(), 4);
        let w = (genome[0].round() as u32).clamp(self.workers.0, self.workers.1);
        let p = (genome[1].round() as u32).clamp(self.ps.0, self.ps.1);
        let cw = genome[2].clamp(self.worker_cpu.0, self.worker_cpu.1);
        let cp = genome[3].clamp(self.ps_cpu.0, self.ps_cpu.1);
        let shape = JobShape::new(w, p, cw, cp, batch_size);
        ResourceAllocation::new(shape, cw * self.worker_mem_per_cpu, cp * self.ps_mem_per_cpu)
    }

    /// Box bounds for the NSGA-II genome.
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (
            vec![f64::from(self.workers.0), f64::from(self.ps.0), self.worker_cpu.0, self.ps_cpu.0],
            vec![f64::from(self.workers.1), f64::from(self.ps.1), self.worker_cpu.1, self.ps_cpu.1],
        )
    }
}

/// The plug-in scaling-algorithm API (§4.3 "Plug-in Algorithm API").
///
/// Implementations receive the fitted throughput model and the job's current
/// allocation and return candidate plans; DLRover-RM ships
/// [`NsgaPlanGenerator`], and the baselines crate plugs in Optimus- and
/// ES-style generators through this same trait.
pub trait ScalingAlgorithm {
    /// Generates candidate plans for one job.
    fn candidates<R: Rng + ?Sized>(
        &self,
        model: &ThroughputModel,
        current: &ResourceAllocation,
        rng: &mut R,
    ) -> Vec<PlanCandidate>;
}

/// Cost-minimising rightsizing: the cheapest allocation in `space` whose
/// predicted throughput is at least `target_throughput`.
///
/// This is the `min RC(A)` half of the paper's objective (Eqn. 9): when a
/// job is over-provisioned, no allocation has positive throughput *gain*,
/// but a much cheaper allocation matches the current throughput. A coarse
/// power-of-two grid is plenty here — the throughput surface is smooth in
/// every dimension.
pub fn rightsize_search(
    model: &ThroughputModel,
    space: &PlanSearchSpace,
    prices: &PriceTable,
    batch: u32,
    target_throughput: f64,
) -> Option<ResourceAllocation> {
    let mut best: Option<(f64, ResourceAllocation)> = None;
    for &w in &power_count_grid(space.workers.0, space.workers.1) {
        for &p in &power_count_grid(space.ps.0, space.ps.1) {
            for &cw in &power_grid(space.worker_cpu.0, space.worker_cpu.1) {
                for &cp in &power_grid(space.ps_cpu.0, space.ps_cpu.1) {
                    let shape = JobShape::new(w, p, cw, cp, batch);
                    if model.throughput(&shape) < target_throughput {
                        continue;
                    }
                    let alloc = ResourceAllocation::new(
                        shape,
                        cw * space.worker_mem_per_cpu,
                        cp * space.ps_mem_per_cpu,
                    );
                    let cost = prices.resource_cost(&alloc);
                    if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                        best = Some((cost, alloc));
                    }
                }
            }
        }
    }
    best.map(|(_, a)| a)
}

/// Power-of-two grid over a continuous range, always including the upper
/// boundary (the current allocation may sit there). Shared by
/// [`rightsize_search`] and the well-tuned oracle search.
pub fn power_grid(lo: f64, hi: f64) -> Vec<f64> {
    let mut v = Vec::new();
    let mut c = lo.max(1.0);
    while c <= hi + 1e-9 {
        v.push(c);
        c *= 2.0;
    }
    if v.last().copied().unwrap_or(0.0) < hi - 1e-9 {
        v.push(hi);
    }
    v
}

/// Power-of-two grid over an integer range, boundary included.
pub fn power_count_grid(lo: u32, hi: u32) -> Vec<u32> {
    let mut v = Vec::new();
    let mut c = lo.max(1);
    while c <= hi {
        v.push(c);
        c = (c * 2).max(c + 1);
    }
    if v.last().copied().unwrap_or(0) != hi {
        v.push(hi);
    }
    v
}

/// NSGA-II-based Pareto plan generator (the DLRover-RM default).
#[derive(Debug, Clone)]
pub struct NsgaPlanGenerator {
    /// Search-space bounds.
    pub space: PlanSearchSpace,
    /// Unit prices for `RC`.
    pub prices: PriceTable,
    /// Overhead model for `TG`.
    pub overhead: ScalingOverheadModel,
    /// NSGA-II hyper-parameters.
    pub nsga: Nsga2Config,
    /// Optional reconfiguration space. `None` (the default) keeps the
    /// 4-gene resource genome and reproduces the pre-reconfiguration
    /// generator bit-for-bit; `Some` appends a fifth gene that indexes
    /// [`ReconfigSpace::plans`], widening the search from resource amounts
    /// to execution plans (Rubick; ROADMAP open item 3).
    pub reconfig: Option<ReconfigSpace>,
}

impl Default for NsgaPlanGenerator {
    fn default() -> Self {
        NsgaPlanGenerator {
            space: PlanSearchSpace::default(),
            prices: PriceTable::default(),
            overhead: ScalingOverheadModel::default(),
            nsga: Nsga2Config { population: 48, generations: 30, ..Default::default() },
            reconfig: None,
        }
    }
}

impl NsgaPlanGenerator {
    /// Scores a specific allocation against the current one (execution
    /// plan unchanged — the pre-reconfiguration scoring path).
    pub fn score(
        &self,
        model: &ThroughputModel,
        current: &ResourceAllocation,
        allocation: ResourceAllocation,
    ) -> PlanCandidate {
        let thp_old = model.throughput(&current.shape);
        let thp_new = model.throughput(&allocation.shape);
        let gain = self.overhead.throughput_gain(thp_old, thp_new, current, &allocation);
        PlanCandidate {
            allocation,
            exec: ExecPlan::default(),
            predicted_throughput: thp_new,
            resource_cost: self.prices.resource_cost(&allocation),
            throughput_gain: gain,
        }
    }

    /// Scores an (allocation, execution-plan) pair against the current
    /// allocation running under `current_exec`. The reconfig handoff pause
    /// (`ScalingOverheadModel::reconfig_pause_seconds`) is charged on top
    /// of the resource-scaling pause, and PS replicas are charged in `RC`
    /// via [`PriceTable::plan_resource_cost`].
    pub fn score_with_plan(
        &self,
        model: &ThroughputModel,
        current: &ResourceAllocation,
        current_exec: &ExecPlan,
        allocation: ResourceAllocation,
        exec: ExecPlan,
    ) -> PlanCandidate {
        let thp_old = plan_throughput(model, &current.shape, current_exec);
        let thp_new = plan_throughput(model, &allocation.shape, &exec);
        let mut gain = self.overhead.throughput_gain(thp_old, thp_new, current, &allocation);
        let reconfig_pause = self.overhead.reconfig_pause_seconds(current_exec, &exec, false);
        gain -= thp_new * reconfig_pause / self.overhead.horizon_s.max(1.0);
        PlanCandidate {
            allocation,
            exec,
            predicted_throughput: thp_new,
            resource_cost: self.prices.plan_resource_cost(&allocation, &exec),
            throughput_gain: gain,
        }
    }
}

impl ScalingAlgorithm for NsgaPlanGenerator {
    fn candidates<R: Rng + ?Sized>(
        &self,
        model: &ThroughputModel,
        current: &ResourceAllocation,
        rng: &mut R,
    ) -> Vec<PlanCandidate> {
        let (mut lower, mut upper) = self.space.bounds();
        if self.reconfig.is_some() {
            // Fifth gene: execution-plan index in [0, 1).
            lower.push(0.0);
            upper.push(1.0);
        }
        let batch = current.shape.batch_size;
        let thp_old = model.throughput(&current.shape);

        let evaluate = |genome: &[f64]| -> Vec<f64> {
            let alloc = self.space.decode(&genome[..4], batch);
            let (gain, rc) = match self.reconfig {
                None => {
                    let thp_new = model.throughput(&alloc.shape);
                    let gain = self.overhead.throughput_gain(thp_old, thp_new, current, &alloc);
                    (gain, self.prices.resource_cost(&alloc))
                }
                Some(space) => {
                    let exec = space.decode(genome[4], batch);
                    let c = self.score_with_plan(model, current, &ExecPlan::default(), alloc, exec);
                    (c.throughput_gain, c.resource_cost)
                }
            };
            // Minimize (RC, 1/TG); non-positive gains get a large finite
            // penalty so the sort stays well-defined (Eqn. 9).
            let inv_gain = if gain > 1e-9 { 1.0 / gain } else { 1e9 - gain };
            vec![rc, inv_gain]
        };

        let optimizer = Nsga2::new(evaluate, lower, upper, self.nsga);
        let front = optimizer.run(rng);

        let mut plans: Vec<PlanCandidate> = front
            .into_iter()
            .map(|p| match self.reconfig {
                None => self.score(model, current, self.space.decode(&p.genome, batch)),
                Some(space) => self.score_with_plan(
                    model,
                    current,
                    &ExecPlan::default(),
                    self.space.decode(&p.genome[..4], batch),
                    space.decode(p.genome[4], batch),
                ),
            })
            .filter(|c| c.throughput_gain > 0.0)
            .collect();

        // Decoding rounds genomes onto a grid, so distinct genomes can
        // collapse to the same allocation: dedupe, keep the best gain first.
        plans.sort_by(|a, b| b.throughput_gain.partial_cmp(&a.throughput_gain).expect("NaN gain"));
        plans.dedup_by(|a, b| {
            a.exec == b.exec
                && a.allocation.shape.workers == b.allocation.shape.workers
                && a.allocation.shape.ps == b.allocation.shape.ps
                && (a.allocation.shape.worker_cpu - b.allocation.shape.worker_cpu).abs() < 0.5
                && (a.allocation.shape.ps_cpu - b.allocation.shape.ps_cpu).abs() < 0.5
        });
        if self.reconfig.is_some() {
            // Over the widened space the grid collapse can leave dominated
            // stragglers on the list; prune so the returned front never
            // contains a candidate the perfmodel scores as dominated in
            // (RC, TG). Gated on `reconfig` so the legacy path (and its
            // golden digests) is untouched.
            let snapshot = plans.clone();
            plans.retain(|c| {
                !snapshot.iter().any(|o| {
                    (o.resource_cost < c.resource_cost - 1e-12
                        && o.throughput_gain >= c.throughput_gain)
                        || (o.resource_cost <= c.resource_cost
                            && o.throughput_gain > c.throughput_gain + 1e-12)
                })
            });
        }
        plans
    }
}

#[cfg(test)]
mod rightsize_tests {
    use super::*;
    use crate::plan::PriceTable;
    use dlrover_perfmodel::{ModelCoefficients, WorkloadConstants};

    fn model() -> ThroughputModel {
        ThroughputModel::new(WorkloadConstants::default(), ModelCoefficients::paper_reference())
    }

    #[test]
    fn finds_cheaper_allocation_matching_throughput() {
        let m = model();
        let space = PlanSearchSpace::default();
        let prices = PriceTable::default();
        // A very fat allocation...
        let fat = ResourceAllocation::new(JobShape::new(32, 16, 32.0, 32.0, 512), 128.0, 256.0);
        let target = m.throughput(&fat.shape) * 0.95;
        let lean = rightsize_search(&m, &space, &prices, 512, target).expect("found");
        assert!(m.throughput(&lean.shape) >= target);
        assert!(
            prices.resource_cost(&lean) < prices.resource_cost(&fat) * 0.8,
            "rightsizing saved too little: {} vs {}",
            prices.resource_cost(&lean),
            prices.resource_cost(&fat)
        );
    }

    #[test]
    fn impossible_target_gives_none() {
        let m = model();
        let space = PlanSearchSpace::default();
        assert!(rightsize_search(&m, &space, &PriceTable::default(), 512, 1e18).is_none());
    }

    #[test]
    fn zero_target_gives_minimal_allocation() {
        let m = model();
        let space = PlanSearchSpace::default();
        let lean = rightsize_search(&m, &space, &PriceTable::default(), 512, 0.0).unwrap();
        assert_eq!(lean.shape.workers, space.workers.0);
        assert_eq!(lean.shape.ps, space.ps.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_perfmodel::{ModelCoefficients, WorkloadConstants};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> ThroughputModel {
        ThroughputModel::new(WorkloadConstants::default(), ModelCoefficients::paper_reference())
    }

    fn small_current() -> ResourceAllocation {
        ResourceAllocation::new(JobShape::new(1, 1, 1.0, 1.0, 512), 4.0, 8.0)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn decode_clamps_to_space() {
        let space = PlanSearchSpace::default();
        let a = space.decode(&[1000.0, -5.0, 99.0, 0.0], 512);
        assert_eq!(a.shape.workers, space.workers.1);
        assert_eq!(a.shape.ps, space.ps.0);
        assert_eq!(a.shape.worker_cpu, space.worker_cpu.1);
        assert_eq!(a.shape.ps_cpu, space.ps_cpu.0);
    }

    #[test]
    fn decode_derives_memory_from_cpu() {
        let space = PlanSearchSpace::default();
        let a = space.decode(&[4.0, 2.0, 8.0, 4.0], 512);
        assert_eq!(a.worker_mem_gb, 8.0 * space.worker_mem_per_cpu);
        assert_eq!(a.ps_mem_gb, 4.0 * space.ps_mem_per_cpu);
    }

    #[test]
    fn generator_finds_improving_plans_from_tiny_allocation() {
        let gen = NsgaPlanGenerator::default();
        let plans = gen.candidates(&model(), &small_current(), &mut rng());
        assert!(!plans.is_empty(), "a 1x1 job must have improving plans");
        for p in &plans {
            assert!(p.throughput_gain > 0.0);
            assert!(p.resource_cost > 0.0);
        }
    }

    #[test]
    fn candidates_span_a_cost_range() {
        // A Pareto front should offer both cheap-small and costly-fast plans.
        let gen = NsgaPlanGenerator::default();
        let plans = gen.candidates(&model(), &small_current(), &mut rng());
        let min_rc = plans.iter().map(|p| p.resource_cost).fold(f64::INFINITY, f64::min);
        let max_rc = plans.iter().map(|p| p.resource_cost).fold(0.0, f64::max);
        assert!(max_rc > 2.0 * min_rc, "front too narrow: [{min_rc}, {max_rc}]");
    }

    #[test]
    fn plans_near_optimal_beat_current_throughput() {
        let gen = NsgaPlanGenerator::default();
        let m = model();
        let cur = small_current();
        let cur_thp = m.throughput(&cur.shape);
        let plans = gen.candidates(&m, &cur, &mut rng());
        let best = plans.iter().map(|p| p.predicted_throughput).fold(0.0, f64::max);
        assert!(best > 2.0 * cur_thp, "best {best} vs current {cur_thp}");
    }

    #[test]
    fn well_provisioned_job_yields_few_or_no_gains() {
        // Start at the top of the search space: nothing should beat it by
        // much once overhead is subtracted.
        let gen = NsgaPlanGenerator::default();
        let m = model();
        let space = PlanSearchSpace::default();
        let top = ResourceAllocation::new(
            JobShape::new(space.workers.1, space.ps.1, space.worker_cpu.1, space.ps_cpu.1, 512),
            space.worker_cpu.1 * space.worker_mem_per_cpu,
            space.ps_cpu.1 * space.ps_mem_per_cpu,
        );
        let plans = gen.candidates(&m, &top, &mut rng());
        let best_gain = plans.iter().map(|p| p.throughput_gain).fold(0.0, f64::max);
        let top_thp = m.throughput(&top.shape);
        assert!(
            best_gain < 0.05 * top_thp,
            "gain {best_gain} suspiciously large vs throughput {top_thp}"
        );
    }

    #[test]
    fn resource_efficiency_orders_sensibly() {
        let cheap_good = PlanCandidate {
            allocation: small_current(),
            exec: ExecPlan::default(),
            predicted_throughput: 0.0,
            resource_cost: 1.0,
            throughput_gain: 10.0,
        };
        let pricey_same = PlanCandidate { resource_cost: 5.0, ..cheap_good };
        assert!(cheap_good.resource_efficiency() > pricey_same.resource_efficiency());
    }

    #[test]
    fn scoring_is_deterministic_and_consistent() {
        let gen = NsgaPlanGenerator::default();
        let m = model();
        let cur = small_current();
        let alloc = ResourceAllocation::new(JobShape::new(8, 4, 8.0, 8.0, 512), 32.0, 64.0);
        let a = gen.score(&m, &cur, alloc);
        let b = gen.score(&m, &cur, alloc);
        assert_eq!(a, b);
        assert!((a.predicted_throughput - m.throughput(&alloc.shape)).abs() < 1e-9);
    }

    #[test]
    fn plan_throughput_on_default_plan_matches_model_exactly() {
        // The widened pricing path must be *bit-identical* to the legacy
        // path on the default plan, or enabling the reconfig layer would
        // perturb runs that never reconfigure.
        let m = model();
        for (w, p) in [(1u32, 1u32), (4, 2), (16, 8)] {
            let s = JobShape::new(w, p, 8.0, 8.0, 512);
            assert_eq!(plan_throughput(&m, &s, &ExecPlan::default()), m.throughput(&s));
        }
    }

    #[test]
    fn sync_mode_beats_async_when_ps_is_squeezed() {
        // Many workers on one starved PS at a small batch: the update term
        // `α_upd·w/(p·λ_p)` dominates, so tree-aggregated sync updates win
        // (the contention regime the `exp reconfig` ablation exercises).
        let m = model();
        let squeezed = JobShape::new(16, 1, 8.0, 0.25, 64);
        let sync = ExecPlan {
            gradient_mode: dlrover_perfmodel::GradientMode::Sync,
            ..ExecPlan::default()
        };
        assert!(
            plan_throughput(&m, &squeezed, &sync)
                > 1.2 * plan_throughput(&m, &squeezed, &ExecPlan::default()),
            "sync should dominate under PS contention"
        );
        // Healthy PS fleet: aggregation buys little, the barrier costs.
        let healthy = JobShape::new(4, 8, 8.0, 16.0, 512);
        assert!(
            plan_throughput(&m, &healthy, &sync)
                < 1.05 * plan_throughput(&m, &healthy, &ExecPlan::default()),
            "sync must not dominate a healthy layout"
        );
    }

    #[test]
    fn widened_generator_finds_exec_plans_under_contention() {
        let gen = NsgaPlanGenerator {
            reconfig: Some(ReconfigSpace::default()),
            // Pin the space to the current envelope so only the execution
            // plan can move — the Rubick "same resource envelope" setting.
            space: PlanSearchSpace {
                workers: (16, 16),
                ps: (1, 1),
                worker_cpu: (8.0, 8.0),
                ps_cpu: (1.0, 1.0),
                ..PlanSearchSpace::default()
            },
            ..NsgaPlanGenerator::default()
        };
        let m = model();
        let cur = ResourceAllocation::new(JobShape::new(16, 1, 8.0, 1.0, 512), 32.0, 8.0);
        let plans = gen.candidates(&m, &cur, &mut rng());
        assert!(!plans.is_empty(), "contended job must have improving exec plans");
        assert!(
            plans.iter().any(|c| !c.exec.is_default()),
            "the winning candidates should reconfigure, not just rescale"
        );
    }

    #[test]
    fn reconfig_none_is_bitwise_legacy() {
        // Same seed, reconfig disabled: the widened generator must return
        // exactly what the legacy generator returned (golden-digest
        // compatibility for every policy built on top).
        let gen = NsgaPlanGenerator::default();
        assert!(gen.reconfig.is_none());
        let a = gen.candidates(&model(), &small_current(), &mut rng());
        let b = gen.candidates(&model(), &small_current(), &mut rng());
        assert_eq!(a, b);
        assert!(a.iter().all(|c| c.exec.is_default()));
    }
}

#[cfg(test)]
mod reconfig_proptests {
    use super::*;
    use crate::plan::ReconfigSpace;
    use dlrover_perfmodel::{ModelCoefficients, WorkloadConstants};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> ThroughputModel {
        ThroughputModel::new(WorkloadConstants::default(), ModelCoefficients::paper_reference())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The execution-plan enumeration is duplicate-free and starts at
        /// the default plan, for arbitrary admissible spaces and batches.
        #[test]
        fn plan_enumeration_is_duplicate_free(
            allow_sync in proptest::bool::ANY,
            max_replicas in 1u32..5,
            max_batch_steps in 0u8..3,
            allow_relayout in proptest::bool::ANY,
            spec_batch in prop_oneof![Just(128u32), Just(256), Just(512), Just(1024)],
        ) {
            let space = ReconfigSpace { allow_sync, max_replicas, max_batch_steps, allow_relayout };
            let plans = space.plans(spec_batch);
            prop_assert_eq!(plans[0], ExecPlan::default());
            for (i, a) in plans.iter().enumerate() {
                for b in &plans[i + 1..] {
                    prop_assert!(a != b, "duplicate plan at index {}", i);
                }
            }
            // Every gene decodes into the enumeration.
            for k in 0..16 {
                let g = f64::from(k) / 16.0;
                prop_assert!(plans.contains(&space.decode(g, spec_batch)));
            }
        }

        /// Over the widened space, the returned front never contains a
        /// candidate the perfmodel scores as dominated in (RC, TG): for
        /// any pair, neither strictly dominates the other.
        #[test]
        fn widened_front_has_no_dominated_candidate(
            seed in 0u64..64,
            workers in 2u32..20,
            ps_cpu in 1.0f64..4.0,
        ) {
            let gen = NsgaPlanGenerator {
                reconfig: Some(ReconfigSpace::default()),
                nsga: Nsga2Config { population: 24, generations: 10, ..Default::default() },
                ..NsgaPlanGenerator::default()
            };
            let m = model();
            let cur = ResourceAllocation::new(
                JobShape::new(workers, 1, 8.0, ps_cpu, 512), 32.0, 8.0,
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let front = gen.candidates(&m, &cur, &mut rng);
            for a in &front {
                for b in &front {
                    let dominates = (b.resource_cost < a.resource_cost - 1e-12
                        && b.throughput_gain >= a.throughput_gain)
                        || (b.resource_cost <= a.resource_cost
                            && b.throughput_gain > a.throughput_gain + 1e-12);
                    prop_assert!(
                        !dominates,
                        "dominated candidate on front: {:?} dominated by {:?}", a, b
                    );
                }
            }
        }
    }
}
