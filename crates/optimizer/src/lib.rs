//! Optimization machinery behind DLRover-RM's three-stage algorithm (§4).
//!
//! * [`nsga2`] — a from-scratch NSGA-II evolutionary optimizer (fast
//!   non-dominated sorting, crowding distance, binary tournament, simulated
//!   binary crossover, polynomial mutation). The paper uses NSGA-II to
//!   generate job-level resource-plan candidates on the Pareto frontier of
//!   *(Resource Cost, 1/Throughput Gain)* (Eqns. 7–9).
//! * [`plan`] — resource-allocation vocabulary: allocations, price table
//!   (`Money(a_r)`), resource cost `RC(A)` and throughput gain `TG(A)`.
//! * [`scaling`] — the job-level candidate generator wiring the throughput
//!   model into the bi-objective NSGA-II problem, plus the plug-in
//!   [`scaling::ScalingAlgorithm`] API the paper exposes for custom
//!   hardware.
//! * [`mod@warm_start`] — Algorithm 1: top-k similar historical jobs +
//!   exponential smoothing to produce the start-up configuration.
//! * [`greedy`] — cluster-level weighted greedy selection (Eqns. 11–14):
//!   maximize `Σ RE(Aʲ)·WG(Aʲ)` subject to the cluster capacity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod greedy;
pub mod nsga2;
pub mod plan;
pub mod scaling;
pub mod warm_start;

pub use greedy::{
    priority_weight, select_plans, ClusterCapacity, GreedyConfig, JobCandidates, SelectedPlan,
};
pub use nsga2::{hypervolume_2d, Nsga2, Nsga2Config, ParetoPoint};
pub use plan::{
    PriceTable, ReconfigAction, ReconfigSpace, ResourceAllocation, ScalingOverheadModel,
};
pub use scaling::{
    plan_throughput, power_count_grid, power_grid, rightsize_search, NsgaPlanGenerator,
    PlanCandidate, PlanSearchSpace, ScalingAlgorithm,
};
pub use warm_start::{warm_start, JobMetadata, JobRecord, WarmStartConfig};
