//! Resource-allocation vocabulary: allocations, prices, `RC`, `TG` (§4.2).
//!
//! * `RC(A) = Σ a_r · Money(a_r)` — the hourly cost of an allocation
//!   (Eqn. 7); [`PriceTable`] supplies `Money`.
//! * `TG(A) = ΔΨ_thp − Overhead(A)` — throughput gain net of scaling
//!   overhead (Eqn. 8). The paper subtracts "wasted training time" from a
//!   throughput delta; we make the units precise by amortising: the scaling
//!   pause costs `Ψ_new · T_pause` samples, spread over an evaluation
//!   horizon `H`, so `TG = ΔΨ − Ψ_new · T_pause / H` (samples/second).

use dlrover_perfmodel::JobShape;
use serde::{Deserialize, Serialize};

/// A complete resource allocation for one PS-architecture job: the CPU
/// shape plus per-role memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceAllocation {
    /// CPU/topology shape (w, p, λ_w, λ_p, m).
    pub shape: JobShape,
    /// Memory per worker, decimal GB (1e9 bytes; `cluster::Resources`
    /// uses binary GiB — convert explicitly at that boundary).
    pub worker_mem_gb: f64,
    /// Memory per parameter server, decimal GB (1e9 bytes).
    pub ps_mem_gb: f64,
}

impl ResourceAllocation {
    /// Convenience constructor.
    pub fn new(shape: JobShape, worker_mem_gb: f64, ps_mem_gb: f64) -> Self {
        ResourceAllocation {
            shape,
            worker_mem_gb: worker_mem_gb.max(0.0),
            ps_mem_gb: ps_mem_gb.max(0.0),
        }
    }

    /// Total CPU cores across workers and PSes.
    pub fn total_cpu(&self) -> f64 {
        self.shape.total_cpu()
    }

    /// Total memory (GB) across workers and PSes.
    pub fn total_mem_gb(&self) -> f64 {
        f64::from(self.shape.workers) * self.worker_mem_gb
            + f64::from(self.shape.ps) * self.ps_mem_gb
    }
}

/// Unit prices: the `Money(a_r)` function of Eqn. 7.
///
/// Defaults approximate on-demand cloud CPU pricing (c5 family):
/// ~$0.033 per vCPU-hour and ~$0.0045 per GB-hour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceTable {
    /// Price of one CPU core for one hour, USD.
    pub cpu_core_hour: f64,
    /// Price of one GB of memory for one hour, USD.
    pub mem_gb_hour: f64,
}

impl Default for PriceTable {
    fn default() -> Self {
        PriceTable { cpu_core_hour: 0.033, mem_gb_hour: 0.0045 }
    }
}

impl PriceTable {
    /// `RC(A)`: hourly price of a full allocation (Eqn. 7).
    pub fn resource_cost(&self, alloc: &ResourceAllocation) -> f64 {
        alloc.total_cpu() * self.cpu_core_hour + alloc.total_mem_gb() * self.mem_gb_hour
    }

    /// `RC` of the *additional* resources when moving `from → to`; negative
    /// when scaling down. The optimizer uses `max(δ, ε)` so shrinking plans
    /// are still comparable.
    pub fn delta_cost(&self, from: &ResourceAllocation, to: &ResourceAllocation) -> f64 {
        self.resource_cost(to) - self.resource_cost(from)
    }
}

/// Scaling-overhead estimator: the `Overhead(A)` term of Eqn. 8, estimated
/// "through statistical analysis based on the resource information of
/// historical jobs within the cluster".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingOverheadModel {
    /// Seconds to bring up one new worker pod (schedule + pull + init).
    ///
    /// Keep this in sync with the environment's actual startup latency —
    /// `dlrover_cluster::StartupLatencyModel::expected(utilisation)` is the
    /// authoritative source; callers that know their cluster's utilisation
    /// should override this field with that value (see
    /// `DlroverPolicyConfig::with_expected_startup`). The default matches
    /// the default startup model at ~30 % cluster utilisation.
    pub worker_startup_s: f64,
    /// Seconds of training pause when PSes change with stop-and-restart
    /// (checkpoint save + redeploy + restore).
    pub ps_restart_pause_s: f64,
    /// Seconds of training pause when PSes change with *seamless migration*
    /// (only the flash-checkpoint handoff blocks).
    pub seamless_pause_s: f64,
    /// Evaluation horizon `H` (seconds) over which scaling overhead is
    /// amortised when computing TG.
    pub horizon_s: f64,
    /// Whether seamless migration is available (DLRover-RM: yes;
    /// stop-and-restart baselines: no).
    pub seamless: bool,
}

impl Default for ScalingOverheadModel {
    fn default() -> Self {
        ScalingOverheadModel {
            worker_startup_s: 255.0,
            ps_restart_pause_s: 600.0,
            seamless_pause_s: 20.0,
            horizon_s: 1_800.0,
            seamless: true,
        }
    }
}

impl ScalingOverheadModel {
    /// Seconds of *training pause* incurred by moving `from → to`.
    ///
    /// Worker additions do not pause training under dynamic data sharding
    /// (new workers just pull shards), but PS changes force a parameter
    /// handoff — cheap when seamless, expensive when stop-and-restart.
    /// Worker-only changes under a stop-and-restart scheduler still restart
    /// the job, so they pay the restart pause too.
    pub fn pause_seconds(&self, from: &ResourceAllocation, to: &ResourceAllocation) -> f64 {
        let ps_changed = from.shape.ps != to.shape.ps
            || (from.shape.ps_cpu - to.shape.ps_cpu).abs() > 1e-9
            || (from.ps_mem_gb - to.ps_mem_gb).abs() > 1e-9;
        let workers_changed = from.shape.workers != to.shape.workers
            || (from.shape.worker_cpu - to.shape.worker_cpu).abs() > 1e-9
            || (from.worker_mem_gb - to.worker_mem_gb).abs() > 1e-9;
        if self.seamless {
            if ps_changed {
                self.seamless_pause_s
            } else {
                0.0
            }
        } else if ps_changed || workers_changed {
            self.ps_restart_pause_s
        } else {
            0.0
        }
    }

    /// `TG(A)` (Eqn. 8): throughput delta minus amortised scaling loss,
    /// in samples/second. `thp_old`/`thp_new` are predicted throughputs.
    pub fn throughput_gain(
        &self,
        thp_old: f64,
        thp_new: f64,
        from: &ResourceAllocation,
        to: &ResourceAllocation,
    ) -> f64 {
        let pause = self.pause_seconds(from, to);
        let extra_wait = f64::from(to.shape.workers.saturating_sub(from.shape.workers)).min(1.0)
            * self.worker_startup_s;
        let lost_samples = thp_new * (pause + extra_wait);
        (thp_new - thp_old) - lost_samples / self.horizon_s.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(w: u32, p: u32, cw: f64, cp: f64, wm: f64, pm: f64) -> ResourceAllocation {
        ResourceAllocation::new(JobShape::new(w, p, cw, cp, 512), wm, pm)
    }

    #[test]
    fn totals_add_up() {
        let a = alloc(4, 2, 8.0, 4.0, 16.0, 32.0);
        assert_eq!(a.total_cpu(), 4.0 * 8.0 + 2.0 * 4.0);
        assert_eq!(a.total_mem_gb(), 4.0 * 16.0 + 2.0 * 32.0);
    }

    #[test]
    fn resource_cost_is_linear_in_prices() {
        let prices = PriceTable { cpu_core_hour: 1.0, mem_gb_hour: 0.0 };
        let a = alloc(2, 1, 4.0, 4.0, 8.0, 8.0);
        assert_eq!(prices.resource_cost(&a), 12.0);
        let prices2 = PriceTable { cpu_core_hour: 0.0, mem_gb_hour: 2.0 };
        assert_eq!(prices2.resource_cost(&a), 2.0 * (2.0 * 8.0 + 8.0));
    }

    #[test]
    fn delta_cost_signed() {
        let prices = PriceTable::default();
        let small = alloc(2, 1, 4.0, 4.0, 8.0, 8.0);
        let big = alloc(4, 2, 8.0, 8.0, 16.0, 16.0);
        assert!(prices.delta_cost(&small, &big) > 0.0);
        assert!(prices.delta_cost(&big, &small) < 0.0);
        assert_eq!(prices.delta_cost(&small, &small), 0.0);
    }

    #[test]
    fn seamless_avoids_worker_scale_pause() {
        let m = ScalingOverheadModel::default();
        let from = alloc(2, 2, 4.0, 4.0, 8.0, 8.0);
        let more_workers = alloc(4, 2, 4.0, 4.0, 8.0, 8.0);
        assert_eq!(m.pause_seconds(&from, &more_workers), 0.0);
        let more_ps = alloc(2, 4, 4.0, 4.0, 8.0, 8.0);
        assert_eq!(m.pause_seconds(&from, &more_ps), m.seamless_pause_s);
    }

    #[test]
    fn stop_and_restart_pays_full_pause() {
        let m = ScalingOverheadModel { seamless: false, ..Default::default() };
        let from = alloc(2, 2, 4.0, 4.0, 8.0, 8.0);
        let more_workers = alloc(4, 2, 4.0, 4.0, 8.0, 8.0);
        assert_eq!(m.pause_seconds(&from, &more_workers), m.ps_restart_pause_s);
    }

    #[test]
    fn no_change_no_pause() {
        for seamless in [true, false] {
            let m = ScalingOverheadModel { seamless, ..Default::default() };
            let a = alloc(2, 2, 4.0, 4.0, 8.0, 8.0);
            assert_eq!(m.pause_seconds(&a, &a), 0.0);
        }
    }

    #[test]
    fn throughput_gain_penalises_pauses() {
        let m = ScalingOverheadModel { seamless: false, ..Default::default() };
        let from = alloc(2, 2, 4.0, 4.0, 8.0, 8.0);
        let to = alloc(2, 4, 4.0, 4.0, 8.0, 8.0);
        let gain_with_pause = m.throughput_gain(100.0, 120.0, &from, &to);
        let ms = ScalingOverheadModel::default(); // seamless
        let gain_seamless = ms.throughput_gain(100.0, 120.0, &from, &to);
        assert!(gain_seamless > gain_with_pause);
        assert!(gain_seamless < 20.0, "overhead must subtract something");
    }

    #[test]
    fn throughput_gain_can_be_negative() {
        // Tiny improvement, huge pause: scaling is not worth it.
        let m = ScalingOverheadModel { seamless: false, horizon_s: 600.0, ..Default::default() };
        let from = alloc(2, 2, 4.0, 4.0, 8.0, 8.0);
        let to = alloc(2, 3, 4.0, 4.0, 8.0, 8.0);
        assert!(m.throughput_gain(100.0, 101.0, &from, &to) < 0.0);
    }

    #[test]
    fn negative_memory_clamped() {
        let a = ResourceAllocation::new(JobShape::new(1, 1, 1.0, 1.0, 1), -5.0, -1.0);
        assert_eq!(a.worker_mem_gb, 0.0);
        assert_eq!(a.ps_mem_gb, 0.0);
    }
}
