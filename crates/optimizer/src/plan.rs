//! Resource-allocation vocabulary: allocations, prices, `RC`, `TG` (§4.2).
//!
//! * `RC(A) = Σ a_r · Money(a_r)` — the hourly cost of an allocation
//!   (Eqn. 7); [`PriceTable`] supplies `Money`.
//! * `TG(A) = ΔΨ_thp − Overhead(A)` — throughput gain net of scaling
//!   overhead (Eqn. 8). The paper subtracts "wasted training time" from a
//!   throughput delta; we make the units precise by amortising: the scaling
//!   pause costs `Ψ_new · T_pause` samples, spread over an evaluation
//!   horizon `H`, so `TG = ΔΨ − Ψ_new · T_pause / H` (samples/second).

use dlrover_perfmodel::{ExecPlan, GradientMode, JobShape};
use serde::{Deserialize, Serialize};

/// A complete resource allocation for one PS-architecture job: the CPU
/// shape plus per-role memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceAllocation {
    /// CPU/topology shape (w, p, λ_w, λ_p, m).
    pub shape: JobShape,
    /// Memory per worker, decimal GB (1e9 bytes; `cluster::Resources`
    /// uses binary GiB — convert explicitly at that boundary).
    pub worker_mem_gb: f64,
    /// Memory per parameter server, decimal GB (1e9 bytes).
    pub ps_mem_gb: f64,
}

impl ResourceAllocation {
    /// Convenience constructor.
    pub fn new(shape: JobShape, worker_mem_gb: f64, ps_mem_gb: f64) -> Self {
        ResourceAllocation {
            shape,
            worker_mem_gb: worker_mem_gb.max(0.0),
            ps_mem_gb: ps_mem_gb.max(0.0),
        }
    }

    /// Total CPU cores across workers and PSes.
    pub fn total_cpu(&self) -> f64 {
        self.shape.total_cpu()
    }

    /// Total memory (GB) across workers and PSes.
    pub fn total_mem_gb(&self) -> f64 {
        f64::from(self.shape.workers) * self.worker_mem_gb
            + f64::from(self.shape.ps) * self.ps_mem_gb
    }
}

/// Unit prices: the `Money(a_r)` function of Eqn. 7.
///
/// Defaults approximate on-demand cloud CPU pricing (c5 family):
/// ~$0.033 per vCPU-hour and ~$0.0045 per GB-hour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceTable {
    /// Price of one CPU core for one hour, USD.
    pub cpu_core_hour: f64,
    /// Price of one GB of memory for one hour, USD.
    pub mem_gb_hour: f64,
}

impl Default for PriceTable {
    fn default() -> Self {
        PriceTable { cpu_core_hour: 0.033, mem_gb_hour: 0.0045 }
    }
}

impl PriceTable {
    /// `RC(A)`: hourly price of a full allocation (Eqn. 7).
    pub fn resource_cost(&self, alloc: &ResourceAllocation) -> f64 {
        alloc.total_cpu() * self.cpu_core_hour + alloc.total_mem_gb() * self.mem_gb_hour
    }

    /// `RC` of the *additional* resources when moving `from → to`; negative
    /// when scaling down. The optimizer uses `max(δ, ε)` so shrinking plans
    /// are still comparable.
    pub fn delta_cost(&self, from: &ResourceAllocation, to: &ResourceAllocation) -> f64 {
        self.resource_cost(to) - self.resource_cost(from)
    }

    /// `RC(A, E)`: hourly price of an allocation *under an execution plan*.
    /// Extends Eqn. 7 to the reconfiguration layer: each extra PS replica
    /// hosts a full copy of the parameters, so PS memory is charged
    /// `× replicas` — the genuine RC/TG trade-off behind replication
    /// (Rubick's plan costing applied to the paper's price model).
    pub fn plan_resource_cost(&self, alloc: &ResourceAllocation, exec: &ExecPlan) -> f64 {
        let replicas = f64::from(exec.ps_replicas.max(1));
        let replica_mem = f64::from(alloc.shape.ps) * alloc.ps_mem_gb * (replicas - 1.0);
        self.resource_cost(alloc) + replica_mem * self.mem_gb_hour
    }
}

/// One reconfiguration action over the execution plan — the widened action
/// space of the optimizer (ROADMAP open item 3; Rubick's taxonomy of
/// sync/async mode, layout, and batching under a fixed resource envelope).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconfigAction {
    /// Switch gradient synchronisation mode (async ↔ sync).
    SetGradientMode(GradientMode),
    /// Step the per-worker batch size by a power of two (±1 step).
    StepBatch {
        /// Signed log2 step: `+1` doubles, `-1` halves the batch.
        delta_log2: i8,
    },
    /// Set the PS replication factor.
    SetPsReplicas {
        /// Target replica count (≥ 1).
        replicas: u32,
    },
    /// Re-layout the embedding shards across the current PSes with LPT
    /// (`pstrain::rebalance::balance_blocks`) — throughput-neutral when the
    /// layout is already balanced, a straight win when it is skewed.
    RelayoutShards,
}

impl ReconfigAction {
    /// Applies this action to `plan`, clamping batch steps into
    /// `[min_batch, max_batch]`. Returns the new plan plus whether an
    /// embedding relayout was requested (relayout is a layout action, not
    /// plan state).
    pub fn apply(
        &self,
        plan: ExecPlan,
        spec_batch: u32,
        min_batch: u32,
        max_batch: u32,
    ) -> (ExecPlan, bool) {
        let mut next = plan;
        let mut relayout = false;
        match *self {
            ReconfigAction::SetGradientMode(mode) => next.gradient_mode = mode,
            ReconfigAction::StepBatch { delta_log2 } => {
                let cur = plan.effective_batch(spec_batch);
                let stepped = if delta_log2 >= 0 {
                    cur.checked_shl(u32::from(delta_log2.unsigned_abs())).unwrap_or(u32::MAX)
                } else {
                    cur >> u32::from(delta_log2.unsigned_abs())
                };
                next.batch_size = stepped.clamp(min_batch.max(1), max_batch.max(1));
            }
            ReconfigAction::SetPsReplicas { replicas } => {
                next.ps_replicas = replicas.max(1);
            }
            ReconfigAction::RelayoutShards => relayout = true,
        }
        (next, relayout)
    }
}

/// The admissible reconfiguration space — what the optimizer may search
/// over, and what `brain::policy` gates. `ReconfigSpace::default()` is the
/// full space; a job that must hold its plan passes `None` upstream
/// instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigSpace {
    /// May the optimizer switch to synchronous gradient mode?
    pub allow_sync: bool,
    /// Maximum PS replication factor (1 = replication disabled).
    pub max_replicas: u32,
    /// Maximum batch-size steps away from the spec batch, in log2 units
    /// (0 = batch fixed).
    pub max_batch_steps: u8,
    /// May the optimizer request embedding-shard relayouts?
    pub allow_relayout: bool,
}

impl Default for ReconfigSpace {
    fn default() -> Self {
        ReconfigSpace {
            allow_sync: true,
            max_replicas: 3,
            max_batch_steps: 1,
            allow_relayout: true,
        }
    }
}

impl ReconfigSpace {
    /// Enumerates every admissible [`ExecPlan`] for a job whose spec batch
    /// is `spec_batch`. The enumeration is duplicate-free and always
    /// contains the default plan (index 0), so a genome decoding to index 0
    /// reproduces the unreconfigured optimizer exactly.
    pub fn plans(&self, spec_batch: u32) -> Vec<ExecPlan> {
        let mut out = vec![ExecPlan::default()];
        let modes: &[GradientMode] = if self.allow_sync {
            &[GradientMode::Async, GradientMode::Sync]
        } else {
            &[GradientMode::Async]
        };
        let steps = i32::from(self.max_batch_steps.min(4));
        for &mode in modes {
            for replicas in 1..=self.max_replicas.max(1) {
                for step in -steps..=steps {
                    let batch = if step >= 0 {
                        spec_batch.max(1).checked_shl(step.unsigned_abs()).unwrap_or(u32::MAX)
                    } else {
                        spec_batch.max(1) >> step.unsigned_abs()
                    }
                    .max(1);
                    let plan = ExecPlan {
                        gradient_mode: mode,
                        ps_replicas: replicas,
                        // Normalise "spec batch" to 0 so plan equality (and
                        // dedup) ignores the representation.
                        batch_size: if batch == spec_batch.max(1) { 0 } else { batch },
                    };
                    if !out.contains(&plan) {
                        out.push(plan);
                    }
                }
            }
        }
        out
    }

    /// Decodes a gene in `[0, 1)` into a plan index over [`Self::plans`].
    pub fn decode(&self, gene: f64, spec_batch: u32) -> ExecPlan {
        let plans = self.plans(spec_batch);
        let idx = ((gene.clamp(0.0, 1.0) * plans.len() as f64) as usize).min(plans.len() - 1);
        plans[idx]
    }
}

/// Scaling-overhead estimator: the `Overhead(A)` term of Eqn. 8, estimated
/// "through statistical analysis based on the resource information of
/// historical jobs within the cluster".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingOverheadModel {
    /// Seconds to bring up one new worker pod (schedule + pull + init).
    ///
    /// Keep this in sync with the environment's actual startup latency —
    /// `dlrover_cluster::StartupLatencyModel::expected(utilisation)` is the
    /// authoritative source; callers that know their cluster's utilisation
    /// should override this field with that value (see
    /// `DlroverPolicyConfig::with_expected_startup`). The default matches
    /// the default startup model at ~30 % cluster utilisation.
    pub worker_startup_s: f64,
    /// Seconds of training pause when PSes change with stop-and-restart
    /// (checkpoint save + redeploy + restore).
    pub ps_restart_pause_s: f64,
    /// Seconds of training pause when PSes change with *seamless migration*
    /// (only the flash-checkpoint handoff blocks).
    pub seamless_pause_s: f64,
    /// Evaluation horizon `H` (seconds) over which scaling overhead is
    /// amortised when computing TG.
    pub horizon_s: f64,
    /// Whether seamless migration is available (DLRover-RM: yes;
    /// stop-and-restart baselines: no).
    pub seamless: bool,
}

impl Default for ScalingOverheadModel {
    fn default() -> Self {
        ScalingOverheadModel {
            worker_startup_s: 255.0,
            ps_restart_pause_s: 600.0,
            seamless_pause_s: 20.0,
            horizon_s: 1_800.0,
            seamless: true,
        }
    }
}

impl ScalingOverheadModel {
    /// Seconds of *training pause* incurred by moving `from → to`.
    ///
    /// Worker additions do not pause training under dynamic data sharding
    /// (new workers just pull shards), but PS changes force a parameter
    /// handoff — cheap when seamless, expensive when stop-and-restart.
    /// Worker-only changes under a stop-and-restart scheduler still restart
    /// the job, so they pay the restart pause too.
    pub fn pause_seconds(&self, from: &ResourceAllocation, to: &ResourceAllocation) -> f64 {
        let ps_changed = from.shape.ps != to.shape.ps
            || (from.shape.ps_cpu - to.shape.ps_cpu).abs() > 1e-9
            || (from.ps_mem_gb - to.ps_mem_gb).abs() > 1e-9;
        let workers_changed = from.shape.workers != to.shape.workers
            || (from.shape.worker_cpu - to.shape.worker_cpu).abs() > 1e-9
            || (from.worker_mem_gb - to.worker_mem_gb).abs() > 1e-9;
        if self.seamless {
            if ps_changed {
                self.seamless_pause_s
            } else {
                0.0
            }
        } else if ps_changed || workers_changed {
            self.ps_restart_pause_s
        } else {
            0.0
        }
    }

    /// `TG(A)` (Eqn. 8): throughput delta minus amortised scaling loss,
    /// in samples/second. `thp_old`/`thp_new` are predicted throughputs.
    pub fn throughput_gain(
        &self,
        thp_old: f64,
        thp_new: f64,
        from: &ResourceAllocation,
        to: &ResourceAllocation,
    ) -> f64 {
        let pause = self.pause_seconds(from, to);
        let extra_wait = f64::from(to.shape.workers.saturating_sub(from.shape.workers)).min(1.0)
            * self.worker_startup_s;
        let lost_samples = thp_new * (pause + extra_wait);
        (thp_new - thp_old) - lost_samples / self.horizon_s.max(1.0)
    }

    /// Seconds of training pause charged for switching `from → to`
    /// execution plans (resource envelope unchanged). Every plan change
    /// rides the seamless-migration machinery — a flash-checkpoint handoff,
    /// the same `seamless_pause_s` as a PS reshape (§5.2) — and falls back
    /// to the full restart pause for stop-and-restart schedulers.
    /// An unchanged plan (and no relayout) costs nothing.
    pub fn reconfig_pause_seconds(&self, from: &ExecPlan, to: &ExecPlan, relayout: bool) -> f64 {
        if from == to && !relayout {
            return 0.0;
        }
        if self.seamless {
            self.seamless_pause_s
        } else {
            self.ps_restart_pause_s
        }
    }

    /// `TG` of a pure reconfiguration (Eqn. 8 with the reconfig pause in
    /// place of the scaling pause): throughput delta minus the amortised
    /// samples lost to the plan-switch handoff.
    pub fn reconfig_gain(
        &self,
        thp_old: f64,
        thp_new: f64,
        from: &ExecPlan,
        to: &ExecPlan,
        relayout: bool,
    ) -> f64 {
        let pause = self.reconfig_pause_seconds(from, to, relayout);
        (thp_new - thp_old) - thp_new * pause / self.horizon_s.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(w: u32, p: u32, cw: f64, cp: f64, wm: f64, pm: f64) -> ResourceAllocation {
        ResourceAllocation::new(JobShape::new(w, p, cw, cp, 512), wm, pm)
    }

    #[test]
    fn totals_add_up() {
        let a = alloc(4, 2, 8.0, 4.0, 16.0, 32.0);
        assert_eq!(a.total_cpu(), 4.0 * 8.0 + 2.0 * 4.0);
        assert_eq!(a.total_mem_gb(), 4.0 * 16.0 + 2.0 * 32.0);
    }

    #[test]
    fn resource_cost_is_linear_in_prices() {
        let prices = PriceTable { cpu_core_hour: 1.0, mem_gb_hour: 0.0 };
        let a = alloc(2, 1, 4.0, 4.0, 8.0, 8.0);
        assert_eq!(prices.resource_cost(&a), 12.0);
        let prices2 = PriceTable { cpu_core_hour: 0.0, mem_gb_hour: 2.0 };
        assert_eq!(prices2.resource_cost(&a), 2.0 * (2.0 * 8.0 + 8.0));
    }

    #[test]
    fn delta_cost_signed() {
        let prices = PriceTable::default();
        let small = alloc(2, 1, 4.0, 4.0, 8.0, 8.0);
        let big = alloc(4, 2, 8.0, 8.0, 16.0, 16.0);
        assert!(prices.delta_cost(&small, &big) > 0.0);
        assert!(prices.delta_cost(&big, &small) < 0.0);
        assert_eq!(prices.delta_cost(&small, &small), 0.0);
    }

    #[test]
    fn seamless_avoids_worker_scale_pause() {
        let m = ScalingOverheadModel::default();
        let from = alloc(2, 2, 4.0, 4.0, 8.0, 8.0);
        let more_workers = alloc(4, 2, 4.0, 4.0, 8.0, 8.0);
        assert_eq!(m.pause_seconds(&from, &more_workers), 0.0);
        let more_ps = alloc(2, 4, 4.0, 4.0, 8.0, 8.0);
        assert_eq!(m.pause_seconds(&from, &more_ps), m.seamless_pause_s);
    }

    #[test]
    fn stop_and_restart_pays_full_pause() {
        let m = ScalingOverheadModel { seamless: false, ..Default::default() };
        let from = alloc(2, 2, 4.0, 4.0, 8.0, 8.0);
        let more_workers = alloc(4, 2, 4.0, 4.0, 8.0, 8.0);
        assert_eq!(m.pause_seconds(&from, &more_workers), m.ps_restart_pause_s);
    }

    #[test]
    fn no_change_no_pause() {
        for seamless in [true, false] {
            let m = ScalingOverheadModel { seamless, ..Default::default() };
            let a = alloc(2, 2, 4.0, 4.0, 8.0, 8.0);
            assert_eq!(m.pause_seconds(&a, &a), 0.0);
        }
    }

    #[test]
    fn throughput_gain_penalises_pauses() {
        let m = ScalingOverheadModel { seamless: false, ..Default::default() };
        let from = alloc(2, 2, 4.0, 4.0, 8.0, 8.0);
        let to = alloc(2, 4, 4.0, 4.0, 8.0, 8.0);
        let gain_with_pause = m.throughput_gain(100.0, 120.0, &from, &to);
        let ms = ScalingOverheadModel::default(); // seamless
        let gain_seamless = ms.throughput_gain(100.0, 120.0, &from, &to);
        assert!(gain_seamless > gain_with_pause);
        assert!(gain_seamless < 20.0, "overhead must subtract something");
    }

    #[test]
    fn throughput_gain_can_be_negative() {
        // Tiny improvement, huge pause: scaling is not worth it.
        let m = ScalingOverheadModel { seamless: false, horizon_s: 600.0, ..Default::default() };
        let from = alloc(2, 2, 4.0, 4.0, 8.0, 8.0);
        let to = alloc(2, 3, 4.0, 4.0, 8.0, 8.0);
        assert!(m.throughput_gain(100.0, 101.0, &from, &to) < 0.0);
    }

    #[test]
    fn negative_memory_clamped() {
        let a = ResourceAllocation::new(JobShape::new(1, 1, 1.0, 1.0, 1), -5.0, -1.0);
        assert_eq!(a.worker_mem_gb, 0.0);
        assert_eq!(a.ps_mem_gb, 0.0);
    }

    #[test]
    fn replicas_charge_ps_memory() {
        let prices = PriceTable::default();
        let a = alloc(2, 2, 4.0, 4.0, 8.0, 16.0);
        let base = prices.plan_resource_cost(&a, &ExecPlan::default());
        assert_eq!(base, prices.resource_cost(&a));
        let doubled =
            prices.plan_resource_cost(&a, &ExecPlan { ps_replicas: 2, ..ExecPlan::default() });
        // One extra copy of 2 PSes × 16 GB.
        assert!((doubled - base - 2.0 * 16.0 * prices.mem_gb_hour).abs() < 1e-12);
    }

    #[test]
    fn reconfig_actions_apply_and_clamp() {
        let plan = ExecPlan::default();
        let (sync, relayout) =
            ReconfigAction::SetGradientMode(GradientMode::Sync).apply(plan, 512, 128, 2048);
        assert_eq!(sync.gradient_mode, GradientMode::Sync);
        assert!(!relayout);
        let (up, _) = ReconfigAction::StepBatch { delta_log2: 1 }.apply(plan, 512, 128, 2048);
        assert_eq!(up.effective_batch(512), 1024);
        let (down, _) = ReconfigAction::StepBatch { delta_log2: -1 }.apply(up, 512, 128, 2048);
        assert_eq!(down.effective_batch(512), 512);
        // Clamp at the ceiling.
        let (capped, _) = ReconfigAction::StepBatch { delta_log2: 2 }.apply(up, 512, 128, 2048);
        assert_eq!(capped.effective_batch(512), 2048);
        let (rep, _) = ReconfigAction::SetPsReplicas { replicas: 0 }.apply(plan, 512, 128, 2048);
        assert_eq!(rep.ps_replicas, 1);
        let (same, relayout) = ReconfigAction::RelayoutShards.apply(plan, 512, 128, 2048);
        assert_eq!(same, plan);
        assert!(relayout);
    }

    #[test]
    fn reconfig_space_enumeration_contains_default_first() {
        let space = ReconfigSpace::default();
        let plans = space.plans(512);
        assert_eq!(plans[0], ExecPlan::default());
        // Duplicate-free.
        for (i, a) in plans.iter().enumerate() {
            for b in &plans[i + 1..] {
                assert_ne!(a, b, "duplicate plan in enumeration");
            }
        }
        // 2 modes × 3 replicas × 3 batch levels.
        assert_eq!(plans.len(), 18);
    }

    #[test]
    fn reconfig_space_decode_covers_all_plans() {
        let space = ReconfigSpace::default();
        let plans = space.plans(512);
        assert_eq!(space.decode(0.0, 512), plans[0]);
        assert_eq!(space.decode(0.999_999, 512), *plans.last().unwrap());
        assert_eq!(space.decode(-3.0, 512), plans[0]);
        assert_eq!(space.decode(7.0, 512), *plans.last().unwrap());
    }

    #[test]
    fn disabled_space_is_default_only() {
        let space = ReconfigSpace {
            allow_sync: false,
            max_replicas: 1,
            max_batch_steps: 0,
            allow_relayout: false,
        };
        assert_eq!(space.plans(512), vec![ExecPlan::default()]);
    }

    #[test]
    fn reconfig_pause_charges_plan_changes_only() {
        let m = ScalingOverheadModel::default();
        let a = ExecPlan::default();
        let b = ExecPlan { gradient_mode: GradientMode::Sync, ..a };
        assert_eq!(m.reconfig_pause_seconds(&a, &a, false), 0.0);
        assert_eq!(m.reconfig_pause_seconds(&a, &b, false), m.seamless_pause_s);
        assert_eq!(m.reconfig_pause_seconds(&a, &a, true), m.seamless_pause_s);
        let stop = ScalingOverheadModel { seamless: false, ..Default::default() };
        assert_eq!(stop.reconfig_pause_seconds(&a, &b, false), stop.ps_restart_pause_s);
    }

    #[test]
    fn reconfig_gain_nets_out_the_pause() {
        let m = ScalingOverheadModel::default();
        let a = ExecPlan::default();
        let b = ExecPlan { gradient_mode: GradientMode::Sync, ..a };
        let gain = m.reconfig_gain(100.0, 120.0, &a, &b, false);
        assert!(gain < 20.0 && gain > 0.0, "gain {gain}");
        // A tiny improvement over a short horizon is not worth the pause.
        let short = ScalingOverheadModel { horizon_s: 30.0, ..Default::default() };
        assert!(short.reconfig_gain(100.0, 101.0, &a, &b, false) < 0.0);
    }
}
