//! NSGA-II: elitist non-dominated sorting genetic algorithm (Deb et al. 2002).
//!
//! The paper generates job-level resource-plan candidates with NSGA-II
//! ("an evolutionary algorithm known for its rapid convergence to the Pareto
//! Frontier in low-dimensional multi-objective problems", §4.3). This module
//! implements the full algorithm from scratch over real-valued genomes with
//! box bounds:
//!
//! * fast non-dominated sorting into fronts,
//! * crowding-distance diversity preservation,
//! * binary tournament selection on (rank, crowding),
//! * simulated binary crossover (SBX) and polynomial mutation.
//!
//! All objectives are *minimized*; encode maximization as negation or
//! reciprocal (the paper minimizes `(RC, 1/TG)`).

use dlrover_telemetry::prof;
use rand::Rng;

/// Configuration for an NSGA-II run.
#[derive(Debug, Clone, Copy)]
pub struct Nsga2Config {
    /// Population size (kept constant across generations).
    pub population: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Probability of applying crossover to a mating pair.
    pub crossover_prob: f64,
    /// SBX distribution index (larger → offspring closer to parents).
    pub eta_crossover: f64,
    /// Per-gene mutation probability (defaults to 1/dim when `None`).
    pub mutation_prob: Option<f64>,
    /// Polynomial-mutation distribution index.
    pub eta_mutation: f64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population: 64,
            generations: 50,
            crossover_prob: 0.9,
            eta_crossover: 15.0,
            mutation_prob: None,
            eta_mutation: 20.0,
        }
    }
}

/// A point on the final Pareto front: genome plus its objective values.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Decision variables.
    pub genome: Vec<f64>,
    /// Objective values (minimized).
    pub objectives: Vec<f64>,
}

/// The NSGA-II optimizer for a problem `f: genome -> objectives` with box
/// bounds on each gene.
pub struct Nsga2<F> {
    evaluate: F,
    lower: Vec<f64>,
    upper: Vec<f64>,
    config: Nsga2Config,
}

#[derive(Clone)]
struct Individual {
    genome: Vec<f64>,
    objectives: Vec<f64>,
    rank: usize,
    crowding: f64,
}

impl<F> Nsga2<F>
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    /// Creates an optimizer.
    ///
    /// # Panics
    /// Panics if the bounds are empty, of different lengths, or inverted.
    pub fn new(evaluate: F, lower: Vec<f64>, upper: Vec<f64>, config: Nsga2Config) -> Self {
        assert!(!lower.is_empty(), "at least one decision variable required");
        assert_eq!(lower.len(), upper.len(), "bound length mismatch");
        assert!(lower.iter().zip(&upper).all(|(l, u)| l <= u), "lower bound exceeds upper bound");
        assert!(config.population >= 4, "population must be at least 4");
        Nsga2 { evaluate, lower, upper, config }
    }

    /// Runs the algorithm and returns the first (best) non-dominated front.
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<ParetoPoint> {
        let _p = prof::scope("nsga2/run");
        let dim = self.lower.len();
        let mutation_prob = self.config.mutation_prob.unwrap_or(1.0 / dim as f64);
        let pop_size = self.config.population;

        let mut population: Vec<Individual> = (0..pop_size)
            .map(|_| {
                let genome: Vec<f64> =
                    (0..dim).map(|d| rng.gen_range(self.lower[d]..=self.upper[d])).collect();
                self.make_individual(genome)
            })
            .collect();
        assign_ranks_and_crowding(&mut population);

        for _ in 0..self.config.generations {
            let _g = prof::scope("nsga2/generation");
            prof::add_items(pop_size as u64);
            // Variation: fill an offspring population of equal size.
            let mut offspring = Vec::with_capacity(pop_size);
            while offspring.len() < pop_size {
                let p1 = tournament(&population, rng);
                let p2 = tournament(&population, rng);
                let (mut c1, mut c2) = if rng.gen::<f64>() < self.config.crossover_prob {
                    sbx_crossover(
                        &population[p1].genome,
                        &population[p2].genome,
                        &self.lower,
                        &self.upper,
                        self.config.eta_crossover,
                        rng,
                    )
                } else {
                    (population[p1].genome.clone(), population[p2].genome.clone())
                };
                polynomial_mutation(
                    &mut c1,
                    &self.lower,
                    &self.upper,
                    mutation_prob,
                    self.config.eta_mutation,
                    rng,
                );
                polynomial_mutation(
                    &mut c2,
                    &self.lower,
                    &self.upper,
                    mutation_prob,
                    self.config.eta_mutation,
                    rng,
                );
                offspring.push(self.make_individual(c1));
                if offspring.len() < pop_size {
                    offspring.push(self.make_individual(c2));
                }
            }

            // Environmental selection over parents ∪ offspring.
            population.extend(offspring);
            assign_ranks_and_crowding(&mut population);
            population.sort_by(|a, b| {
                a.rank
                    .cmp(&b.rank)
                    .then_with(|| b.crowding.partial_cmp(&a.crowding).expect("NaN crowding"))
            });
            population.truncate(pop_size);
        }

        assign_ranks_and_crowding(&mut population);
        population
            .into_iter()
            .filter(|ind| ind.rank == 0)
            .map(|ind| ParetoPoint { genome: ind.genome, objectives: ind.objectives })
            .collect()
    }

    fn make_individual(&self, genome: Vec<f64>) -> Individual {
        let objectives = (self.evaluate)(&genome);
        debug_assert!(
            objectives.iter().all(|v| !v.is_nan()),
            "objective produced NaN for {genome:?}"
        );
        Individual { genome, objectives, rank: usize::MAX, crowding: 0.0 }
    }
}

/// True if `a` Pareto-dominates `b` (no worse in all objectives, strictly
/// better in at least one; all objectives minimized).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Hypervolume indicator for a *two-objective* front (both minimized):
/// the area dominated by the front within the box bounded by `reference`
/// (a point worse than every front member). Standard quality measure for
/// Pareto approximations — larger is better.
///
/// Points at or beyond the reference contribute nothing.
///
/// # Panics
/// Panics if any objective vector does not have exactly 2 entries.
pub fn hypervolume_2d(front: &[ParetoPoint], reference: [f64; 2]) -> f64 {
    let mut pts: Vec<[f64; 2]> = front
        .iter()
        .map(|p| {
            assert_eq!(p.objectives.len(), 2, "hypervolume_2d needs 2 objectives");
            [p.objectives[0], p.objectives[1]]
        })
        .filter(|p| p[0] < reference[0] && p[1] < reference[1])
        .collect();
    // Sort by first objective ascending; keep only the non-dominated
    // staircase (strictly decreasing second objective).
    pts.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("NaN objective"));
    let mut area = 0.0;
    let mut best_f2 = reference[1];
    for p in pts {
        if p[1] < best_f2 {
            area += (reference[0] - p[0]) * (best_f2 - p[1]);
            best_f2 = p[1];
        }
    }
    area
}

/// Fast non-dominated sort + crowding distance (Deb et al., §III).
fn assign_ranks_and_crowding(pop: &mut [Individual]) {
    let _p = prof::scope("nsga2/sort");
    let n = pop.len();
    let mut domination_count = vec![0usize; n];
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];

    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&pop[i].objectives, &pop[j].objectives) {
                dominated_by[i].push(j);
                domination_count[j] += 1;
            } else if dominates(&pop[j].objectives, &pop[i].objectives) {
                dominated_by[j].push(i);
                domination_count[i] += 1;
            }
        }
    }

    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    let mut rank = 0;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            pop[i].rank = rank;
        }
        crowding_distance(pop, &current);
        for &i in &current {
            for &j in &dominated_by[i].clone() {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        current = next;
        rank += 1;
    }
}

/// Computes crowding distance for one front (indices into `pop`).
fn crowding_distance(pop: &mut [Individual], front: &[usize]) {
    for &i in front {
        pop[i].crowding = 0.0;
    }
    if front.len() <= 2 {
        for &i in front {
            pop[i].crowding = f64::INFINITY;
        }
        return;
    }
    let n_obj = pop[front[0]].objectives.len();
    let mut order: Vec<usize> = front.to_vec();
    for m in 0..n_obj {
        order.sort_by(|&a, &b| {
            pop[a].objectives[m].partial_cmp(&pop[b].objectives[m]).expect("NaN objective")
        });
        let lo = pop[order[0]].objectives[m];
        let hi = pop[*order.last().expect("front nonempty")].objectives[m];
        pop[order[0]].crowding = f64::INFINITY;
        pop[*order.last().expect("front nonempty")].crowding = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for w in order.windows(3) {
            let (prev, mid, next) = (w[0], w[1], w[2]);
            if pop[mid].crowding.is_finite() {
                pop[mid].crowding += (pop[next].objectives[m] - pop[prev].objectives[m]) / span;
            }
        }
    }
}

/// Binary tournament on (rank asc, crowding desc); returns the winner index.
fn tournament<R: Rng + ?Sized>(pop: &[Individual], rng: &mut R) -> usize {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());

    match pop[a].rank.cmp(&pop[b].rank) {
        std::cmp::Ordering::Less => a,
        std::cmp::Ordering::Greater => b,
        std::cmp::Ordering::Equal => {
            if pop[a].crowding >= pop[b].crowding {
                a
            } else {
                b
            }
        }
    }
}

/// Simulated binary crossover (SBX) with box-bound clipping.
fn sbx_crossover<R: Rng + ?Sized>(
    p1: &[f64],
    p2: &[f64],
    lower: &[f64],
    upper: &[f64],
    eta: f64,
    rng: &mut R,
) -> (Vec<f64>, Vec<f64>) {
    let mut c1 = p1.to_vec();
    let mut c2 = p2.to_vec();
    for d in 0..p1.len() {
        if rng.gen::<f64>() > 0.5 || (p1[d] - p2[d]).abs() < 1e-14 {
            continue;
        }
        let u: f64 = rng.gen();
        let beta = if u <= 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0))
        } else {
            (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (eta + 1.0))
        };
        let mean = 0.5 * (p1[d] + p2[d]);
        let diff = 0.5 * beta * (p2[d] - p1[d]).abs();
        c1[d] = (mean - diff).clamp(lower[d], upper[d]);
        c2[d] = (mean + diff).clamp(lower[d], upper[d]);
    }
    (c1, c2)
}

/// Polynomial mutation with box-bound clipping.
fn polynomial_mutation<R: Rng + ?Sized>(
    genome: &mut [f64],
    lower: &[f64],
    upper: &[f64],
    prob: f64,
    eta: f64,
    rng: &mut R,
) {
    for d in 0..genome.len() {
        if rng.gen::<f64>() >= prob {
            continue;
        }
        let span = upper[d] - lower[d];
        if span <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        let delta = if u < 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0)) - 1.0
        } else {
            1.0 - (2.0 * (1.0 - u)).powf(1.0 / (eta + 1.0))
        };
        genome[d] = (genome[d] + delta * span).clamp(lower[d], upper[d]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn dominates_is_strict_partial_order() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]), "no self-domination");
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]), "incomparable");
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0]));
    }

    /// Schaffer's F1: f1 = x², f2 = (x-2)². Pareto set is x ∈ [0, 2] with
    /// front f2 = (sqrt(f1) - 2)².
    #[test]
    fn solves_schaffer_f1() {
        let opt = Nsga2::new(
            |g: &[f64]| vec![g[0] * g[0], (g[0] - 2.0) * (g[0] - 2.0)],
            vec![-10.0],
            vec![10.0],
            Nsga2Config { population: 60, generations: 60, ..Default::default() },
        );
        let front = opt.run(&mut rng());
        assert!(front.len() >= 10, "front too small: {}", front.len());
        for p in &front {
            let x = p.genome[0];
            assert!((-0.1..=2.1).contains(&x), "x = {x} not on Pareto set");
            // Objective consistency.
            assert!((p.objectives[0] - x * x).abs() < 1e-9);
        }
        // The front should span both extremes reasonably well.
        let min_f1 = front.iter().map(|p| p.objectives[0]).fold(f64::INFINITY, f64::min);
        let max_f1 = front.iter().map(|p| p.objectives[0]).fold(0.0, f64::max);
        assert!(min_f1 < 0.1, "missing f1-optimal corner: {min_f1}");
        assert!(max_f1 > 3.0, "missing f2-optimal corner: {max_f1}");
    }

    /// ZDT1 (2 objectives, 10 vars): front is g = 1, f2 = 1 - sqrt(f1).
    #[test]
    fn approaches_zdt1_front() {
        let dim = 10;
        let eval = |g: &[f64]| {
            let f1 = g[0];
            let gsum: f64 = 1.0 + 9.0 * g[1..].iter().sum::<f64>() / (dim as f64 - 1.0);
            let f2 = gsum * (1.0 - (f1 / gsum).sqrt());
            vec![f1, f2]
        };
        let opt = Nsga2::new(
            eval,
            vec![0.0; dim],
            vec![1.0; dim],
            Nsga2Config { population: 100, generations: 150, ..Default::default() },
        );
        let front = opt.run(&mut rng());
        // Measure average distance to the true front: f2* = 1 - sqrt(f1).
        let avg_gap: f64 = front
            .iter()
            .map(|p| (p.objectives[1] - (1.0 - p.objectives[0].sqrt())).abs())
            .sum::<f64>()
            / front.len() as f64;
        assert!(avg_gap < 0.15, "front too far from optimum: {avg_gap}");
    }

    #[test]
    fn front_is_mutually_nondominated() {
        let opt = Nsga2::new(
            |g: &[f64]| vec![g[0], 1.0 / (g[0] + 0.1)],
            vec![0.0],
            vec![5.0],
            Nsga2Config { population: 32, generations: 20, ..Default::default() },
        );
        let front = opt.run(&mut rng());
        for a in &front {
            for b in &front {
                assert!(
                    !dominates(&a.objectives, &b.objectives),
                    "front member dominated: {a:?} > {b:?}"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let build = || {
            Nsga2::new(
                |g: &[f64]| vec![g[0] * g[0], (g[0] - 1.0) * (g[0] - 1.0)],
                vec![-5.0],
                vec![5.0],
                Nsga2Config { population: 16, generations: 10, ..Default::default() },
            )
        };
        let f1 = build().run(&mut StdRng::seed_from_u64(99));
        let f2 = build().run(&mut StdRng::seed_from_u64(99));
        assert_eq!(f1.len(), f2.len());
        for (a, b) in f1.iter().zip(&f2) {
            assert_eq!(a.genome, b.genome);
        }
    }

    #[test]
    fn single_objective_degenerates_to_minimum() {
        let opt = Nsga2::new(
            |g: &[f64]| vec![(g[0] - 3.0) * (g[0] - 3.0)],
            vec![-10.0],
            vec![10.0],
            Nsga2Config { population: 40, generations: 60, ..Default::default() },
        );
        let front = opt.run(&mut rng());
        let best = front.iter().map(|p| p.objectives[0]).fold(f64::INFINITY, f64::min);
        assert!(best < 0.01, "did not find minimum: {best}");
    }

    #[test]
    fn respects_bounds() {
        let opt = Nsga2::new(
            |g: &[f64]| vec![g[0], -g[1]],
            vec![2.0, -1.0],
            vec![3.0, 1.0],
            Nsga2Config { population: 24, generations: 15, ..Default::default() },
        );
        for p in opt.run(&mut rng()) {
            assert!((2.0..=3.0).contains(&p.genome[0]));
            assert!((-1.0..=1.0).contains(&p.genome[1]));
        }
    }

    #[test]
    fn degenerate_point_bounds_work() {
        // lower == upper: the only genome is that point.
        let opt = Nsga2::new(
            |g: &[f64]| vec![g[0]],
            vec![1.5],
            vec![1.5],
            Nsga2Config { population: 8, generations: 5, ..Default::default() },
        );
        for p in opt.run(&mut rng()) {
            assert_eq!(p.genome[0], 1.5);
        }
    }

    #[test]
    fn hypervolume_of_single_point() {
        let front = vec![ParetoPoint { genome: vec![0.0], objectives: vec![1.0, 1.0] }];
        // Box from (1,1) to (3,3): area 4.
        assert!((hypervolume_2d(&front, [3.0, 3.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_staircase() {
        let mk = |a: f64, b: f64| ParetoPoint { genome: vec![], objectives: vec![a, b] };
        let front = vec![mk(1.0, 2.0), mk(2.0, 1.0)];
        // (1,2): (4-1)*(4-2)=6; (2,1): (4-2)*(2-1)=2 => 8.
        assert!((hypervolume_2d(&front, [4.0, 4.0]) - 8.0).abs() < 1e-12);
        // Dominated point adds nothing.
        let with_dup = vec![mk(1.0, 2.0), mk(2.0, 1.0), mk(2.5, 2.5)];
        assert!((hypervolume_2d(&with_dup, [4.0, 4.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_ignores_points_beyond_reference() {
        let front = vec![ParetoPoint { genome: vec![], objectives: vec![5.0, 5.0] }];
        assert_eq!(hypervolume_2d(&front, [4.0, 4.0]), 0.0);
    }

    #[test]
    fn nsga_improves_hypervolume_over_generations() {
        let eval = |g: &[f64]| vec![g[0] * g[0], (g[0] - 2.0) * (g[0] - 2.0)];
        let front_of = |gens: usize| {
            Nsga2::new(
                eval,
                vec![-10.0],
                vec![10.0],
                Nsga2Config { population: 24, generations: gens, ..Default::default() },
            )
            .run(&mut StdRng::seed_from_u64(3))
        };
        let hv_early = hypervolume_2d(&front_of(1), [20.0, 20.0]);
        let hv_late = hypervolume_2d(&front_of(40), [20.0, 20.0]);
        assert!(hv_late >= hv_early, "evolution regressed: {hv_early} -> {hv_late}");
    }

    #[test]
    #[should_panic(expected = "population must be at least 4")]
    fn tiny_population_rejected() {
        let _ = Nsga2::new(
            |g: &[f64]| vec![g[0]],
            vec![0.0],
            vec![1.0],
            Nsga2Config { population: 2, ..Default::default() },
        );
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper bound")]
    fn inverted_bounds_rejected() {
        let _ = Nsga2::new(|g: &[f64]| vec![g[0]], vec![1.0], vec![0.0], Nsga2Config::default());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// dominates() is antisymmetric for arbitrary objective vectors.
        #[test]
        fn domination_antisymmetric(
            a in proptest::collection::vec(-100.0f64..100.0, 3),
            b in proptest::collection::vec(-100.0f64..100.0, 3),
        ) {
            prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)));
        }

        /// dominates() is irreflexive.
        #[test]
        fn domination_irreflexive(a in proptest::collection::vec(-100.0f64..100.0, 4)) {
            prop_assert!(!dominates(&a, &a));
        }
    }
}
