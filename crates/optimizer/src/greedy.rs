//! Cluster-level weighted greedy plan selection (§4.3, Eqns. 11–14).
//!
//! Each job contributes a set of Pareto-frontier plan candidates; the
//! cluster brain must pick at most one per job without exceeding the free
//! cluster capacity `S`, maximizing `Σ RE(Aʲ)·WG(Aʲ)` where
//! `RE = TG/RC` (resource efficiency) and `WG` is a priority weight that
//! favours jobs with a short remaining time:
//!
//! ```text
//! WG(Aʲ) = 1 / (Φ_sp / Ψ_thp + ε)^ρ          (Eqn. 14)
//! ```
//!
//! At AntGroup `ρ = 2.5` "to complete shorter jobs quicker and release the
//! resources"; `ρ → 0` treats all jobs equally, `ρ < 0` favours long jobs.

use serde::{Deserialize, Serialize};

use crate::scaling::PlanCandidate;

/// Free cluster capacity available for (re)allocation: the constraint
/// `Σ Aʲ ≤ S` of Eqn. 13.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterCapacity {
    /// Free CPU cores.
    pub cpu_cores: f64,
    /// Free memory, GB.
    pub mem_gb: f64,
}

impl ClusterCapacity {
    /// True if an *additional* demand of (`cpu`, `mem`) fits.
    fn fits(&self, cpu: f64, mem: f64) -> bool {
        cpu <= self.cpu_cores + 1e-9 && mem <= self.mem_gb + 1e-9
    }

    fn consume(&mut self, cpu: f64, mem: f64) {
        self.cpu_cores -= cpu;
        self.mem_gb -= mem;
    }
}

/// Weighted-greedy hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GreedyConfig {
    /// Priority exponent `ρ` (AntGroup default 2.5).
    pub rho: f64,
    /// Division-by-zero guard `ε` (seconds).
    pub epsilon: f64,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig { rho: 2.5, epsilon: 1.0 }
    }
}

/// One job's reallocation request: its current footprint, remaining work,
/// and candidate plans (typically the NSGA-II Pareto front).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobCandidates {
    /// Opaque job identifier (index into the caller's tables).
    pub job_id: u64,
    /// CPU cores currently held (released if the plan changes footprint).
    pub current_cpu: f64,
    /// Memory (GB) currently held.
    pub current_mem_gb: f64,
    /// Remaining samples to train, `Φ_sp`.
    pub remaining_samples: f64,
    /// Candidate plans.
    pub candidates: Vec<PlanCandidate>,
}

/// A selected plan for one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectedPlan {
    /// Which job this plan belongs to.
    pub job_id: u64,
    /// The chosen candidate.
    pub plan: PlanCandidate,
    /// The benefit score `RE·WG` under which it was picked.
    pub benefit: f64,
}

/// The priority weight `WG(Aʲ)` of Eqn. 14: remaining time is
/// `Φ_sp / Ψ_thp`, and shorter jobs get larger weight for `ρ > 0`.
pub fn priority_weight(
    remaining_samples: f64,
    predicted_throughput: f64,
    config: &GreedyConfig,
) -> f64 {
    let remaining_time =
        remaining_samples.max(0.0) / predicted_throughput.max(1e-9) + config.epsilon.max(1e-12);
    remaining_time.powf(-config.rho)
}

/// Weighted greedy selection: picks at most one candidate per job,
/// maximizing `Σ RE·WG` subject to the free capacity.
///
/// Classic greedy over (job, candidate) pairs sorted by benefit density:
/// repeatedly take the feasible pair with the highest `RE·WG`, charging only
/// the *additional* footprint (a job's current resources are reusable).
/// Jobs whose candidates all have non-positive gain are left unchanged.
pub fn select_plans(
    jobs: &[JobCandidates],
    capacity: ClusterCapacity,
    config: &GreedyConfig,
) -> Vec<SelectedPlan> {
    #[derive(Clone, Copy)]
    struct Scored {
        job_idx: usize,
        cand_idx: usize,
        benefit: f64,
        extra_cpu: f64,
        extra_mem: f64,
    }

    let mut scored: Vec<Scored> = Vec::new();
    for (job_idx, job) in jobs.iter().enumerate() {
        for (cand_idx, cand) in job.candidates.iter().enumerate() {
            if cand.throughput_gain <= 0.0 {
                continue;
            }
            let wg = priority_weight(job.remaining_samples, cand.predicted_throughput, config);
            let benefit = cand.resource_efficiency() * wg;
            // Only additional resources count against free capacity.
            let extra_cpu = (cand.allocation.total_cpu() - job.current_cpu).max(0.0);
            let extra_mem = (cand.allocation.total_mem_gb() - job.current_mem_gb).max(0.0);
            scored.push(Scored { job_idx, cand_idx, benefit, extra_cpu, extra_mem });
        }
    }
    scored.sort_by(|a, b| b.benefit.partial_cmp(&a.benefit).expect("NaN benefit"));

    let mut remaining = capacity;
    let mut taken = vec![false; jobs.len()];
    let mut selections = Vec::new();
    for s in scored {
        if taken[s.job_idx] || !remaining.fits(s.extra_cpu, s.extra_mem) {
            continue;
        }
        taken[s.job_idx] = true;
        remaining.consume(s.extra_cpu, s.extra_mem);
        selections.push(SelectedPlan {
            job_id: jobs[s.job_idx].job_id,
            plan: jobs[s.job_idx].candidates[s.cand_idx],
            benefit: s.benefit,
        });
    }
    selections
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ResourceAllocation;
    use dlrover_perfmodel::JobShape;

    fn candidate(w: u32, cpu: f64, thp: f64, gain: f64) -> PlanCandidate {
        let alloc =
            ResourceAllocation::new(JobShape::new(w, 1, cpu, cpu, 512), cpu * 2.0, cpu * 2.0);
        PlanCandidate {
            allocation: alloc,
            predicted_throughput: thp,
            resource_cost: alloc.total_cpu() * 0.033 + alloc.total_mem_gb() * 0.0045,
            throughput_gain: gain,
            exec: dlrover_perfmodel::ExecPlan::default(),
        }
    }

    fn job(id: u64, remaining: f64, candidates: Vec<PlanCandidate>) -> JobCandidates {
        JobCandidates {
            job_id: id,
            current_cpu: 2.0,
            current_mem_gb: 4.0,
            remaining_samples: remaining,
            candidates,
        }
    }

    #[test]
    fn weight_increases_for_shorter_jobs_with_positive_rho() {
        let cfg = GreedyConfig::default();
        let short = priority_weight(1_000.0, 100.0, &cfg);
        let long = priority_weight(1_000_000.0, 100.0, &cfg);
        assert!(short > long);
    }

    #[test]
    fn rho_zero_equalises_weights() {
        let cfg = GreedyConfig { rho: 0.0, epsilon: 1.0 };
        let a = priority_weight(10.0, 1.0, &cfg);
        let b = priority_weight(1e9, 1.0, &cfg);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_rho_prefers_long_jobs() {
        let cfg = GreedyConfig { rho: -1.0, epsilon: 1.0 };
        let short = priority_weight(1_000.0, 100.0, &cfg);
        let long = priority_weight(1_000_000.0, 100.0, &cfg);
        assert!(long > short);
    }

    #[test]
    fn epsilon_guards_zero_remaining() {
        let cfg = GreedyConfig::default();
        let w = priority_weight(0.0, 100.0, &cfg);
        assert!(w.is_finite());
    }

    #[test]
    fn selects_best_candidate_per_job() {
        let j = job(
            1,
            1_000_000.0,
            vec![
                candidate(2, 2.0, 120.0, 20.0), // efficient small bump
                candidate(16, 16.0, 200.0, 100.0),
            ],
        );
        let picks = select_plans(
            &[j],
            ClusterCapacity { cpu_cores: 1_000.0, mem_gb: 10_000.0 },
            &GreedyConfig::default(),
        );
        assert_eq!(picks.len(), 1);
        // Whatever wins must be the benefit-maximal feasible candidate.
        assert!(picks[0].benefit > 0.0);
    }

    #[test]
    fn at_most_one_plan_per_job() {
        let j = job(7, 1e6, vec![candidate(2, 2.0, 120.0, 20.0), candidate(4, 4.0, 150.0, 50.0)]);
        let picks = select_plans(
            &[j.clone(), j],
            ClusterCapacity { cpu_cores: 1e6, mem_gb: 1e6 },
            &GreedyConfig::default(),
        );
        assert_eq!(picks.len(), 2);
    }

    #[test]
    fn capacity_constraint_respected() {
        // Each candidate needs 16*2=32 extra cores beyond the current 2.
        let jobs: Vec<JobCandidates> =
            (0..10).map(|i| job(i, 1e6, vec![candidate(16, 2.0, 200.0, 100.0)])).collect();
        let per_job_extra = jobs[0].candidates[0].allocation.total_cpu() - 2.0;
        let capacity = ClusterCapacity { cpu_cores: per_job_extra * 3.0 + 1.0, mem_gb: 1e9 };
        let picks = select_plans(&jobs, capacity, &GreedyConfig::default());
        assert_eq!(picks.len(), 3, "only 3 jobs fit the CPU budget");
    }

    #[test]
    fn memory_constraint_respected() {
        let jobs: Vec<JobCandidates> =
            (0..5).map(|i| job(i, 1e6, vec![candidate(8, 4.0, 150.0, 50.0)])).collect();
        let per_job_mem = jobs[0].candidates[0].allocation.total_mem_gb() - 4.0;
        let capacity = ClusterCapacity { cpu_cores: 1e9, mem_gb: per_job_mem * 2.0 + 0.5 };
        let picks = select_plans(&jobs, capacity, &GreedyConfig::default());
        assert_eq!(picks.len(), 2);
    }

    #[test]
    fn nonpositive_gains_are_skipped() {
        let j = job(1, 1e6, vec![candidate(4, 4.0, 90.0, -10.0), candidate(4, 4.0, 100.0, 0.0)]);
        let picks = select_plans(
            &[j],
            ClusterCapacity { cpu_cores: 1e9, mem_gb: 1e9 },
            &GreedyConfig::default(),
        );
        assert!(picks.is_empty());
    }

    #[test]
    fn short_jobs_win_contention_with_positive_rho() {
        // Two identical candidates; only capacity for one. The job with
        // fewer remaining samples should be picked (ρ = 2.5 > 0).
        let cand = candidate(8, 4.0, 150.0, 50.0);
        let short = JobCandidates { remaining_samples: 1e4, ..job(1, 0.0, vec![cand]) };
        let long = JobCandidates { remaining_samples: 1e8, ..job(2, 0.0, vec![cand]) };
        let extra = cand.allocation.total_cpu() - 2.0;
        let picks = select_plans(
            &[long, short],
            ClusterCapacity { cpu_cores: extra + 0.5, mem_gb: 1e9 },
            &GreedyConfig::default(),
        );
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].job_id, 1, "short job must win");
    }

    #[test]
    fn empty_input_is_empty_output() {
        let picks = select_plans(
            &[],
            ClusterCapacity { cpu_cores: 10.0, mem_gb: 10.0 },
            &GreedyConfig::default(),
        );
        assert!(picks.is_empty());
    }

    #[test]
    fn selection_respects_capacity_under_random_inputs() {
        // Deterministic pseudo-random stress: many jobs, many candidates,
        // tight capacity — the additional footprint must never exceed it
        // and each job appears at most once.
        let mut state = 9u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64
        };
        for trial in 0..50 {
            let jobs: Vec<JobCandidates> = (0..8)
                .map(|id| {
                    let candidates = (0..4)
                        .map(|_| {
                            let w = 1 + (next() as u32 % 16);
                            let cpu = 1.0 + next() % 16.0;
                            candidate(w, cpu, 50.0 + next(), next() - 300.0)
                        })
                        .collect();
                    JobCandidates {
                        job_id: id,
                        current_cpu: next() % 32.0,
                        current_mem_gb: next() % 64.0,
                        remaining_samples: next() * 1e4,
                        candidates,
                    }
                })
                .collect();
            let capacity = ClusterCapacity { cpu_cores: next() % 200.0, mem_gb: next() % 400.0 };
            let picks = select_plans(&jobs, capacity, &GreedyConfig::default());
            let mut seen = std::collections::HashSet::new();
            let mut extra_cpu = 0.0;
            let mut extra_mem = 0.0;
            for p in &picks {
                assert!(seen.insert(p.job_id), "trial {trial}: job picked twice");
                assert!(p.plan.throughput_gain > 0.0);
                let job = jobs.iter().find(|j| j.job_id == p.job_id).unwrap();
                extra_cpu += (p.plan.allocation.total_cpu() - job.current_cpu).max(0.0);
                extra_mem += (p.plan.allocation.total_mem_gb() - job.current_mem_gb).max(0.0);
            }
            assert!(
                extra_cpu <= capacity.cpu_cores + 1e-6,
                "trial {trial}: cpu over budget {extra_cpu} > {}",
                capacity.cpu_cores
            );
            assert!(
                extra_mem <= capacity.mem_gb + 1e-6,
                "trial {trial}: mem over budget {extra_mem} > {}",
                capacity.mem_gb
            );
        }
    }

    #[test]
    fn shrinking_plans_cost_no_capacity() {
        // Candidate footprint below current usage: fits even a full cluster.
        let mut j = job(1, 1e6, vec![candidate(1, 0.5, 110.0, 10.0)]);
        j.current_cpu = 100.0;
        j.current_mem_gb = 100.0;
        let picks = select_plans(
            &[j],
            ClusterCapacity { cpu_cores: 0.0, mem_gb: 0.0 },
            &GreedyConfig::default(),
        );
        assert_eq!(picks.len(), 1);
    }
}
