//! Warm-starting: pre-scaling stage of the three-stage algorithm
//! (Algorithm 1 of the paper).
//!
//! When a new job arrives, the cluster brain looks up the `k` most similar
//! historical jobs in the config DB, ranks them by similarity ascending, and
//! exponentially smooths their final configurations:
//!
//! ```text
//! Ā⁰ = A⁰                       (least similar of the top-k)
//! Āⁱ = μ·Aⁱ + (1−μ)·Āⁱ⁻¹        (i = 1 … k−1, most similar last)
//! ```
//!
//! so the most similar job contributes weight `μ`, the next `μ(1−μ)`, and so
//! on — the start-up configuration is dominated by the closest historical
//! matches but regularised by the rest.

use dlrover_perfmodel::JobShape;
use serde::{Deserialize, Serialize};

use crate::plan::ResourceAllocation;

/// Metadata describing a job for similarity search. These are features
/// available *before* the job runs (model type, table sizes, dataset size),
/// mirroring "the job's features (e.g., model metadata)".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetadata {
    /// Model family, e.g. "wide_deep", "xdeepfm", "dcn".
    pub model_kind: String,
    /// Submitting user/team (same user's jobs tend to repeat).
    pub owner: String,
    /// Number of categorical features / embedding tables.
    pub num_sparse_features: u32,
    /// Embedding dimension.
    pub embedding_dim: u32,
    /// Dataset size in samples.
    pub dataset_samples: u64,
    /// Dense-part parameter count.
    pub dense_params: u64,
}

/// A historical record: metadata plus the final (converged) allocation the
/// auto-scaler settled on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job features at submission time.
    pub metadata: JobMetadata,
    /// The allocation the job ended up with.
    pub final_allocation: ResourceAllocation,
}

/// Warm-start hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmStartConfig {
    /// How many similar jobs to blend (`k`).
    pub top_k: usize,
    /// Exponential-smoothing factor `μ ∈ (0, 1)`.
    pub mu: f64,
}

impl Default for WarmStartConfig {
    fn default() -> Self {
        WarmStartConfig { top_k: 5, mu: 0.5 }
    }
}

/// Similarity between two jobs' metadata in `[0, 1]` (1 = identical).
///
/// A Gower-style mix: categorical fields contribute equality indicators,
/// numeric fields contribute `1 − |a−b|/max(a,b)` (ratio similarity, robust
/// to scale). Weights favour the model family and owner, which dominate
/// configuration reuse in practice.
pub fn similarity(a: &JobMetadata, b: &JobMetadata) -> f64 {
    fn ratio_sim(x: f64, y: f64) -> f64 {
        let hi = x.max(y);
        if hi <= 0.0 {
            return 1.0;
        }
        1.0 - (x - y).abs() / hi
    }
    let mut score = 0.0;
    let mut weight = 0.0;
    // Categorical.
    for (matched, w) in [(a.model_kind == b.model_kind, 3.0), (a.owner == b.owner, 2.0)] {
        score += if matched { w } else { 0.0 };
        weight += w;
    }
    // Numeric.
    for (x, y, w) in [
        (a.num_sparse_features as f64, b.num_sparse_features as f64, 1.5),
        (a.embedding_dim as f64, b.embedding_dim as f64, 1.0),
        (a.dataset_samples as f64, b.dataset_samples as f64, 1.5),
        (a.dense_params as f64, b.dense_params as f64, 1.0),
    ] {
        score += ratio_sim(x, y) * w;
        weight += w;
    }
    score / weight
}

/// Algorithm 1: returns the warm-starting allocation for `job`, or `None`
/// when the history is empty.
pub fn warm_start(
    history: &[JobRecord],
    job: &JobMetadata,
    config: &WarmStartConfig,
) -> Option<ResourceAllocation> {
    if history.is_empty() || config.top_k == 0 {
        return None;
    }
    let mu = config.mu.clamp(0.01, 0.99);

    // Top-k by similarity, then rank ascending so the most similar is last.
    let mut scored: Vec<(f64, &JobRecord)> =
        history.iter().map(|r| (similarity(job, &r.metadata), r)).collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN similarity"));
    scored.truncate(config.top_k);
    scored.reverse(); // ascending similarity: A⁰ least similar … Aᵏ⁻¹ most

    // Exponential smoothing over the allocation fields.
    let fields = |a: &ResourceAllocation| -> [f64; 6] {
        [
            f64::from(a.shape.workers),
            f64::from(a.shape.ps),
            a.shape.worker_cpu,
            a.shape.ps_cpu,
            a.worker_mem_gb,
            a.ps_mem_gb,
        ]
    };
    let mut smoothed = fields(&scored[0].1.final_allocation);
    for (_, record) in &scored[1..] {
        let cur = fields(&record.final_allocation);
        for (s, c) in smoothed.iter_mut().zip(cur) {
            *s = mu * c + (1.0 - mu) * *s;
        }
    }

    let batch = scored.last().expect("nonempty").1.final_allocation.shape.batch_size;
    let shape = JobShape::new(
        smoothed[0].round().max(1.0) as u32,
        smoothed[1].round().max(1.0) as u32,
        smoothed[2],
        smoothed[3],
        batch,
    );
    Some(ResourceAllocation::new(shape, smoothed[4], smoothed[5]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(kind: &str, owner: &str, samples: u64) -> JobMetadata {
        JobMetadata {
            model_kind: kind.to_string(),
            owner: owner.to_string(),
            num_sparse_features: 26,
            embedding_dim: 16,
            dataset_samples: samples,
            dense_params: 1_000_000,
        }
    }

    fn alloc(w: u32, p: u32, cpu: f64) -> ResourceAllocation {
        ResourceAllocation::new(JobShape::new(w, p, cpu, cpu, 512), cpu * 4.0, cpu * 8.0)
    }

    fn record(kind: &str, owner: &str, samples: u64, w: u32, p: u32, cpu: f64) -> JobRecord {
        JobRecord { metadata: meta(kind, owner, samples), final_allocation: alloc(w, p, cpu) }
    }

    #[test]
    fn similarity_identity_is_one() {
        let m = meta("wide_deep", "alice", 1_000_000);
        assert!((similarity(&m, &m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_decreases_with_differences() {
        let base = meta("wide_deep", "alice", 1_000_000);
        let same_kind = meta("wide_deep", "bob", 1_000_000);
        let diff_kind = meta("dcn", "bob", 1_000_000);
        assert!(similarity(&base, &same_kind) > similarity(&base, &diff_kind));
        let diff_data = meta("wide_deep", "alice", 100_000_000);
        assert!(similarity(&base, &base) > similarity(&base, &diff_data));
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = meta("wide_deep", "alice", 1_000_000);
        let b = meta("dcn", "bob", 5_000_000);
        assert!((similarity(&a, &b) - similarity(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_history_gives_none() {
        let job = meta("wide_deep", "alice", 1_000_000);
        assert!(warm_start(&[], &job, &WarmStartConfig::default()).is_none());
    }

    #[test]
    fn identical_history_returns_that_allocation() {
        let job = meta("wide_deep", "alice", 1_000_000);
        let history = vec![record("wide_deep", "alice", 1_000_000, 8, 4, 8.0); 5];
        let a = warm_start(&history, &job, &WarmStartConfig::default()).unwrap();
        assert_eq!(a.shape.workers, 8);
        assert_eq!(a.shape.ps, 4);
        assert!((a.shape.worker_cpu - 8.0).abs() < 1e-9);
    }

    #[test]
    fn most_similar_job_dominates_the_blend() {
        let job = meta("wide_deep", "alice", 1_000_000);
        let history = vec![
            // Exact match with a big allocation.
            record("wide_deep", "alice", 1_000_000, 16, 8, 16.0),
            // Distant matches with tiny allocations.
            record("dcn", "bob", 64_000_000, 2, 1, 2.0),
            record("xdeepfm", "carol", 32_000_000, 2, 1, 2.0),
        ];
        let a = warm_start(&history, &job, &WarmStartConfig { top_k: 3, mu: 0.5 })
            .expect("history nonempty");
        // With μ=0.5 the most similar contributes 50 %, so workers should be
        // pulled well above the distant jobs' 2.
        assert!(a.shape.workers >= 9, "workers = {}", a.shape.workers);
    }

    #[test]
    fn top_k_limits_the_blend() {
        let job = meta("wide_deep", "alice", 1_000_000);
        let mut history = vec![record("wide_deep", "alice", 1_000_000, 10, 5, 10.0)];
        // Lots of noise records that must be excluded with k=1.
        for i in 0..20 {
            history.push(record("dcn", "zed", 9_000_000 + i, 1, 1, 1.0));
        }
        let a = warm_start(&history, &job, &WarmStartConfig { top_k: 1, mu: 0.5 }).unwrap();
        assert_eq!(a.shape.workers, 10);
        assert_eq!(a.shape.ps, 5);
    }

    #[test]
    fn k_larger_than_history_is_fine() {
        let job = meta("wide_deep", "alice", 1_000_000);
        let history = vec![record("wide_deep", "alice", 1_000_000, 4, 2, 4.0)];
        let a = warm_start(&history, &job, &WarmStartConfig { top_k: 10, mu: 0.3 }).unwrap();
        assert_eq!(a.shape.workers, 4);
    }

    #[test]
    fn zero_k_gives_none() {
        let job = meta("wide_deep", "alice", 1_000_000);
        let history = vec![record("wide_deep", "alice", 1_000_000, 4, 2, 4.0)];
        assert!(warm_start(&history, &job, &WarmStartConfig { top_k: 0, mu: 0.5 }).is_none());
    }

    #[test]
    fn smoothing_matches_hand_computation() {
        // Two records; similarity orders r1 (exact) above r2.
        let job = meta("wide_deep", "alice", 1_000_000);
        let r_far = record("dcn", "bob", 2_000_000, 2, 2, 2.0);
        let r_near = record("wide_deep", "alice", 1_000_000, 10, 4, 8.0);
        let mu = 0.7;
        let a =
            warm_start(&[r_far.clone(), r_near.clone()], &job, &WarmStartConfig { top_k: 2, mu })
                .unwrap();
        // Ā = μ·A_near + (1−μ)·A_far.
        let expect_workers = (mu * 10.0 + (1.0 - mu) * 2.0_f64).round() as u32;
        assert_eq!(a.shape.workers, expect_workers);
        let expect_cpu = mu * 8.0 + (1.0 - mu) * 2.0;
        assert!((a.shape.worker_cpu - expect_cpu).abs() < 1e-9);
    }

    #[test]
    fn result_is_at_least_minimal() {
        // Even absurd histories produce a runnable (≥1 worker/PS) plan.
        let job = meta("wide_deep", "alice", 1);
        let history = vec![record("dcn", "zed", u64::MAX, 1, 1, 0.1)];
        let a = warm_start(&history, &job, &WarmStartConfig::default()).unwrap();
        assert!(a.shape.workers >= 1);
        assert!(a.shape.ps >= 1);
        assert!(a.shape.worker_cpu > 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_record() -> impl Strategy<Value = JobRecord> {
        (
            prop_oneof!["wide_deep", "dcn", "xdeepfm"],
            prop_oneof!["alice", "bob", "carol"],
            1u64..1_000_000_000,
            1u32..64,
            1u32..32,
            0.5f64..32.0,
        )
            .prop_map(|(kind, owner, samples, w, p, cpu)| JobRecord {
                metadata: JobMetadata {
                    model_kind: kind.to_string(),
                    owner: owner.to_string(),
                    num_sparse_features: 26,
                    embedding_dim: 16,
                    dataset_samples: samples,
                    dense_params: 1_000_000,
                },
                final_allocation: ResourceAllocation::new(
                    dlrover_perfmodel::JobShape::new(w, p, cpu, cpu, 512),
                    cpu * 4.0,
                    cpu * 8.0,
                ),
            })
    }

    proptest! {
        /// Exponential smoothing is a convex combination: every field of the
        /// warm-start allocation lies within the [min, max] hull of the
        /// history's fields (±0.5 for rounded integer fields).
        #[test]
        fn warm_start_stays_in_history_hull(
            history in proptest::collection::vec(arbitrary_record(), 1..12),
            k in 1usize..8,
            mu in 0.05f64..0.95,
        ) {
            let job = JobMetadata {
                model_kind: "dcn".into(),
                owner: "alice".into(),
                num_sparse_features: 26,
                embedding_dim: 16,
                dataset_samples: 5_000_000,
                dense_params: 1_000_000,
            };
            let a = warm_start(&history, &job, &WarmStartConfig { top_k: k, mu })
                .expect("nonempty history");
            let hull = |f: &dyn Fn(&JobRecord) -> f64| -> (f64, f64) {
                let vals: Vec<f64> = history.iter().map(f).collect();
                (
                    vals.iter().cloned().fold(f64::INFINITY, f64::min),
                    vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                )
            };
            let (wmin, wmax) = hull(&|r| f64::from(r.final_allocation.shape.workers));
            prop_assert!(f64::from(a.shape.workers) >= wmin - 0.5);
            prop_assert!(f64::from(a.shape.workers) <= wmax + 0.5);
            let (pmin, pmax) = hull(&|r| f64::from(r.final_allocation.shape.ps));
            prop_assert!(f64::from(a.shape.ps) >= pmin - 0.5);
            prop_assert!(f64::from(a.shape.ps) <= pmax + 0.5);
            let (cmin, cmax) = hull(&|r| r.final_allocation.shape.worker_cpu);
            prop_assert!(a.shape.worker_cpu >= cmin - 1e-9);
            prop_assert!(a.shape.worker_cpu <= cmax + 1e-9);
        }

        /// Similarity is bounded in [0, 1] and symmetric.
        #[test]
        fn similarity_bounded_and_symmetric(
            a in arbitrary_record(),
            b in arbitrary_record(),
        ) {
            let s = similarity(&a.metadata, &b.metadata);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - similarity(&b.metadata, &a.metadata)).abs() < 1e-12);
        }
    }
}
