//! The cluster brain: admission (warm-start) + cluster-level replanning.
//!
//! Per-job intelligence lives in [`crate::DlroverPolicy`]; this type owns
//! what must be *global*: the config DB and the weighted-greedy arbitration
//! of the cluster's free capacity across jobs (Eqns. 11–14). The paper's
//! workflow: profilers report to the brain's optimizer, the optimizer
//! generates candidate plans per job, and the greedy selection picks the
//! cluster-wide execution plans.

use dlrover_optimizer::{
    select_plans, ClusterCapacity, GreedyConfig, JobCandidates, JobMetadata, NsgaPlanGenerator,
    ResourceAllocation, ScalingAlgorithm, SelectedPlan, WarmStartConfig,
};
use dlrover_perfmodel::ThroughputModel;
use dlrover_sim::{RngStreams, SimTime, StreamRng};
use dlrover_telemetry::{EventKind, SpanCategory, Telemetry};

use crate::configdb::ConfigDb;
use crate::policy::DlroverPolicy;

/// Per-job input to a cluster-level replanning round.
#[derive(Debug, Clone)]
pub struct ReplanInput {
    /// Job identifier.
    pub job_id: u64,
    /// Current allocation.
    pub current: ResourceAllocation,
    /// Remaining samples (`Φ_sp` for the priority weight).
    pub remaining_samples: u64,
    /// The job's fitted resource–performance model.
    pub model: ThroughputModel,
    /// The job's master reported degraded mode (failure budget drained or
    /// scale-out repeatedly denied). Degraded jobs are held at their live
    /// shape: handing them more resources they cannot reliably hold would
    /// starve healthy jobs (§5.3's stability goal).
    pub degraded: bool,
}

/// The cluster brain.
pub struct ClusterBrain {
    config_db: ConfigDb,
    warm_start: WarmStartConfig,
    greedy: GreedyConfig,
    generator: NsgaPlanGenerator,
    rng: StreamRng,
    telemetry: Telemetry,
    /// Last time a caller reported via [`ClusterBrain::set_clock`]; stamps
    /// admission/replan events (the brain itself is clock-free).
    clock: SimTime,
}

impl ClusterBrain {
    /// Creates a brain with the given plan generator and greedy settings.
    pub fn new(
        config_db: ConfigDb,
        warm_start: WarmStartConfig,
        greedy: GreedyConfig,
        generator: NsgaPlanGenerator,
        seed: u64,
    ) -> Self {
        ClusterBrain {
            config_db,
            warm_start,
            greedy,
            generator,
            rng: RngStreams::new(seed).stream("cluster-brain"),
            telemetry: Telemetry::default(),
            clock: SimTime::ZERO,
        }
    }

    /// Read access to the config DB.
    pub fn config_db(&self) -> &ConfigDb {
        &self.config_db
    }

    /// Routes this brain's events and metrics into a shared sink.
    pub fn set_telemetry(&mut self, sink: Telemetry) {
        self.telemetry = sink;
    }

    /// The telemetry sink decisions are recorded to.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Updates the virtual time used to stamp subsequent decisions.
    pub fn set_clock(&mut self, now: SimTime) {
        self.clock = now;
    }

    /// Stage 1: admission — warm-start from history, falling back to the
    /// conservative cold-start allocation.
    pub fn admit(&self, metadata: &JobMetadata, batch: u32) -> ResourceAllocation {
        let warm = self.config_db.warm_start(metadata, &self.warm_start);
        let warm_start = warm.is_some();
        let alloc = warm
            .unwrap_or_else(|| DlroverPolicy::cold_start_allocation(&self.generator.space, batch));
        // Admission happens before a job id exists; `job: 0` marks that.
        self.telemetry.record(
            self.clock,
            EventKind::JobAdmitted {
                job: 0,
                workers: alloc.shape.workers,
                ps: alloc.shape.ps,
                warm_start,
            },
        );
        self.telemetry.count(if warm_start { "brain.warm_starts" } else { "brain.cold_starts" }, 1);
        // Admission is an instantaneous verdict in virtual time; record it
        // as a zero-length `policy-eval` span on the brain's lane (track 0).
        self.telemetry.span_complete(
            self.clock,
            self.clock,
            SpanCategory::PolicyEval,
            "admit",
            0,
            None,
        );
        alloc
    }

    /// Records a completed job so future submissions warm-start from it.
    pub fn record_completion(&mut self, metadata: JobMetadata, final_alloc: ResourceAllocation) {
        self.config_db.record(metadata, final_alloc);
    }

    /// Cluster-level replanning: generates NSGA-II candidates per job and
    /// arbitrates them with weighted greedy under the free capacity.
    pub fn replan(&mut self, jobs: &[ReplanInput], free: ClusterCapacity) -> Vec<SelectedPlan> {
        let held = jobs.iter().filter(|j| j.degraded).count() as u64;
        if held > 0 {
            self.telemetry.count("brain.degraded_jobs_held", held);
        }
        let candidates: Vec<JobCandidates> = jobs
            .iter()
            .filter(|j| !j.degraded)
            .map(|j| JobCandidates {
                job_id: j.job_id,
                current_cpu: j.current.total_cpu(),
                current_mem_gb: j.current.total_mem_gb(),
                remaining_samples: j.remaining_samples as f64,
                candidates: self.generator.candidates(&j.model, &j.current, &mut self.rng),
            })
            .collect();
        let picks = select_plans(&candidates, free, &self.greedy);
        for p in &picks {
            self.telemetry.record(
                self.clock,
                EventKind::PlanSelected {
                    job: p.job_id,
                    gain_x1000: (p.plan.throughput_gain.max(0.0) * 1000.0) as u64,
                },
            );
        }
        self.telemetry.count("brain.replan_rounds", 1);
        self.telemetry.span_complete(
            self.clock,
            self.clock,
            SpanCategory::Planning,
            &format!("replan j{}", jobs.len()),
            0,
            None,
        );
        picks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_perfmodel::{JobShape, ModelCoefficients, WorkloadConstants};

    fn brain() -> ClusterBrain {
        ClusterBrain::new(
            ConfigDb::new(100),
            WarmStartConfig::default(),
            GreedyConfig::default(),
            NsgaPlanGenerator::default(),
            7,
        )
    }

    fn meta(owner: &str) -> JobMetadata {
        JobMetadata {
            model_kind: "dcn".into(),
            owner: owner.into(),
            num_sparse_features: 26,
            embedding_dim: 16,
            dataset_samples: 1_000_000,
            dense_params: 500_000,
        }
    }

    fn small_alloc() -> ResourceAllocation {
        ResourceAllocation::new(JobShape::new(1, 1, 1.0, 1.0, 512), 4.0, 8.0)
    }

    fn truth_model() -> ThroughputModel {
        ThroughputModel::new(WorkloadConstants::default(), ModelCoefficients::paper_reference())
    }

    #[test]
    fn admit_cold_starts_without_history() {
        let b = brain();
        let a = b.admit(&meta("alice"), 512);
        assert!(a.shape.workers >= 1);
        assert!(a.shape.ps >= 1);
    }

    #[test]
    fn admit_warm_starts_with_history() {
        let mut b = brain();
        let big = ResourceAllocation::new(JobShape::new(20, 8, 16.0, 16.0, 512), 64.0, 128.0);
        for _ in 0..5 {
            b.record_completion(meta("alice"), big);
        }
        let a = b.admit(&meta("alice"), 512);
        assert_eq!(a.shape.workers, 20, "history should dominate");
    }

    #[test]
    fn replan_respects_capacity_and_picks_short_jobs_first() {
        let mut b = brain();
        let jobs = vec![
            ReplanInput {
                job_id: 1,
                current: small_alloc(),
                remaining_samples: 10_000, // short job: high WG priority
                model: truth_model(),
                degraded: false,
            },
            ReplanInput {
                job_id: 2,
                current: small_alloc(),
                remaining_samples: 10_000_000_000,
                model: truth_model(),
                degraded: false,
            },
        ];
        // Tight capacity: roughly one upgrade's worth.
        let picks = b.replan(&jobs, ClusterCapacity { cpu_cores: 40.0, mem_gb: 400.0 });
        assert!(!picks.is_empty());
        // Additional footprint must fit the budget.
        let extra: f64 =
            picks.iter().map(|p| p.plan.allocation.total_cpu() - small_alloc().total_cpu()).sum();
        assert!(extra <= 40.0 + 1e-6, "over budget: {extra}");
        // The short job must be served (possibly both fit; then check order).
        assert!(picks.iter().any(|p| p.job_id == 1), "short job starved");
    }

    #[test]
    fn replan_with_ample_capacity_serves_everyone() {
        let mut b = brain();
        let jobs: Vec<ReplanInput> = (0..4)
            .map(|i| ReplanInput {
                job_id: i,
                current: small_alloc(),
                remaining_samples: 1_000_000,
                model: truth_model(),
                degraded: false,
            })
            .collect();
        let picks = b.replan(&jobs, ClusterCapacity { cpu_cores: 1e6, mem_gb: 1e6 });
        assert_eq!(picks.len(), 4);
        for p in &picks {
            assert!(p.plan.throughput_gain > 0.0);
        }
    }

    #[test]
    fn degraded_jobs_are_held_at_their_live_shape() {
        let mut b = brain();
        let jobs = vec![
            ReplanInput {
                job_id: 1,
                current: small_alloc(),
                remaining_samples: 10_000,
                model: truth_model(),
                degraded: true,
            },
            ReplanInput {
                job_id: 2,
                current: small_alloc(),
                remaining_samples: 10_000,
                model: truth_model(),
                degraded: false,
            },
        ];
        let picks = b.replan(&jobs, ClusterCapacity { cpu_cores: 1e6, mem_gb: 1e6 });
        assert!(picks.iter().all(|p| p.job_id != 1), "degraded job must not be upgraded");
        assert!(picks.iter().any(|p| p.job_id == 2), "healthy job still served");
        let snap = b.telemetry().snapshot();
        assert_eq!(snap.metrics.counter("brain.degraded_jobs_held"), 1);
    }

    #[test]
    fn replan_empty_is_empty() {
        let mut b = brain();
        assert!(b.replan(&[], ClusterCapacity { cpu_cores: 10.0, mem_gb: 10.0 }).is_empty());
    }
}
