//! The DLRover-RM per-job policy: the three-stage algorithm (§4.3).
//!
//! * **Stage 1 — pre-scaling**: the caller seeds the policy with a
//!   warm-start allocation from the config DB (Algorithm 1), so the job
//!   begins near its final configuration instead of from scratch.
//! * **Stage 2 — auto-scaling**: the policy accumulates profiler
//!   observations; while the resource–performance model is under-determined
//!   (fewer distinct shapes than coefficients) it makes small *exploration*
//!   moves, then fits the model with NNLS and generates Pareto plan
//!   candidates with NSGA-II, adopting the most resource-efficient plan
//!   whose predicted gain clears a threshold.
//! * **Stage 3 — post-scaling**: every transition uses *seamless migration*
//!   (the job master charges only the flash-checkpoint handoff), and
//!   OOM prevention / straggler pacing run inside the job master.

use dlrover_master::{JobRuntimeProfile, PolicyDecision, ReconfigRequest, SchedulerPolicy};
use dlrover_optimizer::{
    NsgaPlanGenerator, PlanSearchSpace, PriceTable, ReconfigSpace, ResourceAllocation,
    ScalingAlgorithm, ScalingOverheadModel,
};
use dlrover_perfmodel::ExecPlan;
use dlrover_perfmodel::{JobShape, ThroughputObservation, WorkloadConstants};
use dlrover_pstrain::MigrationStrategy;
use dlrover_sim::{RngStreams, StreamRng};
use serde::{Deserialize, Serialize};

/// Tunables for the DLRover-RM policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DlroverPolicyConfig {
    /// Allocation search space.
    pub space: PlanSearchSpace,
    /// Unit prices for `RC`.
    pub prices: PriceTable,
    /// Overhead model for `TG` (seamless).
    pub overhead: ScalingOverheadModel,
    /// Workload constants assumed for fitting.
    pub constants: WorkloadConstants,
    /// Distinct shapes required before trusting the fit (≥ number of
    /// model coefficients).
    pub min_distinct_shapes: usize,
    /// Minimum relative throughput gain to act on a plan (hysteresis).
    pub improvement_threshold: f64,
    /// Experiment seed for the NSGA-II RNG.
    pub seed: u64,
    /// Optional reconfiguration action space (Rubick-style execution-plan
    /// search). `None` (the default) keeps the policy byte-identical to the
    /// resource-only search: the NSGA genome stays at 4 genes, no
    /// [`ReconfigRequest`] is ever attached, and degraded-job gating is
    /// inert. `Some` widens stage 2b to joint (allocation, execution-plan)
    /// candidates.
    pub reconfig: Option<ReconfigSpace>,
}

impl DlroverPolicyConfig {
    /// Sets the overhead model's worker-startup expectation from the
    /// cluster's startup-latency model at the given utilisation, keeping
    /// the TG estimate (Eqn. 8) honest about how long new pods really take
    /// in the current environment.
    pub fn with_expected_startup(mut self, startup_seconds: f64) -> Self {
        self.overhead.worker_startup_s = startup_seconds.max(0.0);
        self
    }
}

impl Default for DlroverPolicyConfig {
    fn default() -> Self {
        DlroverPolicyConfig {
            space: PlanSearchSpace::default(),
            prices: PriceTable::default(),
            overhead: ScalingOverheadModel::default(),
            constants: WorkloadConstants::default(),
            min_distinct_shapes: 5,
            improvement_threshold: 0.05,
            seed: 0,
            reconfig: None,
        }
    }
}

/// The DLRover-RM scheduler policy.
pub struct DlroverPolicy {
    config: DlroverPolicyConfig,
    current: ResourceAllocation,
    observations: Vec<ThroughputObservation>,
    rng: StreamRng,
    explore_step: usize,
    generator: NsgaPlanGenerator,
}

impl DlroverPolicy {
    /// Creates the policy starting from `warm_start` (stage 1 output).
    pub fn new(warm_start: ResourceAllocation, config: DlroverPolicyConfig) -> Self {
        let rng = RngStreams::new(config.seed).stream("dlrover-policy");
        let generator = NsgaPlanGenerator {
            space: config.space,
            prices: config.prices,
            overhead: config.overhead,
            reconfig: config.reconfig,
            ..NsgaPlanGenerator::default()
        };
        DlroverPolicy {
            config,
            current: warm_start,
            observations: Vec::new(),
            rng,
            explore_step: 0,
            generator,
        }
    }

    /// Seeds the policy with historical profiling observations.
    ///
    /// The config DB stores "similarity information (e.g., time series
    /// information)" alongside configurations; a warm-started job therefore
    /// begins with an already-identifiable resource–performance model and
    /// can skip the exploration phase entirely — this is why warm-started
    /// jobs reach their final configuration with so few scalings (Fig. 9).
    pub fn with_history(mut self, observations: Vec<ThroughputObservation>) -> Self {
        self.observations.extend(observations);
        self
    }

    /// A conservative default start when no history exists (cold start).
    pub fn cold_start_allocation(space: &PlanSearchSpace, batch: u32) -> ResourceAllocation {
        let shape = JobShape::new(
            space.workers.0.max(2),
            space.ps.0.max(1),
            (space.worker_cpu.0 * 2.0).min(space.worker_cpu.1),
            (space.ps_cpu.0 * 2.0).min(space.ps_cpu.1),
            batch,
        );
        ResourceAllocation::new(
            shape,
            shape.worker_cpu * space.worker_mem_per_cpu,
            shape.ps_cpu * space.ps_mem_per_cpu,
        )
    }

    fn distinct_shapes(&self) -> usize {
        dlrover_perfmodel::distinct_shape_count(&self.observations)
    }

    /// Exploration move: perturb one dimension at a time to make the NNLS
    /// system identifiable. Moves are *multiplicative* (doubling workers,
    /// 1.5× CPU) so the exploration phase itself already climbs toward a
    /// sane shape — this is what gives DLRover-RM its fast ramp in the
    /// cold-start experiment (Fig. 10). Cycles workers → PS CPU → worker
    /// CPU → PS count.
    fn explore(&mut self) -> ResourceAllocation {
        let space = &self.config.space;
        let mut next = self.current;
        match self.explore_step % 4 {
            0 => {
                next.shape.workers = (next.shape.workers * 2).min(space.workers.1);
            }
            1 => {
                next.shape.ps_cpu = (next.shape.ps_cpu * 1.5).min(space.ps_cpu.1);
                next.ps_mem_gb = next.shape.ps_cpu * space.ps_mem_per_cpu;
            }
            2 => {
                next.shape.worker_cpu = (next.shape.worker_cpu * 1.5).min(space.worker_cpu.1);
                next.worker_mem_gb = next.shape.worker_cpu * space.worker_mem_per_cpu;
            }
            _ => {
                next.shape.ps = (next.shape.ps * 2).min(space.ps.1);
            }
        }
        self.explore_step += 1;
        next
    }
}

impl SchedulerPolicy for DlroverPolicy {
    fn name(&self) -> &str {
        "dlrover-rm"
    }

    fn initial_allocation(&mut self) -> ResourceAllocation {
        self.current
    }

    fn adjust(&mut self, profile: &JobRuntimeProfile) -> Option<PolicyDecision> {
        if let Some(obs) = profile.observation {
            self.observations.push(obs);
        }

        // Reconfiguration gate: a degraded job (lost pods, live fallback
        // shape, OOM recovery) holds both its shape and its execution plan
        // until the job master reports it healthy again — reconfiguring
        // mid-recovery would stack a second migration pause on top of the
        // fault handling (§4.4). Gated on the flag so the resource-only
        // policy keeps its pre-reconfiguration behaviour bit-for-bit.
        if self.config.reconfig.is_some() && profile.degraded {
            return None;
        }

        // Stage 2a: online model fitting needs shape diversity.
        if self.distinct_shapes() < self.config.min_distinct_shapes {
            let next = self.explore();
            if next != self.current {
                self.current = next;
                return Some(PolicyDecision {
                    allocation: next,
                    strategy: MigrationStrategy::Seamless,
                    reconfig: None,
                });
            }
            // Every exploration arm is clamped at the search-space bounds:
            // fall through and fit with whatever shapes exist (the NNLS
            // ridge keeps an under-determined system solvable) instead of
            // idling forever.
        }

        // Stage 2b: fit + NSGA-II candidates.
        let (model, _rmsle) =
            dlrover_perfmodel::ThroughputModel::fit(self.config.constants, &self.observations)
                .ok()?;
        // `plan_throughput` is a bit-exact identity for the default plan, so
        // this is the legacy `model.throughput` whenever reconfiguration is
        // off (or has not fired yet).
        let current_exec = profile.exec;
        let current_thp =
            dlrover_optimizer::plan_throughput(&model, &self.current.shape, &current_exec);
        let candidates = self.generator.candidates(&model, &self.current, &mut self.rng);
        // Rank by the paper's benefit RE(A)·WG(A) (Eqns. 11–14): resource
        // efficiency weighted by the completion-time priority, which pushes
        // jobs with lots of remaining work toward higher-throughput plans.
        let greedy_cfg = dlrover_optimizer::GreedyConfig::default();
        let benefit = |c: &dlrover_optimizer::PlanCandidate| {
            c.resource_efficiency()
                * dlrover_optimizer::greedy::priority_weight(
                    profile.remaining_samples as f64,
                    c.predicted_throughput,
                    &greedy_cfg,
                )
        };
        let best = candidates
            .into_iter()
            .max_by(|a, b| benefit(a).partial_cmp(&benefit(b)).expect("NaN benefit"));

        // Growth: act on meaningful throughput gains (max TG side of Eqn 9).
        if let Some(mut best) = best {
            // The generator prices candidates against the *default* plan;
            // once a previous reconfiguration has fired, re-score the winner
            // against the plan the job actually runs so the hysteresis gate
            // compares like with like.
            if self.config.reconfig.is_some() && current_exec != ExecPlan::default() {
                best = self.generator.score_with_plan(
                    &model,
                    &self.current,
                    &current_exec,
                    best.allocation,
                    best.exec,
                );
            }
            if best.throughput_gain >= self.config.improvement_threshold * current_thp {
                self.current = best.allocation;
                // Ask for a relayout when the replica factor changes: the
                // embedding shards must be re-spread across the new
                // replication layout anyway, so the LPT pass rides the same
                // window for free.
                let reconfig = match self.config.reconfig {
                    Some(space) if best.exec != current_exec => Some(ReconfigRequest {
                        target: best.exec,
                        relayout: space.allow_relayout
                            && best.exec.ps_replicas != current_exec.ps_replicas,
                    }),
                    _ => None,
                };
                return Some(PolicyDecision {
                    allocation: best.allocation,
                    strategy: MigrationStrategy::Seamless,
                    reconfig,
                });
            }
        }

        // Rightsizing: no gain available — minimise RC at (almost) constant
        // throughput (the min-RC side of Eqn 9). This is what lifts fleet
        // utilisation for over-provisioned jobs (Fig. 14).
        let lean = dlrover_optimizer::rightsize_search(
            &model,
            &self.config.space,
            &self.config.prices,
            self.current.shape.batch_size,
            current_thp * 0.97,
        )?;
        let current_cost = self.config.prices.resource_cost(&self.current);
        if self.config.prices.resource_cost(&lean) < current_cost * 0.9 {
            self.current = lean;
            return Some(PolicyDecision {
                allocation: lean,
                strategy: MigrationStrategy::Seamless,
                reconfig: None,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_perfmodel::{ModelCoefficients, ThroughputModel};
    use dlrover_sim::SimTime;

    fn truth() -> ThroughputModel {
        ThroughputModel::new(WorkloadConstants::default(), ModelCoefficients::paper_reference())
    }

    fn profile_for(alloc: &ResourceAllocation, remaining: u64) -> JobRuntimeProfile {
        let m = truth();
        JobRuntimeProfile {
            job_id: 1,
            at: SimTime::ZERO,
            throughput: m.throughput(&alloc.shape),
            remaining_samples: remaining,
            observation: Some(ThroughputObservation {
                shape: alloc.shape,
                iter_time: m.iter_time(&alloc.shape),
            }),
            ps_memory_used: 1,
            ps_memory_alloc: 1_000_000_000,
            exec: dlrover_perfmodel::ExecPlan::default(),
            degraded: false,
        }
    }

    fn start_alloc() -> ResourceAllocation {
        ResourceAllocation::new(JobShape::new(2, 1, 2.0, 2.0, 512), 8.0, 16.0)
    }

    #[test]
    fn explores_until_identifiable_then_optimizes() {
        let mut p = DlroverPolicy::new(start_alloc(), DlroverPolicyConfig::default());
        let mut alloc = p.initial_allocation();
        let mut decisions = 0;
        let mut explored_shapes = vec![alloc.shape];
        // Feed truthful profiles; the policy should explore, fit, then
        // jump to a much better configuration.
        for _ in 0..12 {
            let prof = profile_for(&alloc, 100_000_000);
            if let Some(d) = p.adjust(&prof) {
                decisions += 1;
                alloc = d.allocation;
                explored_shapes.push(alloc.shape);
                assert_eq!(d.strategy, MigrationStrategy::Seamless);
            }
        }
        assert!(decisions >= 5, "policy never moved");
        let m = truth();
        let final_thp = m.throughput(&alloc.shape);
        let start_thp = m.throughput(&start_alloc().shape);
        assert!(
            final_thp > 3.0 * start_thp,
            "no meaningful improvement: {start_thp} -> {final_thp}"
        );
    }

    #[test]
    fn converges_and_stops_churning() {
        let mut p = DlroverPolicy::new(start_alloc(), DlroverPolicyConfig::default());
        let mut alloc = p.initial_allocation();
        for _ in 0..20 {
            let prof = profile_for(&alloc, 100_000_000);
            if let Some(d) = p.adjust(&prof) {
                alloc = d.allocation;
            }
        }
        // After convergence, further truthful profiles produce no moves.
        let mut extra_moves = 0;
        for _ in 0..5 {
            let prof = profile_for(&alloc, 100_000_000);
            if p.adjust(&prof).is_some() {
                extra_moves += 1;
            }
        }
        assert!(extra_moves <= 1, "policy keeps churning: {extra_moves} late moves");
    }

    #[test]
    fn exploration_respects_search_space() {
        let cfg = DlroverPolicyConfig {
            space: PlanSearchSpace {
                workers: (1, 3),
                ps: (1, 2),
                worker_cpu: (1.0, 4.0),
                ps_cpu: (1.0, 4.0),
                worker_mem_per_cpu: 4.0,
                ps_mem_per_cpu: 8.0,
            },
            ..Default::default()
        };
        let mut p = DlroverPolicy::new(start_alloc(), cfg.clone());
        let mut alloc = p.initial_allocation();
        for _ in 0..16 {
            let prof = profile_for(&alloc, 1_000_000);
            if let Some(d) = p.adjust(&prof) {
                alloc = d.allocation;
                assert!(alloc.shape.workers <= cfg.space.workers.1);
                assert!(alloc.shape.ps <= cfg.space.ps.1);
                assert!(alloc.shape.worker_cpu <= cfg.space.worker_cpu.1 + 1e-9);
                assert!(alloc.shape.ps_cpu <= cfg.space.ps_cpu.1 + 1e-9);
            }
        }
    }

    #[test]
    fn cold_start_is_modest() {
        let space = PlanSearchSpace::default();
        let a = DlroverPolicy::cold_start_allocation(&space, 512);
        assert!(a.shape.workers <= 4);
        assert!(a.total_cpu() < 64.0);
    }

    #[test]
    fn name_is_stable() {
        let p = DlroverPolicy::new(start_alloc(), DlroverPolicyConfig::default());
        assert_eq!(p.name(), "dlrover-rm");
    }

    /// Truthful observations at enough distinct shapes to make the NNLS
    /// system identifiable without an exploration phase.
    fn history() -> Vec<ThroughputObservation> {
        let m = truth();
        [
            JobShape::new(4, 2, 4.0, 4.0, 64),
            JobShape::new(8, 2, 8.0, 4.0, 64),
            JobShape::new(16, 1, 8.0, 0.25, 64),
            JobShape::new(8, 4, 8.0, 8.0, 64),
            JobShape::new(2, 1, 2.0, 2.0, 64),
            JobShape::new(12, 3, 6.0, 2.0, 64),
        ]
        .iter()
        .map(|s| ThroughputObservation { shape: *s, iter_time: m.iter_time(s) })
        .collect()
    }

    /// A PS-squeezed job in a space pinned to its current resources: the
    /// only improvement the widened search can offer is an execution-plan
    /// change, so the decision must carry a [`ReconfigRequest`].
    fn squeezed_config() -> (ResourceAllocation, DlroverPolicyConfig) {
        let alloc = ResourceAllocation::new(JobShape::new(16, 1, 8.0, 0.25, 64), 32.0, 4.0);
        let cfg = DlroverPolicyConfig {
            space: PlanSearchSpace {
                workers: (16, 16),
                ps: (1, 1),
                worker_cpu: (8.0, 8.0),
                ps_cpu: (0.25, 0.25),
                worker_mem_per_cpu: 4.0,
                ps_mem_per_cpu: 16.0,
            },
            reconfig: Some(ReconfigSpace::default()),
            ..Default::default()
        };
        (alloc, cfg)
    }

    #[test]
    fn reconfig_fires_under_ps_contention() {
        let (alloc, cfg) = squeezed_config();
        let mut p = DlroverPolicy::new(alloc, cfg).with_history(history());
        let d = p.adjust(&profile_for(&alloc, 100_000_000)).expect("policy should act");
        assert_eq!(d.allocation, alloc, "the pinned space forbids resource moves");
        let req = d.reconfig.expect("only an execution-plan change can clear the gate");
        assert!(req.target != ExecPlan::default(), "target plan must differ from default");
        assert_eq!(d.strategy, MigrationStrategy::Seamless);
    }

    #[test]
    fn degraded_jobs_hold_their_shape() {
        let (alloc, cfg) = squeezed_config();
        let mut p = DlroverPolicy::new(alloc, cfg).with_history(history());
        let mut prof = profile_for(&alloc, 100_000_000);
        prof.degraded = true;
        assert!(p.adjust(&prof).is_none(), "degraded jobs must not be reconfigured");
        // Once the master reports the job healthy again, the plan search
        // resumes.
        prof.degraded = false;
        assert!(p.adjust(&prof).is_some());
    }

    #[test]
    fn flag_off_never_attaches_reconfig() {
        let mut p = DlroverPolicy::new(start_alloc(), DlroverPolicyConfig::default());
        let mut alloc = p.initial_allocation();
        for _ in 0..12 {
            if let Some(d) = p.adjust(&profile_for(&alloc, 100_000_000)) {
                assert!(d.reconfig.is_none(), "reconfig must stay off by default");
                alloc = d.allocation;
            }
        }
    }
}
