//! The config DB: historical job traces for warm-starting.
//!
//! "The config DB stores the information as the historical job traces";
//! when a job is submitted, "the cluster brain quickly learns the job's
//! characteristics — by leveraging relevant historical data from the config
//! DB — and then generates an initialization (warm-starting) resource plan."

use dlrover_optimizer::{warm_start, JobMetadata, JobRecord, ResourceAllocation, WarmStartConfig};
use serde::{Deserialize, Serialize};

/// The historical-trace store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigDb {
    records: Vec<JobRecord>,
    /// Cap on retained records (oldest evicted first).
    capacity: usize,
}

impl ConfigDb {
    /// Creates a DB retaining up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        ConfigDb { records: Vec::new(), capacity: capacity.max(1) }
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no history exists.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records a finished job's metadata and final (converged) allocation.
    pub fn record(&mut self, metadata: JobMetadata, final_allocation: ResourceAllocation) {
        self.records.push(JobRecord { metadata, final_allocation });
        if self.records.len() > self.capacity {
            let excess = self.records.len() - self.capacity;
            self.records.drain(..excess);
        }
    }

    /// All records (read-only).
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Algorithm 1: warm-start allocation for a new job, or `None` when the
    /// DB is empty.
    pub fn warm_start(
        &self,
        job: &JobMetadata,
        config: &WarmStartConfig,
    ) -> Option<ResourceAllocation> {
        warm_start(&self.records, job, config)
    }

    /// Serialises the DB to JSON (the production system persists traces).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ConfigDb is always serialisable")
    }

    /// Restores a DB from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_perfmodel::JobShape;

    fn meta(kind: &str, owner: &str) -> JobMetadata {
        JobMetadata {
            model_kind: kind.into(),
            owner: owner.into(),
            num_sparse_features: 26,
            embedding_dim: 16,
            dataset_samples: 1_000_000,
            dense_params: 500_000,
        }
    }

    fn alloc(w: u32) -> ResourceAllocation {
        ResourceAllocation::new(JobShape::new(w, w / 2 + 1, 8.0, 8.0, 512), 32.0, 64.0)
    }

    #[test]
    fn record_and_warm_start() {
        let mut db = ConfigDb::new(100);
        assert!(db.warm_start(&meta("dcn", "a"), &WarmStartConfig::default()).is_none());
        db.record(meta("dcn", "a"), alloc(8));
        let ws = db.warm_start(&meta("dcn", "a"), &WarmStartConfig::default()).unwrap();
        assert_eq!(ws.shape.workers, 8);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut db = ConfigDb::new(3);
        for w in 1..=5 {
            db.record(meta("dcn", "a"), alloc(w));
        }
        assert_eq!(db.len(), 3);
        // The oldest (w=1, 2) are gone.
        assert!(db.records().iter().all(|r| r.final_allocation.shape.workers >= 3));
    }

    #[test]
    fn json_roundtrip() {
        let mut db = ConfigDb::new(10);
        db.record(meta("wide_deep", "bob"), alloc(4));
        let json = db.to_json();
        let restored = ConfigDb::from_json(&json).unwrap();
        assert_eq!(restored, db);
    }

    #[test]
    fn warm_start_prefers_same_user_history() {
        let mut db = ConfigDb::new(100);
        db.record(meta("dcn", "alice"), alloc(16));
        for _ in 0..5 {
            db.record(meta("dcn", "zed"), alloc(2));
        }
        let ws =
            db.warm_start(&meta("dcn", "alice"), &WarmStartConfig { top_k: 1, mu: 0.5 }).unwrap();
        assert_eq!(ws.shape.workers, 16);
    }
}
