//! The cluster brain: DLRover-RM's central coordinator (Fig. 4).
//!
//! The brain owns two things:
//!
//! * the **config DB** ([`configdb`]) — historical job traces feeding the
//!   warm-starting stage (Algorithm 1);
//! * the **optimizer** — per-job it is the three-stage policy
//!   ([`policy::DlroverPolicy`]): warm-start, then online NNLS fitting +
//!   NSGA-II candidate generation + plan selection, with seamless
//!   migrations; across jobs it is the weighted-greedy selection
//!   ([`brain::ClusterBrain::replan`]), which resolves contention for the
//!   cluster's free capacity (Eqns. 11–14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brain;
pub mod configdb;
pub mod policy;

pub use brain::{ClusterBrain, ReplanInput};
pub use configdb::ConfigDb;
pub use policy::{DlroverPolicy, DlroverPolicyConfig};
