//! Master failover: reconstructing job state by replaying the event log.
//!
//! The job master is a single point of failure in the paper's architecture
//! (Fig. 4: one master pod per job). DLRover's production controller
//! survives master restarts because every state transition it cares about
//! is durable — in this reproduction the durable store *is* the
//! deterministic telemetry event log. [`ReplayedJobState::from_events`]
//! folds a log back into the three facts a restarted master needs:
//!
//! * the **sample watermark** — how much data is irrevocably trained
//!   (the sum of shard acks; in-flight shards at crash time are lost and
//!   retrain, which is exactly the engine's bounded-rollback contract, §5.1);
//! * the **checkpoint watermark** — the last flash-checkpoint step (§6.2),
//!   which must never regress except across a failure;
//! * the **live pod set** — workers added minus workers failed/removed,
//!   plus the last PS layout, so the restarted master re-adopts running
//!   pods instead of relaunching them.
//!
//! The replay is a pure fold over `&[Event]`: no clocks, no entropy, so a
//! failover inside a chaos run replays bit-identically per seed.

use std::collections::BTreeSet;

use dlrover_sim::{SimDuration, SimTime};
use dlrover_telemetry::{Event, EventKind};
use serde::{Deserialize, Serialize};

/// Which recovery path brought a job back after a master loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPath {
    /// Event-log replay through a restarted master (`master::replay`).
    MasterReplay,
    /// Witness-quorum restore from a pinned peer copy
    /// (`master::witness`), no master on the critical path.
    WitnessQuorum,
}

impl RecoveryPath {
    /// Stable label used in telemetry events and experiment reports.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryPath::MasterReplay => "master-replay",
            RecoveryPath::WitnessQuorum => "witness-quorum",
        }
    }
}

/// Outcome of one job recovery, in the units shared by `exp resilience`
/// and `exp ckptplane`: both paths report the same downtime measure
/// (crash instant → training resumed), so replay-vs-witness latency
/// comparisons are apples to apples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// Path that completed the recovery.
    pub path: RecoveryPath,
    /// Crash instant → training resumed (includes detection/restart,
    /// any checkpoint-plane restore wait, and the restore read itself).
    pub downtime: SimDuration,
    /// Samples watermark the job resumed from.
    pub samples_done: u64,
    /// Checkpoint step the job resumed from.
    pub checkpoint_step: u64,
    /// Workers re-adopted instead of relaunched.
    pub workers_readopted: u32,
}

impl RecoveryOutcome {
    /// Builds an outcome from crash/resume instants.
    pub fn new(
        path: RecoveryPath,
        crashed_at: SimTime,
        resumed_at: SimTime,
        samples_done: u64,
        checkpoint_step: u64,
        workers_readopted: u32,
    ) -> Self {
        RecoveryOutcome {
            path,
            downtime: resumed_at.saturating_since(crashed_at),
            samples_done,
            checkpoint_step,
            workers_readopted,
        }
    }
}

/// Job state recovered from an event-log replay (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayedJobState {
    /// Samples irrevocably trained: the sum of acked shard lengths. This
    /// equals the shard queue's completed-samples frontier at crash time —
    /// acks are never retracted, and failed workers' in-flight progress
    /// was never acked.
    pub samples_done: u64,
    /// Step of the newest flash checkpoint (`0` when none was written).
    pub checkpoint_step: u64,
    /// Engine indices of workers believed alive at crash time.
    pub live_workers: BTreeSet<u64>,
    /// PS count of the last applied layout (`0` when never reshaped —
    /// callers fall back to the nominal allocation).
    pub ps_count: u32,
    /// Last *committed* execution plan: the fold of `ReconfigApplied`
    /// events. Windows pending at crash time never committed, so the
    /// restarted job resumes on the plan before them — the rollback half
    /// of the reconfig-window contract.
    pub exec: dlrover_perfmodel::ExecPlan,
    /// Next reconfig-window id: one past the highest id seen (committed or
    /// rolled back), keeping window ids monotone across failover.
    pub next_window: u64,
}

impl ReplayedJobState {
    /// Folds an event log into recovered job state.
    pub fn from_events(events: &[Event]) -> Self {
        let mut state = ReplayedJobState {
            samples_done: 0,
            checkpoint_step: 0,
            live_workers: BTreeSet::new(),
            ps_count: 0,
            exec: dlrover_perfmodel::ExecPlan::default(),
            next_window: 0,
        };
        for e in events {
            match &e.kind {
                EventKind::ShardAcked { len, .. } => state.samples_done += len,
                EventKind::CheckpointSaved { step, .. }
                | EventKind::CheckpointStaged { step, .. } => {
                    state.checkpoint_step = state.checkpoint_step.max(*step);
                }
                EventKind::WorkerAdded { worker } => {
                    state.live_workers.insert(*worker);
                }
                EventKind::WorkerFailed { worker } | EventKind::WorkerRemoved { worker } => {
                    state.live_workers.remove(worker);
                }
                EventKind::PsReshaped { ps } => state.ps_count = *ps as u32,
                EventKind::ReconfigApplied { window, mode, batch, replicas, .. } => {
                    state.exec = dlrover_perfmodel::ExecPlan {
                        gradient_mode: if mode == "sync" {
                            dlrover_perfmodel::GradientMode::Sync
                        } else {
                            dlrover_perfmodel::GradientMode::Async
                        },
                        ps_replicas: (*replicas).max(1),
                        batch_size: *batch,
                    };
                    state.next_window = state.next_window.max(window + 1);
                }
                EventKind::ReconfigRolledBack { window, .. } => {
                    // A rolled-back window leaves the committed plan alone
                    // but still consumes its id.
                    state.next_window = state.next_window.max(window + 1);
                }
                _ => {}
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind) -> Event {
        Event { at_us: seq * 1_000_000, seq, kind }
    }

    #[test]
    fn replay_folds_watermarks_and_pod_set() {
        let log = vec![
            ev(0, EventKind::WorkerAdded { worker: 0 }),
            ev(1, EventKind::WorkerAdded { worker: 1 }),
            ev(2, EventKind::ShardAcked { worker: 0, len: 1000 }),
            ev(3, EventKind::CheckpointSaved { step: 4, bytes: 10 }),
            ev(4, EventKind::WorkerFailed { worker: 1 }),
            ev(5, EventKind::WorkerAdded { worker: 2 }),
            ev(6, EventKind::ShardAcked { worker: 2, len: 512 }),
            ev(7, EventKind::CheckpointSaved { step: 9, bytes: 10 }),
            ev(8, EventKind::PsReshaped { ps: 3 }),
        ];
        let s = ReplayedJobState::from_events(&log);
        assert_eq!(s.samples_done, 1512);
        assert_eq!(s.checkpoint_step, 9);
        assert_eq!(s.live_workers, BTreeSet::from([0, 2]));
        assert_eq!(s.ps_count, 3);
    }

    #[test]
    fn replay_of_empty_log_is_cold_start() {
        let s = ReplayedJobState::from_events(&[]);
        assert_eq!(s.samples_done, 0);
        assert_eq!(s.checkpoint_step, 0);
        assert!(s.live_workers.is_empty());
        assert_eq!(s.ps_count, 0);
    }

    #[test]
    fn plane_staged_checkpoints_advance_the_watermark() {
        let log = vec![
            ev(0, EventKind::CheckpointSaved { step: 4, bytes: 10 }),
            ev(
                1,
                EventKind::CheckpointStaged {
                    job: 1,
                    manifest: 0,
                    step: 7,
                    bytes: 10,
                    new_bytes: 10,
                },
            ),
        ];
        assert_eq!(ReplayedJobState::from_events(&log).checkpoint_step, 7);
    }

    #[test]
    fn recovery_outcome_measures_crash_to_resume() {
        let out = RecoveryOutcome::new(
            RecoveryPath::WitnessQuorum,
            SimTime::from_secs(100),
            SimTime::from_secs(112),
            4096,
            8,
            3,
        );
        assert_eq!(out.downtime, SimDuration::from_secs(12));
        assert_eq!(out.path.label(), "witness-quorum");
        assert_eq!(RecoveryPath::MasterReplay.label(), "master-replay");
    }

    #[test]
    fn replay_adopts_committed_plans_and_window_ids() {
        let log = vec![
            ev(
                0,
                EventKind::ReconfigApplied {
                    job: 1,
                    window: 0,
                    mode: "sync".to_string(),
                    batch: 512,
                    replicas: 2,
                    shards: 2,
                    samples_done: 100,
                    pause_us: 5,
                },
            ),
            // A later window that never committed: the crash rolled it
            // back, so the committed plan stays, but its id is consumed.
            ev(
                1,
                EventKind::ReconfigRolledBack {
                    job: 1,
                    window: 1,
                    reason: "master-crash".to_string(),
                    samples_done: 200,
                },
            ),
        ];
        let s = ReplayedJobState::from_events(&log);
        assert_eq!(s.exec.gradient_mode, dlrover_perfmodel::GradientMode::Sync);
        assert_eq!(s.exec.ps_replicas, 2);
        assert_eq!(s.exec.batch_size, 512);
        assert_eq!(s.next_window, 2);
    }

    #[test]
    fn replay_is_a_pure_fold() {
        let log = vec![
            ev(0, EventKind::WorkerAdded { worker: 0 }),
            ev(1, EventKind::ShardAcked { worker: 0, len: 77 }),
        ];
        assert_eq!(ReplayedJobState::from_events(&log), ReplayedJobState::from_events(&log));
    }
}
