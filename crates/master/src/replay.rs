//! Master failover: reconstructing job state by replaying the event log.
//!
//! The job master is a single point of failure in the paper's architecture
//! (Fig. 4: one master pod per job). DLRover's production controller
//! survives master restarts because every state transition it cares about
//! is durable — in this reproduction the durable store *is* the
//! deterministic telemetry event log. [`ReplayedJobState::from_events`]
//! folds a log back into the three facts a restarted master needs:
//!
//! * the **sample watermark** — how much data is irrevocably trained
//!   (the sum of shard acks; in-flight shards at crash time are lost and
//!   retrain, which is exactly the engine's bounded-rollback contract, §5.1);
//! * the **checkpoint watermark** — the last flash-checkpoint step (§6.2),
//!   which must never regress except across a failure;
//! * the **live pod set** — workers added minus workers failed/removed,
//!   plus the last PS layout, so the restarted master re-adopts running
//!   pods instead of relaunching them.
//!
//! The replay is a pure fold over `&[Event]`: no clocks, no entropy, so a
//! failover inside a chaos run replays bit-identically per seed.

use std::collections::BTreeSet;

use dlrover_telemetry::{Event, EventKind};

/// Job state recovered from an event-log replay (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayedJobState {
    /// Samples irrevocably trained: the sum of acked shard lengths. This
    /// equals the shard queue's completed-samples frontier at crash time —
    /// acks are never retracted, and failed workers' in-flight progress
    /// was never acked.
    pub samples_done: u64,
    /// Step of the newest flash checkpoint (`0` when none was written).
    pub checkpoint_step: u64,
    /// Engine indices of workers believed alive at crash time.
    pub live_workers: BTreeSet<u64>,
    /// PS count of the last applied layout (`0` when never reshaped —
    /// callers fall back to the nominal allocation).
    pub ps_count: u32,
}

impl ReplayedJobState {
    /// Folds an event log into recovered job state.
    pub fn from_events(events: &[Event]) -> Self {
        let mut state = ReplayedJobState {
            samples_done: 0,
            checkpoint_step: 0,
            live_workers: BTreeSet::new(),
            ps_count: 0,
        };
        for e in events {
            match &e.kind {
                EventKind::ShardAcked { len, .. } => state.samples_done += len,
                EventKind::CheckpointSaved { step, .. } => {
                    state.checkpoint_step = state.checkpoint_step.max(*step);
                }
                EventKind::WorkerAdded { worker } => {
                    state.live_workers.insert(*worker);
                }
                EventKind::WorkerFailed { worker } | EventKind::WorkerRemoved { worker } => {
                    state.live_workers.remove(worker);
                }
                EventKind::PsReshaped { ps } => state.ps_count = *ps as u32,
                _ => {}
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind) -> Event {
        Event { at_us: seq * 1_000_000, seq, kind }
    }

    #[test]
    fn replay_folds_watermarks_and_pod_set() {
        let log = vec![
            ev(0, EventKind::WorkerAdded { worker: 0 }),
            ev(1, EventKind::WorkerAdded { worker: 1 }),
            ev(2, EventKind::ShardAcked { worker: 0, len: 1000 }),
            ev(3, EventKind::CheckpointSaved { step: 4, bytes: 10 }),
            ev(4, EventKind::WorkerFailed { worker: 1 }),
            ev(5, EventKind::WorkerAdded { worker: 2 }),
            ev(6, EventKind::ShardAcked { worker: 2, len: 512 }),
            ev(7, EventKind::CheckpointSaved { step: 9, bytes: 10 }),
            ev(8, EventKind::PsReshaped { ps: 3 }),
        ];
        let s = ReplayedJobState::from_events(&log);
        assert_eq!(s.samples_done, 1512);
        assert_eq!(s.checkpoint_step, 9);
        assert_eq!(s.live_workers, BTreeSet::from([0, 2]));
        assert_eq!(s.ps_count, 3);
    }

    #[test]
    fn replay_of_empty_log_is_cold_start() {
        let s = ReplayedJobState::from_events(&[]);
        assert_eq!(s.samples_done, 0);
        assert_eq!(s.checkpoint_step, 0);
        assert!(s.live_workers.is_empty());
        assert_eq!(s.ps_count, 0);
    }

    #[test]
    fn replay_is_a_pure_fold() {
        let log = vec![
            ev(0, EventKind::WorkerAdded { worker: 0 }),
            ev(1, EventKind::ShardAcked { worker: 0, len: 77 }),
        ];
        assert_eq!(ReplayedJobState::from_events(&log), ReplayedJobState::from_events(&log));
    }
}
