//! Master-less witness recovery: a commitment/witness-quorum protocol
//! over checkpoint manifests.
//!
//! The replay path (`master::replay`) reconstructs job state from the
//! master's event log — it needs a restarted master and, after the
//! crash wiped the job's hot-tier pods, a round-trip through the
//! throttled remote tier. The witness path removes the master from the
//! recovery critical path entirely, in the style of Psyche-like
//! decentralized training runs: every flash checkpoint is broadcast to
//! a small set of shard *peers* which co-sign its manifest; once a
//! quorum of signatures lands, the manifest is *witnessed* and the
//! signed copy stays pinned in peer memory. On master loss the
//! surviving peers detect the silence (heartbeat timeout), elect the
//! lowest-indexed reachable peer as recoverer, and restore the pinned
//! copy at memory speed — no remote-tier read, so a concurrent
//! `RemoteTierOutage` does not gate recovery. A `WitnessPartition`
//! that drops the quorum makes the path unavailable and recovery falls
//! back to master replay.

use std::collections::BTreeMap;

use dlrover_sim::{SimDuration, SimTime};
use dlrover_telemetry::{EventKind, Telemetry};
use serde::{Deserialize, Serialize};

/// Witness-quorum protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WitnessConfig {
    /// Co-signing peers per job.
    pub peers: u32,
    /// Signatures required for a manifest to count as witnessed.
    pub quorum: u32,
    /// Save → quorum latency (peer broadcast + co-sign round).
    pub cosign_latency: SimDuration,
    /// Heartbeat silence before peers declare the master lost.
    pub detect_timeout: SimDuration,
    /// Recoverer election round among reachable peers.
    pub election_latency: SimDuration,
    /// Read bandwidth of a pinned peer copy, bytes/s (peer memory,
    /// flash-tier speed).
    pub peer_read_bandwidth: f64,
    /// Fixed per-restore latency on the witness path.
    pub peer_base_latency: SimDuration,
}

impl Default for WitnessConfig {
    fn default() -> Self {
        WitnessConfig {
            peers: 3,
            quorum: 2,
            cosign_latency: SimDuration::from_secs(2),
            detect_timeout: SimDuration::from_secs(10),
            election_latency: SimDuration::from_secs(2),
            peer_read_bandwidth: 10.0e9,
            peer_base_latency: SimDuration::from_millis(200),
        }
    }
}

/// A quorum-certified manifest pinned in peer memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PinnedManifest {
    /// Manifest id (plane-wide).
    pub manifest: u64,
    /// Training step encoded in the manifest.
    pub step: u64,
    /// Samples watermark encoded in the manifest.
    pub samples: u64,
    /// Checkpoint size.
    pub bytes: u64,
    /// When the quorum completed.
    pub witnessed_at: SimTime,
}

/// Result of a witness-path restore: the recoverer reads the pinned
/// copy starting at `start_at`; training resumes after `duration`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WitnessRestore {
    /// Manifest restored.
    pub manifest: u64,
    /// Training step restored to.
    pub step: u64,
    /// Samples watermark restored to.
    pub samples: u64,
    /// Bytes read from the pinned peer copy.
    pub bytes: u64,
    /// Peer-memory read time.
    pub duration: SimDuration,
}

/// A co-sign round in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingCosign {
    job: u64,
    manifest: u64,
    step: u64,
    samples: u64,
    bytes: u64,
    quorum_at: SimTime,
}

/// The witness board: tracks co-sign rounds, partition windows, and the
/// latest pinned manifest per job.
#[derive(Debug)]
pub struct WitnessBoard {
    cfg: WitnessConfig,
    telemetry: Telemetry,
    /// Partition windows `(from, until, peers_out)`; the highest-indexed
    /// `peers_out` peers are unreachable inside the window.
    partitions: Vec<(SimTime, SimTime, u32)>,
    pinned: BTreeMap<u64, PinnedManifest>,
    pending: Vec<PendingCosign>,
}

impl WitnessBoard {
    /// Creates a board with the given protocol parameters.
    pub fn new(cfg: WitnessConfig) -> Self {
        assert!(cfg.quorum >= 1 && cfg.quorum <= cfg.peers, "quorum must be satisfiable");
        WitnessBoard {
            cfg,
            telemetry: Telemetry::default(),
            partitions: Vec::new(),
            pinned: BTreeMap::new(),
            pending: Vec::new(),
        }
    }

    /// Routes protocol events into `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Protocol parameters.
    pub fn config(&self) -> &WitnessConfig {
        &self.cfg
    }

    /// Declares a partition over `[from, until)` that cuts off
    /// `peers_out` peers.
    pub fn partition(&mut self, peers_out: u32, from: SimTime, until: SimTime) {
        if until > from && peers_out > 0 {
            self.partitions.push((from, until, peers_out));
        }
    }

    /// Peers reachable at `at` (partition windows overlap by max, not
    /// sum — they model the same racks dropping).
    pub fn reachable(&self, at: SimTime) -> u32 {
        let out = self
            .partitions
            .iter()
            .filter(|&&(from, until, _)| at >= from && at < until)
            .map(|&(_, _, n)| n)
            .max()
            .unwrap_or(0);
        self.cfg.peers.saturating_sub(out)
    }

    /// Whether a co-sign quorum can assemble at `at`.
    pub fn quorum_available(&self, at: SimTime) -> bool {
        self.reachable(at) >= self.cfg.quorum
    }

    /// Recoverer elected at `at`: the lowest-indexed reachable peer, or
    /// `None` when the quorum cannot assemble (recovery falls back to
    /// master replay).
    pub fn elect_recoverer(&self, at: SimTime) -> Option<u32> {
        if self.quorum_available(at) {
            Some(0)
        } else {
            None
        }
    }

    /// Observes a flash save: starts a co-sign round completing at
    /// `now + cosign_latency`. The round only pins the manifest if a
    /// quorum is still reachable when the signatures land (checked in
    /// [`WitnessBoard::advance`]).
    pub fn observe_save(
        &mut self,
        job: u64,
        manifest: u64,
        step: u64,
        samples: u64,
        bytes: u64,
        now: SimTime,
    ) {
        self.pending.push(PendingCosign {
            job,
            manifest,
            step,
            samples,
            bytes,
            quorum_at: now + self.cfg.cosign_latency,
        });
    }

    /// Completes co-sign rounds due by `now`: rounds whose quorum was
    /// reachable at completion pin their manifest and emit
    /// `WitnessQuorumReached`; rounds that raced a partition are
    /// dropped.
    pub fn advance(&mut self, now: SimTime) {
        let mut due: Vec<PendingCosign> =
            self.pending.iter().copied().filter(|p| p.quorum_at <= now).collect();
        self.pending.retain(|p| p.quorum_at > now);
        // Deterministic completion order: by quorum time, then manifest id.
        due.sort_by_key(|p| (p.quorum_at, p.manifest));
        for p in due {
            let reachable = self.reachable(p.quorum_at);
            if reachable < self.cfg.quorum {
                continue;
            }
            self.pinned.insert(
                p.job,
                PinnedManifest {
                    manifest: p.manifest,
                    step: p.step,
                    samples: p.samples,
                    bytes: p.bytes,
                    witnessed_at: p.quorum_at,
                },
            );
            self.telemetry.record(
                p.quorum_at,
                EventKind::WitnessQuorumReached {
                    job: p.job,
                    manifest: p.manifest,
                    peers: reachable.min(self.cfg.peers),
                },
            );
        }
    }

    /// The latest witnessed manifest for `job`, if any.
    pub fn latest(&self, job: u64) -> Option<&PinnedManifest> {
        self.pinned.get(&job)
    }

    /// Time from master loss to the recoverer holding the pinned copy:
    /// heartbeat detection plus the election round.
    pub fn takeover_latency(&self) -> SimDuration {
        self.cfg.detect_timeout + self.cfg.election_latency
    }

    /// Restores `job` from its pinned copy, with the read starting at
    /// `start_at` (after detection + election). Returns `None` when no
    /// manifest is witnessed or the quorum is partitioned away at
    /// `start_at` — the caller falls back to master replay.
    ///
    /// Records the `CheckpointRestored` event (source `"witness"`) at
    /// the resume instant.
    pub fn restore(&mut self, job: u64, start_at: SimTime) -> Option<WitnessRestore> {
        self.advance(start_at);
        if !self.quorum_available(start_at) {
            return None;
        }
        let pin = *self.pinned.get(&job)?;
        let duration = self.cfg.peer_base_latency
            + SimDuration::from_secs_f64(pin.bytes as f64 / self.cfg.peer_read_bandwidth);
        self.telemetry.record(
            start_at + duration,
            EventKind::CheckpointRestored {
                job,
                manifest: pin.manifest,
                step: pin.step,
                bytes: pin.bytes,
                source: "witness".to_string(),
            },
        );
        Some(WitnessRestore {
            manifest: pin.manifest,
            step: pin.step,
            samples: pin.samples,
            bytes: pin.bytes,
            duration,
        })
    }

    /// Order-independent digest of the board state for determinism
    /// probes.
    pub fn digest(&self) -> u64 {
        fn mix(x: u64) -> u64 {
            // splitmix64 finalizer (matches `ckptplane::chunks`).
            let mut x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }
        let mut acc = mix(self.pending.len() as u64 ^ 0x5749_544e);
        for (job, pin) in &self.pinned {
            acc = mix(acc
                ^ mix(*job)
                ^ mix(pin.manifest)
                ^ mix(pin.samples)
                ^ mix(pin.witnessed_at.as_micros()));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    fn board() -> WitnessBoard {
        WitnessBoard::new(WitnessConfig::default())
    }

    #[test]
    fn cosign_round_pins_after_latency() {
        let mut b = board();
        b.observe_save(1, 7, 100, 51_200, 4 * GB, SimTime::from_secs(100));
        b.advance(SimTime::from_secs(101));
        assert!(b.latest(1).is_none(), "quorum not yet landed");
        b.advance(SimTime::from_secs(103));
        let pin = b.latest(1).unwrap();
        assert_eq!(pin.manifest, 7);
        assert_eq!(pin.witnessed_at, SimTime::from_secs(102));
    }

    #[test]
    fn partition_below_quorum_blocks_pinning_and_restore() {
        let mut b = board();
        b.partition(2, SimTime::from_secs(0), SimTime::from_secs(500));
        b.observe_save(1, 7, 100, 0, GB, SimTime::from_secs(100));
        b.advance(SimTime::from_secs(200));
        assert!(b.latest(1).is_none(), "1 reachable peer < quorum 2");
        assert!(!b.quorum_available(SimTime::from_secs(300)));
        assert!(b.elect_recoverer(SimTime::from_secs(300)).is_none());
        // After the window, quorum recovers but the dropped round is gone.
        assert!(b.quorum_available(SimTime::from_secs(600)));
        assert!(b.restore(1, SimTime::from_secs(600)).is_none(), "nothing was pinned");
    }

    #[test]
    fn single_peer_partition_still_reaches_quorum() {
        let mut b = board();
        b.partition(1, SimTime::from_secs(0), SimTime::from_secs(500));
        b.observe_save(1, 7, 100, 0, GB, SimTime::from_secs(100));
        b.advance(SimTime::from_secs(200));
        let pin = b.latest(1).unwrap();
        assert_eq!(pin.manifest, 7, "2-of-3 quorum tolerates one peer out");
    }

    #[test]
    fn witness_restore_is_memory_speed() {
        let mut b = board();
        b.observe_save(1, 7, 100, 51_200, 4 * GB, SimTime::from_secs(100));
        let out = b.restore(1, SimTime::from_secs(200)).unwrap();
        assert!(out.duration.as_secs_f64() < 1.0, "pinned copy reads at peer-memory speed");
        assert_eq!(out.samples, 51_200);
        assert_eq!(b.elect_recoverer(SimTime::from_secs(200)), Some(0));
    }

    #[test]
    fn takeover_latency_is_detect_plus_election() {
        let b = board();
        assert_eq!(b.takeover_latency(), SimDuration::from_secs(10) + SimDuration::from_secs(2));
    }

    #[test]
    fn newer_save_supersedes_pin() {
        let mut b = board();
        b.observe_save(1, 7, 100, 100, GB, SimTime::from_secs(100));
        b.observe_save(1, 9, 200, 200, GB, SimTime::from_secs(300));
        b.advance(SimTime::from_secs(400));
        assert_eq!(b.latest(1).unwrap().manifest, 9);
    }
}
