//! The resilience layer: typed retry policies, failure budgets, and job
//! health outcomes for the self-healing control plane.
//!
//! DLRover-RM's production controller assumes nothing about resource
//! grants: scale-out requests are denied under contention (§5's three-stage
//! auto-scaling must cope with infeasible plans), pods are relaunched a
//! bounded number of times (Table 4's fault taxonomy), and the master
//! process itself restarts from durable state (§6). This module provides
//! the policy vocabulary for all three behaviours:
//!
//! * [`RetryPolicy`] — exponential backoff with deterministic jitter drawn
//!   from a named [`RngStreams`](dlrover_sim::RngStreams) stream, a
//!   per-operation attempt cap, and a wall deadline. Schedules are pure
//!   functions of `(policy, start, rng-state)` so replays are
//!   bit-identical.
//! * [`RetrySupervisor`] — tracks many concurrent operations against one
//!   policy, emitting [`EventKind::RetryAttempt`] /
//!   [`EventKind::RetryExhausted`] telemetry that the oracle's
//!   no-retry-storm invariant audits.
//! * [`FailureBudget`] / [`BudgetLedger`] — bounded relaunches per
//!   worker/PS; when the budget drains the job degrades (keeps training on
//!   the surviving shape) instead of retrying forever.
//! * [`JobHealth`] — the terminal outcome ladder
//!   (`Healthy → Degraded → Failed`).
//!
//! Everything here runs on virtual time ([`SimTime`]/[`SimDuration`]) —
//! there are no wall clocks and no ambient entropy.

use std::collections::BTreeMap;

use dlrover_sim::{SimDuration, SimTime, StreamRng};
use dlrover_telemetry::{EventKind, Telemetry};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponential-backoff retry policy with deterministic jitter.
///
/// Rate-like knobs are integer permille (`1000 = 1.0`), matching the fault
/// plan conventions, so policies are `Eq`/`Hash`-able and serialize
/// identically across platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Delay before the second attempt (the first retry).
    pub base: SimDuration,
    /// Backoff growth per retry, permille (`2000` = each wait doubles).
    pub multiplier_permille: u32,
    /// Jitter bound, permille of the computed backoff: each wait gains a
    /// uniform extra in `[0, jitter_permille/1000 × backoff)`. Zero
    /// disables jitter.
    pub jitter_permille: u32,
    /// Ceiling on any single wait (before jitter).
    pub max_backoff: SimDuration,
    /// Attempt cap, counting the initial try (`1` = never retry).
    pub max_attempts: u32,
    /// Wall deadline from the first attempt; no attempt starts after it.
    pub deadline: SimDuration,
}

impl Default for RetryPolicy {
    /// Control-plane default: 5 s base doubling to a 60 s cap, 25 %
    /// jitter, at most 6 attempts inside a 10-minute deadline — well under
    /// the oracle's 30-minute recovery deadline, so a budget-exhausted
    /// operation still leaves time to degrade gracefully.
    fn default() -> Self {
        RetryPolicy {
            base: SimDuration::from_secs(5),
            multiplier_permille: 2000,
            jitter_permille: 250,
            max_backoff: SimDuration::from_secs(60),
            max_attempts: 6,
            deadline: SimDuration::from_mins(10),
        }
    }
}

impl RetryPolicy {
    /// The wait after attempt `attempt` (1-based), jittered from `rng`.
    ///
    /// Deterministic given the rng state: the same policy and draw
    /// sequence always produce the same wait.
    pub fn backoff(&self, attempt: u32, rng: &mut StreamRng) -> SimDuration {
        let mut wait = self.base.as_micros().max(1);
        for _ in 1..attempt {
            wait = wait
                .saturating_mul(u64::from(self.multiplier_permille.max(1000)))
                .saturating_div(1000);
            if wait >= self.max_backoff.as_micros() {
                break;
            }
        }
        wait = wait.min(self.max_backoff.as_micros().max(1));
        let jitter_span = wait.saturating_mul(u64::from(self.jitter_permille)) / 1000;
        let jitter = if jitter_span == 0 { 0 } else { rng.gen_range(0..jitter_span) };
        SimDuration::from_micros(wait + jitter)
    }

    /// The full attempt schedule starting at `start`: attempt 1 fires at
    /// `start`, each later attempt after the jittered backoff. The
    /// schedule never exceeds [`Self::max_attempts`] entries and every
    /// entry is at or before `start + deadline` — the two bounds the
    /// no-retry-storm invariant enforces at runtime.
    pub fn schedule(&self, start: SimTime, rng: &mut StreamRng) -> Vec<SimTime> {
        let cutoff = start + self.deadline;
        let mut out = Vec::new();
        let mut t = start;
        for attempt in 1..=self.max_attempts {
            if t > cutoff {
                break;
            }
            out.push(t);
            t += self.backoff(attempt, rng);
        }
        out
    }
}

/// What [`RetrySupervisor::poll`] tells the caller to do with an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Perform the operation now; carries the 1-based attempt number.
    Attempt(u32),
    /// Backoff in progress — do nothing this tick.
    Wait,
    /// Budget or deadline exhausted: stop retrying and degrade. Reported
    /// exactly once per operation (later polls return `Wait` forever).
    Exhausted,
}

#[derive(Debug, Clone)]
struct OpState {
    started: SimTime,
    attempts: u32,
    next_due: SimTime,
    gave_up: bool,
}

/// Tracks many named operations against one [`RetryPolicy`], emitting
/// retry telemetry. One supervisor per job master; operation names are
/// stable strings like `"replace_worker:3"`.
#[derive(Debug)]
pub struct RetrySupervisor {
    policy: RetryPolicy,
    rng: StreamRng,
    telemetry: Telemetry,
    ops: BTreeMap<String, OpState>,
    exhausted_ops: u64,
}

impl RetrySupervisor {
    /// Creates a supervisor. `rng` must come from a named
    /// [`RngStreams`](dlrover_sim::RngStreams) stream so jitter replays
    /// deterministically.
    pub fn new(policy: RetryPolicy, rng: StreamRng, telemetry: Telemetry) -> Self {
        RetrySupervisor { policy, rng, telemetry, ops: BTreeMap::new(), exhausted_ops: 0 }
    }

    /// The governing policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Decides whether `op` should run at `now`. The first poll for an
    /// unknown operation is always `Attempt(1)`. Each `Attempt` emits a
    /// [`EventKind::RetryAttempt`]; crossing the attempt cap or deadline
    /// emits [`EventKind::RetryExhausted`] once and answers `Exhausted`.
    pub fn poll(&mut self, op: &str, now: SimTime) -> RetryDecision {
        let state = self.ops.entry(op.to_string()).or_insert(OpState {
            started: now,
            attempts: 0,
            next_due: now,
            gave_up: false,
        });
        if state.gave_up {
            return RetryDecision::Wait;
        }
        if now < state.next_due {
            return RetryDecision::Wait;
        }
        let past_deadline =
            now.saturating_since(state.started) > self.policy.deadline && state.attempts > 0;
        if state.attempts >= self.policy.max_attempts || past_deadline {
            state.gave_up = true;
            self.exhausted_ops += 1;
            self.telemetry.record(
                now,
                EventKind::RetryExhausted { op: op.to_string(), attempts: state.attempts },
            );
            self.telemetry.count("resilience.retry_exhausted", 1);
            return RetryDecision::Exhausted;
        }
        state.attempts += 1;
        let wait = self.policy.backoff(state.attempts, &mut self.rng);
        state.next_due = now + wait;
        self.telemetry
            .record(now, EventKind::RetryAttempt { op: op.to_string(), attempt: state.attempts });
        self.telemetry.count("resilience.retry_attempts", 1);
        RetryDecision::Attempt(state.attempts)
    }

    /// Marks `op` complete: its state is dropped, so a *new* failure of
    /// the same resource starts a fresh attempt sequence.
    pub fn succeed(&mut self, op: &str) {
        self.ops.remove(op);
    }

    /// True when `op` has an unfinished attempt sequence in flight.
    pub fn in_flight(&self, op: &str) -> bool {
        self.ops.get(op).is_some_and(|s| !s.gave_up)
    }

    /// Operations that exhausted their policy since construction.
    pub fn exhausted_ops(&self) -> u64 {
        self.exhausted_ops
    }
}

/// Bounded relaunches per job: how many worker and PS replacements a job
/// may consume before further failures degrade it instead (Table 4's
/// bounded-restart discipline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FailureBudget {
    /// Worker relaunches allowed over the job's lifetime.
    pub worker_relaunches: u32,
    /// PS relaunches allowed over the job's lifetime.
    pub ps_relaunches: u32,
}

impl Default for FailureBudget {
    /// Generous defaults: a default chaos plan (6 faults) never drains
    /// them, so budget exhaustion is an explicit scenario, not ambient.
    fn default() -> Self {
        FailureBudget { worker_relaunches: 12, ps_relaunches: 8 }
    }
}

/// Running consumption against a [`FailureBudget`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetLedger {
    /// Worker relaunches consumed so far.
    pub worker_used: u32,
    /// PS relaunches consumed so far.
    pub ps_used: u32,
}

impl BudgetLedger {
    /// Consumes one worker relaunch; `false` when the budget is dry (the
    /// ledger is unchanged and the caller must degrade).
    pub fn try_worker(&mut self, budget: &FailureBudget) -> bool {
        if self.worker_used >= budget.worker_relaunches {
            return false;
        }
        self.worker_used += 1;
        true
    }

    /// Consumes one PS relaunch; `false` when the budget is dry.
    pub fn try_ps(&mut self, budget: &FailureBudget) -> bool {
        if self.ps_used >= budget.ps_relaunches {
            return false;
        }
        self.ps_used += 1;
        true
    }
}

/// Terminal health ladder for a supervised job. Transitions only move
/// rightward: a degraded job never silently reports healthy again.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobHealth {
    /// Running at its nominal allocation.
    #[default]
    Healthy,
    /// Running on a reduced shape after budget/retry exhaustion; still
    /// making progress (goodput retained beats fail-stop).
    Degraded,
    /// No feasible shape remains; the job is dead.
    Failed,
}

impl JobHealth {
    /// Moves the ladder toward `next`, never back.
    pub fn escalate(&mut self, next: JobHealth) {
        let rank = |h: &JobHealth| match h {
            JobHealth::Healthy => 0,
            JobHealth::Degraded => 1,
            JobHealth::Failed => 2,
        };
        if rank(&next) > rank(self) {
            *self = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_sim::RngStreams;

    fn policy() -> RetryPolicy {
        RetryPolicy::default()
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy { jitter_permille: 0, ..policy() };
        let mut rng = RngStreams::new(1).stream("retry");
        let waits: Vec<u64> =
            (1..=6).map(|a| p.backoff(a, &mut rng).as_micros() / 1_000_000).collect();
        assert_eq!(waits, vec![5, 10, 20, 40, 60, 60], "doubling then capped at 60 s");
    }

    #[test]
    fn schedule_is_bounded_by_attempts_and_deadline() {
        let p = policy();
        let mut rng = RngStreams::new(9).stream("retry");
        let sched = p.schedule(SimTime::from_secs(100), &mut rng);
        assert!(!sched.is_empty());
        assert!(sched.len() <= p.max_attempts as usize);
        let cutoff = SimTime::from_secs(100) + p.deadline;
        assert!(sched.iter().all(|&t| t <= cutoff));
        assert!(sched.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn supervisor_emits_attempts_then_exhausts_once() {
        let sink = Telemetry::default();
        let p = RetryPolicy { max_attempts: 3, jitter_permille: 0, ..policy() };
        let mut sup = RetrySupervisor::new(p, RngStreams::new(5).stream("retry"), sink.clone());
        let mut now = SimTime::from_secs(10);
        assert_eq!(sup.poll("op", now), RetryDecision::Attempt(1));
        assert_eq!(sup.poll("op", now), RetryDecision::Wait, "backoff gates the next try");
        for _ in 0..10 {
            now += SimDuration::from_secs(120);
            match sup.poll("op", now) {
                RetryDecision::Exhausted => break,
                RetryDecision::Attempt(_) | RetryDecision::Wait => {}
            }
        }
        assert_eq!(sup.exhausted_ops(), 1);
        // After exhaustion the supervisor stays quiet.
        now += SimDuration::from_secs(120);
        assert_eq!(sup.poll("op", now), RetryDecision::Wait);
        let events = sink.snapshot().events;
        let attempts =
            events.iter().filter(|e| matches!(e.kind, EventKind::RetryAttempt { .. })).count();
        let exhausted =
            events.iter().filter(|e| matches!(e.kind, EventKind::RetryExhausted { .. })).count();
        assert_eq!(attempts, 3);
        assert_eq!(exhausted, 1, "exhaustion reported exactly once");
    }

    #[test]
    fn supervisor_success_resets_the_sequence() {
        let sink = Telemetry::default();
        let mut sup =
            RetrySupervisor::new(policy(), RngStreams::new(5).stream("retry"), sink.clone());
        assert_eq!(sup.poll("op", SimTime::ZERO), RetryDecision::Attempt(1));
        assert!(sup.in_flight("op"));
        sup.succeed("op");
        assert!(!sup.in_flight("op"));
        // A fresh failure of the same resource restarts at attempt 1.
        assert_eq!(sup.poll("op", SimTime::from_secs(500)), RetryDecision::Attempt(1));
    }

    #[test]
    fn budget_ledger_drains_and_refuses() {
        let budget = FailureBudget { worker_relaunches: 2, ps_relaunches: 1 };
        let mut ledger = BudgetLedger::default();
        assert!(ledger.try_worker(&budget));
        assert!(ledger.try_worker(&budget));
        assert!(!ledger.try_worker(&budget), "third worker relaunch refused");
        assert_eq!(ledger.worker_used, 2, "refusal does not consume");
        assert!(ledger.try_ps(&budget));
        assert!(!ledger.try_ps(&budget));
    }

    #[test]
    fn health_ladder_is_monotone() {
        let mut h = JobHealth::Healthy;
        h.escalate(JobHealth::Degraded);
        assert_eq!(h, JobHealth::Degraded);
        h.escalate(JobHealth::Healthy);
        assert_eq!(h, JobHealth::Degraded, "never moves back");
        h.escalate(JobHealth::Failed);
        assert_eq!(h, JobHealth::Failed);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dlrover_sim::RngStreams;
    use proptest::prelude::*;

    fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
        (1u64..120, 1000u32..4000, 0u32..1000, 1u64..600, 1u32..12, 10u64..3600).prop_map(
            |(base, mult, jit, cap, attempts, deadline)| RetryPolicy {
                base: SimDuration::from_secs(base),
                multiplier_permille: mult,
                jitter_permille: jit,
                max_backoff: SimDuration::from_secs(cap),
                max_attempts: attempts,
                deadline: SimDuration::from_secs(deadline),
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// ISSUE-4 satellite: any schedule is bit-reproducible per seed and
        /// respects both its attempt budget and its deadline.
        #[test]
        fn schedules_are_reproducible_and_bounded(
            p in arb_policy(),
            seed in 0u64..1000,
            start_s in 0u64..10_000,
        ) {
            let start = SimTime::from_secs(start_s);
            let run = |seed: u64| {
                let mut rng = RngStreams::new(seed).stream("retry-backoff");
                p.schedule(start, &mut rng)
            };
            let a = run(seed);
            prop_assert_eq!(&a, &run(seed), "same seed, same schedule, bit for bit");
            prop_assert!(!a.is_empty(), "attempt 1 always fires");
            prop_assert!(a.len() <= p.max_attempts as usize, "attempt budget respected");
            prop_assert!(a.iter().all(|&t| t >= start && t <= start + p.deadline),
                "every attempt inside the deadline");
            prop_assert!(a.windows(2).all(|w| w[0] < w[1]), "waits strictly positive");
        }
    }
}
