//! The scheduler-policy interface: how a brain (DLRover-RM or a baseline)
//! drives a job master.
//!
//! This is the Rust rendering of the paper's "Plug-in Algorithm API"
//! (§4.3): the job master exposes runtime profiles; a policy returns
//! allocation decisions; the master executes them with whatever migration
//! machinery the policy is allowed to use (seamless for DLRover-RM,
//! stop-and-restart for the baselines).

use dlrover_optimizer::ResourceAllocation;
use dlrover_perfmodel::ExecPlan;
use dlrover_pstrain::MigrationStrategy;
use serde::{Deserialize, Serialize};

use crate::profiler::JobRuntimeProfile;

/// A requested execution-plan change riding on a decision (the Rubick-style
/// reconfiguration layer): the target plan plus an optional embedding-shard
/// relayout. Applied by the master through the seamless-migration path and
/// committed or rolled back as one *reconfig window* (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigRequest {
    /// The execution plan to switch to.
    pub target: ExecPlan,
    /// Also rebalance embedding shards across the PS fleet (LPT relayout).
    pub relayout: bool,
}

/// One adjustment decision from a policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyDecision {
    /// The new allocation to apply.
    pub allocation: ResourceAllocation,
    /// How the transition is executed.
    pub strategy: MigrationStrategy,
    /// Execution-plan reconfiguration to apply alongside (None = keep the
    /// current plan; resource-only policies always send None).
    pub reconfig: Option<ReconfigRequest>,
}

/// A job-level scheduling policy.
pub trait SchedulerPolicy {
    /// Human-readable name for reports (e.g. "dlrover-rm", "optimus").
    fn name(&self) -> &str;

    /// The allocation to start the job with.
    fn initial_allocation(&mut self) -> ResourceAllocation;

    /// Called at each adjustment interval with the latest profile; returns
    /// a decision when the policy wants to re-shape the job.
    fn adjust(&mut self, profile: &JobRuntimeProfile) -> Option<PolicyDecision>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_perfmodel::JobShape;
    use dlrover_sim::SimTime;

    /// A trivial policy used to exercise the trait object plumbing.
    struct Fixed(ResourceAllocation);

    impl SchedulerPolicy for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn initial_allocation(&mut self) -> ResourceAllocation {
            self.0
        }
        fn adjust(&mut self, _profile: &JobRuntimeProfile) -> Option<PolicyDecision> {
            None
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let alloc = ResourceAllocation::new(JobShape::new(2, 1, 4.0, 4.0, 512), 8.0, 16.0);
        let mut policy: Box<dyn SchedulerPolicy> = Box::new(Fixed(alloc));
        assert_eq!(policy.name(), "fixed");
        assert_eq!(policy.initial_allocation(), alloc);
        let profile = JobRuntimeProfile {
            job_id: 1,
            at: SimTime::ZERO,
            throughput: 0.0,
            remaining_samples: 100,
            observation: None,
            ps_memory_used: 0,
            ps_memory_alloc: 1,
            exec: ExecPlan::default(),
            degraded: false,
        };
        assert!(policy.adjust(&profile).is_none());
    }
}
