//! The job master's executor: applies plans, handles instability.
//!
//! One [`JobMaster`] owns one job's [`PsTrainingEngine`] and provides the
//! three post-scaling mechanisms of §5 around it:
//!
//! * **dynamic data sharding** is inherited from the engine (stragglers get
//!   smaller shards automatically; failed workers' shards re-queue);
//! * **seamless migration / flash-checkpoint** (§5.2): plan transitions are
//!   converted into [`MigrationTimeline`]s — under `Seamless` the new pods'
//!   startup overlaps training and only the flash handoff pauses; under
//!   `StopAndRestart` the whole timeline pauses (that is what the baseline
//!   schedulers get);
//! * **OOM prevention** (§5.3): the master forecasts PS memory from
//!   profiler samples and, when auto-scaling is enabled, pre-scales PS
//!   memory before the allocation is exceeded. With it disabled (the
//!   baseline behaviour), the engine eventually OOMs and the job dies.

use dlrover_optimizer::ResourceAllocation;
use dlrover_perfmodel::ExecPlan;
use dlrover_pstrain::{
    plan_ps_migration, plan_ps_migration_pause, AsyncCostModel, CheckpointStore, EngineCheckpoint,
    FlashStore, MigrationStrategy, MigrationTimeline, PodState, PsTrainingEngine, RdsStore,
    ShardQueue, TimelineSegment, TrainingJobSpec,
};
use dlrover_sim::{SimDuration, SimTime};
use dlrover_telemetry::{EventKind, MigrationKind, SpanCategory, Telemetry};
use serde::{Deserialize, Serialize};

use crate::policy::{PolicyDecision, ReconfigRequest};
use crate::profiler::{JobRuntimeProfile, Profiler};
use crate::replay::{RecoveryOutcome, RecoveryPath, ReplayedJobState};
use crate::resilience::{BudgetLedger, FailureBudget, JobHealth};

/// Master configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MasterConfig {
    /// OOM forecast horizon as a multiple of the estimated remaining time.
    pub oom_horizon_factor: f64,
    /// Headroom applied when pre-scaling PS memory.
    pub oom_headroom: f64,
    /// Progress-lag factor below which a worker counts as a straggler.
    pub straggler_lag: f64,
    /// Whether the master auto-scales PS memory on a predicted OOM
    /// (DLRover-RM: yes; baselines: no).
    pub auto_memory_scaling: bool,
    /// Whether the master mitigates hot PSes automatically by rebalancing
    /// partitions with a seamless migration (§4.3 "PS Stragglers" +
    /// §5.2). Off for the baselines.
    pub auto_ps_rebalance: bool,
    /// A PS counts as hot when its per-unit-capacity load exceeds the
    /// mean by this factor (share/(cpu·speed) ratio).
    pub hot_ps_factor: f64,
    /// Heartbeat staleness past which a live worker counts as hung (§6.1
    /// liveness detection). Healthy workers heartbeat every tick, so this
    /// only needs to exceed the tick interval with margin.
    pub silent_worker_timeout: SimDuration,
    /// Bounded relaunches per job; drained budgets degrade (workers) or
    /// fail (PSes) the job instead of relaunching forever.
    pub failure_budget: FailureBudget,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            oom_horizon_factor: 1.0,
            oom_headroom: 0.5,
            straggler_lag: 0.5,
            auto_memory_scaling: true,
            auto_ps_rebalance: true,
            hot_ps_factor: 2.0,
            silent_worker_timeout: SimDuration::from_mins(5),
            failure_budget: FailureBudget::default(),
        }
    }
}

/// Events a tick can surface to the driver / brain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MasterEvent {
    /// The job consumed all its data.
    Completed(SimTime),
    /// A PS exceeded its memory and the job died.
    Oomed(usize),
    /// An OOM was forecast; auto-scaling was disabled, so the driver must
    /// act (or the job will die).
    OomPredicted {
        /// Total PS memory (bytes) the forecast says is needed.
        required_bytes: u64,
    },
    /// An OOM was forecast and PS memory was pre-scaled seamlessly.
    OomPrevented {
        /// New total PS memory in bytes.
        new_alloc_bytes: u64,
    },
    /// A worker lags its peers; dynamic sharding is already pacing it.
    Straggler(usize),
    /// A hot PS was detected and the partitions were rebalanced onto the
    /// healthy pods via a seamless migration.
    HotPsMitigated {
        /// Index of the hot PS.
        ps: usize,
    },
    /// A hot PS was detected but auto-rebalancing is disabled.
    HotPsDetected {
        /// Index of the hot PS.
        ps: usize,
    },
    /// A live worker's heartbeat went stale (zombie process); the master
    /// failed it — its shard re-queued — and the driver should request a
    /// replacement pod as for any other worker failure.
    SilentWorker(usize),
}

/// Per-job agent wrapping the training engine.
pub struct JobMaster {
    job_id: u64,
    engine: PsTrainingEngine,
    profiler: Profiler,
    config: MasterConfig,
    allocation: ResourceAllocation,
    flash: FlashStore,
    rds: RdsStore,
    /// Workers waiting out their startup latency: `(ready_at, pod)`.
    pending_workers: Vec<(SimTime, PodState)>,
    completed_at: Option<SimTime>,
    scaling_count: u32,
    /// Health ladder (Healthy → Degraded → Failed), monotone.
    health: JobHealth,
    /// Relaunch-budget consumption against `config.failure_budget`.
    budget: BudgetLedger,
    /// Dedup key for PS-failure reports: `(ps index, engine time)` of the
    /// last recovery, so a duplicate delivery of the same failure within
    /// one tick is a no-op rather than a second migration.
    last_ps_recovery: Option<(usize, SimTime)>,
    /// An execution-plan change in flight: applied to the engine but not
    /// yet committed as a `ReconfigApplied` event (§5.2 window contract).
    pending_reconfig: Option<PendingReconfig>,
    /// Monotone reconfig-window id; survives master failover via replay.
    next_window: u64,
    telemetry: Telemetry,
}

/// One in-flight reconfiguration window: the engine already runs `target`,
/// but the change only *commits* (emits `ReconfigApplied`) once the
/// transition pause has been consumed. A fault landing inside the window
/// rolls the engine back to `prev` and emits `ReconfigRolledBack` — each
/// window resolves exactly once, which the telemetry oracle enforces.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingReconfig {
    target: ExecPlan,
    relayout: bool,
    prev: ExecPlan,
    window: u64,
    commit_at: SimTime,
    /// The migration pause charged for the transition (telemetry only).
    pause: SimDuration,
}

/// Maps the pstrain strategy into the telemetry vocabulary (the telemetry
/// crate sits below pstrain and cannot name its types).
fn migration_kind(strategy: MigrationStrategy) -> MigrationKind {
    match strategy {
        MigrationStrategy::Seamless => MigrationKind::Seamless,
        MigrationStrategy::StopAndRestart => MigrationKind::StopAndRestart,
        MigrationStrategy::NoIntervention => MigrationKind::NoIntervention,
    }
}

impl JobMaster {
    /// Creates a master and boots the job at `allocation`.
    pub fn new(
        job_id: u64,
        spec: TrainingJobSpec,
        allocation: ResourceAllocation,
        config: MasterConfig,
    ) -> Self {
        let constants = spec.constants;
        let engine = PsTrainingEngine::new(
            spec,
            Self::worker_pods(&allocation),
            AsyncCostModel::balanced_partitions(allocation.shape.ps, allocation.shape.ps_cpu),
            Self::ps_mem(&allocation),
        );
        JobMaster {
            job_id,
            engine,
            profiler: Profiler::new(constants, 256),
            config,
            allocation,
            flash: FlashStore::default(),
            rds: RdsStore::default(),
            pending_workers: Vec::new(),
            completed_at: None,
            scaling_count: 0,
            health: JobHealth::Healthy,
            budget: BudgetLedger::default(),
            last_ps_recovery: None,
            pending_reconfig: None,
            next_window: 0,
            telemetry: Telemetry::default(),
        }
    }

    /// Rebuilds a master after a crash (§6 master failover): job state
    /// comes from an event-log replay ([`ReplayedJobState`]), the data
    /// frontier resumes at the acked-sample watermark (in-flight shards at
    /// crash time re-train — the engine's bounded-rollback contract), and
    /// the live pods are re-adopted at the allocation's shape rather than
    /// relaunched. `crashed_at` is the crash instant and `at` the restart
    /// instant (crash time + restart window); the gap is charged to the
    /// returned [`RecoveryOutcome`] so replay and witness recovery report
    /// downtime in the same units. The restarted master starts with a
    /// fresh health ladder and relaunch budget (the budgets protect the
    /// *incarnation*, and the chaos plan's fault budget bounds
    /// incarnations).
    pub fn from_replay(
        job_id: u64,
        spec: TrainingJobSpec,
        allocation: ResourceAllocation,
        config: MasterConfig,
        replayed: &ReplayedJobState,
        crashed_at: SimTime,
        at: SimTime,
    ) -> (Self, RecoveryOutcome) {
        let constants = spec.constants;
        let workers = replayed.live_workers.len().max(1);
        let ps = if replayed.ps_count > 0 { replayed.ps_count } else { allocation.shape.ps }.max(1);
        let shards = ShardQueue::resume(spec.total_samples, replayed.samples_done, spec.sharding);
        let engine = PsTrainingEngine::from_checkpoint(
            // The replayed exec plan is the last *committed* one: windows
            // still pending at crash time were rolled back (or their
            // rollback is implied by never having committed).
            EngineCheckpoint { spec, shards, at, exec: replayed.exec },
            vec![PodState::new(allocation.shape.worker_cpu); workers],
            AsyncCostModel::balanced_partitions(ps, allocation.shape.ps_cpu),
            vec![(allocation.ps_mem_gb * 1e9) as u64; ps as usize],
        );
        let outcome = RecoveryOutcome::new(
            RecoveryPath::MasterReplay,
            crashed_at,
            at,
            replayed.samples_done,
            replayed.checkpoint_step,
            replayed.live_workers.len() as u32,
        );
        let master = JobMaster {
            job_id,
            engine,
            profiler: Profiler::new(constants, 256),
            config,
            allocation,
            flash: FlashStore::default(),
            rds: RdsStore::default(),
            pending_workers: Vec::new(),
            completed_at: None,
            scaling_count: 0,
            health: JobHealth::Healthy,
            budget: BudgetLedger::default(),
            last_ps_recovery: None,
            pending_reconfig: None,
            next_window: replayed.next_window,
            telemetry: Telemetry::default(),
        };
        (master, outcome)
    }

    /// Routes this master's (and its engine's) telemetry into `sink`, and
    /// lanes both onto the job's span track.
    pub fn set_telemetry(&mut self, sink: Telemetry) {
        self.engine.set_telemetry(sink.clone());
        self.engine.set_span_track(self.job_id);
        self.telemetry = sink;
    }

    /// The master's telemetry handle (clone to share).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn worker_pods(alloc: &ResourceAllocation) -> Vec<PodState> {
        vec![PodState::new(alloc.shape.worker_cpu); alloc.shape.workers as usize]
    }

    fn ps_mem(alloc: &ResourceAllocation) -> Vec<u64> {
        vec![(alloc.ps_mem_gb * 1e9) as u64; alloc.shape.ps as usize]
    }

    /// Job identifier.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The engine (read access for drivers and tests).
    pub fn engine(&self) -> &PsTrainingEngine {
        &self.engine
    }

    /// Mutable engine access for fault/straggler injection by experiment
    /// drivers.
    pub fn engine_mut(&mut self) -> &mut PsTrainingEngine {
        &mut self.engine
    }

    /// The profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Current allocation.
    pub fn allocation(&self) -> ResourceAllocation {
        self.allocation
    }

    /// Number of scaling operations performed so far.
    pub fn scaling_count(&self) -> u32 {
        self.scaling_count
    }

    /// Completion time, once finished.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }

    /// Current position on the Healthy → Degraded → Failed ladder.
    pub fn health(&self) -> JobHealth {
        self.health
    }

    /// Relaunch-budget consumption so far.
    pub fn budget_used(&self) -> BudgetLedger {
        self.budget
    }

    /// Constants for the checkpoint size: dense static part + current
    /// embedding bytes.
    fn checkpoint_bytes(&self) -> u64 {
        let spec = self.engine.spec();
        (spec.memory.total_bytes(self.engine.samples_done() as f64)) as u64
    }

    /// Every migration starts from a flash checkpoint (§5.2) — note it in
    /// the trace with the step and size the handoff carried, and record a
    /// `checkpoint` span over the flash save window.
    fn record_flash_checkpoint(&self) {
        let step = self.engine.samples_done() / u64::from(self.engine.spec().batch_size.max(1));
        let bytes = self.checkpoint_bytes();
        let now = self.engine.now();
        self.telemetry.record(now, EventKind::CheckpointSaved { step, bytes });
        self.telemetry.span_complete(
            now,
            now + self.flash.save_duration(bytes),
            SpanCategory::Checkpoint,
            "flash-save",
            self.job_id,
            None,
        );
        self.telemetry.count("master.flash_checkpoints", 1);
    }

    /// Records a migration plan as spans: one `migration` parent over the
    /// whole timeline and one child per segment, laid sequentially from
    /// `now` (the timeline executes in order — §5.2 Fig. 10's structure).
    fn record_migration_spans(&self, timeline: &MigrationTimeline, label: &str) {
        if timeline.segments.is_empty() {
            return;
        }
        let start = self.engine.now();
        let parent = self.telemetry.span_complete(
            start,
            start + timeline.total(),
            SpanCategory::Migration,
            label,
            self.job_id,
            None,
        );
        let mut t = start;
        for (seg, dur) in &timeline.segments {
            let (cat, seg_label) = match seg {
                TimelineSegment::Overlapped => (SpanCategory::Migration, "overlap"),
                TimelineSegment::Degraded => (SpanCategory::Migration, "degraded"),
                TimelineSegment::PauseSave => (SpanCategory::Checkpoint, "save"),
                TimelineSegment::PauseInit => (SpanCategory::PodStartup, "init"),
                TimelineSegment::PauseLoad => (SpanCategory::Checkpoint, "load"),
                TimelineSegment::PauseData => (SpanCategory::Rebalance, "data"),
            };
            let end = t + *dur;
            self.telemetry.span_complete(t, end, cat, seg_label, self.job_id, Some(parent));
            t = end;
        }
    }

    /// The profile snapshot a policy consumes.
    pub fn profile(&self) -> JobRuntimeProfile {
        let used: u64 = self.engine.ps_memory_used().iter().sum();
        let alloc: u64 = self.engine.ps_memory_alloc().iter().sum();
        JobRuntimeProfile {
            job_id: self.job_id,
            at: self.engine.now(),
            throughput: self.engine.throughput(),
            remaining_samples: self.engine.remaining_samples(),
            observation: self.engine.observation(),
            ps_memory_used: used,
            ps_memory_alloc: alloc,
            exec: *self.engine.exec_plan(),
            degraded: self.health != JobHealth::Healthy,
        }
    }

    /// Advances the job by `dt`, profiling and handling instability.
    pub fn tick(&mut self, dt: SimDuration) -> Vec<MasterEvent> {
        let mut events = Vec::new();
        if self.completed_at.is_some() || self.engine.is_oomed() || self.health == JobHealth::Failed
        {
            return events; // terminal: nothing to do
        }

        // Materialise workers whose startup completed.
        let now = self.engine.now();
        let ready: Vec<PodState> = {
            let (ready, waiting): (Vec<_>, Vec<_>) =
                self.pending_workers.drain(..).partition(|(t, _)| *t <= now);
            self.pending_workers = waiting;
            ready.into_iter().map(|(_, p)| p).collect()
        };
        for pod in ready {
            self.engine.add_worker(pod);
        }

        let progress = self.engine.advance(dt);

        // Commit an in-flight reconfig window once its transition pause has
        // been fully consumed: the new plan survived the migration, so it
        // becomes the job's committed layout (exactly-once per window).
        if let Some(p) = self.pending_reconfig {
            if self.engine.now() >= p.commit_at {
                self.pending_reconfig = None;
                let spec_batch = self.engine.spec().batch_size;
                self.telemetry.record(
                    self.engine.now(),
                    EventKind::ReconfigApplied {
                        job: self.job_id,
                        window: p.window,
                        mode: p.target.gradient_mode.label().to_string(),
                        batch: p.target.effective_batch(spec_batch),
                        replicas: p.target.ps_replicas.max(1),
                        shards: self.engine.partitions().len() as u32,
                        samples_done: self.engine.completed_samples(),
                        pause_us: p.pause.as_micros(),
                    },
                );
                self.telemetry.count("master.reconfigs_committed", 1);
            }
        }

        // Profile.
        if let Some(obs) = self.engine.observation() {
            self.profiler.record_observation(obs);
        }
        let used: u64 = self.engine.ps_memory_used().iter().sum();
        self.profiler.record_memory(self.engine.now(), used);

        if let Some(ps) = progress.oom_ps {
            events.push(MasterEvent::Oomed(ps));
            return events;
        }
        if progress.completed && self.completed_at.is_none() {
            self.completed_at = Some(self.engine.now());
            events.push(MasterEvent::Completed(self.engine.now()));
            self.telemetry.record(self.engine.now(), EventKind::JobCompleted { job: self.job_id });
            return events;
        }

        // §6.1 liveness: a worker whose heartbeat went stale is a zombie —
        // its pod is up but training is stuck. Fail it (the shard queue
        // re-queues its in-flight shard in full, preserving exactly-once)
        // and surface the event; the driver requests the replacement pod
        // exactly as for a crashed worker.
        for idx in self.engine.silent_workers(self.config.silent_worker_timeout) {
            self.engine.fail_worker(idx);
            self.telemetry.record(
                self.engine.now(),
                EventKind::SilentWorkerDetected { job: self.job_id, worker: idx as u64 },
            );
            self.telemetry.count("master.silent_workers", 1);
            events.push(MasterEvent::SilentWorker(idx));
        }

        // OOM prevention (§5.3). The engine OOMs *per PS* (used_i >
        // alloc_i), so the forecast must use the binding constraint: scale
        // the total capacity down by the worst per-PS headroom ratio. With
        // even allocations and a skewed partition, one PS hits its wall
        // long before the total does — forecasting against the raw total
        // would sleep through exactly the skewed case.
        let used = self.engine.ps_memory_used();
        let alloc = self.engine.ps_memory_alloc();
        let used_total: u64 = used.iter().sum();
        let effective_capacity = used
            .iter()
            .zip(alloc)
            .filter(|(&u, _)| u > 0)
            .map(|(&u, &a)| {
                // Total memory at the moment PS i hits its own limit,
                // assuming shares stay fixed as memory grows.
                a as f64 / (u as f64 / used_total.max(1) as f64)
            })
            .fold(f64::INFINITY, f64::min);
        let effective_capacity = if effective_capacity.is_finite() {
            effective_capacity
        } else {
            alloc.iter().sum::<u64>() as f64
        };
        let thp = self.engine.throughput();
        if thp > 0.0 {
            let remaining_time = self.engine.remaining_samples() as f64 / thp;
            let horizon = remaining_time * self.config.oom_horizon_factor;
            if let Some(forecast) = self.profiler.memory().forecast(effective_capacity, horizon) {
                if forecast.will_oom() {
                    let required = forecast.required_capacity(self.config.oom_headroom) as u64;
                    let at = self.engine.now();
                    if self.config.auto_memory_scaling {
                        self.telemetry.span_complete(
                            at,
                            at,
                            SpanCategory::OomPredict,
                            "prevented",
                            self.job_id,
                            None,
                        );
                        self.scale_ps_memory(required);
                        events.push(MasterEvent::OomPrevented { new_alloc_bytes: required });
                        self.telemetry.record(
                            self.engine.now(),
                            EventKind::OomPrevented { job: self.job_id, new_alloc_bytes: required },
                        );
                        self.telemetry.count("master.ooms_prevented", 1);
                    } else {
                        self.telemetry.span_complete(
                            at,
                            at,
                            SpanCategory::OomPredict,
                            "predicted",
                            self.job_id,
                            None,
                        );
                        events.push(MasterEvent::OomPredicted { required_bytes: required });
                        self.telemetry.record(
                            at,
                            EventKind::OomPredicted { job: self.job_id, required_bytes: required },
                        );
                    }
                }
            }
        }

        // Hot-PS detection and seamless mitigation (§4.3, §5.2).
        if let Some(ps) = self.detect_hot_ps() {
            if self.config.auto_ps_rebalance {
                self.rebalance_hot_ps();
                events.push(MasterEvent::HotPsMitigated { ps });
                self.telemetry.record(
                    self.engine.now(),
                    EventKind::HotPsMitigated { job: self.job_id, ps: ps as u64 },
                );
                self.telemetry.count("master.hot_ps_mitigations", 1);
            } else {
                events.push(MasterEvent::HotPsDetected { ps });
                self.telemetry.record(
                    self.engine.now(),
                    EventKind::HotPsDetected { job: self.job_id, ps: ps as u64 },
                );
            }
        }

        // Straggler reporting (mitigation is automatic via shard pacing).
        for idx in self.engine.straggling_workers(self.config.straggler_lag) {
            events.push(MasterEvent::Straggler(idx));
            self.telemetry.record(
                self.engine.now(),
                EventKind::StragglerDetected { job: self.job_id, worker: idx as u64 },
            );
        }
        events
    }

    /// Detects a hot PS: a partition whose load per effective capacity
    /// exceeds the mean by `hot_ps_factor` (tensor skew or a slow pod).
    fn detect_hot_ps(&self) -> Option<usize> {
        let parts = self.engine.partitions();
        if parts.len() < 2 {
            return None;
        }
        let ratios: Vec<f64> =
            parts.iter().map(|p| p.share.max(1e-9) / p.pod.effective_cpu()).collect();
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        ratios.iter().position(|&r| r > mean * self.config.hot_ps_factor.max(1.0))
    }

    /// Seamless hot-PS mitigation: rebalance parameter shares evenly onto
    /// the *healthy* pod capacity (the DeepRec move), paying only the
    /// flash-checkpoint handoff. The hot pod keeps a share proportional to
    /// what it can actually serve.
    fn rebalance_hot_ps(&mut self) {
        let parts = self.engine.partitions().to_vec();
        let total_cap: f64 = parts.iter().map(|p| p.pod.effective_cpu()).sum();
        if total_cap <= 0.0 {
            return;
        }
        let rebalanced: Vec<dlrover_pstrain::PsPartition> = parts
            .iter()
            .map(|p| dlrover_pstrain::PsPartition {
                share: p.pod.effective_cpu() / total_cap,
                pod: p.pod,
            })
            .collect();
        let mem = self.engine.ps_memory_alloc().to_vec();
        let pause = plan_ps_migration_pause(
            MigrationStrategy::Seamless,
            self.checkpoint_bytes(),
            SimDuration::ZERO,
            &self.flash,
            &self.rds,
        );
        let now = self.engine.now();
        self.telemetry.span_complete(
            now,
            now + pause,
            SpanCategory::Rebalance,
            "hot-ps",
            self.job_id,
            None,
        );
        self.record_flash_checkpoint();
        self.engine.reshape_ps(rebalanced, mem);
        self.engine.pause(pause);
        self.scaling_count += 1;
    }

    /// Pre-scales total PS memory to `required_bytes`, apportioned by each
    /// PS's *current usage share* (a skewed partition needs its memory where
    /// the parameters actually live), using a seamless (flash-checkpoint)
    /// PS migration.
    pub fn scale_ps_memory(&mut self, required_bytes: u64) {
        let used = self.engine.ps_memory_used();
        let used_total: u64 = used.iter().sum::<u64>().max(1);
        let p = self.engine.partitions().len().max(1);
        let per_ps: Vec<u64> = used
            .iter()
            .map(|&u| {
                // Share-proportional, with an even-split floor for PSes
                // that have not materialised parameters yet.
                let share = (u as f64 / used_total as f64).max(0.2 / p as f64);
                (required_bytes as f64 * share) as u64 + 1
            })
            .collect();
        let partitions = self.engine.partitions().to_vec();
        let pause = plan_ps_migration_pause(
            MigrationStrategy::Seamless,
            self.checkpoint_bytes(),
            SimDuration::ZERO,
            &self.flash,
            &self.rds,
        );
        let now = self.engine.now();
        self.telemetry.span_complete(
            now,
            now + pause,
            SpanCategory::Migration,
            "mem-prescale",
            self.job_id,
            None,
        );
        self.record_flash_checkpoint();
        let max_gb = per_ps.iter().copied().max().unwrap_or(0) as f64 / 1e9;
        self.engine.reshape_ps(partitions, per_ps);
        self.engine.pause(pause);
        self.allocation.ps_mem_gb = max_gb;
        self.scaling_count += 1;
    }

    /// Requests a replacement for a failed worker: a fresh pod with the
    /// allocation's worker shape joins after `startup` (the sampled pod
    /// preparation latency). The dynamic sharding layer (§6.1) already
    /// requeued the dead worker's shard, so no data handling is needed —
    /// this is the master's half of the §6 recovery loop, driven by chaos
    /// plans and organic pod failures alike.
    /// Idempotent under duplicate failure delivery: a replacement is only
    /// scheduled while the job is actually below its worker target, so
    /// re-delivering the same failure report cannot balloon the job past
    /// its allocation. Bounded by the relaunch budget: when it drains the
    /// master degrades to the surviving shape instead (§6).
    pub fn replace_failed_worker(&mut self, startup: SimDuration) {
        let live = (0..self.engine_worker_slots()).filter(|&i| self.engine_worker_alive(i)).count();
        if live + self.pending_workers.len() >= self.allocation.shape.workers as usize {
            self.telemetry.count("master.duplicate_replacements_ignored", 1);
            return;
        }
        if !self.budget.try_worker(&self.config.failure_budget) {
            self.degrade_to_live_shape();
            return;
        }
        let pod = PodState::new(self.allocation.shape.worker_cpu);
        let ready = self.engine.now() + startup;
        self.pending_workers.push((ready, pod));
        self.telemetry.count("master.worker_replacements", 1);
    }

    /// Degraded mode (§6): adopt the best *feasible* plan — the shape the
    /// job actually holds — as the new target and record it. Training
    /// continues on the surviving workers; goodput retained this way is
    /// what the resilience experiment compares against fail-stop.
    fn degrade_to_live_shape(&mut self) {
        // Degraded jobs hold their shape (§6): a plan change in flight is
        // abandoned, not committed on a job that just lost its budget.
        self.abort_reconfig_if_pending("degraded");
        let live = (0..self.engine_worker_slots()).filter(|&i| self.engine_worker_alive(i)).count();
        let feasible = (live + self.pending_workers.len()).max(1) as u32;
        self.allocation.shape.workers = feasible;
        self.health.escalate(JobHealth::Degraded);
        self.telemetry.record(
            self.engine.now(),
            EventKind::JobDegraded {
                job: self.job_id,
                workers: feasible,
                ps: self.engine.partitions().len() as u32,
            },
        );
        self.telemetry.count("master.degradations", 1);
    }

    /// Records that a scale-out or replacement request was *conclusively*
    /// denied — the retry policy exhausted its attempts (denial storm,
    /// sustained contention). The master falls back to the best feasible
    /// plan instead of retrying forever; returns the resulting health.
    pub fn record_scale_denial(&mut self) -> JobHealth {
        self.degrade_to_live_shape();
        self.health
    }

    /// Recovers from a parameter-server pod failure mid-run via the
    /// seamless path (§6.2): flash-checkpoint handoff to a fresh pod at
    /// the same partition index, with the sub-second pause of Fig. 10
    /// rather than a stop-and-restart round trip. `startup` is the new
    /// pod's preparation latency (overlapped with degraded training in the
    /// timeline). No-op for an out-of-range index.
    ///
    /// Idempotent under duplicate delivery: a second report for the same
    /// PS at the same engine instant is the same failure (at-least-once
    /// event transport), not a new one, and is dropped. PS relaunches are
    /// bounded by the failure budget; since a job cannot train without
    /// its parameter shards, a drained PS budget is terminal
    /// ([`JobHealth::Failed`]).
    pub fn handle_ps_failure(&mut self, ps: usize, startup: SimDuration) {
        let mut partitions = self.engine.partitions().to_vec();
        let Some(slot) = partitions.get_mut(ps) else { return };
        if self.last_ps_recovery == Some((ps, self.engine.now())) {
            self.telemetry.count("master.duplicate_ps_failures_ignored", 1);
            return;
        }
        if !self.budget.try_ps(&self.config.failure_budget) {
            self.abort_reconfig_if_pending("job-failed");
            self.health.escalate(JobHealth::Failed);
            self.telemetry.count("master.jobs_failed", 1);
            return;
        }
        slot.pod = PodState::new(self.allocation.shape.ps_cpu);
        let mem = self.engine.ps_memory_alloc().to_vec();
        let timeline = plan_ps_migration(
            MigrationStrategy::Seamless,
            self.checkpoint_bytes(),
            startup,
            &self.flash,
            &self.rds,
        );
        self.record_migration_spans(&timeline, "ps-failure");
        self.record_flash_checkpoint();
        // The replacement pod lands on a fresh node: whatever interference
        // was pressing on the dead pod does not follow it.
        self.engine.set_ps_mem_pressure(ps, 0);
        self.engine.reshape_ps(partitions, mem);
        self.engine.pause(timeline.pause());
        self.last_ps_recovery = Some((ps, self.engine.now()));
        self.telemetry.count("master.ps_recoveries", 1);
    }

    /// Workers requested but not yet materialised (replacements and
    /// scale-outs in their startup window).
    pub fn pending_worker_count(&self) -> usize {
        self.pending_workers.len()
    }

    /// Applies a policy decision: reshapes workers and PSes with the
    /// decision's migration strategy. `startup` is the sampled pod startup
    /// latency for any *new* pods.
    ///
    /// Memory safety overrides the policy: a decision computed from a
    /// stale view must not shrink PS memory below what the embedding
    /// tables already occupy (plus headroom), or the job would OOM the
    /// moment the plan lands — the master clamps the target up to the
    /// live requirement before applying it.
    pub fn apply_decision(&mut self, decision: PolicyDecision, startup: SimDuration) {
        let mut decision = decision;
        let used_per_ps = self.engine.ps_memory_used().iter().copied().max().unwrap_or(0) as f64;
        let floor_gb = used_per_ps * (1.0 + self.config.oom_headroom.max(0.0)) / 1e9;
        if decision.allocation.ps_mem_gb < floor_gb {
            decision.allocation.ps_mem_gb = floor_gb;
        }
        let target = decision.allocation;
        let strategy = decision.strategy;
        let cur = self.allocation;
        let ps_changed = target.shape.ps != cur.shape.ps
            || (target.shape.ps_cpu - cur.shape.ps_cpu).abs() > 1e-9
            || (target.ps_mem_gb - cur.ps_mem_gb).abs() > 1e-9;
        let workers_changed = target.shape.workers != cur.shape.workers
            || (target.shape.worker_cpu - cur.shape.worker_cpu).abs() > 1e-9;

        // "No intervention" means exactly that: the decision is advisory
        // and nothing is reshaped, counted, or committed. Reconfiguration
        // rides the seamless path only, so it is gated the same way.
        if strategy == MigrationStrategy::NoIntervention {
            return;
        }
        if !ps_changed && !workers_changed {
            if strategy == MigrationStrategy::Seamless {
                if let Some(req) = decision.reconfig {
                    self.begin_reconfig(req);
                }
            }
            return;
        }
        self.scaling_count += 1;
        self.telemetry.record(
            self.engine.now(),
            EventKind::ScalingPlanApplied {
                job: self.job_id,
                workers: target.shape.workers,
                ps: target.shape.ps,
                strategy: migration_kind(strategy),
            },
        );
        self.telemetry.count("master.scaling_ops", 1);

        match strategy {
            MigrationStrategy::NoIntervention => unreachable!("handled above"),
            MigrationStrategy::StopAndRestart => {
                // The whole job pauses: checkpoint → redeploy → restore.
                let timeline = plan_ps_migration(
                    strategy,
                    self.checkpoint_bytes(),
                    startup,
                    &self.flash,
                    &self.rds,
                );
                self.record_migration_spans(&timeline, "stop-and-restart");
                self.record_flash_checkpoint();
                self.engine.pause(timeline.pause());
                self.resize_workers(&target, SimDuration::ZERO);
                if ps_changed {
                    self.reshape_ps_now(&target);
                }
            }
            MigrationStrategy::Seamless => {
                // Workers: removals immediate (shards hand back), additions
                // wait out their startup while training continues.
                self.resize_workers(&target, startup);
                if ps_changed {
                    let timeline = plan_ps_migration(
                        strategy,
                        self.checkpoint_bytes(),
                        startup,
                        &self.flash,
                        &self.rds,
                    );
                    self.record_migration_spans(&timeline, "seamless");
                    self.record_flash_checkpoint();
                    self.reshape_ps_now(&target);
                    self.engine.pause(timeline.pause());
                }
            }
        }
        self.allocation = target;
        if strategy == MigrationStrategy::Seamless {
            if let Some(req) = decision.reconfig {
                self.begin_reconfig(req);
            }
        }
    }

    /// Opens a reconfiguration window (Rubick-style execution-plan change,
    /// priced by the optimizer, executed through the seamless-migration
    /// path of §5.2): flash-checkpoint, optional LPT shard relayout, switch
    /// the engine's plan, charge the transition pause. The window *commits*
    /// (emits `ReconfigApplied`) on the first tick past the pause; a fault
    /// before that rolls it back via [`Self::abort_reconfig_if_pending`].
    /// Degraded jobs hold their shape (§6) — the request is dropped.
    fn begin_reconfig(&mut self, req: ReconfigRequest) {
        if self.health != JobHealth::Healthy || self.pending_reconfig.is_some() {
            return;
        }
        let prev = *self.engine.exec_plan();
        if req.target == prev && !req.relayout {
            return;
        }
        let window = self.next_window;
        self.next_window += 1;
        let pause = plan_ps_migration_pause(
            MigrationStrategy::Seamless,
            self.checkpoint_bytes(),
            SimDuration::ZERO,
            &self.flash,
            &self.rds,
        );
        let now = self.engine.now();
        self.telemetry.span_complete(
            now,
            now + pause,
            SpanCategory::Migration,
            "reconfig",
            self.job_id,
            None,
        );
        self.record_flash_checkpoint();
        if req.relayout {
            self.relayout_shards();
        }
        self.engine.set_exec_plan(req.target);
        self.engine.pause(pause);
        self.scaling_count += 1;
        self.pending_reconfig = Some(PendingReconfig {
            target: req.target,
            relayout: req.relayout,
            prev,
            window,
            commit_at: now + pause,
            pause,
        });
        self.telemetry.count("master.reconfigs_started", 1);
    }

    /// Rolls back an in-flight reconfiguration window, if any: the engine
    /// reverts to the previous committed plan and the window resolves as
    /// `ReconfigRolledBack` (exactly once — the oracle's window invariant).
    /// Call sites are the fault paths: a worker/PS/master fault landing
    /// inside the window must not leave a half-applied plan behind.
    pub fn abort_reconfig_if_pending(&mut self, reason: &str) {
        let Some(p) = self.pending_reconfig.take() else { return };
        self.engine.set_exec_plan(p.prev);
        self.telemetry.record(
            self.engine.now(),
            EventKind::ReconfigRolledBack {
                job: self.job_id,
                window: p.window,
                reason: reason.to_string(),
                samples_done: self.engine.completed_samples(),
            },
        );
        self.telemetry.count("master.reconfigs_rolled_back", 1);
    }

    /// Embedding-shard relayout (`RelayoutShards`): rebuild the DLRM block
    /// set at the current embedding footprint, LPT-balance it across the
    /// live PS pods and adopt the resulting partitions — the same
    /// rebalancing primitive the hot-PS path uses, triggered here by the
    /// optimizer instead of a detector.
    fn relayout_shards(&mut self) {
        let parts = self.engine.partitions().to_vec();
        if parts.len() < 2 {
            return;
        }
        let bytes = self.checkpoint_bytes();
        let blocks = dlrover_pstrain::rebalance::dlrm_blocks(26, bytes, bytes / 16);
        let assignment = dlrover_pstrain::rebalance::balance_blocks(&blocks, parts.len());
        let pods: Vec<PodState> = parts.iter().map(|p| p.pod).collect();
        let rebalanced =
            dlrover_pstrain::rebalance::partitions_from_assignment(&blocks, &assignment, &pods);
        let mem = self.engine.ps_memory_alloc().to_vec();
        self.engine.reshape_ps(rebalanced, mem);
    }

    fn reshape_ps_now(&mut self, target: &ResourceAllocation) {
        self.engine.reshape_ps(
            AsyncCostModel::balanced_partitions(target.shape.ps, target.shape.ps_cpu),
            Self::ps_mem(target),
        );
    }

    fn resize_workers(&mut self, target: &ResourceAllocation, startup: SimDuration) {
        let live: Vec<usize> =
            (0..self.engine_worker_slots()).filter(|&i| self.engine_worker_alive(i)).collect();
        let current = live.len() + self.pending_workers.len();
        let want = target.shape.workers as usize;
        let pod = PodState::new(target.shape.worker_cpu);

        // Vertical change applies to every live worker and to workers
        // still waiting out their startup (they must come up at the new
        // size, not the one from the decision that created them).
        for &i in &live {
            self.engine.set_worker_pod(i, pod);
        }
        for (_, pending) in self.pending_workers.iter_mut() {
            *pending = pod;
        }
        if want > current {
            let ready_at = self.engine.now() + startup;
            for _ in 0..(want - current) {
                if startup.is_zero() {
                    self.engine.add_worker(pod);
                } else {
                    self.pending_workers.push((ready_at, pod));
                }
            }
        } else if want < current {
            let mut to_remove = current - want;
            // Drop queued-but-not-started workers first.
            while to_remove > 0 && !self.pending_workers.is_empty() {
                self.pending_workers.pop();
                to_remove -= 1;
            }
            for &i in live.iter().rev().take(to_remove) {
                self.engine.remove_worker(i);
            }
        }
    }

    fn engine_worker_slots(&self) -> usize {
        // Engine indexes workers densely by addition order; dead slots stay.
        self.engine.worker_slot_count()
    }

    fn engine_worker_alive(&self, idx: usize) -> bool {
        self.engine.worker_is_alive(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_perfmodel::JobShape;

    fn alloc(w: u32, p: u32, cpu: f64, ps_mem_gb: f64) -> ResourceAllocation {
        ResourceAllocation::new(JobShape::new(w, p, cpu, cpu, 512), cpu * 4.0, ps_mem_gb)
    }

    fn master(steps: u64, w: u32, p: u32, cpu: f64) -> JobMaster {
        JobMaster::new(
            1,
            TrainingJobSpec::paper_default(steps),
            alloc(w, p, cpu, 256.0),
            MasterConfig::default(),
        )
    }

    const DT: SimDuration = SimDuration::from_secs(30);

    fn run_to_end(m: &mut JobMaster, max_ticks: usize) -> Option<SimTime> {
        for _ in 0..max_ticks {
            for e in m.tick(DT) {
                match e {
                    MasterEvent::Completed(t) => return Some(t),
                    MasterEvent::Oomed(_) => return None,
                    _ => {}
                }
            }
        }
        None
    }

    #[test]
    fn replaced_worker_joins_after_startup_and_job_finishes() {
        let mut m = master(20_000, 4, 2, 8.0);
        m.tick(DT);
        m.engine_mut().fail_worker(0);
        m.replace_failed_worker(SimDuration::from_secs(90));
        assert_eq!(m.pending_worker_count(), 1);
        assert_eq!(m.engine().workers().len(), 3);
        // The replacement sits out its startup window, then joins on the
        // first tick at or past ready time.
        let mut joined_at_tick = None;
        for i in 0..10 {
            m.tick(DT);
            if m.pending_worker_count() == 0 {
                joined_at_tick = Some(i);
                break;
            }
            assert_eq!(m.engine().workers().len(), 3, "early join at tick {i}");
        }
        let joined = joined_at_tick.expect("replacement joined");
        assert!(joined >= 2, "90s startup must span at least three 30s ticks");
        assert_eq!(m.engine().workers().len(), 4);
        run_to_end(&mut m, 100_000).expect("completes");
        assert_eq!(m.engine().samples_done(), m.engine().spec().total_samples);
    }

    #[test]
    fn ps_failure_recovers_via_seamless_flash_restore() {
        let mut m = master(20_000, 4, 2, 8.0);
        m.set_telemetry(Telemetry::default());
        for _ in 0..4 {
            m.tick(DT);
        }
        assert!(m.completed_at().is_none(), "job must still be mid-flight");
        let before = m.engine().partitions().len();
        m.handle_ps_failure(0, SimDuration::from_secs(120));
        // Same layout, fresh pod, sub-second flash pause: the engine is
        // paused but not reshaped away.
        assert_eq!(m.engine().partitions().len(), before);
        assert_eq!(m.engine().throughput(), 0.0, "paused during flash handoff");
        let events = m.telemetry().snapshot().events;
        let count = |name: &str| events.iter().filter(|e| e.kind.name() == name).count();
        assert_eq!(count("PsReshaped"), 1);
        assert!(count("CheckpointSaved") >= 1);
        assert_eq!(m.telemetry().counter("master.ps_recoveries"), 1);
        // Out-of-range index is a no-op.
        m.handle_ps_failure(99, SimDuration::from_secs(1));
        run_to_end(&mut m, 100_000).expect("completes after PS loss");
        assert_eq!(m.engine().samples_done(), m.engine().spec().total_samples);
    }

    #[test]
    fn job_completes_and_reports_once() {
        let mut m = master(300, 4, 2, 8.0);
        let t = run_to_end(&mut m, 100_000).expect("completes");
        assert_eq!(m.completed_at(), Some(t));
        // Further ticks produce no duplicate completion.
        assert!(m.tick(DT).is_empty());
    }

    fn reconfig_decision(
        a: ResourceAllocation,
        target: dlrover_perfmodel::ExecPlan,
        relayout: bool,
    ) -> PolicyDecision {
        PolicyDecision {
            allocation: a,
            strategy: MigrationStrategy::Seamless,
            reconfig: Some(ReconfigRequest { target, relayout }),
        }
    }

    fn sync_plan() -> dlrover_perfmodel::ExecPlan {
        dlrover_perfmodel::ExecPlan {
            gradient_mode: dlrover_perfmodel::GradientMode::Sync,
            ps_replicas: 2,
            batch_size: 0,
        }
    }

    #[test]
    fn reconfig_window_commits_exactly_once() {
        let mut m = master(20_000, 4, 2, 8.0);
        m.set_telemetry(Telemetry::default());
        m.tick(DT);
        // A reconfig-only decision (no resource change) must still open a
        // window: the action space is wider than resource amounts.
        m.apply_decision(reconfig_decision(alloc(4, 2, 8.0, 256.0), sync_plan(), false), DT);
        assert_eq!(*m.engine().exec_plan(), sync_plan(), "engine switches inside the window");
        for _ in 0..4 {
            m.tick(DT);
        }
        let events = m.telemetry().snapshot().events;
        let applied: Vec<_> =
            events.iter().filter(|e| e.kind.name() == "ReconfigApplied").collect();
        assert_eq!(applied.len(), 1, "a window commits exactly once");
        if let EventKind::ReconfigApplied { window, mode, replicas, samples_done, .. } =
            &applied[0].kind
        {
            assert_eq!(*window, 0, "first window id");
            assert_eq!(mode, "sync");
            assert_eq!(*replicas, 2);
            assert!(*samples_done > 0, "commit records the acked watermark");
        }
        assert_eq!(m.telemetry().counter("master.reconfigs_started"), 1);
        assert_eq!(m.telemetry().counter("master.reconfigs_committed"), 1);
        assert_eq!(m.telemetry().counter("master.reconfigs_rolled_back"), 0);
        run_to_end(&mut m, 100_000).expect("completes under the new plan");
        assert_eq!(m.engine().samples_done(), m.engine().spec().total_samples);
    }

    #[test]
    fn fault_inside_window_rolls_back_exactly_once() {
        let mut m = master(20_000, 4, 2, 8.0);
        m.set_telemetry(Telemetry::default());
        m.tick(DT);
        let prev = *m.engine().exec_plan();
        m.apply_decision(reconfig_decision(alloc(4, 2, 8.0, 256.0), sync_plan(), false), DT);
        // A conclusive denial lands inside the window, before the commit
        // tick: the job degrades and the half-applied plan must unwind.
        m.record_scale_denial();
        assert_eq!(*m.engine().exec_plan(), prev, "rollback restores the committed plan");
        for _ in 0..4 {
            m.tick(DT);
        }
        let events = m.telemetry().snapshot().events;
        assert_eq!(events.iter().filter(|e| e.kind.name() == "ReconfigApplied").count(), 0);
        let rolled: Vec<_> =
            events.iter().filter(|e| e.kind.name() == "ReconfigRolledBack").collect();
        assert_eq!(rolled.len(), 1, "a window rolls back exactly once");
        if let EventKind::ReconfigRolledBack { window, reason, .. } = &rolled[0].kind {
            assert_eq!(*window, 0);
            assert_eq!(reason, "degraded");
        }
        // A second abort is a no-op: the window is already settled.
        m.abort_reconfig_if_pending("again");
        assert_eq!(m.telemetry().counter("master.reconfigs_rolled_back"), 1);
        run_to_end(&mut m, 100_000).expect("completes after the rollback");
        assert_eq!(m.engine().samples_done(), m.engine().spec().total_samples);
    }

    #[test]
    fn degraded_job_drops_reconfig_requests() {
        let mut m = master(20_000, 4, 2, 8.0);
        m.set_telemetry(Telemetry::default());
        m.tick(DT);
        m.record_scale_denial();
        assert!(m.profile().degraded, "profile must advertise the degraded state");
        m.apply_decision(reconfig_decision(alloc(4, 2, 8.0, 256.0), sync_plan(), false), DT);
        assert_eq!(
            *m.engine().exec_plan(),
            dlrover_perfmodel::ExecPlan::default(),
            "degraded jobs hold their shape: the request is dropped"
        );
        assert_eq!(m.telemetry().counter("master.reconfigs_started"), 0);
    }

    #[test]
    fn relayout_rides_the_reconfig_window() {
        let mut m = master(20_000, 4, 3, 8.0);
        m.set_telemetry(Telemetry::default());
        m.tick(DT);
        let parts_before = m.engine().partitions().len();
        // Relayout with an unchanged plan is still an action: it opens a
        // window of its own.
        m.apply_decision(
            reconfig_decision(
                alloc(4, 3, 8.0, 256.0),
                dlrover_perfmodel::ExecPlan::default(),
                true,
            ),
            DT,
        );
        assert_eq!(m.telemetry().counter("master.reconfigs_started"), 1);
        assert_eq!(m.engine().partitions().len(), parts_before, "relayout keeps the PS count");
        for _ in 0..4 {
            m.tick(DT);
        }
        assert_eq!(m.telemetry().counter("master.reconfigs_committed"), 1);
        run_to_end(&mut m, 100_000).expect("completes after the relayout");
        assert_eq!(m.engine().samples_done(), m.engine().spec().total_samples);
    }

    #[test]
    fn profile_reflects_engine() {
        let mut m = master(5_000, 4, 2, 8.0);
        m.tick(DT);
        let p = m.profile();
        assert_eq!(p.job_id, 1);
        assert!(p.throughput > 0.0);
        assert!(p.remaining_samples < 5_000 * 512);
        assert!(p.observation.is_some());
        assert!(p.ps_memory_alloc > 0);
    }

    #[test]
    fn scale_out_decision_accelerates_job() {
        let steps = 3_000;
        let mut slow = master(steps, 2, 2, 4.0);
        let jct_slow = run_to_end(&mut slow, 100_000).unwrap();

        let mut scaled = master(steps, 2, 2, 4.0);
        scaled.tick(DT);
        scaled.apply_decision(
            PolicyDecision {
                allocation: alloc(8, 4, 16.0, 256.0),
                strategy: MigrationStrategy::Seamless,
                reconfig: None,
            },
            SimDuration::from_secs(60),
        );
        let jct_scaled = run_to_end(&mut scaled, 100_000).unwrap();
        assert!(jct_scaled < jct_slow, "{jct_scaled} !< {jct_slow}");
        assert_eq!(scaled.scaling_count(), 1);
    }

    #[test]
    fn seamless_beats_stop_and_restart_for_same_target() {
        let steps = 3_000;
        let startup = SimDuration::from_mins(6);
        let target = alloc(8, 4, 16.0, 256.0);
        let mut seamless = master(steps, 2, 2, 4.0);
        seamless.tick(DT);
        seamless.apply_decision(
            PolicyDecision {
                allocation: target,
                strategy: MigrationStrategy::Seamless,
                reconfig: None,
            },
            startup,
        );
        let jct_seamless = run_to_end(&mut seamless, 100_000).unwrap();

        let mut restart = master(steps, 2, 2, 4.0);
        restart.tick(DT);
        restart.apply_decision(
            PolicyDecision {
                allocation: target,
                strategy: MigrationStrategy::StopAndRestart,
                reconfig: None,
            },
            startup,
        );
        let jct_restart = run_to_end(&mut restart, 100_000).unwrap();
        assert!(jct_seamless < jct_restart, "seamless {jct_seamless} !< restart {jct_restart}");
    }

    #[test]
    fn noop_decision_costs_nothing() {
        let mut m = master(1_000, 4, 2, 8.0);
        let current = m.allocation();
        m.apply_decision(
            PolicyDecision {
                allocation: current,
                strategy: MigrationStrategy::Seamless,
                reconfig: None,
            },
            SimDuration::from_secs(60),
        );
        assert_eq!(m.scaling_count(), 0);
    }

    #[test]
    fn scale_in_removes_workers() {
        let mut m = master(50_000, 8, 2, 8.0);
        m.tick(DT);
        m.apply_decision(
            PolicyDecision {
                allocation: alloc(3, 2, 8.0, 256.0),
                strategy: MigrationStrategy::Seamless,
                reconfig: None,
            },
            SimDuration::ZERO,
        );
        m.tick(DT);
        assert_eq!(m.engine().workers().len(), 3);
    }

    #[test]
    fn oom_prevention_saves_job_that_would_die() {
        // A job whose embedding growth overruns its PS memory. With
        // auto-scaling the master pre-scales and finishes; without it the
        // job OOMs — Table 4's mechanism in miniature.
        let mut spec = TrainingJobSpec::paper_default(20_000);
        spec.memory = dlrover_perfmodel::MemoryModel::new(1.0e9, 4096.0, 3.0e6, 2.0e6);
        let small_mem = alloc(4, 2, 8.0, 2.5); // 2.5 GB per PS

        let with = JobMaster::new(1, spec.clone(), small_mem, MasterConfig::default());
        let mut with = with;
        let ok = run_to_end(&mut with, 200_000);
        assert!(ok.is_some(), "auto memory scaling should save the job");
        assert!(with.scaling_count() >= 1);

        let mut without = JobMaster::new(
            2,
            spec,
            small_mem,
            MasterConfig { auto_memory_scaling: false, ..MasterConfig::default() },
        );
        let dead = run_to_end(&mut without, 200_000);
        assert!(dead.is_none(), "baseline should OOM");
    }

    #[test]
    fn straggler_event_is_reported() {
        let mut m = master(1_000_000, 4, 2, 8.0);
        m.tick(DT);
        m.engine_mut().set_worker_pod(0, PodState { cpu: 8.0, speed: 0.03 });
        let mut saw = false;
        for _ in 0..200 {
            if m.tick(DT).iter().any(|e| matches!(e, MasterEvent::Straggler(_))) {
                saw = true;
                break;
            }
        }
        assert!(saw, "straggler never detected");
    }

    #[test]
    fn oom_prevention_covers_skewed_partitions() {
        // Regression: with a skewed partition and even allocations, one PS
        // hits its per-PS wall while total used < total alloc. The forecast
        // must use the binding (per-PS) constraint and pre-scale in time.
        let mut spec = TrainingJobSpec::paper_default(50_000);
        spec.memory = dlrover_perfmodel::MemoryModel::new(1.0e9, 4096.0, 3.0e6, 2.0e6);
        let mut m = JobMaster::new(
            1,
            spec,
            alloc(4, 4, 8.0, 4.0), // 4 GB per PS, even
            MasterConfig { auto_ps_rebalance: false, ..MasterConfig::default() },
        );
        // Skew the parameter shares: PS 0 holds 55 % of the embedding.
        m.engine_mut().reshape_ps(
            dlrover_pstrain::AsyncCostModel::skewed_partitions(4, 8.0, 0.55),
            vec![4_000_000_000; 4],
        );
        let done = run_to_end(&mut m, 400_000);
        assert!(
            done.is_some(),
            "per-PS forecast should have pre-scaled before the skewed PS hit its wall"
        );
    }

    #[test]
    fn decisions_cannot_shrink_ps_memory_below_live_use() {
        // Regression: after OOM prevention pre-scales PS memory, a policy
        // decision computed from a stale allocation view must not push the
        // engine back under its live memory footprint.
        let mut spec = TrainingJobSpec::paper_default(50_000);
        spec.memory = dlrover_perfmodel::MemoryModel::new(1.0e9, 4096.0, 3.0e6, 2.0e6);
        let mut m = JobMaster::new(1, spec, alloc(4, 2, 8.0, 2.5), MasterConfig::default());
        // Run until prevention fires at least once.
        let mut prevented = false;
        for _ in 0..2_000 {
            for e in m.tick(DT) {
                if matches!(e, MasterEvent::OomPrevented { .. }) {
                    prevented = true;
                }
            }
            if prevented {
                break;
            }
        }
        assert!(prevented, "test needs the prevention path");
        // A stale decision asks for the original tiny PS memory.
        m.apply_decision(
            PolicyDecision {
                allocation: alloc(6, 2, 8.0, 2.5),
                strategy: MigrationStrategy::Seamless,
                reconfig: None,
            },
            SimDuration::ZERO,
        );
        let used_max = *m.engine().ps_memory_used().iter().max().unwrap();
        let alloc_min = *m.engine().ps_memory_alloc().iter().min().unwrap();
        assert!(alloc_min > used_max, "clamp failed: alloc {alloc_min} <= used {used_max}");
        // And the job still completes rather than OOMing on the next tick.
        assert!(run_to_end(&mut m, 400_000).is_some());
    }

    #[test]
    fn hot_ps_is_mitigated_seamlessly() {
        // Inject the paper's 3 %-CPU PS; the master must detect it,
        // rebalance shares onto healthy capacity, and the job must finish
        // much faster than with mitigation disabled.
        let run = |auto: bool| -> Option<SimTime> {
            let mut m = JobMaster::new(
                1,
                TrainingJobSpec::paper_default(20_000),
                alloc(8, 4, 8.0, 256.0),
                MasterConfig { auto_ps_rebalance: auto, ..MasterConfig::default() },
            );
            m.tick(DT);
            m.engine_mut().set_ps_pod(0, PodState { cpu: 8.0, speed: 0.03 });
            run_to_end(&mut m, 200_000)
        };
        let with = run(true).expect("mitigated job finishes");
        let without = run(false).expect("unmitigated job still finishes, slowly");
        assert!(
            with < SimTime::from_secs(without.as_micros() / 1_000_000 / 2),
            "mitigation should at least halve the JCT: {with} vs {without}"
        );
    }

    #[test]
    fn hot_ps_event_is_reported_when_auto_disabled() {
        let mut m = JobMaster::new(
            1,
            TrainingJobSpec::paper_default(1_000_000),
            alloc(8, 4, 8.0, 256.0),
            MasterConfig { auto_ps_rebalance: false, ..MasterConfig::default() },
        );
        m.tick(DT);
        m.engine_mut().set_ps_pod(0, PodState { cpu: 8.0, speed: 0.03 });
        let mut saw = false;
        for _ in 0..10 {
            if m.tick(DT).iter().any(|e| matches!(e, MasterEvent::HotPsDetected { .. })) {
                saw = true;
                break;
            }
        }
        assert!(saw, "hot PS never reported");
    }

    #[test]
    fn healthy_job_triggers_no_hot_ps_events() {
        let mut m = master(20_000, 8, 4, 8.0);
        for _ in 0..50 {
            for e in m.tick(DT) {
                assert!(
                    !matches!(
                        e,
                        MasterEvent::HotPsMitigated { .. } | MasterEvent::HotPsDetected { .. }
                    ),
                    "false positive hot-PS detection"
                );
            }
        }
    }

    #[test]
    fn duplicate_worker_failure_delivery_is_idempotent() {
        let mut m = master(20_000, 4, 2, 8.0);
        m.set_telemetry(Telemetry::default());
        m.tick(DT);
        m.engine_mut().fail_worker(0);
        // The same failure report arrives three times (at-least-once
        // transport): only one replacement may be scheduled.
        for _ in 0..3 {
            m.replace_failed_worker(SimDuration::from_secs(90));
        }
        assert_eq!(m.pending_worker_count(), 1);
        assert_eq!(m.telemetry().counter("master.worker_replacements"), 1);
        assert_eq!(m.telemetry().counter("master.duplicate_replacements_ignored"), 2);
        run_to_end(&mut m, 100_000).expect("completes");
        assert_eq!(m.engine().samples_done(), m.engine().spec().total_samples);
    }

    #[test]
    fn duplicate_ps_failure_delivery_is_idempotent() {
        let mut m = master(20_000, 4, 2, 8.0);
        m.set_telemetry(Telemetry::default());
        for _ in 0..4 {
            m.tick(DT);
        }
        m.handle_ps_failure(0, SimDuration::from_secs(120));
        m.handle_ps_failure(0, SimDuration::from_secs(120)); // duplicate
        assert_eq!(m.telemetry().counter("master.ps_recoveries"), 1);
        assert_eq!(m.telemetry().counter("master.duplicate_ps_failures_ignored"), 1);
        // A *later* failure of the same PS index is a new failure.
        m.tick(DT);
        m.handle_ps_failure(0, SimDuration::from_secs(120));
        assert_eq!(m.telemetry().counter("master.ps_recoveries"), 2);
        run_to_end(&mut m, 100_000).expect("completes");
    }

    #[test]
    fn drained_worker_budget_degrades_instead_of_relaunching() {
        let cfg = MasterConfig {
            failure_budget: FailureBudget { worker_relaunches: 1, ps_relaunches: 8 },
            ..MasterConfig::default()
        };
        let mut m =
            JobMaster::new(1, TrainingJobSpec::paper_default(20_000), alloc(4, 2, 8.0, 256.0), cfg);
        m.set_telemetry(Telemetry::default());
        m.tick(DT);
        // First failure: budget covers the relaunch.
        m.engine_mut().fail_worker(0);
        m.replace_failed_worker(SimDuration::from_secs(60));
        assert_eq!(m.health(), JobHealth::Healthy);
        assert_eq!(m.pending_worker_count(), 1);
        for _ in 0..4 {
            m.tick(DT);
        }
        // Second failure: budget dry → degrade to the surviving shape.
        m.engine_mut().fail_worker(1);
        m.replace_failed_worker(SimDuration::from_secs(60));
        assert_eq!(m.health(), JobHealth::Degraded);
        assert_eq!(m.pending_worker_count(), 0, "no relaunch past the budget");
        assert_eq!(m.allocation().shape.workers, 3, "target shrunk to feasible");
        let events = m.telemetry().snapshot().events;
        assert!(
            events.iter().any(|e| matches!(e.kind, EventKind::JobDegraded { workers: 3, .. })),
            "degradation recorded"
        );
        // Degraded-mode goodput: the job still completes on 3 workers.
        run_to_end(&mut m, 100_000).expect("degraded job completes");
        assert_eq!(m.engine().samples_done(), m.engine().spec().total_samples);
    }

    #[test]
    fn drained_ps_budget_is_terminal() {
        let cfg = MasterConfig {
            failure_budget: FailureBudget { worker_relaunches: 12, ps_relaunches: 0 },
            ..MasterConfig::default()
        };
        let mut m =
            JobMaster::new(1, TrainingJobSpec::paper_default(20_000), alloc(4, 2, 8.0, 256.0), cfg);
        m.set_telemetry(Telemetry::default());
        m.tick(DT);
        m.handle_ps_failure(0, SimDuration::from_secs(60));
        assert_eq!(m.health(), JobHealth::Failed);
        assert_eq!(m.telemetry().counter("master.ps_recoveries"), 0);
        assert!(m.tick(DT).is_empty(), "failed job is terminal");
        assert!(m.completed_at().is_none());
    }

    #[test]
    fn scale_denial_falls_back_to_feasible_shape() {
        let mut m = master(20_000, 4, 2, 8.0);
        m.set_telemetry(Telemetry::default());
        m.tick(DT);
        m.engine_mut().fail_worker(0);
        // The cluster conclusively denied the replacement (retry policy
        // exhausted): the master adopts the 3-worker plan it can have.
        assert_eq!(m.record_scale_denial(), JobHealth::Degraded);
        assert_eq!(m.allocation().shape.workers, 3);
        // Denial-storm recovery must not relaunch behind the new target.
        m.replace_failed_worker(SimDuration::from_secs(60));
        assert_eq!(m.pending_worker_count(), 0, "feasible target already met");
        run_to_end(&mut m, 100_000).expect("completes degraded");
    }

    #[test]
    fn silent_worker_is_detected_failed_and_replaceable() {
        let cfg = MasterConfig {
            silent_worker_timeout: SimDuration::from_secs(60),
            ..MasterConfig::default()
        };
        let mut m =
            JobMaster::new(1, TrainingJobSpec::paper_default(20_000), alloc(4, 2, 8.0, 256.0), cfg);
        m.set_telemetry(Telemetry::default());
        m.tick(DT);
        m.engine_mut().hang_worker(2);
        // The zombie stops heartbeating; within a few ticks the master
        // fails it and surfaces SilentWorker.
        let mut detected = None;
        for _ in 0..10 {
            if let Some(MasterEvent::SilentWorker(idx)) =
                m.tick(DT).into_iter().find(|e| matches!(e, MasterEvent::SilentWorker(_)))
            {
                detected = Some(idx);
                break;
            }
        }
        assert_eq!(detected, Some(2));
        assert!(!m.engine().worker_is_alive(2), "zombie was failed");
        assert_eq!(m.telemetry().counter("master.silent_workers"), 1);
        // Driver-side replacement, then exactly-once completion.
        m.replace_failed_worker(SimDuration::from_secs(90));
        run_to_end(&mut m, 100_000).expect("completes");
        assert_eq!(m.engine().samples_done(), m.engine().spec().total_samples);
        // No further silent reports after the failure.
        let events = m.telemetry().snapshot().events;
        let silent = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SilentWorkerDetected { .. }))
            .count();
        assert_eq!(silent, 1);
    }

    #[test]
    fn failover_replay_resumes_at_the_acked_watermark() {
        use crate::replay::ReplayedJobState;

        let spec = TrainingJobSpec::paper_default(20_000);
        let sink = Telemetry::default();
        let mut m =
            JobMaster::new(7, spec.clone(), alloc(4, 2, 8.0, 256.0), MasterConfig::default());
        m.set_telemetry(sink.clone());
        for _ in 0..20 {
            m.tick(DT);
        }
        let crash_at = m.engine().now();
        assert!(m.completed_at().is_none(), "mid-flight crash");

        // The master process dies; a new incarnation replays the event log.
        let events = sink.snapshot().events;
        let replayed = ReplayedJobState::from_events(&events);
        assert!(replayed.samples_done > 0, "acked work visible in the log");
        assert!(replayed.samples_done <= m.engine().samples_done());
        let restart_at = crash_at + SimDuration::from_secs(120);
        let (mut m2, recovery) = JobMaster::from_replay(
            7,
            spec,
            m.allocation(),
            MasterConfig::default(),
            &replayed,
            crash_at,
            restart_at,
        );
        assert_eq!(recovery.path, crate::replay::RecoveryPath::MasterReplay);
        assert_eq!(recovery.downtime, SimDuration::from_secs(120));
        assert_eq!(recovery.samples_done, replayed.samples_done);
        assert_eq!(m2.engine().now(), restart_at);
        assert_eq!(m2.engine().samples_done(), replayed.samples_done, "watermark adopted");
        assert_eq!(m2.engine().workers().len(), replayed.live_workers.len().max(1));
        let done = run_to_end(&mut m2, 100_000).expect("restarted job completes");
        assert!(done > restart_at);
        assert_eq!(
            m2.engine().samples_done(),
            m2.engine().spec().total_samples,
            "no omission, no duplication across failover"
        );
    }

    #[test]
    fn pending_workers_join_after_startup() {
        let mut m = master(1_000_000, 2, 2, 8.0);
        m.tick(DT);
        m.apply_decision(
            PolicyDecision {
                allocation: alloc(6, 2, 8.0, 256.0),
                strategy: MigrationStrategy::Seamless,
                reconfig: None,
            },
            SimDuration::from_secs(120),
        );
        // Immediately after: still 2 live workers.
        assert_eq!(m.engine().workers().len(), 2);
        m.tick(DT); // 30s — not yet
        assert_eq!(m.engine().workers().len(), 2);
        for _ in 0..4 {
            m.tick(DT);
        }
        assert_eq!(m.engine().workers().len(), 6);
    }
}
