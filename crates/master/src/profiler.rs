//! The runtime profiler: collects what the cluster brain's optimizer needs.
//!
//! "The profiler monitors and collects runtime information for each job
//! (i.e., from its workers and PSes) in a fixed interval and reports it to
//! the optimizer of the cluster brain." Two streams matter:
//!
//! * **throughput observations** — `(job shape, measured iteration time)`
//!   pairs for the online NNLS fit of the resource–performance model;
//! * **memory samples** — per-job memory totals feeding the OOM predictor.

use dlrover_perfmodel::{
    MemoryPredictor, MemorySample, NnlsError, ThroughputModel, ThroughputObservation,
    WorkloadConstants,
};
use dlrover_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A snapshot the profiler reports to the brain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRuntimeProfile {
    /// Job identifier.
    pub job_id: u64,
    /// Report time.
    pub at: SimTime,
    /// Current measured throughput, samples/s.
    pub throughput: f64,
    /// Samples remaining.
    pub remaining_samples: u64,
    /// Latest observation (shape + iteration time).
    pub observation: Option<ThroughputObservation>,
    /// Total PS memory in use, bytes.
    pub ps_memory_used: u64,
    /// Total PS memory allocated, bytes.
    pub ps_memory_alloc: u64,
    /// The job's active execution plan (reconfiguration state).
    pub exec: dlrover_perfmodel::ExecPlan,
    /// True when the job is running degraded (§6): degraded jobs hold
    /// their shape, so policies must not reconfigure them.
    pub degraded: bool,
}

/// Accumulates observations and fits models on demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profiler {
    constants: WorkloadConstants,
    observations: Vec<ThroughputObservation>,
    memory: MemoryPredictor,
    /// Maximum retained observations (sliding window).
    window: usize,
}

impl Profiler {
    /// Creates a profiler for a job with the given workload constants.
    pub fn new(constants: WorkloadConstants, window: usize) -> Self {
        Profiler {
            constants,
            observations: Vec::new(),
            memory: MemoryPredictor::new(window.max(2)),
            window: window.max(4),
        }
    }

    /// Records a throughput observation.
    pub fn record_observation(&mut self, obs: ThroughputObservation) {
        self.observations.push(obs);
        if self.observations.len() > self.window {
            let excess = self.observations.len() - self.window;
            self.observations.drain(..excess);
        }
    }

    /// Records a memory sample.
    pub fn record_memory(&mut self, at: SimTime, used_bytes: u64) {
        self.memory.observe(MemorySample { time: at.as_secs_f64(), used_bytes: used_bytes as f64 });
    }

    /// Number of retained observations.
    pub fn observation_count(&self) -> usize {
        self.observations.len()
    }

    /// Distinct shapes among retained observations — the fit is only
    /// well-posed with several distinct shapes.
    pub fn distinct_shapes(&self) -> usize {
        dlrover_perfmodel::distinct_shape_count(&self.observations)
    }

    /// Fits the throughput model from the retained window. Returns the model
    /// and its RMSLE on the window.
    pub fn fit(&self) -> Result<(ThroughputModel, f64), NnlsError> {
        ThroughputModel::fit(self.constants, &self.observations)
    }

    /// The memory predictor (for OOM forecasting).
    pub fn memory(&self) -> &MemoryPredictor {
        &self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_perfmodel::{JobShape, ModelCoefficients};

    fn truth() -> ThroughputModel {
        ThroughputModel::new(WorkloadConstants::default(), ModelCoefficients::paper_reference())
    }

    #[test]
    fn window_slides() {
        let mut p = Profiler::new(WorkloadConstants::default(), 8);
        let s = JobShape::new(2, 1, 4.0, 4.0, 512);
        for i in 0..20 {
            p.record_observation(ThroughputObservation { shape: s, iter_time: 1.0 + i as f64 });
        }
        assert_eq!(p.observation_count(), 8);
    }

    #[test]
    fn distinct_shapes_counts_correctly() {
        let mut p = Profiler::new(WorkloadConstants::default(), 32);
        for w in [1u32, 2, 4] {
            let s = JobShape::new(w, 1, 4.0, 4.0, 512);
            p.record_observation(ThroughputObservation { shape: s, iter_time: 1.0 });
            p.record_observation(ThroughputObservation { shape: s, iter_time: 1.1 });
        }
        assert_eq!(p.distinct_shapes(), 3);
        assert_eq!(p.observation_count(), 6);
    }

    #[test]
    fn fit_recovers_truth_from_profiled_shapes() {
        let truth = truth();
        let mut p = Profiler::new(truth.constants, 128);
        for w in [1u32, 2, 4, 8] {
            for ps in [1u32, 2, 4] {
                for cpu in [2.0, 8.0] {
                    let s = JobShape::new(w, ps, cpu, cpu, 512);
                    p.record_observation(ThroughputObservation {
                        shape: s,
                        iter_time: truth.iter_time(&s),
                    });
                }
            }
        }
        let (fitted, err) = p.fit().expect("fit");
        assert!(err < 1e-6);
        let s = JobShape::new(6, 3, 5.0, 5.0, 512);
        let rel = (fitted.throughput(&s) - truth.throughput(&s)).abs() / truth.throughput(&s);
        assert!(rel < 0.01, "interpolation error {rel}");
    }

    #[test]
    fn memory_samples_feed_predictor() {
        let mut p = Profiler::new(WorkloadConstants::default(), 8);
        for i in 0..5u64 {
            p.record_memory(SimTime::from_secs(i * 60), (10 + i) * 1_000_000_000);
        }
        let forecast = p.memory().forecast(100.0e9, 1e9).expect("enough samples");
        assert!(forecast.growth_rate > 0.0);
    }

    #[test]
    fn empty_fit_errors() {
        let p = Profiler::new(WorkloadConstants::default(), 8);
        assert!(p.fit().is_err());
    }
}
