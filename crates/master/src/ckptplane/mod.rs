//! Tiered flash-checkpoint plane (§5.3) shared by every job in the
//! cluster.
//!
//! Two tiers, as in production DLRover-RM: a memory-speed *hot* tier
//! (the distributed caching service that makes flash checkpoints
//! sub-second for a 20 GB model) with finite capacity and
//! oldest-save-first eviction, and a throttled *remote* tier (RDS,
//! §2.2: "5-10 minutes" for a full checkpoint) behind a single shared
//! FIFO transfer queue. Checkpoints
//! are content-chunked ([`ChunkStore`]) so consecutive saves and family
//! peers dedup against each other, and a checkpoint is *durable* only
//! once its manifest record lands remotely — the commit record the
//! durability oracle invariants audit.
//!
//! [`crate::witness`] builds the master-less recovery path on top:
//! shard peers co-sign manifests and pin quorum-certified copies so a
//! job can recover without the master's event log.

mod chunks;
mod plane;

pub use chunks::{manifest_chunks, ChunkRef, ChunkStore, ChunkingConfig};
pub use plane::{
    CheckpointPlane, CkptPlaneConfig, Manifest, PlaneStats, RestoreOutcome, RestoreSource,
    SaveOutcome,
};
