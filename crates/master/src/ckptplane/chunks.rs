//! Content-chunked checkpoint representation with cross-job dedup.
//!
//! DLRover-RM's flash checkpoints (§5.3) are dominated by embedding tables
//! whose *static* regions (dense parameters, optimizer state, saturated
//! vocabulary rows) barely change between saves, while a small *dynamic*
//! fraction churns every step. We model a checkpoint as a deterministic
//! set of content-addressed chunks: a chunk key is a pure function of what
//! the region would contain at a given training step, so two saves that
//! would serialize identical bytes produce identical keys — the dedup a
//! content-addressed store gets for free — without simulating actual
//! tensor payloads.
//!
//! Jobs in the same *model family* (same recommender architecture, e.g.
//! replicas of a CTR model retrained per region) share static-region keys,
//! which is where the cross-job dedup of the shared remote tier comes from.

use serde::{Deserialize, Serialize};

/// How a logical checkpoint is cut into content-addressed chunks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkingConfig {
    /// Target chunk size in bytes (the last chunk of a manifest is the
    /// remainder).
    pub chunk_bytes: u64,
    /// Fraction (permille) of regions whose content is *static*: identical
    /// across saves and shared across jobs of the same model family.
    pub static_permille: u32,
    /// Churn rate (permille) of dynamic regions per training step: after
    /// `1000 / churn_permille` steps, a dynamic region's content has
    /// changed and its chunk key rolls over.
    pub churn_permille: u32,
}

impl Default for ChunkingConfig {
    fn default() -> Self {
        // 64 MB chunks; ~60 % of a recommender checkpoint is static
        // (dense params + saturated embedding rows), and a dynamic region
        // rolls over roughly every 20 steps.
        ChunkingConfig { chunk_bytes: 64_000_000, static_permille: 600, churn_permille: 50 }
    }
}

/// A content-addressed chunk reference: key plus size. Two references with
/// the same key denote byte-identical content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkRef {
    /// Content hash of the chunk.
    pub key: u64,
    /// Chunk size in bytes.
    pub bytes: u64,
}

/// splitmix64 finalizer: a cheap, high-quality deterministic mixer used to
/// derive content keys. Not security-relevant; collisions at our chunk
/// counts (~1e5 keys in 2^64 space) are negligible.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives the chunk set a checkpoint of `total_bytes` for `(job, family)`
/// at training `step` would serialize.
///
/// Region `r` of the checkpoint is static when `hash(family, r)` falls
/// under `static_permille` — its key depends only on `(family, r, bytes)`
/// and is therefore shared by every job of the family and every step.
/// Dynamic regions version as `(step * churn + phase) / 1000`, so a region
/// keeps its key for `~1000/churn` steps and then rolls over; phases are
/// staggered per region so rollovers spread instead of thundering.
pub fn manifest_chunks(
    job: u64,
    family: u64,
    step: u64,
    total_bytes: u64,
    cfg: &ChunkingConfig,
) -> Vec<ChunkRef> {
    let chunk = cfg.chunk_bytes.max(1);
    let regions = total_bytes.div_ceil(chunk).max(1);
    let mut out = Vec::with_capacity(regions as usize);
    for r in 0..regions {
        let bytes = if r == regions - 1 && !total_bytes.is_multiple_of(chunk) && total_bytes > 0 {
            total_bytes % chunk
        } else {
            chunk.min(total_bytes.max(1))
        };
        let is_static =
            mix64(family ^ mix64(r ^ 0x5747_4943)) % 1000 < u64::from(cfg.static_permille);
        let key = if is_static {
            // Shared across jobs of the family and across steps.
            mix64(mix64(family ^ 0x5354_4154) ^ mix64(r) ^ mix64(bytes))
        } else {
            let phase = mix64(job ^ mix64(r)) % 1000;
            let version = (step * u64::from(cfg.churn_permille) + phase) / 1000;
            mix64(mix64(job ^ 0x44_594e) ^ mix64(r) ^ mix64(version) ^ mix64(bytes))
        };
        out.push(ChunkRef { key, bytes });
    }
    out
}

/// A refcounted content-addressed chunk store (one per storage tier).
///
/// `acquire` returns whether the chunk was *newly* stored — the caller
/// charges transfer bytes only for those; duplicate acquisitions are the
/// dedup hits. `release` returns the bytes freed when the last reference
/// drops.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkStore {
    entries: std::collections::BTreeMap<u64, ChunkEntry>,
    stored_bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct ChunkEntry {
    bytes: u64,
    refs: u64,
}

impl ChunkStore {
    /// Adds a reference to `chunk`, storing it if absent. Returns `true`
    /// when the chunk was newly stored (bytes must be transferred).
    pub fn acquire(&mut self, chunk: ChunkRef) -> bool {
        match self.entries.get_mut(&chunk.key) {
            Some(e) => {
                e.refs += 1;
                false
            }
            None => {
                self.entries.insert(chunk.key, ChunkEntry { bytes: chunk.bytes, refs: 1 });
                self.stored_bytes += chunk.bytes;
                true
            }
        }
    }

    /// Drops a reference to `key`. Returns the bytes freed (non-zero only
    /// when the last reference dropped). Unknown keys are ignored.
    pub fn release(&mut self, key: u64) -> u64 {
        let Some(e) = self.entries.get_mut(&key) else { return 0 };
        e.refs -= 1;
        if e.refs == 0 {
            let bytes = e.bytes;
            self.entries.remove(&key);
            self.stored_bytes -= bytes;
            bytes
        } else {
            0
        }
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Physical bytes resident (each chunk counted once regardless of
    /// reference count).
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Number of distinct chunks resident.
    pub fn chunk_count(&self) -> usize {
        self.entries.len()
    }

    /// Order-independent digest of the store's full state (keys, sizes,
    /// refcounts, total). Used by determinism tests to compare stores
    /// built through different interleavings.
    pub fn digest(&self) -> u64 {
        let mut acc = mix64(self.stored_bytes ^ 0x00D1_6E57);
        for (key, e) in &self.entries {
            acc = mix64(acc ^ mix64(*key) ^ mix64(e.bytes) ^ mix64(e.refs));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_total_bytes_exactly() {
        let cfg = ChunkingConfig::default();
        for total in [1u64, 64_000_000, 64_000_001, 4_400_000_000] {
            let chunks = manifest_chunks(7, 2, 100, total, &cfg);
            let sum: u64 = chunks.iter().map(|c| c.bytes).sum();
            assert_eq!(sum, total, "chunks must tile the checkpoint");
        }
    }

    #[test]
    fn same_family_shares_static_chunks_different_families_do_not() {
        let cfg = ChunkingConfig::default();
        let a = manifest_chunks(1, 9, 500, 2_000_000_000, &cfg);
        let b = manifest_chunks(2, 9, 500, 2_000_000_000, &cfg);
        let c = manifest_chunks(3, 4, 500, 2_000_000_000, &cfg);
        let keys =
            |v: &[ChunkRef]| v.iter().map(|c| c.key).collect::<std::collections::BTreeSet<_>>();
        let shared_ab = keys(&a).intersection(&keys(&b)).count();
        let shared_ac = keys(&a).intersection(&keys(&c)).count();
        assert!(
            shared_ab > a.len() / 3,
            "family peers share static regions: {shared_ab}/{}",
            a.len()
        );
        assert_eq!(shared_ac, 0, "different families share nothing");
    }

    #[test]
    fn consecutive_steps_overlap_heavily_distant_steps_less() {
        let cfg = ChunkingConfig::default();
        let keys = |step: u64| {
            manifest_chunks(5, 1, step, 3_000_000_000, &cfg)
                .iter()
                .map(|c| c.key)
                .collect::<std::collections::BTreeSet<_>>()
        };
        let base = keys(1000);
        let near = base.intersection(&keys(1002)).count();
        let far = base.intersection(&keys(1200)).count();
        assert!(near > far, "chunk churn must grow with step distance ({near} vs {far})");
        assert!(far * 10 >= base.len() * 5, "static floor persists even far apart");
    }

    #[test]
    fn store_refcounts_and_dedups() {
        let mut s = ChunkStore::default();
        let c = ChunkRef { key: 42, bytes: 100 };
        assert!(s.acquire(c), "first acquire stores");
        assert!(!s.acquire(c), "second acquire dedups");
        assert_eq!(s.stored_bytes(), 100);
        assert_eq!(s.release(42), 0, "one ref remains");
        assert_eq!(s.release(42), 100, "last ref frees");
        assert_eq!(s.stored_bytes(), 0);
        assert!(!s.contains(42));
    }

    #[test]
    fn digest_is_order_independent_but_state_sensitive() {
        let a1 = ChunkRef { key: 1, bytes: 10 };
        let a2 = ChunkRef { key: 2, bytes: 20 };
        let mut s1 = ChunkStore::default();
        s1.acquire(a1);
        s1.acquire(a2);
        let mut s2 = ChunkStore::default();
        s2.acquire(a2);
        s2.acquire(a1);
        assert_eq!(s1.digest(), s2.digest());
        s2.acquire(a1);
        assert_ne!(s1.digest(), s2.digest(), "refcounts are part of the digest");
    }
}
