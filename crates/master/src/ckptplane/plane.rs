//! The tiered checkpoint plane: hot tier + shared bandwidth-limited
//! remote tier with crash-consistent commit records.
//!
//! Models the production layout of §5.3: flash checkpoints land in a
//! memory-speed caching tier (sub-second for 20 GB) and are flushed
//! asynchronously to remote disk storage whose bandwidth is *shared
//! across every tenant in the cluster* — the reason RDS saves take
//! "5-10 minutes" (§2.2). The plane is deterministic in virtual time:
//! a single FIFO transfer queue drains at the remote tier's write
//! bandwidth (piecewise-constant under outage/collapse fault windows),
//! and a checkpoint becomes *durable* only when its manifest record
//! lands remotely ([`Manifest::committed_at`]). Restores that cannot be
//! served from the hot tier must wait for both a committed manifest and
//! a reachable remote tier — the no-uncommitted-restore invariant the
//! oracle audits.

use std::collections::{BTreeMap, VecDeque};

use dlrover_sim::{SimDuration, SimTime};
use dlrover_telemetry::{EventKind, Telemetry};
use serde::{Deserialize, Serialize};

use super::chunks::{manifest_chunks, ChunkRef, ChunkStore, ChunkingConfig};

/// Configuration of the tiered checkpoint plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CkptPlaneConfig {
    /// Cadence of periodic flash checkpoints per job.
    pub interval: SimDuration,
    /// Hot-tier capacity in bytes (physical, after dedup). Oldest
    /// resident manifests are evicted when exceeded.
    pub hot_capacity_bytes: u64,
    /// Hot-tier write bandwidth, bytes/s ("less than 1 second for a
    /// 20 GB model", §5.3).
    pub hot_write_bandwidth: f64,
    /// Hot-tier read bandwidth, bytes/s.
    pub hot_read_bandwidth: f64,
    /// Fixed hot-tier per-operation latency.
    pub hot_base_latency: SimDuration,
    /// Remote-tier write bandwidth, bytes/s, shared by the single FIFO
    /// transfer queue (§2.2: throttled RDS).
    pub remote_write_bandwidth: f64,
    /// Remote-tier read bandwidth, bytes/s (restores bypass the write
    /// queue).
    pub remote_read_bandwidth: f64,
    /// Fixed remote-tier per-operation latency, folded into each
    /// transfer as equivalent bytes.
    pub remote_base_latency: SimDuration,
    /// How checkpoints are cut into content-addressed chunks.
    pub chunking: ChunkingConfig,
    /// Committed manifests retained per job before the oldest is
    /// retired and its chunks released. Must be >= 2 so a corrupted
    /// newest manifest always leaves a fallback.
    pub retain_per_job: usize,
}

impl Default for CkptPlaneConfig {
    fn default() -> Self {
        // Bandwidth figures match `dlrover_pstrain::ckpt` (§2.2/§5.3).
        CkptPlaneConfig {
            interval: SimDuration::from_secs(120),
            hot_capacity_bytes: 16_000_000_000,
            hot_write_bandwidth: 25.0e9,
            hot_read_bandwidth: 30.0e9,
            hot_base_latency: SimDuration::from_millis(50),
            remote_write_bandwidth: 60.0e6,
            remote_read_bandwidth: 120.0e6,
            remote_base_latency: SimDuration::from_secs(15),
            chunking: ChunkingConfig::default(),
            retain_per_job: 3,
        }
    }
}

/// A checkpoint manifest: the commit record that makes a checkpoint
/// durable once it lands in the remote tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Plane-wide manifest id (save order).
    pub id: u64,
    /// Owning job.
    pub job: u64,
    /// Model family (governs cross-job dedup).
    pub family: u64,
    /// Training step at save time.
    pub step: u64,
    /// Samples-processed watermark at save time.
    pub samples: u64,
    /// Logical checkpoint size.
    pub bytes: u64,
    /// Bytes new to the remote tier at save time (after dedup).
    pub new_bytes: u64,
    /// Content chunks.
    pub chunks: Vec<ChunkRef>,
    /// Checksum over the chunk keys.
    pub checksum: u64,
    /// Set when the manifest record landed remotely (durability point).
    pub committed_at: Option<SimTime>,
    /// Set by a `ManifestCorruption` fault; a corrupted manifest is
    /// skipped at restore in favor of an older committed one.
    pub corrupted: bool,
}

/// Where a restore was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestoreSource {
    /// Hot-tier resident copy (memory speed).
    Hot,
    /// Remote tier (committed manifest; waits out outages).
    Remote,
}

impl RestoreSource {
    /// Stable label used in telemetry events.
    pub fn label(self) -> &'static str {
        match self {
            RestoreSource::Hot => "hot",
            RestoreSource::Remote => "remote",
        }
    }
}

/// Result of a [`CheckpointPlane::save`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaveOutcome {
    /// Id of the manifest created.
    pub manifest: u64,
    /// Synchronous training pause charged for the hot-tier write.
    pub hot_pause: SimDuration,
    /// Bytes newly transferred to the remote tier.
    pub new_bytes: u64,
    /// Bytes deduplicated against remote content (this job's previous
    /// saves and family peers).
    pub dedup_bytes: u64,
}

/// Result of a [`CheckpointPlane::restore`]: the restore *starts* at
/// `ready_at` (after waiting out any remote outage) and occupies
/// `duration` of read time; training resumes at `ready_at + duration`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestoreOutcome {
    /// Manifest restored.
    pub manifest: u64,
    /// Training step encoded in the manifest.
    pub step: u64,
    /// Samples watermark encoded in the manifest.
    pub samples: u64,
    /// Bytes read.
    pub bytes: u64,
    /// When the tier could begin serving the read.
    pub ready_at: SimTime,
    /// Read time once serving begins.
    pub duration: SimDuration,
    /// Serving tier.
    pub source: RestoreSource,
}

impl RestoreOutcome {
    /// When training can resume.
    pub fn resume_at(&self) -> SimTime {
        self.ready_at + self.duration
    }
}

/// Aggregate counters, serialized into experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PlaneStats {
    /// Checkpoints staged.
    pub saves: u64,
    /// Logical bytes staged.
    pub staged_bytes: u64,
    /// Bytes actually pushed to the remote tier.
    pub new_remote_bytes: u64,
    /// Bytes saved by dedup (remote tier).
    pub dedup_bytes: u64,
    /// Manifests committed (durable).
    pub commits: u64,
    /// Restores served.
    pub restores: u64,
    /// Bytes read by restores.
    pub restored_bytes: u64,
    /// Hot-tier evictions.
    pub hot_evictions: u64,
    /// Manifests corrupted by faults.
    pub corruptions: u64,
    /// Restores that skipped a corrupted manifest for an older one.
    pub corrupt_fallbacks: u64,
    /// Microseconds the remote write pipe spent actively transferring.
    pub remote_busy_us: u64,
}

impl PlaneStats {
    /// Dedup ratio: fraction of staged remote traffic avoided.
    pub fn dedup_ratio(&self) -> f64 {
        let total = self.new_remote_bytes + self.dedup_bytes;
        if total == 0 {
            0.0
        } else {
            self.dedup_bytes as f64 / total as f64
        }
    }

    /// Remote write-bandwidth occupancy over `[0, now]`.
    pub fn remote_occupancy(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.remote_busy_us as f64 / now.as_micros() as f64
        }
    }
}

/// An in-flight manifest transfer. `cost_bytes` includes the base
/// latency expressed as equivalent bytes at nominal bandwidth, so a
/// fully-deduped manifest still pays the per-operation latency.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Transfer {
    manifest: u64,
    cost_bytes: f64,
}

/// The deterministic tiered checkpoint plane shared by every job.
#[derive(Debug)]
pub struct CheckpointPlane {
    cfg: CkptPlaneConfig,
    telemetry: Telemetry,
    manifests: BTreeMap<u64, Manifest>,
    /// Per-job manifest ids in save order (retired ids are dropped).
    by_job: BTreeMap<u64, Vec<u64>>,
    next_id: u64,
    hot: ChunkStore,
    /// Hot-resident manifest ids, oldest save first (eviction order).
    hot_residents: VecDeque<u64>,
    hot_manifest_of_job: BTreeMap<u64, u64>,
    remote: ChunkStore,
    queue: VecDeque<Transfer>,
    /// How far the remote pipe has been simulated.
    remote_clock: SimTime,
    /// Remote-tier outage windows `(from, until)`.
    outages: Vec<(SimTime, SimTime)>,
    /// Bandwidth-collapse windows `(from, until, factor_permille)`.
    collapses: Vec<(SimTime, SimTime, u32)>,
    stats: PlaneStats,
}

impl CheckpointPlane {
    /// Creates a plane with the given configuration.
    pub fn new(cfg: CkptPlaneConfig) -> Self {
        assert!(cfg.retain_per_job >= 2, "retain_per_job must leave a corruption fallback");
        CheckpointPlane {
            cfg,
            telemetry: Telemetry::default(),
            manifests: BTreeMap::new(),
            by_job: BTreeMap::new(),
            next_id: 0,
            hot: ChunkStore::default(),
            hot_residents: VecDeque::new(),
            hot_manifest_of_job: BTreeMap::new(),
            remote: ChunkStore::default(),
            queue: VecDeque::new(),
            remote_clock: SimTime::ZERO,
            outages: Vec::new(),
            collapses: Vec::new(),
            stats: PlaneStats::default(),
        }
    }

    /// Routes plane events into `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The plane's configuration.
    pub fn config(&self) -> &CkptPlaneConfig {
        &self.cfg
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &PlaneStats {
        &self.stats
    }

    /// Manifest lookup (includes in-flight and corrupted manifests).
    pub fn manifest(&self, id: u64) -> Option<&Manifest> {
        self.manifests.get(&id)
    }

    /// Physical bytes resident in the hot tier.
    pub fn hot_bytes(&self) -> u64 {
        self.hot.stored_bytes()
    }

    /// Physical bytes resident in the remote tier (committed or
    /// in-flight).
    pub fn remote_bytes(&self) -> u64 {
        self.remote.stored_bytes()
    }

    /// Manifests queued behind the remote write pipe.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether `job` has staged any manifest (committed or in-flight).
    pub fn has_manifests(&self, job: u64) -> bool {
        self.by_job.get(&job).is_some_and(|ids| !ids.is_empty())
    }

    /// Declares a remote-tier outage over `[from, until)`: the write
    /// pipe stalls and restores cannot start until the window passes.
    pub fn set_remote_outage(&mut self, from: SimTime, until: SimTime) {
        if until > from {
            self.outages.push((from, until));
        }
    }

    /// Declares a bandwidth collapse over `[from, until)`: remote write
    /// bandwidth divides by `factor_permille / 1000`.
    pub fn set_bandwidth_collapse(&mut self, from: SimTime, until: SimTime, factor_permille: u32) {
        if until > from && factor_permille > 1000 {
            self.collapses.push((from, until, factor_permille));
        }
    }

    /// Whether `at` falls inside a remote outage window.
    pub fn remote_unreachable(&self, at: SimTime) -> bool {
        self.outages.iter().any(|&(from, until)| at >= from && at < until)
    }

    /// First instant at or after `at` where the remote tier is
    /// reachable (chained outage windows are walked through).
    pub fn remote_reachable_at(&self, at: SimTime) -> SimTime {
        let mut t = at;
        // Windows are few (fault plans schedule a handful); loop until a
        // fixed point.
        loop {
            let mut moved = false;
            for &(from, until) in &self.outages {
                if t >= from && t < until {
                    t = until;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
    }

    /// Remote write rate at `t` and the next instant (bounded by `now`)
    /// where the rate may change.
    fn rate_and_boundary(&self, t: SimTime, now: SimTime) -> (f64, SimTime) {
        let mut rate = self.cfg.remote_write_bandwidth;
        let mut boundary = now;
        for &(from, until, factor) in &self.collapses {
            if t >= from && t < until {
                rate *= 1000.0 / f64::from(factor);
                boundary = boundary.min(until);
            } else if from > t {
                boundary = boundary.min(from);
            }
        }
        for &(from, until) in &self.outages {
            if t >= from && t < until {
                rate = 0.0;
                boundary = boundary.min(until);
            } else if from > t {
                boundary = boundary.min(from);
            }
        }
        (rate, boundary)
    }

    /// Drains the remote transfer queue up to `now`, committing every
    /// manifest whose record lands. Must be called with monotonically
    /// non-decreasing `now` (virtual time).
    pub fn advance(&mut self, now: SimTime) {
        while self.remote_clock < now {
            if self.queue.is_empty() {
                self.remote_clock = now;
                break;
            }
            let (rate, boundary) = self.rate_and_boundary(self.remote_clock, now);
            if rate <= 0.0 {
                // Outage: the pipe idles until the window closes. The
                // boundary is strictly ahead of the clock inside a
                // window (min of `now` and the window end, both > t).
                self.remote_clock = boundary;
                if self.remote_clock >= now {
                    break;
                }
                continue;
            }
            let head = self.queue.front_mut().expect("checked non-empty above");
            let seg = boundary.saturating_since(self.remote_clock).as_secs_f64();
            let need = head.cost_bytes / rate;
            if need <= seg {
                let finish = self.remote_clock + SimDuration::from_secs_f64(need);
                self.stats.remote_busy_us += SimDuration::from_secs_f64(need).as_micros();
                let id = head.manifest;
                self.queue.pop_front();
                self.remote_clock = finish;
                let m = self.manifests.get_mut(&id).expect("queued manifest exists");
                m.committed_at = Some(finish);
                self.stats.commits += 1;
                self.telemetry.record(
                    finish,
                    EventKind::CheckpointCommitted { job: m.job, manifest: id, step: m.step },
                );
                let job = m.job;
                self.retire_old_manifests(job);
            } else {
                head.cost_bytes -= rate * seg;
                self.stats.remote_busy_us += SimDuration::from_secs_f64(seg).as_micros();
                self.remote_clock = boundary;
            }
        }
    }

    /// Stages a checkpoint for `(job, family)` at `now`. The hot write
    /// is synchronous (returned as `hot_pause`); the manifest transfer
    /// is enqueued behind every earlier transfer and commits when it
    /// drains. FIFO ordering guarantees crash consistency: by the time
    /// a manifest record lands, every chunk staged before it has landed
    /// too.
    pub fn save(
        &mut self,
        job: u64,
        family: u64,
        step: u64,
        samples: u64,
        bytes: u64,
        now: SimTime,
    ) -> SaveOutcome {
        self.advance(now);
        let chunks = manifest_chunks(job, family, step, bytes, &self.cfg.chunking);
        let mut new_remote = 0u64;
        let mut dedup = 0u64;
        for c in &chunks {
            if self.remote.acquire(*c) {
                new_remote += c.bytes;
            } else {
                dedup += c.bytes;
            }
        }
        let mut new_hot = 0u64;
        for c in &chunks {
            if self.hot.acquire(*c) {
                new_hot += c.bytes;
            }
        }
        let checksum = chunks
            .iter()
            .fold(0u64, |acc, c| super::chunks::mix64(acc ^ super::chunks::mix64(c.key)));
        let id = self.next_id;
        self.next_id += 1;
        let manifest = Manifest {
            id,
            job,
            family,
            step,
            samples,
            bytes,
            new_bytes: new_remote,
            chunks,
            checksum,
            committed_at: None,
            corrupted: false,
        };
        self.manifests.insert(id, manifest);
        self.by_job.entry(job).or_default().push(id);

        // Supersede the job's previous hot copy, then evict for capacity.
        if let Some(prev) = self.hot_manifest_of_job.insert(job, id) {
            self.drop_hot_copy(prev, now);
        }
        self.hot_residents.push_back(id);
        while self.hot.stored_bytes() > self.cfg.hot_capacity_bytes {
            let Some(&oldest) = self.hot_residents.front() else { break };
            self.drop_hot_copy(oldest, now);
        }

        let latency_bytes =
            self.cfg.remote_base_latency.as_secs_f64() * self.cfg.remote_write_bandwidth;
        self.queue
            .push_back(Transfer { manifest: id, cost_bytes: new_remote as f64 + latency_bytes });

        let hot_pause = self.cfg.hot_base_latency
            + SimDuration::from_secs_f64(new_hot as f64 / self.cfg.hot_write_bandwidth);

        self.stats.saves += 1;
        self.stats.staged_bytes += bytes;
        self.stats.new_remote_bytes += new_remote;
        self.stats.dedup_bytes += dedup;
        self.telemetry.record(
            now,
            EventKind::CheckpointStaged { job, manifest: id, step, bytes, new_bytes: new_remote },
        );
        SaveOutcome { manifest: id, hot_pause, new_bytes: new_remote, dedup_bytes: dedup }
    }

    /// Releases the hot-tier copy of manifest `id` (if resident).
    fn drop_hot_copy(&mut self, id: u64, now: SimTime) {
        let Some(pos) = self.hot_residents.iter().position(|&m| m == id) else { return };
        self.hot_residents.remove(pos);
        let m = self.manifests.get(&id).expect("resident manifest exists");
        let (job, keys): (u64, Vec<u64>) = (m.job, m.chunks.iter().map(|c| c.key).collect());
        for key in keys {
            self.hot.release(key);
        }
        if self.hot_manifest_of_job.get(&job) == Some(&id) {
            self.hot_manifest_of_job.remove(&job);
        }
        self.stats.hot_evictions += 1;
        self.telemetry.record(now, EventKind::CheckpointHotEvicted { job, manifest: id });
    }

    /// Drops every hot-tier copy owned by `job` — a master crash wipes
    /// the job's caching pods, so recovery must go through the remote
    /// tier (or a witness peer).
    pub fn invalidate_hot(&mut self, job: u64, now: SimTime) {
        while let Some(&id) = self.hot_manifest_of_job.get(&job) {
            self.drop_hot_copy(id, now);
        }
    }

    /// Retires committed manifests beyond the retention window,
    /// releasing their remote chunks. In-flight and hot-resident
    /// manifests are never retired.
    fn retire_old_manifests(&mut self, job: u64) {
        let Some(ids) = self.by_job.get(&job) else { return };
        let committed: Vec<u64> = ids
            .iter()
            .copied()
            .filter(|id| self.manifests.get(id).is_some_and(|m| m.committed_at.is_some()))
            .collect();
        if committed.len() <= self.cfg.retain_per_job {
            return;
        }
        let retire: Vec<u64> = committed[..committed.len() - self.cfg.retain_per_job]
            .iter()
            .copied()
            .filter(|id| !self.hot_residents.contains(id))
            .collect();
        for id in retire {
            let m = self.manifests.remove(&id).expect("retiring known manifest");
            for c in &m.chunks {
                self.remote.release(c.key);
            }
            if let Some(ids) = self.by_job.get_mut(&job) {
                ids.retain(|&x| x != id);
            }
        }
    }

    /// Marks the `nth` newest staged manifest of `job` as corrupted
    /// (0 = newest). Returns the manifest id hit, or `None` when the
    /// job has no manifests yet.
    pub fn corrupt_manifest(&mut self, job: u64, nth: u32, now: SimTime) -> Option<u64> {
        let ids = self.by_job.get(&job)?;
        if ids.is_empty() {
            return None;
        }
        let idx = ids.len().saturating_sub(1 + (nth as usize % ids.len()));
        let id = ids[idx];
        let m = self.manifests.get_mut(&id).expect("indexed manifest exists");
        if !m.corrupted {
            m.corrupted = true;
            self.stats.corruptions += 1;
            self.telemetry.record(now, EventKind::ManifestCorrupted { job, manifest: id });
        }
        Some(id)
    }

    /// Quotes a restore for `job` at `now`: the hot-tier copy when
    /// resident, else the newest committed, non-corrupted manifest from
    /// the remote tier (waiting out any outage window first). Returns
    /// `None` when no durable checkpoint exists — the job cold-starts.
    ///
    /// Records the `CheckpointRestored` event at the resume instant.
    pub fn restore(&mut self, job: u64, now: SimTime) -> Option<RestoreOutcome> {
        self.advance(now);
        if let Some(&id) = self.hot_manifest_of_job.get(&job) {
            let m = &self.manifests[&id];
            if !m.corrupted {
                let duration = self.cfg.hot_base_latency
                    + SimDuration::from_secs_f64(m.bytes as f64 / self.cfg.hot_read_bandwidth);
                let out = RestoreOutcome {
                    manifest: id,
                    step: m.step,
                    samples: m.samples,
                    bytes: m.bytes,
                    ready_at: now,
                    duration,
                    source: RestoreSource::Hot,
                };
                self.finish_restore(&out, job);
                return Some(out);
            }
        }
        let ids = self.by_job.get(&job)?.clone();
        let mut fell_back = false;
        for &id in ids.iter().rev() {
            let m = &self.manifests[&id];
            if m.committed_at.is_none_or(|c| c > now) {
                continue;
            }
            if m.corrupted {
                fell_back = true;
                continue;
            }
            let ready_at = self.remote_reachable_at(now);
            let duration = self.cfg.remote_base_latency
                + SimDuration::from_secs_f64(m.bytes as f64 / self.cfg.remote_read_bandwidth);
            let out = RestoreOutcome {
                manifest: id,
                step: m.step,
                samples: m.samples,
                bytes: m.bytes,
                ready_at,
                duration,
                source: RestoreSource::Remote,
            };
            if fell_back {
                self.stats.corrupt_fallbacks += 1;
            }
            self.finish_restore(&out, job);
            return Some(out);
        }
        None
    }

    fn finish_restore(&mut self, out: &RestoreOutcome, job: u64) {
        self.stats.restores += 1;
        self.stats.restored_bytes += out.bytes;
        self.telemetry.record(
            out.resume_at(),
            EventKind::CheckpointRestored {
                job,
                manifest: out.manifest,
                step: out.step,
                bytes: out.bytes,
                source: out.source.label().to_string(),
            },
        );
    }

    /// Order-independent digest over manifests, tier contents, and
    /// counters — the determinism probes compare this across thread and
    /// shard counts.
    pub fn digest(&self) -> u64 {
        use super::chunks::mix64;
        let mut acc = mix64(self.next_id ^ 0xCC_11);
        for m in self.manifests.values() {
            acc = mix64(
                acc ^ mix64(m.id)
                    ^ mix64(m.step)
                    ^ mix64(m.new_bytes)
                    ^ mix64(m.checksum)
                    ^ mix64(m.committed_at.map_or(u64::MAX, |t| t.as_micros()))
                    ^ u64::from(m.corrupted),
            );
        }
        acc = mix64(acc ^ self.hot.digest());
        acc = mix64(acc ^ self.remote.digest());
        acc = mix64(acc ^ mix64(self.stats.saves) ^ mix64(self.stats.commits));
        acc = mix64(acc ^ mix64(self.stats.restores) ^ mix64(self.stats.remote_busy_us));
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    fn plane() -> CheckpointPlane {
        CheckpointPlane::new(CkptPlaneConfig::default())
    }

    #[test]
    fn save_is_fast_commit_is_slow() {
        let mut p = plane();
        let t0 = SimTime::from_secs(100);
        let out = p.save(1, 1, 1000, 512_000, 4 * GB, t0);
        assert!(out.hot_pause.as_secs_f64() < 1.0, "hot write is sub-second: {}", out.hot_pause);
        assert!(p.manifest(out.manifest).unwrap().committed_at.is_none());
        // 4 GB at 60 MB/s ≈ 67 s plus 15 s base.
        p.advance(SimTime::from_secs(140));
        assert!(p.manifest(out.manifest).unwrap().committed_at.is_none(), "mid-transfer");
        p.advance(SimTime::from_secs(400));
        let committed = p.manifest(out.manifest).unwrap().committed_at.unwrap();
        assert!(committed > t0 + SimDuration::from_secs(60));
        assert_eq!(p.stats().commits, 1);
    }

    #[test]
    fn incremental_saves_dedup_against_previous() {
        let mut p = plane();
        let a = p.save(1, 1, 1000, 512_000, 4 * GB, SimTime::from_secs(100));
        let b = p.save(1, 1, 1002, 513_024, 4 * GB, SimTime::from_secs(220));
        assert_eq!(a.dedup_bytes, 0, "first save is all-new");
        assert!(b.dedup_bytes > b.new_bytes, "near-consecutive save is mostly dedup");
    }

    #[test]
    fn family_peers_dedup_cross_job() {
        let mut p = plane();
        p.save(1, 7, 1000, 0, 4 * GB, SimTime::from_secs(100));
        let peer = p.save(2, 7, 500, 0, 4 * GB, SimTime::from_secs(101));
        assert!(peer.dedup_bytes > 0, "family static regions are shared");
        let stranger = p.save(3, 8, 500, 0, 4 * GB, SimTime::from_secs(102));
        assert_eq!(stranger.dedup_bytes, 0, "different family shares nothing");
    }

    #[test]
    fn hot_tier_evicts_oldest_and_restore_falls_to_remote() {
        let cfg = CkptPlaneConfig { hot_capacity_bytes: 6 * GB, ..CkptPlaneConfig::default() };
        let mut p = CheckpointPlane::new(cfg);
        p.save(1, 1, 100, 0, 4 * GB, SimTime::from_secs(100));
        p.save(2, 2, 100, 0, 4 * GB, SimTime::from_secs(110));
        assert!(p.stats().hot_evictions >= 1, "capacity forces eviction");
        assert!(p.hot_bytes() <= 6 * GB);
        // Job 1 was evicted; before its manifest commits a restore finds nothing.
        assert!(
            p.restore(1, SimTime::from_secs(111)).is_none(),
            "uncommitted + evicted = no restore"
        );
        // After the transfers drain, the remote copy serves.
        let out = p.restore(1, SimTime::from_secs(2_000)).unwrap();
        assert_eq!(out.source, RestoreSource::Remote);
        assert!(out.duration.as_secs_f64() > 15.0, "remote read is slow");
    }

    #[test]
    fn hot_restore_is_memory_speed() {
        let mut p = plane();
        p.save(1, 1, 100, 51_200, 4 * GB, SimTime::from_secs(100));
        let out = p.restore(1, SimTime::from_secs(101)).unwrap();
        assert_eq!(out.source, RestoreSource::Hot);
        assert!(out.duration.as_secs_f64() < 1.0);
        assert_eq!(out.ready_at, SimTime::from_secs(101));
        assert_eq!(out.samples, 51_200);
    }

    #[test]
    fn restore_mid_outage_waits_for_the_window() {
        let mut p = plane();
        p.save(1, 1, 100, 0, 2 * GB, SimTime::from_secs(100));
        p.advance(SimTime::from_secs(500)); // committed well before the outage
        p.invalidate_hot(1, SimTime::from_secs(500));
        let from = SimTime::from_secs(600);
        let until = SimTime::from_secs(900);
        p.set_remote_outage(from, until);
        let out = p.restore(1, SimTime::from_secs(700)).unwrap();
        assert_eq!(out.ready_at, until, "restore must wait out the outage");
        assert!(out.resume_at() > until);
    }

    #[test]
    fn outage_stalls_commits_and_collapse_slows_them() {
        let mut p = plane();
        let t0 = SimTime::from_secs(100);
        let out = p.save(1, 1, 100, 0, 2 * GB, t0);
        // Nominal commit: 15 s base + 2 GB / 60 MB/s ≈ 48.3 s ⇒ ~148 s.
        p.set_remote_outage(SimTime::from_secs(110), SimTime::from_secs(410));
        p.advance(SimTime::from_secs(2_000));
        let committed = p.manifest(out.manifest).unwrap().committed_at.unwrap();
        assert!(
            committed > SimTime::from_secs(410),
            "outage must push the commit past the window: {committed}"
        );

        let mut q = plane();
        let o2 = q.save(1, 1, 100, 0, 2 * GB, t0);
        q.set_bandwidth_collapse(SimTime::from_secs(0), SimTime::from_secs(10_000), 4000);
        q.advance(SimTime::from_secs(10_000));
        let c2 = q.manifest(o2.manifest).unwrap().committed_at.unwrap();
        let nominal_secs = 15.0 + 2.0e9 / 60.0e6;
        assert!(
            c2.saturating_since(t0).as_secs_f64() > 3.0 * nominal_secs,
            "4x collapse must roughly quadruple the transfer: {c2}"
        );
    }

    #[test]
    fn corrupted_manifest_falls_back_to_older_commit() {
        let mut p = plane();
        p.save(1, 1, 100, 100, 2 * GB, SimTime::from_secs(100));
        p.save(1, 1, 200, 200, 2 * GB, SimTime::from_secs(400));
        p.advance(SimTime::from_secs(2_000));
        p.invalidate_hot(1, SimTime::from_secs(2_000));
        let hit = p.corrupt_manifest(1, 0, SimTime::from_secs(2_001)).unwrap();
        let out = p.restore(1, SimTime::from_secs(2_002)).unwrap();
        assert_ne!(out.manifest, hit, "corrupted newest must be skipped");
        assert_eq!(out.step, 100, "fallback is the older commit");
        assert_eq!(p.stats().corrupt_fallbacks, 1);
    }

    #[test]
    fn fifo_queue_orders_commits_by_save_order() {
        let mut p = plane();
        let a = p.save(1, 1, 100, 0, 3 * GB, SimTime::from_secs(100));
        let b = p.save(2, 2, 100, 0, 3 * GB, SimTime::from_secs(101));
        p.advance(SimTime::from_secs(10_000));
        let ca = p.manifest(a.manifest).unwrap().committed_at.unwrap();
        let cb = p.manifest(b.manifest).unwrap().committed_at.unwrap();
        assert!(ca < cb, "shared pipe serializes transfers");
    }

    #[test]
    fn retention_retires_old_manifests_but_keeps_fallback() {
        let mut p = plane();
        for i in 0..6u64 {
            p.save(1, 1, 100 * (i + 1), 100 * (i + 1), 2 * GB, SimTime::from_secs(100 + 400 * i));
            p.advance(SimTime::from_secs(100 + 400 * (i + 1)));
        }
        p.advance(SimTime::from_secs(10_000));
        let live = p.by_job.get(&1).unwrap().len();
        assert!(
            live <= CkptPlaneConfig::default().retain_per_job + 1,
            "old manifests retire: {live}"
        );
        assert!(live >= 2, "a corruption fallback always remains");
    }

    #[test]
    fn occupancy_and_dedup_ratio_are_sane() {
        let mut p = plane();
        p.save(1, 1, 100, 0, 2 * GB, SimTime::from_secs(0));
        p.save(1, 1, 102, 0, 2 * GB, SimTime::from_secs(200));
        let end = SimTime::from_secs(1_000);
        p.advance(end);
        let s = p.stats();
        let occ = s.remote_occupancy(end);
        assert!(occ > 0.0 && occ <= 1.0, "occupancy in (0,1]: {occ}");
        assert!(s.dedup_ratio() > 0.3, "incremental saves dedup: {}", s.dedup_ratio());
    }

    #[test]
    fn digest_tracks_state() {
        let mut a = plane();
        let mut b = plane();
        assert_eq!(a.digest(), b.digest());
        a.save(1, 1, 100, 0, GB, SimTime::from_secs(10));
        assert_ne!(a.digest(), b.digest());
        b.save(1, 1, 100, 0, GB, SimTime::from_secs(10));
        assert_eq!(a.digest(), b.digest());
    }
}
