//! The job master: DLRover-RM's per-job agent (Fig. 4).
//!
//! Each training job gets one master pod hosting two subcomponents:
//!
//! * the **profiler** ([`profiler`]) monitors runtime statistics — iteration
//!   timings for the throughput model, per-PS memory samples for the OOM
//!   predictor — and periodically reports them to the cluster brain's
//!   optimizer;
//! * the **executor** ([`master::JobMaster`]) applies resource plans coming
//!   back from the brain: it orchestrates seamless migrations, feeds data
//!   shards to workers (via the engine's shard queue), detects failed and
//!   straggling workers from heartbeats, and pre-scales PS memory when the
//!   OOM predictor fires.
//!
//! The [`policy`] module defines the `SchedulerPolicy` trait through which
//! the DLRover-RM brain *and* the baseline schedulers (ES, Optimus, static)
//! drive the same job master — keeping the comparison in Figs. 7/10 apples
//! to apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckptplane;
pub mod master;
pub mod policy;
pub mod profiler;
pub mod replay;
pub mod resilience;
pub mod witness;

pub use ckptplane::{CheckpointPlane, CkptPlaneConfig, PlaneStats, RestoreSource};
pub use master::{JobMaster, MasterConfig, MasterEvent};
pub use policy::{PolicyDecision, ReconfigRequest, SchedulerPolicy};
pub use profiler::{JobRuntimeProfile, Profiler};
pub use replay::{RecoveryOutcome, RecoveryPath, ReplayedJobState};
pub use resilience::{
    BudgetLedger, FailureBudget, JobHealth, RetryDecision, RetryPolicy, RetrySupervisor,
};
pub use witness::{WitnessBoard, WitnessConfig, WitnessRestore};
