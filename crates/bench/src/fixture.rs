//! Shared per-experiment test fixture.
//!
//! Experiment `#[test]`s used to re-run their full simulation serially —
//! every shape assertion paid for its own `run(seed)`, and the slowest
//! experiments (fig8's real training) dominated `cargo test`. This module
//! runs each experiment **once** per test process, at the canonical seed,
//! behind a per-experiment `OnceLock`: the first test that needs an
//! experiment's output runs it (writing artefacts to the per-process
//! scratch dir — see [`crate::results_dir`]); every later test — shape
//! assertions and golden-digest checks alike — reads the cached
//! [`ExperimentRun`].
//!
//! Using one canonical seed for all shape tests is deliberate: it is the
//! seed the committed `results/` artefacts and the golden corpus are
//! generated with, so a shape test failing here fails against exactly the
//! numbers a reviewer sees in the repo.

use std::sync::OnceLock;

use crate::experiments::REGISTRY;
use crate::results_dir;

/// The seed the committed `results/` artefacts, the golden corpus, and all
/// fixture-backed tests use.
pub const CANONICAL_SEED: u64 = 42;

/// One experiment's cached output: rendered report text plus the three
/// artefacts the run wrote.
pub struct ExperimentRun {
    /// The rendered report (what `run(seed)` returned).
    pub text: String,
    /// Parsed `results/<id>.json`.
    pub json: serde_json::Value,
    /// Raw `results/<id>.trace.jsonl` bytes (may be empty).
    pub trace: String,
    /// Raw `results/<id>.spans.jsonl` bytes (may be empty).
    pub spans: String,
}

static CELLS: [OnceLock<ExperimentRun>; REGISTRY.len()] =
    [const { OnceLock::new() }; REGISTRY.len()];

/// The canonical-seed run of experiment `id`, executed at most once per
/// process.
///
/// # Panics
/// Panics on an unknown id or when the run fails to produce its artefacts.
pub fn canonical(id: &str) -> &'static ExperimentRun {
    let idx = REGISTRY
        .iter()
        .position(|(rid, _, _)| *rid == id)
        .unwrap_or_else(|| panic!("unknown experiment id {id:?}"));
    CELLS[idx].get_or_init(|| {
        let (_, _, run) = REGISTRY[idx];
        let text = run(CANONICAL_SEED);
        let dir = results_dir();
        let read = |suffix: &str| {
            let path = dir.join(format!("{id}.{suffix}"));
            std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{id} run left no {}: {e}", path.display()))
        };
        let json = serde_json::from_str(&read("json"))
            .unwrap_or_else(|e| panic!("{id}.json is not valid JSON: {e}"));
        ExperimentRun { text, json, trace: read("trace.jsonl"), spans: read("spans.jsonl") }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        canonical("nonesuch");
    }

    #[test]
    fn fixture_is_cached_per_process() {
        // Two lookups return the same allocation (the OnceLock hit), so a
        // second test asserting on the same experiment costs nothing.
        let a = canonical("table1");
        let b = canonical("table1");
        assert!(std::ptr::eq(a, b));
        assert!(a.json.as_object().is_some());
        assert!(a.text.contains("table1"));
    }
}
