//! Deterministic parallel execution engine for experiment units.
//!
//! The paper's evaluation (§7) is a sweep of *independent* simulations —
//! per-figure rows, per-seed fleet replicas, per-plan chaos jobs — exactly
//! the embarrassingly-parallel shape cluster schedulers exploit. This
//! module fans those units across a worker pool while keeping the repo's
//! determinism contract (bit-reproducible per seed) intact:
//!
//! 1. **Isolated inputs.** Every [`Unit`] owns its inputs: experiments fork
//!    a private RNG lineage per unit (`RngStreams::fork` or a per-unit
//!    seed) and the pool hands each unit a private [`Telemetry`] sink, so
//!    no unit can observe another's draws or log interleaving.
//! 2. **Order-independent merge.** [`run_units`] returns outputs stably
//!    sorted by unit key (keys must be unique), and
//!    [`merge_telemetry`] absorbs the per-unit sinks in that same key
//!    order. The reduction is therefore a pure function of the unit
//!    results — output JSON and trace bytes are identical at any thread
//!    count, which the golden-corpus tests and the CI determinism matrix
//!    both enforce.
//!
//! The pool itself is a work-stealing-free index queue on `std::thread`
//! (`thread::scope` + one shared `AtomicUsize` cursor). The vendored
//! dependency set has no crossbeam, and the units here are
//! coarse (milliseconds to tens of seconds each), so a lock-free deque
//! would buy nothing; see DESIGN.md §8.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dlrover_telemetry::Telemetry;

/// One independent piece of experiment work: a unique key (sort position in
/// the merged output) plus a closure from a private telemetry sink to the
/// unit's result.
pub struct Unit<'scope, T> {
    key: String,
    run: Box<dyn FnOnce(&Telemetry) -> T + Send + 'scope>,
}

impl<'scope, T> Unit<'scope, T> {
    /// Creates a unit. `key` must be unique within one [`run_units`] call
    /// and determines the unit's position in the returned outputs — use
    /// zero-padded index prefixes (e.g. `"03/model-y/es"`) when the merge
    /// order must follow submission order.
    pub fn new(key: impl Into<String>, run: impl FnOnce(&Telemetry) -> T + Send + 'scope) -> Self {
        Unit { key: key.into(), run: Box::new(run) }
    }

    /// The unit's key.
    pub fn key(&self) -> &str {
        &self.key
    }
}

/// The result of one unit: its key, its return value, and the private sink
/// it recorded into.
pub struct UnitOutput<T> {
    /// The unit's key (outputs are sorted by this).
    pub key: String,
    /// The unit closure's return value.
    pub value: T,
    /// The unit's private telemetry sink.
    pub telemetry: Telemetry,
}

/// Thread-count override set by the `exp` CLI (0 = not set).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the pool width used by [`run_units_auto`] (the `--threads N` CLI
/// flag). `0` restores the default resolution order.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The pool width [`run_units_auto`] will use: the [`set_threads`]
/// override, else the `DLROVER_THREADS` environment variable, else the
/// machine's available parallelism.
pub fn threads() -> usize {
    let n = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if n > 0 {
        return n;
    }
    if let Ok(v) = std::env::var("DLROVER_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `units` on a pool of `threads` workers and returns every unit's
/// output, stably sorted by unit key.
///
/// Determinism: each unit runs against a fresh [`Telemetry`] sink and must
/// derive all randomness from its own inputs (fork a lineage per unit), so
/// a unit's output is independent of scheduling. Sorting by the unique keys
/// then makes the returned `Vec` — values *and* sinks — byte-for-byte
/// independent of the thread count, including `threads == 1`, which runs
/// the units inline on the caller's thread in submission order.
///
/// # Panics
/// Panics when two units share a key (the merge order would be ambiguous),
/// and propagates any panic raised inside a unit.
pub fn run_units<T: Send>(units: Vec<Unit<'_, T>>, threads: usize) -> Vec<UnitOutput<T>> {
    {
        let mut keys: Vec<&str> = units.iter().map(|u| u.key()).collect();
        keys.sort_unstable();
        if let Some(w) = keys.windows(2).find(|w| w[0] == w[1]) {
            panic!("duplicate unit key {:?}: merge order would be ambiguous", w[0]);
        }
    }
    let n = units.len();
    let mut outputs: Vec<UnitOutput<T>> = if threads <= 1 || n <= 1 {
        units.into_iter().map(run_one).collect()
    } else {
        let slots: Vec<Mutex<Option<Unit<'_, T>>>> =
            units.into_iter().map(|u| Mutex::new(Some(u))).collect();
        let done: Vec<Mutex<Option<UnitOutput<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(n) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let unit =
                        slots[i].lock().expect("unit slot").take().expect("each unit taken once");
                    let out = run_one(unit);
                    *done[i].lock().expect("output slot") = Some(out);
                });
            }
        });
        done.into_iter()
            .map(|m| m.into_inner().expect("output slot").expect("every unit produced an output"))
            .collect()
    };
    outputs.sort_by(|a, b| a.key.cmp(&b.key));
    outputs
}

/// [`run_units`] at the globally configured width (see [`threads`]).
pub fn run_units_auto<T: Send>(units: Vec<Unit<'_, T>>) -> Vec<UnitOutput<T>> {
    let width = threads();
    run_units(units, width)
}

/// Events each fresh unit sink pre-allocates for. Experiment units record
/// hundreds to a few thousand events; reserving up front replaces the
/// doubling-growth reallocations (and the copies they imply) that
/// previously dominated small-unit dispatch. Purely an allocation hint —
/// sink contents and serialized bytes are unchanged.
const UNIT_SINK_EVENT_HINT: usize = 1_024;

fn run_one<T>(unit: Unit<'_, T>) -> UnitOutput<T> {
    let _p = dlrover_telemetry::prof::scope("parallel/unit");
    let telemetry = Telemetry::default();
    telemetry.reserve_events(UNIT_SINK_EVENT_HINT);
    let value = (unit.run)(&telemetry);
    UnitOutput { key: unit.key, value, telemetry }
}

/// Merges the outputs' per-unit sinks into one sink, in key order (the
/// outputs of [`run_units`] are already key-sorted). See
/// [`Telemetry::merge_ordered`] for the merge semantics.
pub fn merge_telemetry<T>(outputs: &[UnitOutput<T>]) -> Telemetry {
    let _p = dlrover_telemetry::prof::scope("parallel/merge");
    Telemetry::merge_ordered(outputs.iter().map(|o| &o.telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrover_sim::{RngStreams, SimTime};
    use dlrover_telemetry::EventKind;
    use rand::RngCore;

    fn demo_units<'a>(root: &'a RngStreams, n: u64) -> Vec<Unit<'a, u64>> {
        (0..n)
            .map(|i| {
                let key = format!("{i:02}");
                let fork_key = key.clone();
                Unit::new(key, move |t: &Telemetry| {
                    let mut rng = root.fork(&fork_key).stream("payload");
                    let v = rng.next_u64();
                    t.record(SimTime::from_micros(v % 1000), EventKind::JobStarted { job: i });
                    t.count("units", 1);
                    v
                })
            })
            .collect()
    }

    fn digest<T>(outputs: &[UnitOutput<T>]) -> (String, String) {
        let merged = merge_telemetry(outputs);
        (merged.to_jsonl(), merged.spans_to_jsonl())
    }

    #[test]
    fn outputs_are_key_sorted_and_thread_count_invariant() {
        let root = RngStreams::new(42);
        let serial = run_units(demo_units(&root, 16), 1);
        for threads in [2, 3, 4, 8] {
            let parallel = run_units(demo_units(&root, 16), threads);
            let sv: Vec<(&str, u64)> = serial.iter().map(|o| (o.key.as_str(), o.value)).collect();
            let pv: Vec<(&str, u64)> = parallel.iter().map(|o| (o.key.as_str(), o.value)).collect();
            assert_eq!(sv, pv, "values diverged at {threads} threads");
            assert_eq!(digest(&serial), digest(&parallel), "telemetry diverged at {threads}");
        }
    }

    #[test]
    fn more_threads_than_units_is_fine() {
        let root = RngStreams::new(7);
        let out = run_units(demo_units(&root, 3), 16);
        assert_eq!(out.len(), 3);
        assert_eq!(merge_telemetry(&out).counter("units"), 3);
    }

    #[test]
    fn empty_unit_list_yields_empty_output() {
        let out: Vec<UnitOutput<()>> = run_units(Vec::new(), 4);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate unit key")]
    fn duplicate_keys_panic() {
        let units = vec![Unit::new("a", |_: &Telemetry| 1u64), Unit::new("a", |_| 2u64)];
        run_units(units, 2);
    }

    #[test]
    fn units_can_borrow_caller_state() {
        // The 'scope lifetime lets units borrow non-'static experiment
        // state (specs, configs) instead of cloning it per unit.
        let shared = vec![10u64, 20, 30];
        let shared = &shared;
        let units: Vec<Unit<'_, u64>> = (0..3)
            .map(|i| Unit::new(format!("{i}"), move |_: &Telemetry| shared[i as usize]))
            .collect();
        let out = run_units(units, 2);
        assert_eq!(out.iter().map(|o| o.value).collect::<Vec<_>>(), vec![10, 20, 30]);
    }

    #[test]
    fn threads_resolution_prefers_override() {
        // Not running in parallel with other tests that touch the
        // override: this is the only test that sets it, and it restores 0.
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
