//! Process-level measurement for the bench harness: peak RSS from the
//! kernel's own accounting.
//!
//! These readings describe the *harness process* (wall-clock side), never
//! the simulation — virtual-time metrics stay on `SimTime`/`SimDuration`.
//! Linux exposes the high-water mark as `VmHWM` in `/proc/self/status`,
//! which needs no dependencies and no syscalls beyond a file read; on
//! other platforms the reading is simply absent.

/// Peak resident set size of this process in bytes (`VmHWM`), or `None`
/// when the platform does not expose `/proc/self/status`.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Extracts `VmHWM` from a `/proc/<pid>/status` body. The kernel prints
/// the value in kB (1024-byte units) regardless of locale. Malformed or
/// absurd bodies yield `None` rather than a wrong number: the kB→bytes
/// conversion is checked, so a corrupt value near `u64::MAX` cannot wrap
/// into a small "plausible" figure in release builds.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    kb.checked_mul(1024)
}

/// Events-per-second over a wall-clock window, or `None` when the window
/// is too short (or not a real duration) to support a rate: zero,
/// negative, NaN, and infinite `secs` all yield `None` instead of an
/// infinite or garbage rate. Callers print `-` for `None` rather than
/// pretending precision.
pub fn events_per_sec(events: u64, secs: f64) -> Option<f64> {
    if !secs.is_finite() || secs <= 0.0 {
        return None;
    }
    Some(events as f64 / secs)
}

/// Renders a byte count as a compact human figure (`"742.1 MB"`).
pub fn format_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else {
        format!("{:.0} kB", b / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_from_proc_status() {
        let body = "Name:\texp\nVmPeak:\t  202404 kB\nVmHWM:\t   98304 kB\nVmRSS:\t   90112 kB\n";
        assert_eq!(parse_vm_hwm(body), Some(98_304 * 1024));
        assert_eq!(parse_vm_hwm("Name:\texp\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn malformed_status_lines_yield_none_not_panic_or_garbage() {
        // Value column missing entirely.
        assert_eq!(parse_vm_hwm("VmHWM:\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:   \n"), None);
        // Negative and fractional values don't parse as u64.
        assert_eq!(parse_vm_hwm("VmHWM:\t-5 kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\t12.5 kB\n"), None);
        // Empty body / no newline termination.
        assert_eq!(parse_vm_hwm(""), None);
        assert_eq!(parse_vm_hwm("VmHWM: 4"), Some(4 * 1024));
        // A prefix line must not match (starts_with is anchored).
        assert_eq!(parse_vm_hwm("XVmHWM: 7 kB\n"), None);
    }

    #[test]
    fn vm_hwm_kb_conversion_cannot_overflow_silently() {
        // u64::MAX kB would wrap to a tiny number under unchecked *1024;
        // the checked conversion refuses instead.
        let body = format!("VmHWM:\t{} kB\n", u64::MAX);
        assert_eq!(parse_vm_hwm(&body), None);
        // The largest representable figure still converts.
        let body = format!("VmHWM:\t{} kB\n", u64::MAX / 1024);
        assert_eq!(parse_vm_hwm(&body), Some((u64::MAX / 1024) * 1024));
    }

    #[test]
    fn events_per_sec_refuses_degenerate_windows() {
        assert_eq!(events_per_sec(100, 0.0), None);
        assert_eq!(events_per_sec(100, -1.0), None);
        assert_eq!(events_per_sec(100, f64::NAN), None);
        assert_eq!(events_per_sec(100, f64::INFINITY), None);
        assert_eq!(events_per_sec(0, 2.0), Some(0.0));
        assert_eq!(events_per_sec(100, 4.0), Some(25.0));
    }

    #[test]
    fn live_reading_is_sane_on_linux() {
        // On Linux the harness must get a real figure; a test binary
        // comfortably exceeds 1 MB and stays under 1 TB.
        if std::path::Path::new("/proc/self/status").exists() {
            let rss = peak_rss_bytes().expect("VmHWM present on Linux");
            assert!((1_000_000..1_000_000_000_000).contains(&rss), "VmHWM = {rss}");
        }
    }

    #[test]
    fn formats_bytes_at_each_scale() {
        assert_eq!(format_bytes(512_000), "512 kB");
        assert_eq!(format_bytes(98_566_144), "98.6 MB");
        assert_eq!(format_bytes(2_500_000_000), "2.50 GB");
    }
}
