//! Experiment dispatcher: regenerates the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p dlrover-bench --bin exp -- all
//! cargo run --release -p dlrover-bench --bin exp -- fig7 fig10
//! cargo run --release -p dlrover-bench --bin exp -- --seed 123 fig11
//! ```

use dlrover_bench::experiments as exp;

type Runner = (&'static str, &'static str, fn(u64) -> String);

const EXPERIMENTS: &[Runner] = &[
    ("fig1a", "operator time distribution (lookup share)", exp::fig1::run_fig1a),
    ("fig1b", "embedding memory growth over 15h", exp::fig1::run_fig1b),
    ("table1", "CPU-only vs hybrid cost", exp::table1::run),
    ("fig3", "fleet utilisation CDF + pending times", exp::fig3::run),
    ("table2", "cluster job mix", exp::table2::run),
    ("fig7", "JCT by scheduler and model", exp::fig7::run),
    ("fig8", "convergence under elasticity (real training)", exp::fig8::run),
    ("fig9", "warm-starting accuracy", exp::fig9::run),
    ("fig10", "cold-start throughput ramp", exp::fig10::run),
    ("fig11", "throughput model fit", exp::fig11::run),
    ("fig12", "hot-PS recovery strategies", exp::fig12_13::run_fig12),
    ("fig13", "worker-straggler recovery strategies", exp::fig12_13::run_fig13),
    ("fig14", "12-month migration ramp", exp::production::run_fig14),
    ("fig15", "cluster-level JCT reductions", exp::production::run_fig15),
    ("table4", "failure rates before/after", exp::production::run_table4),
    ("ablations", "design-choice ablations", exp::ablations::run),
];

fn usage() -> ! {
    eprintln!("usage: exp [--seed N] <experiment|all> [more experiments...]\n");
    eprintln!("experiments:");
    for (id, desc, _) in EXPERIMENTS {
        eprintln!("  {id:<10} {desc}");
    }
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if pos + 1 >= args.len() {
            usage();
        }
        seed = args[pos + 1].parse().unwrap_or_else(|_| usage());
        args.drain(pos..=pos + 1);
    }
    if args.is_empty() {
        usage();
    }
    let selected: Vec<&Runner> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                EXPERIMENTS
                    .iter()
                    .find(|(id, _, _)| id == a)
                    .unwrap_or_else(|| {
                        eprintln!("unknown experiment: {a}\n");
                        usage()
                    })
            })
            .collect()
    };
    for (id, _, run) in selected {
        eprintln!(">>> running {id} (seed {seed})");
        let started = std::time::Instant::now();
        run(seed);
        eprintln!("<<< {id} done in {:.1}s\n", started.elapsed().as_secs_f64());
    }
}
