//! Experiment dispatcher: regenerates the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p dlrover-bench --bin exp -- all
//! cargo run --release -p dlrover-bench --bin exp -- fig7 fig10
//! cargo run --release -p dlrover-bench --bin exp -- --seed 123 fig11
//! cargo run --release -p dlrover-bench --bin exp -- trace results/fig7.trace.jsonl
//! cargo run --release -p dlrover-bench --bin exp -- trace --filter 'Pod*,JobStarted' fig7
//! cargo run --release -p dlrover-bench --bin exp -- trace --diff a.jsonl b.jsonl
//! cargo run --release -p dlrover-bench --bin exp -- trace --chrome fig12
//! cargo run --release -p dlrover-bench --bin exp -- critpath fig12
//! ```

use std::path::{Path, PathBuf};

use dlrover_bench::experiments as exp;
use dlrover_bench::{chrome_trace_json, critpath_report, results_dir};
use dlrover_telemetry::{parse_spans_jsonl, Event};

type Runner = (&'static str, &'static str, fn(u64) -> String);

const EXPERIMENTS: &[Runner] = &[
    ("fig1a", "operator time distribution (lookup share)", exp::fig1::run_fig1a),
    ("fig1b", "embedding memory growth over 15h", exp::fig1::run_fig1b),
    ("table1", "CPU-only vs hybrid cost", exp::table1::run),
    ("fig3", "fleet utilisation CDF + pending times", exp::fig3::run),
    ("table2", "cluster job mix", exp::table2::run),
    ("fig7", "JCT by scheduler and model", exp::fig7::run),
    ("fig8", "convergence under elasticity (real training)", exp::fig8::run),
    ("fig9", "warm-starting accuracy", exp::fig9::run),
    ("fig10", "cold-start throughput ramp", exp::fig10::run),
    ("fig11", "throughput model fit", exp::fig11::run),
    ("fig12", "hot-PS recovery strategies", exp::fig12_13::run_fig12),
    ("fig13", "worker-straggler recovery strategies", exp::fig12_13::run_fig13),
    ("fig14", "12-month migration ramp", exp::production::run_fig14),
    ("fig15", "cluster-level JCT reductions", exp::production::run_fig15),
    ("table4", "failure rates before/after", exp::production::run_table4),
    ("ablations", "design-choice ablations", exp::ablations::run),
    ("chaos", "scripted fault plans vs the invariant oracle", exp::chaos::run),
    ("resilience", "recovery latency + goodput retained per fault kind", exp::resilience::run),
];

fn usage() -> ! {
    eprintln!("usage: exp [--seed N] <experiment|all> [more experiments...]");
    eprintln!("       exp chaos [--seed N] [--plans K]");
    eprintln!("       exp trace [--filter KINDS] <id|trace.jsonl>");
    eprintln!("       exp trace --diff <left.jsonl> <right.jsonl>");
    eprintln!("       exp trace --chrome <id|spans.jsonl>");
    eprintln!("       exp critpath <id|spans.jsonl>\n");
    eprintln!("KINDS is comma-separated event kind names; a trailing `*` globs");
    eprintln!("(e.g. --filter 'Pod*,JobStarted').\n");
    eprintln!("experiments:");
    for (id, desc, _) in EXPERIMENTS {
        eprintln!("  {id:<10} {desc}");
    }
    std::process::exit(2);
}

fn read_trace(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(2);
    })
}

/// Resolves an `<id|path>` argument: an existing file is used as-is, and
/// anything else is treated as an experiment id with the artefact expected
/// at `results/<id>.<suffix>`. Returns `(experiment id, path)`.
fn resolve_artefact(arg: &str, suffix: &str) -> (String, PathBuf) {
    let p = Path::new(arg);
    if p.is_file() {
        let stem = p
            .file_name()
            .and_then(|n| n.to_str())
            .map(|n| n.split('.').next().unwrap_or(n).to_string())
            .unwrap_or_else(|| "trace".to_string());
        return (stem, p.to_path_buf());
    }
    (arg.to_string(), results_dir().join(format!("{arg}.{suffix}")))
}

/// True when the event kind `name` matches the `--filter` expression: a
/// comma-separated list of kind names where a trailing `*` matches any
/// suffix (`Pod*` hits `PodRequested`, `PodPlaced`, ...).
fn filter_matches(filter: &str, name: &str) -> bool {
    filter.split(',').map(str::trim).filter(|p| !p.is_empty()).any(|p| match p.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => name == p,
    })
}

/// `exp trace --chrome`: merge an experiment's span + event logs into one
/// Perfetto-loadable trace-event file at `results/<id>.chrome.json`.
fn chrome_command(arg: &str) -> ! {
    let (id, spans_path) = resolve_artefact(arg, "spans.jsonl");
    let spans = parse_spans_jsonl(&read_trace(&spans_path)).unwrap_or_else(|| {
        eprintln!("malformed span log: {}", spans_path.display());
        std::process::exit(2);
    });
    // The event log is optional garnish: instants on top of the spans.
    let events_path = results_dir().join(format!("{id}.trace.jsonl"));
    let events: Vec<Event> = std::fs::read_to_string(&events_path)
        .map(|body| body.lines().filter_map(|l| serde_json::from_str(l).ok()).collect())
        .unwrap_or_default();
    let out = results_dir().join(format!("{id}.chrome.json"));
    let json = chrome_trace_json(&spans, &events);
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(2);
    });
    println!(
        "{}: {} spans + {} events -> {} (open in ui.perfetto.dev)",
        id,
        spans.len(),
        events.len(),
        out.display()
    );
    std::process::exit(0);
}

/// `exp critpath`: attribute an experiment's makespan to phases and print
/// the breakdown (also refreshing `results/<id>.critpath.json`).
fn critpath_command(arg: &str) -> ! {
    let (id, spans_path) = resolve_artefact(arg, "spans.jsonl");
    let spans = parse_spans_jsonl(&read_trace(&spans_path)).unwrap_or_else(|| {
        eprintln!("malformed span log: {}", spans_path.display());
        std::process::exit(2);
    });
    let report = critpath_report(&spans);
    let cp = &report.overall;
    println!("== {id}: critical path ({} spans) ==", cp.span_count);
    println!("makespan: {:.1}s", cp.makespan_us as f64 / 1e6);
    let mut rows: Vec<(&String, &u64)> = cp.phases_us.iter().collect();
    rows.sort_by_key(|&(name, &us)| (std::cmp::Reverse(us), name.clone()));
    for (name, &us) in rows {
        println!("  {name:<20} {:>10.1}s  {:>7}", us as f64 / 1e6, cp.fractions[name]);
    }
    println!("dominant: {}", cp.dominant);
    for (track, tcp) in &report.by_track {
        println!(
            "  track {track:<4} makespan {:>9.1}s dominant {}",
            tcp.makespan_us as f64 / 1e6,
            tcp.dominant
        );
    }
    let out = results_dir().join(format!("{id}.critpath.json"));
    if let Ok(body) = serde_json::to_string_pretty(&report) {
        let _ = std::fs::write(&out, body);
        println!("wrote {}", out.display());
    }
    std::process::exit(0);
}

/// `exp trace`: dump, filter, diff, or export serialized event logs.
fn trace_command(args: &[String]) -> ! {
    if let Some(pos) = args.iter().position(|a| a == "--diff") {
        let mut rest: Vec<&String> = args.iter().collect();
        rest.remove(pos);
        if rest.len() != 2 {
            usage();
        }
        let (left, right) = (read_trace(Path::new(rest[0])), read_trace(Path::new(rest[1])));
        let diffs = dlrover_telemetry::diff_jsonl(&left, &right, 50);
        if diffs.is_empty() {
            println!("identical: {} events", left.lines().count());
            std::process::exit(0);
        }
        for d in &diffs {
            println!("line {}:", d.line);
            println!("  < {}", d.left.as_deref().unwrap_or("(missing)"));
            println!("  > {}", d.right.as_deref().unwrap_or("(missing)"));
        }
        println!("{} differing line(s) (showing at most 50)", diffs.len());
        std::process::exit(1);
    }
    let mut filter = None;
    let mut chrome = None;
    let mut rest: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--filter" {
            filter = Some(it.next().unwrap_or_else(|| usage()).clone());
        } else if a == "--chrome" {
            chrome = Some(it.next().unwrap_or_else(|| usage()).clone());
        } else {
            rest.push(a);
        }
    }
    if let Some(arg) = chrome {
        if !rest.is_empty() || filter.is_some() {
            usage();
        }
        chrome_command(&arg);
    }
    if rest.len() != 1 {
        usage();
    }
    let (_, path) = resolve_artefact(rest[0], "trace.jsonl");
    let body = read_trace(&path);
    let mut shown = 0usize;
    for line in body.lines() {
        let keep = match &filter {
            None => true,
            Some(f) => serde_json::from_str::<Event>(line)
                .map(|e| filter_matches(f, e.kind.name()))
                .unwrap_or(false),
        };
        if keep {
            println!("{line}");
            shown += 1;
        }
    }
    eprintln!("{shown} of {} events", body.lines().count());
    std::process::exit(0);
}

/// `exp chaos --seed N --plans K`: run K generated fault plans through the
/// chaos harness and exit non-zero if any oracle invariant was violated
/// (the CI smoke gate). Writes `results/chaos.json`.
fn chaos_command(args: &[String]) -> ! {
    let mut seed = 42u64;
    let mut plans = 100u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--plans" => {
                plans = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let (_, violations) = exp::chaos::run_chaos(seed, plans);
    if violations > 0 {
        eprintln!("chaos: {violations} invariant violation(s)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("chaos") {
        chaos_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        trace_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("critpath") {
        if args.len() != 2 {
            usage();
        }
        critpath_command(&args[1]);
    }
    let mut seed = 42u64;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if pos + 1 >= args.len() {
            usage();
        }
        seed = args[pos + 1].parse().unwrap_or_else(|_| usage());
        args.drain(pos..=pos + 1);
    }
    if args.is_empty() {
        usage();
    }
    let selected: Vec<&Runner> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                EXPERIMENTS.iter().find(|(id, _, _)| id == a).unwrap_or_else(|| {
                    eprintln!("unknown experiment: {a}\n");
                    usage()
                })
            })
            .collect()
    };
    for (id, _, run) in selected {
        eprintln!(">>> running {id} (seed {seed})");
        let started = std::time::Instant::now();
        run(seed);
        eprintln!("<<< {id} done in {:.1}s\n", started.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::filter_matches;

    /// ISSUE-2 satellite: `--filter` takes comma-separated kinds and
    /// `prefix*` globs.
    #[test]
    fn filter_accepts_kind_lists_and_globs() {
        assert!(filter_matches("JobStarted", "JobStarted"));
        assert!(!filter_matches("JobStarted", "JobCompleted"));
        assert!(filter_matches("JobStarted,JobCompleted", "JobCompleted"));
        assert!(filter_matches("Pod*", "PodRequested"));
        assert!(filter_matches("Pod*", "PodPlaced"));
        assert!(!filter_matches("Pod*", "JobStarted"));
        assert!(filter_matches("Pod*,Job*", "JobOomed"));
        // Whitespace around commas is tolerated; empty terms never match.
        assert!(filter_matches(" PodPlaced , MigrationStarted ", "MigrationStarted"));
        assert!(!filter_matches("", "JobStarted"));
        assert!(!filter_matches(",,", "JobStarted"));
        // A bare `*` matches everything.
        assert!(filter_matches("*", "Anything"));
    }
}
