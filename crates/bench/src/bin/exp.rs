//! Experiment dispatcher: regenerates the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p dlrover-bench --bin exp -- all
//! cargo run --release -p dlrover-bench --bin exp -- fig7 fig10
//! cargo run --release -p dlrover-bench --bin exp -- --seed 123 fig11
//! cargo run --release -p dlrover-bench --bin exp -- trace results/fig7.trace.jsonl
//! cargo run --release -p dlrover-bench --bin exp -- trace --filter 'Pod*,JobStarted' fig7
//! cargo run --release -p dlrover-bench --bin exp -- trace --diff a.jsonl b.jsonl
//! cargo run --release -p dlrover-bench --bin exp -- trace --chrome fig12
//! cargo run --release -p dlrover-bench --bin exp -- critpath fig12
//! ```

use std::path::{Path, PathBuf};

use dlrover_bench::experiments as exp;
use dlrover_bench::experiments::REGISTRY;
use dlrover_bench::golden::{write_golden, GoldenDigest};
use dlrover_bench::{
    chrome_trace_json, critpath_report, events_per_sec, format_bytes, peak_rss_bytes, perf,
    results_dir,
};
use dlrover_telemetry::{parse_spans_jsonl, Event};

fn usage() -> ! {
    eprintln!("usage: exp [--seed N] [--threads N] <experiment|all> [more experiments...]");
    eprintln!("       exp [--seed N] [--threads N] --regen-golden");
    eprintln!("       exp perf [--check] [--tolerance X] [--seed N] [--max-pods P] [areas...]");
    eprintln!("       exp bench-parallel [--threads N]");
    eprintln!("       exp fleetscale [--seed N] [--max-pods P] [--shards A,B,...]");
    eprintln!("       exp chaos [--seed N] [--plans K]");
    eprintln!("       exp ckptplane [--seed N]");
    eprintln!("       exp tournament [--seed N] [--plans K] [--episodes E]");
    eprintln!("       exp reconfig [--seed N] [--plans K]");
    eprintln!("       exp trace [--filter KINDS] <id|trace.jsonl>");
    eprintln!("       exp trace --diff <left.jsonl> <right.jsonl>");
    eprintln!("       exp trace --chrome <id|spans.jsonl>");
    eprintln!("       exp critpath <id|spans.jsonl>\n");
    eprintln!("--threads N caps the per-experiment worker pool (default: the");
    eprintln!("machine's available parallelism; output is identical at any N).");
    eprintln!("--regen-golden reruns everything and refreshes tests/golden/.");
    eprintln!("perf runs one fixed wall-clock workload per hot area (areas:");
    eprintln!("{}) and refreshes BENCH_<area>.json +", perf::AREAS.join(", "));
    eprintln!("results/prof/<area>.folded; with --check it instead gates fresh");
    eprintln!("numbers against the checked-in baselines (fail beyond --tolerance,");
    eprintln!("default 2x) without touching any artefact.");
    eprintln!("bench-parallel times `exp all` at 1 vs N threads, byte-diffs the");
    eprintln!("results, and writes BENCH_parallel.json at the workspace root.");
    eprintln!("fleetscale sweeps the sharded fleet core to --max-pods (default");
    eprintln!("1000000) across shard counts, verifies cross-shard digest");
    eprintln!("identity (non-zero exit on divergence), and writes");
    eprintln!("results/fleetscale.json + BENCH_fleetscale.json.\n");
    eprintln!("KINDS is comma-separated event kind names; a trailing `*` globs");
    eprintln!("(e.g. --filter 'Pod*,JobStarted').\n");
    eprintln!("experiments:");
    for (id, desc, _) in REGISTRY {
        eprintln!("  {id:<10} {desc}");
    }
    std::process::exit(2);
}

fn read_trace(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(2);
    })
}

/// Resolves an `<id|path>` argument: an existing file is used as-is, and
/// anything else is treated as an experiment id with the artefact expected
/// at `results/<id>.<suffix>`. Returns `(experiment id, path)`.
fn resolve_artefact(arg: &str, suffix: &str) -> (String, PathBuf) {
    let p = Path::new(arg);
    if p.is_file() {
        let stem = p
            .file_name()
            .and_then(|n| n.to_str())
            .map(|n| n.split('.').next().unwrap_or(n).to_string())
            .unwrap_or_else(|| "trace".to_string());
        return (stem, p.to_path_buf());
    }
    (arg.to_string(), results_dir().join(format!("{arg}.{suffix}")))
}

/// True when the event kind `name` matches the `--filter` expression: a
/// comma-separated list of kind names where a trailing `*` matches any
/// suffix (`Pod*` hits `PodRequested`, `PodPlaced`, ...).
fn filter_matches(filter: &str, name: &str) -> bool {
    filter.split(',').map(str::trim).filter(|p| !p.is_empty()).any(|p| match p.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => name == p,
    })
}

/// `exp trace --chrome`: merge an experiment's span + event logs into one
/// Perfetto-loadable trace-event file at `results/<id>.chrome.json`.
fn chrome_command(arg: &str) -> ! {
    let (id, spans_path) = resolve_artefact(arg, "spans.jsonl");
    let spans = parse_spans_jsonl(&read_trace(&spans_path)).unwrap_or_else(|| {
        eprintln!("malformed span log: {}", spans_path.display());
        std::process::exit(2);
    });
    // The event log is optional garnish: instants on top of the spans.
    let events_path = results_dir().join(format!("{id}.trace.jsonl"));
    let events: Vec<Event> = std::fs::read_to_string(&events_path)
        .map(|body| body.lines().filter_map(|l| serde_json::from_str(l).ok()).collect())
        .unwrap_or_default();
    let out = results_dir().join(format!("{id}.chrome.json"));
    let json = chrome_trace_json(&spans, &events);
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(2);
    });
    println!(
        "{}: {} spans + {} events -> {} (open in ui.perfetto.dev)",
        id,
        spans.len(),
        events.len(),
        out.display()
    );
    std::process::exit(0);
}

/// `exp critpath`: attribute an experiment's makespan to phases and print
/// the breakdown (also refreshing `results/<id>.critpath.json`).
fn critpath_command(arg: &str) -> ! {
    let (id, spans_path) = resolve_artefact(arg, "spans.jsonl");
    let spans = parse_spans_jsonl(&read_trace(&spans_path)).unwrap_or_else(|| {
        eprintln!("malformed span log: {}", spans_path.display());
        std::process::exit(2);
    });
    let report = critpath_report(&spans);
    let cp = &report.overall;
    println!("== {id}: critical path ({} spans) ==", cp.span_count);
    println!("makespan: {:.1}s", cp.makespan_us as f64 / 1e6);
    let mut rows: Vec<(&String, &u64)> = cp.phases_us.iter().collect();
    rows.sort_by_key(|&(name, &us)| (std::cmp::Reverse(us), name.clone()));
    for (name, &us) in rows {
        println!("  {name:<20} {:>10.1}s  {:>7}", us as f64 / 1e6, cp.fractions[name]);
    }
    println!("dominant: {}", cp.dominant);
    for (track, tcp) in &report.by_track {
        println!(
            "  track {track:<4} makespan {:>9.1}s dominant {}",
            tcp.makespan_us as f64 / 1e6,
            tcp.dominant
        );
    }
    let out = results_dir().join(format!("{id}.critpath.json"));
    if let Ok(body) = serde_json::to_string_pretty(&report) {
        let _ = std::fs::write(&out, body);
        println!("wrote {}", out.display());
    }
    std::process::exit(0);
}

/// `exp trace`: dump, filter, diff, or export serialized event logs.
fn trace_command(args: &[String]) -> ! {
    if let Some(pos) = args.iter().position(|a| a == "--diff") {
        let mut rest: Vec<&String> = args.iter().collect();
        rest.remove(pos);
        if rest.len() != 2 {
            usage();
        }
        let (left, right) = (read_trace(Path::new(rest[0])), read_trace(Path::new(rest[1])));
        let diffs = dlrover_telemetry::diff_jsonl(&left, &right, 50);
        if diffs.is_empty() {
            println!("identical: {} events", left.lines().count());
            std::process::exit(0);
        }
        for d in &diffs {
            println!("line {}:", d.line);
            println!("  < {}", d.left.as_deref().unwrap_or("(missing)"));
            println!("  > {}", d.right.as_deref().unwrap_or("(missing)"));
        }
        println!("{} differing line(s) (showing at most 50)", diffs.len());
        std::process::exit(1);
    }
    let mut filter = None;
    let mut chrome = None;
    let mut rest: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--filter" {
            filter = Some(it.next().unwrap_or_else(|| usage()).clone());
        } else if a == "--chrome" {
            chrome = Some(it.next().unwrap_or_else(|| usage()).clone());
        } else {
            rest.push(a);
        }
    }
    if let Some(arg) = chrome {
        if !rest.is_empty() || filter.is_some() {
            usage();
        }
        chrome_command(&arg);
    }
    if rest.len() != 1 {
        usage();
    }
    let (_, path) = resolve_artefact(rest[0], "trace.jsonl");
    let body = read_trace(&path);
    let mut shown = 0usize;
    for line in body.lines() {
        let keep = match &filter {
            None => true,
            Some(f) => serde_json::from_str::<Event>(line)
                .map(|e| filter_matches(f, e.kind.name()))
                .unwrap_or(false),
        };
        if keep {
            println!("{line}");
            shown += 1;
        }
    }
    eprintln!("{shown} of {} events", body.lines().count());
    std::process::exit(0);
}

/// `exp chaos --seed N --plans K`: run K generated fault plans through the
/// chaos harness and exit non-zero if any oracle invariant was violated
/// (the CI smoke gate). Writes `results/chaos.json`.
fn chaos_command(args: &[String]) -> ! {
    let mut seed = 42u64;
    let mut plans = 100u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--plans" => {
                plans = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let (_, violations) = exp::chaos::run_chaos(seed, plans);
    if violations > 0 {
        eprintln!("chaos: {violations} invariant violation(s)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `exp ckptplane --seed N`: sweep the tiered checkpoint plane (policy x
/// recovery path) over the diurnal fleet trace and exit non-zero on any
/// durability-oracle violation or cross-shard digest divergence (the CI
/// smoke gate). Writes `results/ckptplane.json`.
fn ckptplane_command(args: &[String]) -> ! {
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let (_, violations, shard_invariant) = exp::ckptplane::run_ckptplane(seed);
    if violations > 0 {
        eprintln!("ckptplane: {violations} durability violation(s)");
        std::process::exit(1);
    }
    if !shard_invariant {
        eprintln!("ckptplane: shard counts DIVERGED — see results/ckptplane.json");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `exp tournament --seed N --plans K --episodes E`: train the learned
/// contenders and race the full roster through the chaos gauntlet,
/// exiting non-zero on any oracle invariant violation (the CI smoke
/// gate). Writes `results/tournament.json`.
fn tournament_command(args: &[String]) -> ! {
    let mut seed = 42u64;
    let mut plans = 4u64;
    let mut episodes = 8u32;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--plans" => {
                plans = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--episodes" => {
                episodes = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let (_, violations) = exp::tournament::run_tournament(seed, plans, episodes);
    if violations > 0 {
        eprintln!("tournament: {violations} invariant violation(s)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `exp reconfig --seed N --plans K`: run the execution-plan
/// reconfiguration ablation (off vs on, clean + K chaos plans per arm)
/// and exit non-zero if any oracle invariant — including the
/// reconfig-consistency invariant — was violated (the CI smoke gate).
/// Writes `results/reconfig.json`.
fn reconfig_command(args: &[String]) -> ! {
    let mut seed = 42u64;
    let mut plans = 4u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--plans" => {
                plans = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let (_, violations) = exp::reconfig::run_reconfig(seed, plans);
    if violations > 0 {
        eprintln!("reconfig: {violations} invariant violation(s)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `exp --regen-golden`: rerun every registered experiment at `seed`,
/// then digest the artefacts it left in `results/` into
/// `tests/golden/<id>.digest`. The tier-1 golden tests compare against
/// exactly these files, so this is the one sanctioned way to bless an
/// intentional behaviour change.
fn regen_golden_command(seed: u64) -> ! {
    for (id, _, run) in REGISTRY {
        eprintln!(">>> running {id} (seed {seed})");
        run(seed);
    }
    let dir = results_dir();
    for (id, _, _) in REGISTRY {
        let trace = read_trace(&dir.join(format!("{id}.trace.jsonl")));
        let spans = read_trace(&dir.join(format!("{id}.spans.jsonl")));
        let digest = GoldenDigest::of(&trace, &spans);
        write_golden(id, &digest).unwrap_or_else(|e| {
            eprintln!("cannot write golden digest for {id}: {e}");
            std::process::exit(2);
        });
        eprintln!(
            "golden {id}: trace_fnv={:#018x} spans_fnv={:#018x}",
            digest.trace_fnv, digest.spans_fnv
        );
    }
    eprintln!("refreshed {} digests in tests/golden/", REGISTRY.len());
    std::process::exit(0);
}

/// `exp bench-parallel`: run `exp all` twice in child processes — once at
/// one thread, once at `threads` — byte-diff the two output sets
/// ([`perf::run_parallel_bench`]), and record honest wall-clock numbers
/// in `BENCH_parallel.json` at the workspace root. Exits non-zero if any
/// output byte differs (the ISSUE's determinism acceptance gate).
fn bench_parallel_command(threads: usize) -> ! {
    let bench = perf::run_parallel_bench(threads).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let out = perf::write_bench(
        "parallel",
        &["serial_s", "parallel_s", "speedup"],
        &perf::parallel_body(&bench),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let avail = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    println!(
        "serial {:.1}s, parallel({threads}) {:.1}s, speedup {:.2}x \
         (available_parallelism={avail}) -> {}",
        bench.serial_s,
        bench.parallel_s,
        bench.speedup,
        out.display()
    );
    std::process::exit(0);
}

/// `exp perf`: the self-profiling plane's entry point. Runs one fixed
/// workload per hot area, refreshing `BENCH_<area>.json` and the folded
/// profiles under `results/prof/` — or, with `--check`, gates fresh
/// numbers against the checked-in baselines (the CI perf-smoke job).
fn perf_command(args: &[String], threads_flag: Option<usize>) -> ! {
    let mut opts = perf::PerfOpts {
        threads: threads_flag
            .unwrap_or_else(|| std::thread::available_parallelism().map(usize::from).unwrap_or(4))
            .max(2),
        ..perf::PerfOpts::default()
    };
    let mut areas: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => opts.check = true,
            "--tolerance" => {
                opts.tolerance = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                if opts.tolerance <= 1.0 || opts.tolerance.is_nan() {
                    usage();
                }
            }
            "--seed" => {
                opts.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--max-pods" => {
                opts.max_pods = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                if opts.max_pods == 0 {
                    usage();
                }
            }
            other if !other.starts_with('-') => areas.push(other.to_string()),
            _ => usage(),
        }
    }
    match perf::run(&areas, &opts) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// `exp fleetscale`: sweep the sharded fleet core (ISSUE-6 tentpole) to
/// `--max-pods` across `--shards` shard counts. Determinism lands in
/// `results/fleetscale.json` via the experiment module; this command adds
/// the wall-clock artefact `BENCH_fleetscale.json` (pod-events/sec per
/// shard count, peak RSS, shard-scaling curves) at the workspace root and
/// exits non-zero if any shard count diverged from the single-shard
/// digests.
fn fleetscale_command(args: &[String]) -> ! {
    let mut seed = 42u64;
    let mut max_pods = 1_000_000u64;
    let mut shards: Vec<u32> = vec![1, 2, 4, 8];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--max-pods" => {
                max_pods = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--shards" => {
                let list = it.next().unwrap_or_else(|| usage());
                shards =
                    list.split(',').map(|s| s.trim().parse().unwrap_or_else(|_| usage())).collect();
            }
            _ => usage(),
        }
    }
    if shards.is_empty() || shards.contains(&0) || max_pods == 0 {
        usage();
    }
    let mut targets: Vec<u64> =
        [10_000u64, 100_000, 1_000_000].into_iter().filter(|t| *t <= max_pods).collect();
    if targets.is_empty() {
        targets.push(max_pods);
    }

    let (outcome, body) = perf::run_fleetscale_bench(seed, &targets, &shards);
    let out = perf::write_bench("fleetscale", &["pod_events_per_sec"], &body).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!("wrote {}", out.display());
    if !outcome.all_identical {
        eprintln!("fleetscale: shard counts DIVERGED — see results/fleetscale.json");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--threads N` is global: it caps the worker pool for every
    // subcommand (output is identical at any value, only wall-clock
    // changes). Parsed and stripped before dispatch.
    let mut threads_flag = None;
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        if pos + 1 >= args.len() {
            usage();
        }
        let n: usize = args[pos + 1].parse().unwrap_or_else(|_| usage());
        if n == 0 {
            usage();
        }
        dlrover_bench::parallel::set_threads(n);
        threads_flag = Some(n);
        args.drain(pos..=pos + 1);
    }
    if args.first().map(String::as_str) == Some("chaos") {
        chaos_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("ckptplane") && args.len() > 1 {
        ckptplane_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("tournament") && args.len() > 1 {
        tournament_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("reconfig") && args.len() > 1 {
        reconfig_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fleetscale") {
        fleetscale_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        trace_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("critpath") {
        if args.len() != 2 {
            usage();
        }
        critpath_command(&args[1]);
    }
    if args.first().map(String::as_str) == Some("bench-parallel") {
        if args.len() != 1 {
            usage();
        }
        let threads = threads_flag
            .unwrap_or_else(|| std::thread::available_parallelism().map(usize::from).unwrap_or(4))
            .max(2);
        bench_parallel_command(threads);
    }
    if args.first().map(String::as_str) == Some("perf") {
        perf_command(&args[1..], threads_flag);
    }
    let mut seed = 42u64;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if pos + 1 >= args.len() {
            usage();
        }
        seed = args[pos + 1].parse().unwrap_or_else(|_| usage());
        args.drain(pos..=pos + 1);
    }
    if args.iter().any(|a| a == "--regen-golden") {
        if args.len() != 1 {
            usage();
        }
        regen_golden_command(seed);
    }
    if args.is_empty() {
        usage();
    }
    let selected: Vec<&dlrover_bench::experiments::Runner> = if args.iter().any(|a| a == "all") {
        REGISTRY.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                REGISTRY.iter().find(|(id, _, _)| id == a).unwrap_or_else(|| {
                    eprintln!("unknown experiment: {a}\n");
                    usage()
                })
            })
            .collect()
    };
    for (id, _, run) in selected {
        eprintln!(">>> running {id} (seed {seed})");
        let started = std::time::Instant::now();
        run(seed);
        let secs = started.elapsed().as_secs_f64();
        // Harness-side observability (ISSUE-6 satellite): telemetry events
        // emitted per wall-clock second (from the trace the run just wrote)
        // and the process peak RSS, on every one-line summary.
        let mut extras = String::new();
        if let Ok(body) = std::fs::read_to_string(results_dir().join(format!("{id}.trace.jsonl"))) {
            let events = body.lines().count() as u64;
            match events_per_sec(events, secs) {
                Some(rate) => extras.push_str(&format!(" · {rate:.0} events/s")),
                None => extras.push_str(" · - events/s"),
            }
        }
        if let Some(rss) = peak_rss_bytes() {
            extras.push_str(&format!(" · peak_rss {}", format_bytes(rss)));
        }
        eprintln!("<<< {id} done in {secs:.1}s{extras}\n");
    }
}

#[cfg(test)]
mod tests {
    use super::filter_matches;

    /// ISSUE-2 satellite: `--filter` takes comma-separated kinds and
    /// `prefix*` globs.
    #[test]
    fn filter_accepts_kind_lists_and_globs() {
        assert!(filter_matches("JobStarted", "JobStarted"));
        assert!(!filter_matches("JobStarted", "JobCompleted"));
        assert!(filter_matches("JobStarted,JobCompleted", "JobCompleted"));
        assert!(filter_matches("Pod*", "PodRequested"));
        assert!(filter_matches("Pod*", "PodPlaced"));
        assert!(!filter_matches("Pod*", "JobStarted"));
        assert!(filter_matches("Pod*,Job*", "JobOomed"));
        // Whitespace around commas is tolerated; empty terms never match.
        assert!(filter_matches(" PodPlaced , MigrationStarted ", "MigrationStarted"));
        assert!(!filter_matches("", "JobStarted"));
        assert!(!filter_matches(",,", "JobStarted"));
        // A bare `*` matches everything.
        assert!(filter_matches("*", "Anything"));
    }
}
