//! Experiment dispatcher: regenerates the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p dlrover-bench --bin exp -- all
//! cargo run --release -p dlrover-bench --bin exp -- fig7 fig10
//! cargo run --release -p dlrover-bench --bin exp -- --seed 123 fig11
//! cargo run --release -p dlrover-bench --bin exp -- trace results/fig7.trace.jsonl
//! cargo run --release -p dlrover-bench --bin exp -- trace --diff a.jsonl b.jsonl
//! ```

use dlrover_bench::experiments as exp;

type Runner = (&'static str, &'static str, fn(u64) -> String);

const EXPERIMENTS: &[Runner] = &[
    ("fig1a", "operator time distribution (lookup share)", exp::fig1::run_fig1a),
    ("fig1b", "embedding memory growth over 15h", exp::fig1::run_fig1b),
    ("table1", "CPU-only vs hybrid cost", exp::table1::run),
    ("fig3", "fleet utilisation CDF + pending times", exp::fig3::run),
    ("table2", "cluster job mix", exp::table2::run),
    ("fig7", "JCT by scheduler and model", exp::fig7::run),
    ("fig8", "convergence under elasticity (real training)", exp::fig8::run),
    ("fig9", "warm-starting accuracy", exp::fig9::run),
    ("fig10", "cold-start throughput ramp", exp::fig10::run),
    ("fig11", "throughput model fit", exp::fig11::run),
    ("fig12", "hot-PS recovery strategies", exp::fig12_13::run_fig12),
    ("fig13", "worker-straggler recovery strategies", exp::fig12_13::run_fig13),
    ("fig14", "12-month migration ramp", exp::production::run_fig14),
    ("fig15", "cluster-level JCT reductions", exp::production::run_fig15),
    ("table4", "failure rates before/after", exp::production::run_table4),
    ("ablations", "design-choice ablations", exp::ablations::run),
];

fn usage() -> ! {
    eprintln!("usage: exp [--seed N] <experiment|all> [more experiments...]");
    eprintln!("       exp trace [--filter KIND] <trace.jsonl>");
    eprintln!("       exp trace --diff <left.jsonl> <right.jsonl>\n");
    eprintln!("experiments:");
    for (id, desc, _) in EXPERIMENTS {
        eprintln!("  {id:<10} {desc}");
    }
    std::process::exit(2);
}

fn read_trace(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    })
}

/// `exp trace`: dump, filter, or diff serialized event logs.
fn trace_command(args: &[String]) -> ! {
    if let Some(pos) = args.iter().position(|a| a == "--diff") {
        let mut rest: Vec<&String> = args.iter().collect();
        rest.remove(pos);
        if rest.len() != 2 {
            usage();
        }
        let (left, right) = (read_trace(rest[0]), read_trace(rest[1]));
        let diffs = dlrover_telemetry::diff_jsonl(&left, &right, 50);
        if diffs.is_empty() {
            println!("identical: {} events", left.lines().count());
            std::process::exit(0);
        }
        for d in &diffs {
            println!("line {}:", d.line);
            println!("  < {}", d.left.as_deref().unwrap_or("(missing)"));
            println!("  > {}", d.right.as_deref().unwrap_or("(missing)"));
        }
        println!("{} differing line(s) (showing at most 50)", diffs.len());
        std::process::exit(1);
    }
    let mut filter = None;
    let mut rest: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--filter" {
            filter = Some(it.next().unwrap_or_else(|| usage()).clone());
        } else {
            rest.push(a);
        }
    }
    if rest.len() != 1 {
        usage();
    }
    let body = read_trace(rest[0]);
    let mut shown = 0usize;
    for line in body.lines() {
        if filter.as_deref().is_none_or(|f| line.contains(f)) {
            println!("{line}");
            shown += 1;
        }
    }
    eprintln!("{shown} of {} events", body.lines().count());
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        trace_command(&args[1..]);
    }
    let mut seed = 42u64;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if pos + 1 >= args.len() {
            usage();
        }
        seed = args[pos + 1].parse().unwrap_or_else(|_| usage());
        args.drain(pos..=pos + 1);
    }
    if args.is_empty() {
        usage();
    }
    let selected: Vec<&Runner> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                EXPERIMENTS.iter().find(|(id, _, _)| id == a).unwrap_or_else(|| {
                    eprintln!("unknown experiment: {a}\n");
                    usage()
                })
            })
            .collect()
    };
    for (id, _, run) in selected {
        eprintln!(">>> running {id} (seed {seed})");
        let started = std::time::Instant::now();
        run(seed);
        eprintln!("<<< {id} done in {:.1}s\n", started.elapsed().as_secs_f64());
    }
}
