//! Experiment harness for the DLRover-RM reproduction.
//!
//! One module per table/figure of the paper's evaluation (§2 and §6); the
//! `exp` binary dispatches on the experiment id and prints the same rows /
//! series the paper plots, plus a machine-readable JSON copy under
//! `results/`. `EXPERIMENTS.md` records paper-vs-measured for each.
//!
//! ```sh
//! cargo run --release -p dlrover-bench --bin exp -- all
//! cargo run --release -p dlrover-bench --bin exp -- fig7
//! ```

#![forbid(unsafe_code)]

pub mod chrome;
pub mod critpath;
pub mod experiments;
pub mod fixture;
pub mod golden;
pub mod parallel;
pub mod perf;
pub mod report;
pub mod sysmetrics;

pub use chrome::{chrome_trace, chrome_trace_json};
pub use critpath::{critical_path, critical_path_by_track, critpath_report, CritPath};
pub use parallel::{merge_telemetry, run_units, run_units_auto, Unit, UnitOutput};
pub use report::{results_dir, Report};
pub use sysmetrics::{events_per_sec, format_bytes, peak_rss_bytes};
