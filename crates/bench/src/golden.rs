//! Golden-trace regression corpus.
//!
//! Every experiment's telemetry artefacts (event trace + span log) are
//! deterministic functions of the canonical seed, so their digests can be
//! committed and diffed like any other expected output. `tests/golden/`
//! holds one small file per experiment with FNV-1a 64 digests of the
//! `.trace.jsonl` and `.spans.jsonl` bytes; a tier-1 test per experiment
//! (see the test module here) re-runs the experiment via the shared
//! [`crate::fixture`] and asserts the digests match.
//!
//! A mismatch means the run's *telemetry* changed — an event added,
//! reordered, or re-stamped — which is either a regression or an
//! intentional change. For the latter, refresh the corpus with:
//!
//! ```sh
//! cargo run --release -p dlrover-bench --bin exp -- --regen-golden
//! ```
//!
//! and commit the updated digest files together with the change that
//! explains them (EXPERIMENTS.md documents the workflow).

use std::path::PathBuf;

/// FNV-1a 64 over a byte string — the same cheap, dependency-free hash the
/// RNG stream derivation uses; 64 bits is plenty for a corpus of 18
/// hand-reviewed artefacts.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The committed digests of one experiment's telemetry artefacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldenDigest {
    /// FNV-1a 64 of the `.trace.jsonl` bytes.
    pub trace_fnv: u64,
    /// FNV-1a 64 of the `.spans.jsonl` bytes.
    pub spans_fnv: u64,
}

impl GoldenDigest {
    /// Digests the two artefact bodies.
    pub fn of(trace: &str, spans: &str) -> GoldenDigest {
        GoldenDigest { trace_fnv: fnv64(trace.as_bytes()), spans_fnv: fnv64(spans.as_bytes()) }
    }

    /// Renders the committed file format (stable, line-oriented).
    pub fn render(&self) -> String {
        format!("trace_fnv=0x{:016x}\nspans_fnv=0x{:016x}\n", self.trace_fnv, self.spans_fnv)
    }

    /// Parses [`Self::render`]'s format. Returns `None` on any malformed
    /// or missing field.
    pub fn parse(text: &str) -> Option<GoldenDigest> {
        let mut trace = None;
        let mut spans = None;
        for line in text.lines() {
            let (key, value) = line.split_once('=')?;
            let value = u64::from_str_radix(value.trim().strip_prefix("0x")?, 16).ok()?;
            match key.trim() {
                "trace_fnv" => trace = Some(value),
                "spans_fnv" => spans = Some(value),
                _ => return None,
            }
        }
        Some(GoldenDigest { trace_fnv: trace?, spans_fnv: spans? })
    }
}

/// The committed corpus directory, `<workspace root>/tests/golden`.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("tests").join("golden")
}

/// Reads experiment `id`'s committed digest, if present and well-formed.
pub fn read_golden(id: &str) -> Option<GoldenDigest> {
    let path = golden_dir().join(format!("{id}.digest"));
    GoldenDigest::parse(&std::fs::read_to_string(path).ok()?)
}

/// Writes experiment `id`'s digest into the corpus (the `--regen-golden`
/// path).
pub fn write_golden(id: &str, digest: &GoldenDigest) -> std::io::Result<()> {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join(format!("{id}.digest")), digest.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;

    #[test]
    fn digest_file_format_roundtrips() {
        let d = GoldenDigest { trace_fnv: 0xDEAD_BEEF, spans_fnv: 7 };
        assert_eq!(GoldenDigest::parse(&d.render()), Some(d));
        assert_eq!(GoldenDigest::parse(""), None);
        assert_eq!(GoldenDigest::parse("trace_fnv=0x1\n"), None, "missing field");
        assert_eq!(GoldenDigest::parse("trace_fnv=1\nspans_fnv=0x2\n"), None, "missing 0x");
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv64(b"foobar"), 0x85944171F73967E8);
    }

    /// Asserts experiment `id`'s canonical-seed telemetry matches the
    /// committed corpus digest.
    fn assert_matches_golden(id: &str) {
        let run = fixture::canonical(id);
        let got = GoldenDigest::of(&run.trace, &run.spans);
        let want = read_golden(id).unwrap_or_else(|| {
            panic!(
                "no committed golden digest for {id} — run \
                 `cargo run --release -p dlrover-bench --bin exp -- --regen-golden` \
                 and commit tests/golden/{id}.digest"
            )
        });
        assert_eq!(
            got,
            want,
            "{id}: telemetry diverged from the golden corpus \
             (trace: {} events, spans: {} lines). If the change is intentional, \
             refresh with `exp -- --regen-golden` and commit the diff.",
            run.trace.lines().count(),
            run.spans.lines().count(),
        );
    }

    macro_rules! golden_test {
        ($name:ident, $id:literal) => {
            #[test]
            fn $name() {
                assert_matches_golden($id);
            }
        };
    }

    golden_test!(golden_fig1a, "fig1a");
    golden_test!(golden_fig1b, "fig1b");
    golden_test!(golden_table1, "table1");
    golden_test!(golden_fig3, "fig3");
    golden_test!(golden_table2, "table2");
    golden_test!(golden_fig7, "fig7");
    golden_test!(golden_fig8, "fig8");
    golden_test!(golden_fig9, "fig9");
    golden_test!(golden_fig10, "fig10");
    golden_test!(golden_fig11, "fig11");
    golden_test!(golden_fig12, "fig12");
    golden_test!(golden_fig13, "fig13");
    golden_test!(golden_fig14, "fig14");
    golden_test!(golden_fig15, "fig15");
    golden_test!(golden_table4, "table4");
    golden_test!(golden_ablations, "ablations");
    golden_test!(golden_chaos, "chaos");
    golden_test!(golden_resilience, "resilience");
    golden_test!(golden_ckptplane, "ckptplane");
    golden_test!(golden_tournament, "tournament");
    golden_test!(golden_reconfig, "reconfig");

    /// The registry and the corpus cover each other: every registered
    /// experiment has a golden test above (this asserts the count so a new
    /// experiment cannot be added without extending the corpus).
    #[test]
    fn corpus_covers_the_whole_registry() {
        assert_eq!(
            crate::experiments::REGISTRY.len(),
            21,
            "new experiment registered — add a golden_test! line and regenerate the corpus"
        );
    }
}
