//! `exp perf`: the tracked perf trajectory of the harness itself.
//!
//! ROADMAP open item 1 turned `BENCH_parallel.json` into a before/after
//! record of the parallel engine; this module generalizes that into one
//! fixed wall-clock workload per hot area, each writing a
//! `BENCH_<area>.json` at the workspace root:
//!
//! | area             | workload                                   | headline            |
//! |------------------|--------------------------------------------|---------------------|
//! | `costmodel`      | fixed sweep of `AsyncCostModel::throughput`| `evals_per_sec`     |
//! | `nsga2`          | ZDT1, pop 128 × 400 generations            | `gens_per_sec`      |
//! | `telemetry-merge`| 64 unit sinks × (events + spans) merged    | `items_per_sec`     |
//! | `parallel`       | `exp all` at 1 thread vs the pool          | `speedup`           |
//! | `fleetscale`     | sharded fleet sweep to `--max-pods`        | `pod_events_per_sec`|
//! | `ckptplane`      | 20k dedup'd saves + restores, 32 jobs      | `saves_per_sec`     |
//!
//! Every artefact keeps the prior run's headline numbers under
//! `previous` (the PR 6 format), so the trajectory is legible from the
//! file alone. `--check` reruns the workloads *without* touching the
//! checked-in artefacts and fails on regressions beyond the tolerance
//! band (default 2×) — the CI perf-smoke gate.
//!
//! Measurement discipline: headline numbers are taken with profiling
//! *off* (the profiler's own overhead must not pollute the trajectory);
//! a second, profiled pass of the same workload then attributes the time
//! (`telemetry::prof`), landing as a `prof` block in the artefact and a
//! flamegraph-compatible folded file under `results/prof/`. Wall-clock
//! never enters `results/<id>.json` or the golden traces — the
//! `prof_determinism` integration test enforces that.

use std::path::{Path, PathBuf};

use dlrover_optimizer::{
    Nsga2, Nsga2Config, NsgaPlanGenerator, ReconfigSpace, ResourceAllocation, ScalingAlgorithm,
};
use dlrover_perfmodel::{JobShape, ModelCoefficients, ThroughputModel, WorkloadConstants};
use dlrover_pstrain::cost::{AsyncCostModel, PodState};
use dlrover_sim::{RngStreams, SimTime};
use dlrover_telemetry::{prof, EventKind, SpanCategory, Telemetry};

use crate::experiments::fleetscale;
use crate::golden::fnv64;
use crate::results_dir;
use crate::sysmetrics::peak_rss_bytes;

/// Every perf area, in the order `exp perf` runs them.
pub const AREAS: [&str; 7] =
    ["costmodel", "nsga2", "reconfig", "telemetry-merge", "parallel", "fleetscale", "ckptplane"];

/// Options shared by every area (parsed from the `exp perf` CLI).
#[derive(Debug, Clone)]
pub struct PerfOpts {
    /// Seed for the deterministic workloads.
    pub seed: u64,
    /// Pool width for the `parallel` area's wide leg.
    pub threads: usize,
    /// Largest fleet target the `fleetscale` area sweeps to.
    pub max_pods: u64,
    /// Compare against checked-in baselines instead of refreshing them.
    pub check: bool,
    /// Allowed regression factor in `--check` (2.0 = fail beyond 2×).
    pub tolerance: f64,
}

impl Default for PerfOpts {
    fn default() -> Self {
        PerfOpts { seed: 42, threads: 2, max_pods: 1_000_000, check: false, tolerance: 2.0 }
    }
}

/// One area's measurements, ready to write or check.
struct AreaOutcome {
    /// `BENCH_<stem>.json` file stem (dashes become underscores).
    stem: String,
    /// The headline metric's JSON key.
    headline_key: &'static str,
    /// The headline value of this run.
    headline: f64,
    /// Whether larger headline values are better.
    higher_is_better: bool,
    /// Headline keys carried into `previous` on refresh.
    previous_keys: &'static [&'static str],
    /// The artefact body (without `previous`).
    body: serde_json::Value,
    /// Folded-stack profile text (empty when the area has none).
    folded: String,
}

/// Wall-clock of one closure, profiling forced off so the measurement is
/// clean.
fn measured<T>(f: impl FnOnce() -> T) -> (T, f64) {
    prof::set_enabled(false);
    let started = std::time::Instant::now();
    let out = f();
    (out, started.elapsed().as_secs_f64())
}

/// Reruns a closure with profiling on and returns the drained profile.
fn profiled<T>(f: impl FnOnce() -> T) -> (T, prof::Profile) {
    prof::reset();
    prof::set_enabled(true);
    let out = f();
    prof::set_enabled(false);
    (out, prof::take_profile())
}

/// Renders a profile as the artefact's `prof` block: per-path calls,
/// total/self milliseconds, and throughput counters, path-ordered.
fn prof_block(profile: &prof::Profile) -> serde_json::Value {
    let sites: serde_json::Map<String, serde_json::Value> = profile
        .sites
        .iter()
        .map(|(path, s)| {
            (
                path.clone(),
                serde_json::json!({
                    "calls": s.calls,
                    "total_ms": s.total_ns as f64 / 1e6,
                    "self_ms": s.self_ns as f64 / 1e6,
                    "items": s.items,
                    "bytes": s.bytes,
                }),
            )
        })
        .collect();
    serde_json::Value::Object(sites)
}

/// The workspace root (where `BENCH_*.json` live).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

// ---------------------------------------------------------------------
// Area workloads. Each is a fixed, deterministic amount of work: the
// wall-clock varies with the machine, the work never does.
// ---------------------------------------------------------------------

/// Fixed cost-model workload: rounds × (3 worker sets × 2 PS layouts)
/// throughput evaluations. Returns the accumulated throughput as a
/// live-output guard (and determinism witness).
fn costmodel_workload() -> (u64, f64) {
    const ROUNDS: u64 = 50_000;
    let model = AsyncCostModel::new(
        ModelCoefficients::simulation_truth(),
        WorkloadConstants { model_size: 120.0, bandwidth: 1_000.0, embedding_dim: 0.65 },
        512,
    );
    let worker_sets: Vec<Vec<PodState>> = [8usize, 16, 32]
        .into_iter()
        .map(|n| {
            (0..n)
                .map(|i| {
                    let mut w = PodState::new(4.0 + (i % 5) as f64);
                    if i % 11 == 0 {
                        w.speed = 0.5; // a mild straggler per set
                    }
                    w
                })
                .collect()
        })
        .collect();
    let layouts = [
        AsyncCostModel::balanced_partitions(8, 8.0),
        AsyncCostModel::skewed_partitions(8, 8.0, 0.4),
    ];
    let mut acc = 0.0f64;
    let mut evals = 0u64;
    for _ in 0..ROUNDS {
        for ws in &worker_sets {
            for ps in &layouts {
                acc += model.throughput(ws, ps);
                evals += 1;
            }
        }
    }
    (evals, std::hint::black_box(acc))
}

fn costmodel_area() -> AreaOutcome {
    let ((evals, acc), wall_s) = measured(costmodel_workload);
    let (_, profile) = profiled(costmodel_workload);
    let evals_per_sec = evals as f64 / wall_s.max(1e-9);
    AreaOutcome {
        stem: "costmodel".into(),
        headline_key: "evals_per_sec",
        headline: evals_per_sec,
        higher_is_better: true,
        previous_keys: &["evals_per_sec", "wall_s"],
        body: serde_json::json!({
            "experiment": "perf-costmodel",
            "description": "fixed AsyncCostModel::throughput sweep (Eqns. 2-6 evaluation hot path)",
            "evals": evals,
            "wall_s": wall_s,
            "evals_per_sec": evals_per_sec,
            "throughput_acc": acc,
            "prof": prof_block(&profile),
        }),
        folded: profile.folded(),
    }
}

/// Fixed NSGA-II workload: ZDT1 (10 vars, 2 objectives), population 128,
/// 400 generations, seeded rng. Returns the front size.
fn nsga2_workload(seed: u64) -> usize {
    const POP: usize = 128;
    const GENS: usize = 400;
    let zdt1 = |g: &[f64]| {
        let f1 = g[0];
        let gsum = 1.0 + 9.0 * g[1..].iter().sum::<f64>() / (g.len() - 1) as f64;
        vec![f1, gsum * (1.0 - (f1 / gsum).sqrt())]
    };
    let opt = Nsga2::new(
        zdt1,
        vec![0.0; 10],
        vec![1.0; 10],
        Nsga2Config { population: POP, generations: GENS, ..Default::default() },
    );
    let mut rng = RngStreams::new(seed).stream("nsga2-perf");
    opt.run(&mut rng).len()
}

fn nsga2_area(seed: u64) -> AreaOutcome {
    const GENS: u64 = 400;
    let (front, wall_s) = measured(|| nsga2_workload(seed));
    let (_, profile) = profiled(|| nsga2_workload(seed));
    let gens_per_sec = GENS as f64 / wall_s.max(1e-9);
    AreaOutcome {
        stem: "nsga2".into(),
        headline_key: "gens_per_sec",
        headline: gens_per_sec,
        higher_is_better: true,
        previous_keys: &["gens_per_sec", "wall_s"],
        body: serde_json::json!({
            "experiment": "perf-nsga2",
            "description": "ZDT1 at population 128 x 400 generations (plan-generation hot path, Eqns. 11-14)",
            "population": 128,
            "generations": GENS,
            "front_size": front,
            "wall_s": wall_s,
            "gens_per_sec": gens_per_sec,
            "prof": prof_block(&profile),
        }),
        folded: profile.folded(),
    }
}

/// Fixed widened plan-generation workload: full NSGA-II searches over the
/// 5-gene resource + execution-plan genome (the PR-10 action space —
/// [`ReconfigSpace::default`] appends the plan index to the 4 resource
/// genes), each candidate priced by the plan-aware throughput model.
/// Returns (candidates produced, throughput accumulator) as a live-output
/// guard and determinism witness.
fn reconfig_workload(seed: u64) -> (u64, f64) {
    const ROUNDS: u64 = 24;
    let model = ThroughputModel::new(
        WorkloadConstants { model_size: 120.0, bandwidth: 1_000.0, embedding_dim: 0.65 },
        ModelCoefficients::simulation_truth(),
    );
    let generator = NsgaPlanGenerator {
        reconfig: Some(ReconfigSpace::default()),
        ..NsgaPlanGenerator::default()
    };
    let current = ResourceAllocation::new(JobShape::new(4, 2, 4.0, 4.0, 512), 8.0, 64.0);
    let mut rng = RngStreams::new(seed).stream("reconfig-perf");
    let mut plans = 0u64;
    let mut acc = 0.0f64;
    for _ in 0..ROUNDS {
        let candidates = generator.candidates(&model, &current, &mut rng);
        plans += candidates.len() as u64;
        acc += candidates.iter().map(|c| c.predicted_throughput).sum::<f64>();
    }
    (plans, std::hint::black_box(acc))
}

fn reconfig_area(seed: u64) -> AreaOutcome {
    let ((plans, acc), wall_s) = measured(|| reconfig_workload(seed));
    let (_, profile) = profiled(|| reconfig_workload(seed));
    let plans_per_sec = plans as f64 / wall_s.max(1e-9);
    AreaOutcome {
        stem: "reconfig".into(),
        headline_key: "plans_per_sec",
        headline: plans_per_sec,
        higher_is_better: true,
        previous_keys: &["plans_per_sec", "wall_s"],
        body: serde_json::json!({
            "experiment": "perf-reconfig",
            "description": "NSGA-II over the widened resource + execution-plan genome (24 searches, plan-aware pricing)",
            "searches": 24,
            "plans": plans,
            "wall_s": wall_s,
            "plans_per_sec": plans_per_sec,
            "throughput_acc": acc,
            "prof": prof_block(&profile),
        }),
        folded: profile.folded(),
    }
}

/// Builds the fixed unit-sink corpus for the merge workload: 64 sinks,
/// each with 4000 events and 1200 spans (600 parent/child pairs).
fn merge_corpus() -> Vec<Telemetry> {
    (0..64u64)
        .map(|u| {
            let t = Telemetry::default();
            t.reserve_events(4_000);
            for i in 0..4_000u64 {
                t.record(
                    SimTime::from_micros(u * 1_000_000 + i),
                    EventKind::WorkerAdded { worker: i },
                );
            }
            for i in 0..600u64 {
                let at = SimTime::from_micros(u * 1_000_000 + i * 10);
                let p = t.span_open(at, SpanCategory::Iteration, "slice", u, None);
                t.span_complete(
                    at,
                    SimTime::from_micros(at.as_micros() + 5),
                    SpanCategory::IterLookup,
                    "lookup",
                    u,
                    Some(p),
                );
                t.span_close(SimTime::from_micros(at.as_micros() + 9), p);
            }
            t.count("units", 1);
            t.observe("iter_s", 0.25 + (u % 7) as f64 * 0.05);
            t
        })
        .collect()
}

/// Merges the corpus once and returns an FNV digest of the merged logs
/// (a determinism witness across optimisation passes of the merge path).
fn merge_once(parts: &[Telemetry]) -> u64 {
    let merged = Telemetry::merge_ordered(parts.iter());
    fnv64(merged.to_jsonl().as_bytes()) ^ fnv64(merged.spans_to_jsonl().as_bytes())
}

fn telemetry_merge_area() -> AreaOutcome {
    const ROUNDS: u64 = 8;
    // Corpus construction is untimed: the workload under test is the
    // merge (absorb) path alone.
    let parts = merge_corpus();
    let items_per_round: u64 = 64 * (4_000 + 1_200);
    let (digest, wall_s) = measured(|| {
        let mut d = 0u64;
        for _ in 0..ROUNDS {
            d = merge_once(&parts);
        }
        d
    });
    let (_, profile) = profiled(|| merge_once(&parts));
    let items = ROUNDS * items_per_round;
    let items_per_sec = items as f64 / wall_s.max(1e-9);
    AreaOutcome {
        stem: "telemetry_merge".into(),
        headline_key: "items_per_sec",
        headline: items_per_sec,
        higher_is_better: true,
        previous_keys: &["items_per_sec", "wall_s"],
        body: serde_json::json!({
            "experiment": "perf-telemetry-merge",
            "description": "Telemetry::merge_ordered over 64 unit sinks (events + spans), the parallel engine's reduction step",
            "rounds": ROUNDS,
            "sinks": 64,
            "items_per_round": items_per_round,
            "items": items,
            "wall_s": wall_s,
            "items_per_sec": items_per_sec,
            "merged_fnv": format!("{digest:#018x}"),
            "prof": prof_block(&profile),
        }),
        folded: profile.folded(),
    }
}

/// The `parallel` area: wall-clock of `exp all` at 1 thread vs the pool,
/// with a byte-diff of the two result trees (shared by `exp
/// bench-parallel` and `exp perf parallel`).
pub struct ParallelBench {
    /// Seconds for the 1-thread leg.
    pub serial_s: f64,
    /// Seconds for the pool leg.
    pub parallel_s: f64,
    /// `serial_s / parallel_s`.
    pub speedup: f64,
    /// Pool width of the wide leg.
    pub threads: usize,
    /// Result files compared between the legs.
    pub files_compared: usize,
}

/// Digests every regular file under `dir` (non-recursive) into a
/// name-sorted `(file name, length, FNV-1a 64)` list, so two result
/// trees compare digest-to-digest without holding both in memory.
fn snapshot_dir(dir: &Path) -> Vec<(String, u64, u64)> {
    let mut files: Vec<(String, u64, u64)> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().is_file())
                .map(|e| {
                    let name = e.file_name().to_string_lossy().into_owned();
                    let body = std::fs::read(e.path()).unwrap_or_default();
                    (name, body.len() as u64, fnv64(&body))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

/// Runs `exp all` twice in child processes — once at one thread, once at
/// `threads` — against scratch results directories, byte-diffs the two
/// output sets, and returns honest wall-clock numbers. `Err` carries a
/// human-readable reason (spawn failure or a determinism mismatch — the
/// latter must fail the caller, bench numbers for diverging runs are
/// meaningless).
pub fn run_parallel_bench(threads: usize) -> Result<ParallelBench, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate exp binary: {e}"))?;
    let base = std::env::temp_dir().join(format!("dlrover-bench-parallel-{}", std::process::id()));
    let run_leg = |label: &str, dir: &Path, threads: usize| -> Result<f64, String> {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        eprintln!("== {label}: exp all, {threads} thread(s) ==");
        let started = std::time::Instant::now();
        let status = std::process::Command::new(&exe)
            .arg("all")
            .env("DLROVER_RESULTS_DIR", dir)
            .env("DLROVER_THREADS", threads.to_string())
            .stdout(std::process::Stdio::null())
            .status()
            .map_err(|e| format!("spawn exp child: {e}"))?;
        let secs = started.elapsed().as_secs_f64();
        if !status.success() {
            return Err(format!("{label} leg failed: {status}"));
        }
        eprintln!("== {label}: {secs:.1}s ==\n");
        Ok(secs)
    };
    let serial_dir = base.join("serial");
    let parallel_dir = base.join("parallel");
    let serial_s = run_leg("serial", &serial_dir, 1)?;
    let parallel_s = run_leg("parallel", &parallel_dir, threads)?;

    let (a, b) = (snapshot_dir(&serial_dir), snapshot_dir(&parallel_dir));
    let a_names: Vec<&String> = a.iter().map(|(n, _, _)| n).collect();
    let b_names: Vec<&String> = b.iter().map(|(n, _, _)| n).collect();
    if a_names != b_names {
        return Err(format!(
            "determinism FAILED: file sets differ\n  serial:   {a_names:?}\n  parallel: {b_names:?}"
        ));
    }
    let diffs: Vec<&String> = a
        .iter()
        .zip(&b)
        .filter(|((_, llen, lfnv), (_, rlen, rfnv))| (llen, lfnv) != (rlen, rfnv))
        .map(|((name, _, _), _)| name)
        .collect();
    if !diffs.is_empty() {
        return Err(format!(
            "determinism FAILED: {diffs:?} differ between 1 and {threads} threads"
        ));
    }
    eprintln!("determinism OK: {} files byte-identical at 1 vs {threads} thread(s)", a.len());
    let _ = std::fs::remove_dir_all(&base);
    Ok(ParallelBench {
        serial_s,
        parallel_s,
        speedup: serial_s / parallel_s.max(1e-9),
        threads,
        files_compared: a.len(),
    })
}

/// The `BENCH_parallel.json` body for a [`ParallelBench`] (also used by
/// the `exp bench-parallel` alias).
pub fn parallel_body(bench: &ParallelBench) -> serde_json::Value {
    let avail = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    serde_json::json!({
        "experiment": "bench-parallel",
        "description": "wall-clock of `exp all` at 1 thread vs the pool",
        "serial_s": bench.serial_s,
        "parallel_s": bench.parallel_s,
        "speedup": bench.speedup,
        "threads": bench.threads,
        "available_parallelism": avail,
        "files_compared": bench.files_compared,
        "byte_identical": true,
    })
}

fn parallel_area(threads: usize) -> Result<AreaOutcome, String> {
    let bench = run_parallel_bench(threads)?;
    Ok(AreaOutcome {
        stem: "parallel".into(),
        headline_key: "speedup",
        headline: bench.speedup,
        higher_is_better: true,
        previous_keys: &["serial_s", "parallel_s", "speedup"],
        body: parallel_body(&bench),
        // The work happens inside the child processes (measured
        // end-to-end above); there is no in-process tree to fold.
        folded: String::new(),
    })
}

/// Fixed checkpoint-plane workload: 20k content-chunked saves across 32
/// jobs in 8 model families against one shared plane (dedup, eviction,
/// and the FIFO remote queue all on the hot path), with a restore every
/// 64th save. Returns `(saves, plane digest)` — the digest doubles as a
/// determinism witness across optimisation passes.
fn ckptplane_workload() -> (u64, u64) {
    const SAVES: u64 = 20_000;
    const JOBS: u64 = 32;
    let mut plane =
        dlrover_master::CheckpointPlane::new(dlrover_master::CkptPlaneConfig::default());
    let mut t = SimTime::ZERO;
    for i in 0..SAVES {
        let job = i % JOBS;
        let step = i / JOBS;
        let samples = step * 1_024;
        let bytes = 500_000_000 + samples * 64 + (job % 8) * 50_000_000;
        t += dlrover_sim::SimDuration::from_secs(7);
        let _ = plane.save(job, job % 8, step, samples, bytes, t);
        if i % 64 == 0 {
            let _ = plane.restore(job, t);
        }
    }
    plane.advance(t);
    (SAVES, plane.digest())
}

fn ckptplane_area() -> AreaOutcome {
    let ((saves, digest), wall_s) = measured(ckptplane_workload);
    let (_, profile) = profiled(ckptplane_workload);
    let saves_per_sec = saves as f64 / wall_s.max(1e-9);
    AreaOutcome {
        stem: "ckptplane".into(),
        headline_key: "saves_per_sec",
        headline: saves_per_sec,
        higher_is_better: true,
        previous_keys: &["saves_per_sec", "wall_s"],
        body: serde_json::json!({
            "experiment": "perf-ckptplane",
            "description": "20k content-chunked checkpoint saves + periodic restores \
                            against one shared tiered plane (§5.3 flash tier hot path)",
            "saves": saves,
            "jobs": 32,
            "wall_s": wall_s,
            "saves_per_sec": saves_per_sec,
            "plane_digest": format!("{digest:#018x}"),
            "prof": prof_block(&profile),
        }),
        folded: profile.folded(),
    }
}

/// The fleetscale sweep plus its `BENCH_fleetscale.json` body (shared by
/// `exp fleetscale` and `exp perf fleetscale`). The headline is the
/// single-shard pod-events/sec at the largest target.
pub fn run_fleetscale_bench(
    seed: u64,
    targets: &[u64],
    shards: &[u32],
) -> (fleetscale::SweepOutcome, serde_json::Value) {
    let outcome = fleetscale::run_sweep(seed, targets, shards);
    let bench_targets: Vec<serde_json::Value> = outcome
        .targets
        .iter()
        .map(|sweep| {
            let per_sec =
                |k: usize| sweep.runs.iter().find(|r| r.shards == k).map(|r| r.pod_events_per_sec);
            let scaling: Vec<serde_json::Value> = sweep
                .runs
                .iter()
                .map(|r| {
                    serde_json::json!({
                        "shards": r.shards,
                        "epochs": r.epochs,
                        "wall_s": r.wall_s,
                        "pod_events_per_sec": r.pod_events_per_sec,
                        "wheel_events_per_sec": r.wheel_events_per_sec,
                    })
                })
                .collect();
            serde_json::json!({
                "target_pods": sweep.target_pods,
                "cells": sweep.cells,
                "planned_pods": sweep.planned_pods,
                "pod_events": sweep.totals.pod_events,
                "wheel_events": sweep.totals.wheel_events,
                "cross_shard_identical": sweep.cross_shard_identical,
                "runs": scaling,
                "speedup_4_vs_1": match (per_sec(4), per_sec(1)) {
                    (Some(four), Some(one)) if one > 0.0 => {
                        serde_json::json!(four / one)
                    }
                    _ => serde_json::Value::Null,
                },
            })
        })
        .collect();
    let headline = outcome
        .targets
        .last()
        .and_then(|sweep| sweep.runs.iter().find(|r| r.shards == 1))
        .map(|r| r.pod_events_per_sec)
        .unwrap_or(0.0);
    let body = serde_json::json!({
        "experiment": "fleetscale",
        "description": "sharded fleet core swept to 1M pods: pod-events/sec and \
                        peak RSS per shard count (deterministic twin: results/fleetscale.json)",
        "seed": seed,
        "shard_counts": shards,
        "targets": bench_targets,
        "pod_events_per_sec": headline,
        "peak_rss_bytes": peak_rss_bytes(),
        "cross_shard_identical": outcome.all_identical,
    });
    (outcome, body)
}

fn fleetscale_area(seed: u64, max_pods: u64) -> Result<AreaOutcome, String> {
    let mut targets: Vec<u64> =
        [10_000u64, 100_000, 1_000_000].into_iter().filter(|t| *t <= max_pods).collect();
    if targets.is_empty() {
        targets.push(max_pods);
    }
    let shards: Vec<u32> = vec![1, 2, 4, 8];
    let ((outcome, mut body), _wall) = measured(|| run_fleetscale_bench(seed, &targets, &shards));
    if !outcome.all_identical {
        return Err("fleetscale: shard counts DIVERGED — see results/fleetscale.json".into());
    }
    let headline =
        body.get("pod_events_per_sec").and_then(serde_json::Value::as_f64).unwrap_or(0.0);
    // Profiled pass: the largest target at one shard is enough to
    // attribute epoch vs exchange time without doubling the whole sweep.
    let top = *targets.last().expect("at least one target");
    let (_, profile) = profiled(|| {
        let cfg = dlrover_cluster::FleetScaleConfig::for_target_pods(top);
        let mut fleet = dlrover_cluster::ShardedFleet::new(&cfg, 1, seed);
        fleetscale::run_pooled(&mut fleet)
    });
    if let serde_json::Value::Object(map) = &mut body {
        map.insert("prof".into(), prof_block(&profile));
    }
    Ok(AreaOutcome {
        stem: "fleetscale".into(),
        headline_key: "pod_events_per_sec",
        headline,
        higher_is_better: true,
        previous_keys: &["pod_events_per_sec"],
        body,
        folded: profile.folded(),
    })
}

// ---------------------------------------------------------------------
// Artefact writing and regression checking.
// ---------------------------------------------------------------------

/// Writes `BENCH_<stem>.json` at the workspace root, carrying the prior
/// run's `previous_keys` fields under `previous` (the PR 6 before/after
/// format) so the artefact itself records the trajectory.
pub fn write_bench(
    stem: &str,
    previous_keys: &[&str],
    body: &serde_json::Value,
) -> Result<PathBuf, String> {
    let out = workspace_root().join(format!("BENCH_{stem}.json"));
    let previous = std::fs::read_to_string(&out)
        .ok()
        .and_then(|old| serde_json::from_str::<serde_json::Value>(&old).ok())
        .map(|old| {
            let kept: serde_json::Map<String, serde_json::Value> = previous_keys
                .iter()
                .map(|k| (k.to_string(), old.get(k).cloned().unwrap_or(serde_json::Value::Null)))
                .collect();
            serde_json::Value::Object(kept)
        })
        .unwrap_or(serde_json::Value::Null);
    let mut body = body.clone();
    if let serde_json::Value::Object(map) = &mut body {
        map.insert("previous".into(), previous);
    }
    std::fs::write(&out, format!("{body:#}\n"))
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    Ok(out)
}

/// Writes one area's artefact plus its folded profile under
/// `results/prof/<stem>.folded` when the area produced one.
fn write_area(area: &AreaOutcome) -> Result<PathBuf, String> {
    let out = write_bench(&area.stem, area.previous_keys, &area.body)?;
    if !area.folded.is_empty() {
        let dir = results_dir().join("prof");
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let fpath = dir.join(format!("{}.folded", area.stem));
        std::fs::write(&fpath, &area.folded)
            .map_err(|e| format!("cannot write {}: {e}", fpath.display()))?;
    }
    Ok(out)
}

/// Compares a fresh headline against the checked-in baseline. `Ok` is a
/// one-line verdict; `Err` is a regression (or a missing/odd baseline,
/// which must fail loudly — a gate that silently skips is no gate).
fn check_area(area: &AreaOutcome, tolerance: f64) -> Result<String, String> {
    let path = workspace_root().join(format!("BENCH_{}.json", area.stem));
    let baseline = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: no baseline ({e}) — run `exp perf` to create it", area.stem))?;
    let baseline: serde_json::Value = serde_json::from_str(&baseline)
        .map_err(|e| format!("{}: unparseable baseline: {e}", area.stem))?;
    let base = baseline
        .get(area.headline_key)
        .and_then(serde_json::Value::as_f64)
        .ok_or_else(|| format!("{}: baseline lacks {}", area.stem, area.headline_key))?;
    if base <= 0.0 || area.headline <= 0.0 {
        return Err(format!(
            "{}: degenerate headline (base {base}, fresh {})",
            area.stem, area.headline
        ));
    }
    let regression =
        if area.higher_is_better { base / area.headline } else { area.headline / base };
    let verdict = format!(
        "{:<16} {} base {:.3} fresh {:.3} regression {:.2}x (tolerance {:.2}x)",
        area.stem, area.headline_key, base, area.headline, regression, tolerance
    );
    if regression > tolerance {
        Err(verdict)
    } else {
        Ok(verdict)
    }
}

/// Runs the named areas (every area when `areas` is empty). Refresh mode
/// rewrites `BENCH_*.json` + `results/prof/*.folded`; `--check` mode
/// leaves artefacts untouched and returns `Err` on any regression beyond
/// the tolerance band.
pub fn run(areas: &[String], opts: &PerfOpts) -> Result<(), String> {
    let selected: Vec<String> = if areas.is_empty() {
        AREAS.iter().map(|s| s.to_string()).collect()
    } else {
        for a in areas {
            if !AREAS.contains(&a.as_str()) {
                return Err(format!("unknown perf area {a:?} (areas: {})", AREAS.join(", ")));
            }
        }
        areas.to_vec()
    };
    // `--check` must not touch any artefact, but the fleetscale workload
    // writes its deterministic twin (`results/fleetscale.json`) through
    // the experiment's `Report` — and a truncated `--max-pods` check run
    // must never clobber the canonical full sweep. Route every
    // `results_dir()` write to a scratch directory for the check's
    // duration (an explicit DLROVER_RESULTS_DIR is restored afterwards;
    // the parallel area's child processes set their own override).
    let scratch = if opts.check {
        let dir = std::env::temp_dir().join(format!("dlrover-perf-check-{}", std::process::id()));
        let prior = std::env::var("DLROVER_RESULTS_DIR").ok();
        let _ = std::fs::create_dir_all(&dir);
        std::env::set_var("DLROVER_RESULTS_DIR", &dir);
        Some((prior, dir))
    } else {
        None
    };
    let mut failures = Vec::new();
    for name in &selected {
        eprintln!(">>> perf {name}");
        let outcome = match name.as_str() {
            "costmodel" => Ok(costmodel_area()),
            "nsga2" => Ok(nsga2_area(opts.seed)),
            "reconfig" => Ok(reconfig_area(opts.seed)),
            "telemetry-merge" => Ok(telemetry_merge_area()),
            "parallel" => parallel_area(opts.threads),
            "fleetscale" => fleetscale_area(opts.seed, opts.max_pods),
            "ckptplane" => Ok(ckptplane_area()),
            other => unreachable!("area {other} validated above"),
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                failures.push(e);
                continue;
            }
        };
        if opts.check {
            match check_area(&outcome, opts.tolerance) {
                Ok(line) => println!("PASS {line}"),
                Err(line) => {
                    println!("FAIL {line}");
                    failures.push(line);
                }
            }
        } else {
            match write_area(&outcome) {
                Ok(path) => println!(
                    "{name}: {} = {:.3} -> {}",
                    outcome.headline_key,
                    outcome.headline,
                    path.display()
                ),
                Err(e) => failures.push(e),
            }
        }
    }
    if let Some((prior, dir)) = scratch {
        match prior {
            Some(v) => std::env::set_var("DLROVER_RESULTS_DIR", v),
            None => std::env::remove_var("DLROVER_RESULTS_DIR"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{} perf area(s) failed:\n  {}", failures.len(), failures.join("\n  ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The merge workload is deterministic: two corpus builds merge to
    /// the same digest (so trajectory numbers always describe identical
    /// work).
    #[test]
    fn merge_workload_is_deterministic() {
        let a = merge_once(&merge_corpus());
        let b = merge_once(&merge_corpus());
        assert_eq!(a, b);
    }

    /// The cost-model workload always evaluates the same fixed count and
    /// accumulates the same throughput total.
    #[test]
    fn costmodel_workload_is_fixed_work() {
        let (evals_a, acc_a) = costmodel_workload();
        let (evals_b, acc_b) = costmodel_workload();
        assert_eq!(evals_a, 50_000 * 6);
        assert_eq!(evals_a, evals_b);
        assert_eq!(acc_a.to_bits(), acc_b.to_bits());
    }

    /// Unknown areas are rejected before any work runs.
    #[test]
    fn unknown_area_is_an_error() {
        let err = run(&["warp-drive".to_string()], &PerfOpts::default()).unwrap_err();
        assert!(err.contains("unknown perf area"), "{err}");
    }

    /// The regression gate math: higher-is-better fails when fresh drops
    /// below base/tolerance, passes at the boundary.
    #[test]
    fn check_math_flags_only_real_regressions() {
        let area = |headline: f64| AreaOutcome {
            stem: "parallel".into(),
            headline_key: "speedup",
            headline,
            higher_is_better: true,
            previous_keys: &["speedup"],
            body: serde_json::json!({}),
            folded: String::new(),
        };
        // BENCH_parallel.json is checked in at the workspace root; its
        // speedup baseline is a sub-10 positive float.
        let path = workspace_root().join("BENCH_parallel.json");
        let base: f64 = serde_json::from_str::<serde_json::Value>(
            &std::fs::read_to_string(path).expect("checked-in baseline"),
        )
        .unwrap()["speedup"]
            .as_f64()
            .unwrap();
        assert!(check_area(&area(base), 2.0).is_ok(), "parity must pass");
        assert!(check_area(&area(base / 1.5), 2.0).is_ok(), "within band");
        assert!(check_area(&area(base / 3.0), 2.0).is_err(), "beyond band");
        assert!(check_area(&area(base * 4.0), 2.0).is_ok(), "improvement passes");
    }
}
