//! Report plumbing: pretty tables on stdout + JSON rows under the
//! workspace-root `results/` directory.

use std::fmt::Display;
use std::fs;
use std::path::{Path, PathBuf};

use dlrover_telemetry::{parse_spans_jsonl, Telemetry};
use serde::Serialize;

use crate::critpath::critpath_report;

/// The artefact directory reports are written to and read back from.
///
/// Resolution order:
/// 1. `DLROVER_RESULTS_DIR`, when set and non-empty — explicit override for
///    CI jobs or ad-hoc runs that must not touch the checked-in artefacts.
/// 2. Under `cargo test`, a per-process scratch directory beneath `target/`.
///    Experiment `#[test]`s invoke the same `run_*` entry points as the `exp`
///    binary but at their own seeds (and two tests may write the same file
///    with *different* seeds), so letting them write the workspace `results/`
///    dir would overwrite the canonical seed-42 measurements with
///    race-dependent test artefacts. Only `exp` regenerates `results/`.
/// 3. Otherwise the canonical `<workspace root>/results`, resolved from this
///    crate's manifest so it is identical no matter which directory the
///    harness was invoked from. (Historically the relative `results/` path
///    produced a second copy under `crates/bench/results/` whenever the
///    harness ran with the crate as its working directory.)
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("DLROVER_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    default_results_dir()
}

#[cfg(not(test))]
fn default_results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("results")
}

#[cfg(test)]
fn default_results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target")
        .join(format!("test-results-{}", std::process::id()))
}

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// temp file first and are renamed into place only once fully written.
/// A run that dies mid-write (OOM-killed tournament, ctrl-C'd `exp all`)
/// therefore leaves either the previous artefact or the complete new one —
/// never a truncated `results/<id>.json` for a CI byte-diff to chase. On
/// failure the temp file is removed and the destination is untouched.
pub fn atomic_write(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| std::io::Error::other("atomic_write needs a file name"))?;
    // Same directory as the destination so the rename cannot cross a
    // filesystem boundary; pid-qualified so concurrent processes sharing
    // a results dir cannot clobber each other's staging file.
    let tmp = path.with_file_name(format!(".{file_name}.{}.tmp", std::process::id()));
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

/// Collects one experiment's output.
pub struct Report {
    id: String,
    lines: Vec<String>,
    json: serde_json::Map<String, serde_json::Value>,
    trace: Option<String>,
    spans: Option<String>,
}

impl Report {
    /// Starts a report for experiment `id` (e.g. `"fig7"`).
    pub fn new(id: &str, title: &str) -> Self {
        let mut r = Report {
            id: id.to_string(),
            lines: Vec::new(),
            json: serde_json::Map::new(),
            trace: None,
            spans: None,
        };
        r.section(&format!("{id}: {title}"));
        r
    }

    /// Adds a section header.
    pub fn section(&mut self, title: &str) {
        self.lines.push(String::new());
        self.lines.push(format!("== {title} =="));
    }

    /// Adds one free-form line.
    pub fn line(&mut self, text: impl Display) {
        self.lines.push(text.to_string());
    }

    /// Adds a row of right-aligned columns.
    pub fn row(&mut self, cols: &[String], widths: &[usize]) {
        let mut out = String::new();
        for (c, w) in cols.iter().zip(widths) {
            out.push_str(&format!("{c:>w$} ", w = w));
        }
        self.lines.push(out.trim_end().to_string());
    }

    /// Attaches a machine-readable value to the JSON output.
    pub fn record<T: Serialize>(&mut self, key: &str, value: &T) {
        self.json.insert(
            key.to_string(),
            serde_json::to_value(value).expect("serialisable experiment value"),
        );
    }

    /// Attaches a telemetry sink's summary and event trace: prints a
    /// one-line digest, records the summary under the `"telemetry"` JSON
    /// key, and (in [`Report::finish`]) writes the full event log next to
    /// the results as `results/<id>.trace.jsonl`.
    pub fn telemetry(&mut self, t: &Telemetry) {
        let summary = t.summary();
        self.lines.push(format!("telemetry: {}", summary.one_line()));
        self.record("telemetry", &summary);
        self.trace = Some(t.to_jsonl());
        self.spans = Some(t.spans_to_jsonl());
    }

    /// Prints the report and writes `results/<id>.json` (plus, when
    /// telemetry was attached, `results/<id>.trace.jsonl`,
    /// `results/<id>.spans.jsonl`, and the critical-path breakdown
    /// `results/<id>.critpath.json`). Returns the rendered text.
    pub fn finish(self) -> String {
        let text = self.lines.join("\n");
        println!("{text}");
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.json", self.id));
            let _ = atomic_write(
                &path,
                serde_json::to_string_pretty(&serde_json::Value::Object(self.json))
                    .expect("report JSON")
                    .as_bytes(),
            );
            if let Some(trace) = &self.trace {
                let _ =
                    atomic_write(&dir.join(format!("{}.trace.jsonl", self.id)), trace.as_bytes());
            }
            if let Some(spans) = &self.spans {
                let _ =
                    atomic_write(&dir.join(format!("{}.spans.jsonl", self.id)), spans.as_bytes());
                if let Some(parsed) = parse_spans_jsonl(spans) {
                    if !parsed.is_empty() {
                        let report = critpath_report(&parsed);
                        let _ = atomic_write(
                            &dir.join(format!("{}.critpath.json", self.id)),
                            serde_json::to_string_pretty(&report)
                                .expect("critpath JSON")
                                .as_bytes(),
                        );
                    }
                }
            }
        }
        text
    }
}

/// Percentile of a *sorted* slice (p in [0, 100]).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Sorts a vector and returns it (convenience for percentile chains).
pub fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in metric"));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles() {
        let v = sorted(vec![3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
    }

    #[test]
    fn test_reports_route_to_scratch_not_canonical_results() {
        if std::env::var("DLROVER_RESULTS_DIR").is_ok() {
            return; // explicit override wins; nothing to assert here
        }
        let dir = results_dir();
        assert!(
            dir.ends_with(format!("target/test-results-{}", std::process::id())),
            "test-invoked reports must land in the per-process scratch dir, got {}",
            dir.display()
        );
    }

    #[test]
    fn atomic_write_replaces_existing_content_without_tmp_debris() {
        let dir = results_dir().join("atomic-replace");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic-demo.json");
        atomic_write(&path, b"{\"v\":1}").unwrap();
        atomic_write(&path, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        let debris: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(debris.is_empty(), "staging files left behind: {debris:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression (tournament satellite): a run that cannot complete its
    /// write must leave the destination exactly as it was — here the
    /// rename fails because the destination is a non-empty directory, and
    /// neither a partial artefact nor a staging file survives.
    #[test]
    fn atomic_write_failure_leaves_destination_untouched() {
        let dir = results_dir().join("atomic-failure");
        let dest = dir.join("atomic-blocked");
        fs::create_dir_all(dest.join("occupied")).unwrap();
        assert!(atomic_write(&dest, b"new content").is_err());
        assert!(dest.is_dir(), "failed write must not replace the destination");
        assert!(dest.join("occupied").is_dir());
        let debris: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(debris.is_empty(), "staging files left behind: {debris:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_renders_rows() {
        let mut r = Report::new("test", "demo");
        r.row(&["a".into(), "b".into()], &[4, 6]);
        r.record("x", &42);
        let text = r.finish();
        assert!(text.contains("== test: demo =="));
        assert!(text.contains("a"));
    }
}
