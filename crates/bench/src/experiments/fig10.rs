//! Fig. 10: cold-start auto-scaling — every scheduler starts the same job
//! from scratch and adjusts every 3 minutes; DLRover-RM's throughput ramps
//! to the plateau fastest because its model knows about lookups and its
//! migrations are seamless.
//!
//! Execution: one unit per (model, scheduler) cell — nine independent
//! cold-start simulations, self-seeded from `RunnerConfig::seed`, merged
//! in paper row order.

use dlrover_baselines::{EsPolicy, OptimusPolicy};
use dlrover_brain::{DlroverPolicy, DlroverPolicyConfig};
use dlrover_optimizer::{PlanSearchSpace, ResourceAllocation};
use dlrover_perfmodel::JobShape;
use dlrover_pstrain::TrainingJobSpec;
use dlrover_rm::prelude::{run_single_job_traced, RunReport, RunnerConfig, SchedulerPolicy};

use crate::experiments::common::model_workloads;
use crate::parallel::{merge_telemetry, run_units_auto, Unit};
use crate::report::Report;

/// The three schedulers of the figure, in column order.
const POLICIES: [&str; 3] = ["dlrover", "es", "optimus"];

/// Samples a report's throughput series at whole minutes, smoothing each
/// point over the trailing 3-minute window (as a dashboard would).
fn series_at_minutes(report: &RunReport, minutes: &[u32]) -> Vec<f64> {
    minutes
        .iter()
        .map(|&m| {
            let lo = f64::from(m) - 3.0;
            let window: Vec<f64> = report
                .throughput_series
                .iter()
                .filter(|(t, _)| *t > lo && *t <= f64::from(m))
                .map(|(_, s)| *s)
                .collect();
            if window.is_empty() {
                0.0
            } else {
                window.iter().sum::<f64>() / window.len() as f64
            }
        })
        .collect()
}

/// Runs the Fig. 10 cold-start ramp comparison.
pub fn run(seed: u64) -> String {
    let mut r = Report::new("fig10", "cold-start throughput ramp (steps/s over time)");
    let testbed_startup = dlrover_cluster::StartupLatencyModel {
        scheduling_mean_s: 15.0,
        image_pull_mean_s: 45.0,
        sigma: 0.4,
        scarcity_factor: 2.0,
    };
    let runner = RunnerConfig {
        seed,
        startup: testbed_startup,
        cluster_utilisation: 0.1,
        ..RunnerConfig::default()
    };
    let space = PlanSearchSpace::default();
    // All schedulers cold-start from the same minimal allocation.
    let cold = ResourceAllocation::new(JobShape::new(2, 1, 8.0, 8.0, 512), 32.0, 64.0);
    let minutes: Vec<u32> = (0..=30).step_by(3).collect();

    let runner_ref = &runner;
    let mut units = Vec::new();
    for (mi, (_, constants)) in model_workloads().into_iter().enumerate() {
        for (pi, policy) in POLICIES.iter().enumerate() {
            let spec = TrainingJobSpec { constants, ..TrainingJobSpec::paper_default(400_000) };
            units.push(Unit::new(format!("{mi}{pi}/{policy}"), move |t| {
                let boxed: Box<dyn SchedulerPolicy> = match pi {
                    0 => Box::new(DlroverPolicy::new(
                        cold,
                        DlroverPolicyConfig { constants, seed, ..Default::default() },
                    )),
                    1 => Box::new(EsPolicy::new(cold, space, 4)),
                    _ => Box::new(OptimusPolicy::new(cold, space, constants)),
                };
                run_single_job_traced(boxed, spec, runner_ref, t)
            }));
        }
    }
    let outputs = run_units_auto(units);
    let cell = |mi: usize, pi: usize| &outputs[mi * POLICIES.len() + pi].value;

    let mut json_rows = Vec::new();
    for (mi, (name, _)) in model_workloads().into_iter().enumerate() {
        let dl_series = series_at_minutes(cell(mi, 0), &minutes);
        let es_series = series_at_minutes(cell(mi, 1), &minutes);
        let opt_series = series_at_minutes(cell(mi, 2), &minutes);

        r.section(name);
        r.row(&["min".into(), "dlrover".into(), "es".into(), "optimus".into()], &[5, 9, 9, 9]);
        for (i, &m) in minutes.iter().enumerate() {
            r.row(
                &[
                    format!("{m}"),
                    format!("{:.0}", dl_series[i]),
                    format!("{:.0}", es_series[i]),
                    format!("{:.0}", opt_series[i]),
                ],
                &[5, 9, 9, 9],
            );
        }
        json_rows.push(serde_json::json!({
            "model": name, "minutes": minutes,
            "dlrover": dl_series, "es": es_series, "optimus": opt_series,
        }));
    }
    r.line(
        "\nshape check: by minute ~12 DLRover-RM runs well above ES/Optimus\n\
         (paper: 250 steps/s vs 100-150 at 12 minutes for Model-X)",
    );
    r.record("rows", &json_rows);
    r.telemetry(&merge_telemetry(&outputs));
    r.finish()
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig10_dlrover_ramps_fastest() {
        let json = &crate::fixture::canonical("fig10").json;
        for row in json["rows"].as_array().unwrap() {
            let at = |key: &str, idx: usize| row[key].as_array().unwrap()[idx].as_f64().unwrap();
            let n = row["minutes"].as_array().unwrap().len();
            // By the second half of the window DLRover must lead both.
            let late = n - 2;
            assert!(
                at("dlrover", late) > at("es", late),
                "{}: dlrover {} !> es {}",
                row["model"],
                at("dlrover", late),
                at("es", late)
            );
            assert!(
                at("dlrover", late) > at("optimus", late),
                "{}: dlrover {} !> optimus {}",
                row["model"],
                at("dlrover", late),
                at("optimus", late)
            );
        }
    }
}
