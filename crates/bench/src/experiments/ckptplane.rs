//! `ckptplane`: the tiered flash-checkpoint plane under a diurnal fleet
//! trace — checkpoint policy × recovery path sweep.
//!
//! Not a paper figure: this quantifies §5.3's flash-checkpoint claims
//! (memory-speed saves, seamless PS flash-restore) against §2.2's
//! throttled remote store, and pits master-replay recovery against the
//! master-less witness-quorum path under compound storage faults. A
//! 24-job / 12-family fleet runs an 8-hour diurnally-modulated trace
//! (§2.1's daily traffic cycle drives per-job sample rates and embedding
//! growth) against one *shared* `CheckpointPlane` — so cross-job dedup
//! within a model family and remote-queue contention are both real.
//!
//! The trace is open-loop: each job's save schedule and sample watermark
//! follow the closed-form diurnal curve regardless of faults, and lost
//! work is *charged to the goodput metric* rather than fed back into the
//! schedule. That keeps every (policy × path) cell on an identical
//! workload — and makes the whole experiment trivially shard-invariant,
//! which the run verifies anyway: per-job event streams are generated
//! per shard, k-way merged by `(time, job, seq)`, and the plane digest
//! must be bit-identical at 1, 2, and 4 shards.
//!
//! Every unit's event log is audited by the durability oracle
//! (`DurableRestore` + `RestoreBytesBounded`): no restore may ever read
//! state that was not committed, quorum-witnessed, or hot-resident at
//! that point in the log. `exp ckptplane` exits non-zero on any
//! violation or shard divergence.

use dlrover_master::{
    CheckpointPlane, CkptPlaneConfig, RestoreSource, WitnessBoard, WitnessConfig,
};
use dlrover_sim::{RngStreams, SimDuration, SimTime};
use dlrover_telemetry::{Oracle, Telemetry};
use rand::Rng;
use serde::Serialize;

use crate::golden::fnv64;
use crate::parallel::{merge_telemetry, run_units_auto, Unit};
use crate::Report;

/// Jobs in the fleet trace (two per model family).
const JOBS: u64 = 24;
/// Model families: jobs `j` and `j + FAMILIES` share static chunks.
const FAMILIES: u64 = 12;
/// Samples per training step (step = samples / batch).
const BATCH: u64 = 1024;
/// Trace horizon: 8 virtual hours.
const HORIZON: SimTime = SimTime::from_secs(8 * 3600);
/// Master-replay restart window charged before the plane restore starts
/// (detection + pod relaunch + event-log replay, as in the chaos driver).
const REPLAY_RESTART: SimDuration = SimDuration::from_secs(45);

/// Remote-tier outage windows `(from, until)` in trace seconds.
const OUTAGES: [(u64, u64); 2] = [(7_200, 8_100), (18_000, 18_600)];
/// Bandwidth-collapse window `(from, until, factor_permille)`.
const COLLAPSE: (u64, u64, u32) = (21_600, 23_400, 8_000);
/// Witness-partition window `(from, until, peers_out)` — placed clear of
/// the second outage so the compound-outage crashes still have a quorum.
const PARTITION: (u64, u64, u32) = (14_400, 15_600, 2);

/// One checkpoint policy under test.
struct Policy {
    name: &'static str,
    interval: SimDuration,
    hot_capacity_bytes: u64,
}

/// The swept policies: frequent flash, sparse flash, and a remote-only
/// tier whose hot capacity is below even the smallest checkpoint (the
/// §2.2 RDS baseline — every restore pays the throttled store).
fn policies() -> [Policy; 3] {
    [
        Policy {
            name: "flash-120s",
            interval: SimDuration::from_secs(120),
            hot_capacity_bytes: 96_000_000_000,
        },
        Policy {
            name: "flash-600s",
            interval: SimDuration::from_secs(600),
            hot_capacity_bytes: 96_000_000_000,
        },
        Policy {
            name: "rds-600s",
            interval: SimDuration::from_secs(600),
            hot_capacity_bytes: 500_000_000,
        },
    ]
}

/// Base sample rate of a job, samples/s (family-dependent).
fn base_rate(job: u64) -> f64 {
    1_500.0 + 120.0 * (job % FAMILIES) as f64
}

/// Closed-form sample watermark at `t`: the diurnal rate
/// `r(t) = r0 (1 + A sin(ωt + φ))` integrated from 0 (§2.1's daily
/// traffic cycle; phase staggered per job).
fn samples_at(job: u64, t: SimTime) -> u64 {
    let r0 = base_rate(job);
    let phase = job as f64 * std::f64::consts::PI / 6.0;
    let omega = 2.0 * std::f64::consts::PI / 86_400.0;
    let a = 0.5;
    let secs = t.as_secs_f64();
    let s = r0 * (secs + (a / omega) * (phase.cos() - (omega * secs + phase).cos()));
    s.max(0.0) as u64
}

/// Checkpoint size at a sample watermark: family-sized static part plus
/// the growing embedding table (§2.1, Fig. 1b).
fn checkpoint_bytes(job: u64, samples: u64) -> u64 {
    let statics = 600_000_000 + 80_000_000 * (job % FAMILIES);
    statics + samples * 40
}

/// What happens to a job at one trace instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Periodic checkpoint per the policy interval.
    Save,
    /// Master crash: hot copies die with the pods; recover via the
    /// unit's recovery path.
    Crash,
    /// PS flash-restore (§5.3): the pod is replaced but the hot tier
    /// survives, so the restore may be served at memory speed.
    FlashRestore,
    /// Silent corruption of the job's newest committed manifest.
    Corrupt,
}

/// One trace event; `(at, job, seq)` is the total merge order.
#[derive(Debug, Clone, Copy)]
struct Ev {
    at: SimTime,
    job: u64,
    seq: u32,
    op: Op,
}

/// Builds one job's event stream, sorted by `(at, seq)`. Pure function
/// of `(job, seed, interval)` — independent of the shard layout, which
/// is what makes the shard sweep a real invariance check.
fn job_events(job: u64, seed: u64, interval: SimDuration) -> Vec<Ev> {
    let mut evs = Vec::new();
    let mut seq = 0u32;
    // Saves: staggered per job so the shared remote queue sees
    // interleaved traffic, not a thundering herd.
    let offset = SimDuration::from_secs(11 * job);
    let mut t = SimTime::ZERO + offset + interval;
    while t < HORIZON {
        evs.push(Ev { at: t, job, seq, op: Op::Save });
        seq += 1;
        t += interval;
    }
    // One master crash per job. Jobs 4-7 are scripted inside the second
    // remote outage (the compound case the recovery paths are judged
    // on); jobs 8-9 inside the witness partition (forcing the fallback);
    // the rest draw from the per-job rng stream.
    let crash_at = match job {
        4..=7 => SimTime::from_secs(18_060 + 30 * (job - 4)),
        8 | 9 => SimTime::from_secs(14_500 + 60 * (job - 8)),
        _ => {
            let mut rng = RngStreams::new(seed).indexed_stream("ckptplane.crash", job);
            SimTime::from_secs(rng.gen_range(1_800..(8 * 3600 - 1_800)))
        }
    };
    evs.push(Ev { at: crash_at, job, seq, op: Op::Crash });
    seq += 1;
    // Three PS flash-restores per job, spread over the trace.
    for (i, frac) in [0.3f64, 0.55, 0.8].into_iter().enumerate() {
        let at = SimTime::from_secs((HORIZON.as_secs_f64() * frac) as u64 + 37 * job + i as u64);
        evs.push(Ev { at, job, seq, op: Op::FlashRestore });
        seq += 1;
    }
    // Jobs 0-3 have their newest manifest silently corrupted at t=4h.
    if job < 4 {
        evs.push(Ev { at: SimTime::from_secs(14_400), job, seq, op: Op::Corrupt });
    }
    evs.sort_by_key(|e| (e.at, e.seq));
    evs
}

/// Generates the fleet trace as `shards` per-shard streams (jobs
/// assigned round-robin) and k-way merges them by `(at, job, seq)`. The
/// merged stream is identical for every shard count — verified, not
/// assumed, by the digest sweep in [`run_trace`].
fn build_trace(seed: u64, interval: SimDuration, shards: u64) -> Vec<Ev> {
    let mut per_shard: Vec<Vec<Ev>> = vec![Vec::new(); shards as usize];
    for job in 0..JOBS {
        per_shard[(job % shards) as usize].extend(job_events(job, seed, interval));
    }
    for lane in &mut per_shard {
        lane.sort_by_key(|e| (e.at, e.job, e.seq));
    }
    // K-way merge on (at, job, seq) — the deterministic cross-shard
    // exchange order, mirroring `cluster::shard`'s merge discipline.
    let mut cursors = vec![0usize; per_shard.len()];
    let total: usize = per_shard.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    for _ in 0..total {
        let next = per_shard
            .iter()
            .enumerate()
            .filter_map(|(s, lane)| lane.get(cursors[s]).map(|e| (s, e)))
            .min_by_key(|(_, e)| (e.at, e.job, e.seq))
            .map(|(s, _)| s)
            .expect("total counts remaining events");
        merged.push(per_shard[next][cursors[next]]);
        cursors[next] += 1;
    }
    merged
}

/// Everything measured from one (policy, path, shard-count) run.
struct TraceOutcome {
    crash_latencies_us: Vec<u64>,
    flash_latencies_us: Vec<u64>,
    witness_served: u64,
    witness_fallbacks: u64,
    cold_restores: u64,
    hot_served: u64,
    lost_secs: f64,
    lost_pause_s: f64,
    lost_down_s: f64,
    lost_redo_s: f64,
    dedup_ratio: f64,
    remote_occupancy: f64,
    hot_evictions: u64,
    corrupt_fallbacks: u64,
    digest: u64,
}

/// Runs the full trace against a fresh plane + witness board. The
/// recovery `path` decides how `Op::Crash` is served; everything else is
/// identical across units.
fn run_trace(
    policy: &Policy,
    path: &'static str,
    seed: u64,
    shards: u64,
    telemetry: &Telemetry,
) -> TraceOutcome {
    let events = build_trace(seed, policy.interval, shards);
    // The default remote figures are §2.2's *per-tenant* RDS channel
    // (60 MB/s, 15 s setup). The fleet's shared store aggregates one
    // channel per job into the single FIFO pipe: rate × JOBS and setup
    // ÷ JOBS keeps each tenant's effective service exactly the §2.2
    // figure while letting the pipe drain JOBS concurrent channels —
    // otherwise any sub-15 s fleet save cadence would diverge the queue
    // unboundedly and durability would lag by hours.
    let mut plane = CheckpointPlane::new(CkptPlaneConfig {
        interval: policy.interval,
        hot_capacity_bytes: policy.hot_capacity_bytes,
        remote_write_bandwidth: 60.0e6 * JOBS as f64,
        remote_read_bandwidth: 120.0e6 * JOBS as f64,
        remote_base_latency: SimDuration::from_secs_f64(15.0 / JOBS as f64),
        ..CkptPlaneConfig::default()
    });
    plane.set_telemetry(telemetry.clone());
    let mut witness = WitnessBoard::new(WitnessConfig::default());
    witness.set_telemetry(telemetry.clone());
    for (from, until) in OUTAGES {
        plane.set_remote_outage(SimTime::from_secs(from), SimTime::from_secs(until));
    }
    plane.set_bandwidth_collapse(
        SimTime::from_secs(COLLAPSE.0),
        SimTime::from_secs(COLLAPSE.1),
        COLLAPSE.2,
    );
    witness.partition(
        PARTITION.2,
        SimTime::from_secs(PARTITION.0),
        SimTime::from_secs(PARTITION.1),
    );

    let mut out = TraceOutcome {
        crash_latencies_us: Vec::new(),
        flash_latencies_us: Vec::new(),
        witness_served: 0,
        witness_fallbacks: 0,
        cold_restores: 0,
        hot_served: 0,
        lost_secs: 0.0,
        lost_pause_s: 0.0,
        lost_down_s: 0.0,
        lost_redo_s: 0.0,
        dedup_ratio: 0.0,
        remote_occupancy: 0.0,
        hot_evictions: 0,
        corrupt_fallbacks: 0,
        digest: 0,
    };
    // The master-replay leg: restart window, then restore through the
    // plane (waiting out any outage). Returns (resume, samples resumed).
    let replay = |plane: &mut CheckpointPlane, job: u64, at: SimTime| {
        let restart_at = at + REPLAY_RESTART;
        match plane.restore(job, restart_at) {
            Some(r) => (r.resume_at().max(restart_at), r.samples),
            None => (restart_at, 0), // nothing durable yet: cold start
        }
    };
    for ev in &events {
        plane.advance(ev.at);
        witness.advance(ev.at);
        match ev.op {
            Op::Save => {
                let samples = samples_at(ev.job, ev.at);
                let step = samples / BATCH;
                let bytes = checkpoint_bytes(ev.job, samples);
                let saved = plane.save(ev.job, ev.job % FAMILIES, step, samples, bytes, ev.at);
                witness.observe_save(ev.job, saved.manifest, step, samples, bytes, ev.at);
                out.lost_secs += saved.hot_pause.as_secs_f64();
                out.lost_pause_s += saved.hot_pause.as_secs_f64();
            }
            Op::Crash => {
                // Hot copies die with the master's pods; only the
                // remote tier or a witness peer can serve the restore.
                plane.invalidate_hot(ev.job, ev.at);
                let (resume, resumed_samples) = if path == "witness-quorum" {
                    let start = ev.at + witness.takeover_latency();
                    match witness.restore(ev.job, start) {
                        Some(w) => {
                            out.witness_served += 1;
                            (start + w.duration, w.samples)
                        }
                        None => {
                            out.witness_fallbacks += 1;
                            let (r, s) = replay(&mut plane, ev.job, ev.at);
                            if s == 0 {
                                out.cold_restores += 1;
                            }
                            (r, s)
                        }
                    }
                } else {
                    let (r, s) = replay(&mut plane, ev.job, ev.at);
                    if s == 0 {
                        out.cold_restores += 1;
                    }
                    (r, s)
                };
                let down = resume.saturating_since(ev.at);
                out.crash_latencies_us.push(down.as_micros());
                let redo = samples_at(ev.job, ev.at).saturating_sub(resumed_samples) as f64
                    / base_rate(ev.job);
                out.lost_secs += down.as_secs_f64() + redo;
                out.lost_down_s += down.as_secs_f64();
                out.lost_redo_s += redo;
            }
            Op::FlashRestore => {
                // Pod replaced, hot tier intact: served at memory speed
                // when the policy kept a resident copy (§5.3).
                if let Some(r) = plane.restore(ev.job, ev.at) {
                    let down = r.resume_at().saturating_since(ev.at);
                    out.flash_latencies_us.push(down.as_micros());
                    if r.source == RestoreSource::Hot {
                        out.hot_served += 1;
                    }
                    let redo = samples_at(ev.job, ev.at).saturating_sub(r.samples) as f64
                        / base_rate(ev.job);
                    out.lost_secs += down.as_secs_f64() + redo;
                    out.lost_down_s += down.as_secs_f64();
                    out.lost_redo_s += redo;
                }
            }
            Op::Corrupt => {
                plane.corrupt_manifest(ev.job, 0, ev.at);
            }
        }
    }
    plane.advance(HORIZON);
    witness.advance(HORIZON);
    let stats = *plane.stats();
    out.dedup_ratio = stats.dedup_ratio();
    out.remote_occupancy = stats.remote_occupancy(HORIZON);
    out.hot_evictions = stats.hot_evictions;
    out.corrupt_fallbacks = stats.corrupt_fallbacks;
    // Order-sensitive digest over the plane, the witness board, and
    // every recovery latency: the cross-shard invariance witness.
    let mut body = format!("{:016x}:{:016x}", plane.digest(), witness.digest());
    for us in out.crash_latencies_us.iter().chain(&out.flash_latencies_us) {
        body.push_str(&format!(":{us}"));
    }
    out.digest = fnv64(body.as_bytes());
    out
}

/// One (policy × path) row of `results/ckptplane.json`.
#[derive(Debug, Serialize)]
struct SweepRow {
    policy: String,
    path: String,
    crashes: usize,
    crash_p50_s: f64,
    crash_p95_s: f64,
    crash_max_s: f64,
    witness_served: u64,
    witness_fallbacks: u64,
    cold_restores: u64,
    flash_restores: usize,
    flash_p50_s: f64,
    hot_served: u64,
    goodput_lost_permille: f64,
    lost_pause_s: f64,
    lost_down_s: f64,
    lost_redo_s: f64,
    dedup_ratio: f64,
    remote_occupancy: f64,
    hot_evictions: u64,
    corrupt_fallbacks: u64,
    durable_ok: bool,
    bytes_ok: bool,
    shard_invariant: bool,
    violations: Vec<String>,
}

/// Percentile (nearest-rank) of an already-sorted latency vector, secs.
fn pct(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 * p).ceil() as usize).clamp(1, sorted_us.len()) - 1;
    sorted_us[idx] as f64 / 1e6
}

/// Runs one (policy, path) unit: the canonical single-shard pass writes
/// telemetry and is audited by the durability oracle; 2- and 4-shard
/// replicas must reproduce its digest bit-for-bit.
fn run_unit(policy: &Policy, path: &'static str, seed: u64, telemetry: &Telemetry) -> SweepRow {
    let canon = run_trace(policy, path, seed, 1, telemetry);
    let shard_invariant = [2u64, 4]
        .into_iter()
        .all(|k| run_trace(policy, path, seed, k, &Telemetry::default()).digest == canon.digest);
    let events = telemetry.snapshot().events;
    let (durable, bytes_bounded) = Oracle::check_durability(&events);
    let mut violations = durable.violations.clone();
    violations.extend(bytes_bounded.violations.clone());
    let mut crash = canon.crash_latencies_us.clone();
    crash.sort_unstable();
    let mut flash = canon.flash_latencies_us.clone();
    flash.sort_unstable();
    let fleet_secs = JOBS as f64 * HORIZON.as_secs_f64();
    SweepRow {
        policy: policy.name.to_string(),
        path: path.to_string(),
        crashes: crash.len(),
        crash_p50_s: pct(&crash, 0.50),
        crash_p95_s: pct(&crash, 0.95),
        crash_max_s: pct(&crash, 1.0),
        witness_served: canon.witness_served,
        witness_fallbacks: canon.witness_fallbacks,
        cold_restores: canon.cold_restores,
        flash_restores: flash.len(),
        flash_p50_s: pct(&flash, 0.50),
        hot_served: canon.hot_served,
        goodput_lost_permille: 1_000.0 * canon.lost_secs / fleet_secs,
        lost_pause_s: canon.lost_pause_s,
        lost_down_s: canon.lost_down_s,
        lost_redo_s: canon.lost_redo_s,
        dedup_ratio: canon.dedup_ratio,
        remote_occupancy: canon.remote_occupancy,
        hot_evictions: canon.hot_evictions,
        corrupt_fallbacks: canon.corrupt_fallbacks,
        durable_ok: durable.passed,
        bytes_ok: bytes_bounded.passed,
        shard_invariant,
        violations,
    }
}

/// Runs the full sweep at `seed`; returns the rendered report, the
/// number of durability violations, and whether every unit was
/// shard-invariant (CI gates on `0` and `true`).
pub fn run_ckptplane(seed: u64) -> (String, usize, bool) {
    let paths: [&'static str; 2] = ["master-replay", "witness-quorum"];
    let policy_set = policies();
    let units: Vec<Unit<'_, SweepRow>> = policy_set
        .iter()
        .flat_map(|policy| {
            paths.iter().map(move |&path| {
                Unit::new(format!("{}/{path}", policy.name), move |t: &Telemetry| {
                    run_unit(policy, path, seed, t)
                })
            })
        })
        .collect();
    let outputs = run_units_auto(units);
    let telemetry = merge_telemetry(&outputs);
    let rows: Vec<SweepRow> = outputs.into_iter().map(|o| o.value).collect();
    let total_violations: usize = rows.iter().map(|r| r.violations.len()).sum();
    let all_invariant = rows.iter().all(|r| r.shard_invariant);

    let mut report = Report::new(
        "ckptplane",
        "Tiered checkpoint plane: policy x recovery path under a diurnal fleet",
    );
    report.section(&format!(
        "{JOBS} jobs / {FAMILIES} families, 8h diurnal trace, seed {seed} \
         (2 remote outages, 1 bandwidth collapse, 1 witness partition, 4 corruptions)"
    ));
    let widths = [11usize, 15, 9, 9, 9, 9, 8, 7, 7, 7];
    report.row(
        &[
            "policy".into(),
            "path".into(),
            "p50(s)".into(),
            "p95(s)".into(),
            "max(s)".into(),
            "flash(s)".into(),
            "lost‰".into(),
            "dedup".into(),
            "occ".into(),
            "oracle".into(),
        ],
        &widths,
    );
    for r in &rows {
        report.row(
            &[
                r.policy.clone(),
                r.path.clone(),
                format!("{:.1}", r.crash_p50_s),
                format!("{:.1}", r.crash_p95_s),
                format!("{:.1}", r.crash_max_s),
                format!("{:.1}", r.flash_p50_s),
                format!("{:.1}", r.goodput_lost_permille),
                format!("{:.2}", r.dedup_ratio),
                format!("{:.2}", r.remote_occupancy),
                if r.durable_ok && r.bytes_ok { "pass".into() } else { "FAIL".into() },
            ],
            &widths,
        );
    }
    let find = |policy: &str, path: &str| {
        rows.iter().find(|r| r.policy == policy && r.path == path).expect("swept cell")
    };
    let wq = find("flash-120s", "witness-quorum");
    let mr = find("flash-120s", "master-replay");
    report.line(format!(
        "flash-120s crash recovery: witness-quorum p95 {:.1}s vs master-replay p95 {:.1}s \
         (witness served {}/{}, {} fell back to replay)",
        wq.crash_p95_s, mr.crash_p95_s, wq.witness_served, wq.crashes, wq.witness_fallbacks
    ));
    report.line(format!(
        "PS flash-restore p50: flash-600s {:.2}s (hot-served {}) vs rds-600s {:.2}s \
         (hot-served {}) — the §5.3 flash tier vs the §2.2 throttled store",
        find("flash-600s", "master-replay").flash_p50_s,
        find("flash-600s", "master-replay").hot_served,
        find("rds-600s", "master-replay").flash_p50_s,
        find("rds-600s", "master-replay").hot_served,
    ));
    report.line(format!(
        "shard sweep (1/2/4): {}; durability violations: {total_violations}",
        if all_invariant { "bit-identical" } else { "DIVERGED" }
    ));
    report.record("seed", &seed);
    report.record("jobs", &JOBS);
    report.record("families", &FAMILIES);
    report.record("horizon_s", &HORIZON.as_secs_f64());
    report.record("rows", &rows);
    report.record("total_violations", &total_violations);
    report.record("shard_invariant", &all_invariant);
    report.telemetry(&telemetry);
    (report.finish(), total_violations, all_invariant)
}

/// `EXPERIMENTS`-table entry (used by `exp all`).
pub fn run(seed: u64) -> String {
    run_ckptplane(seed).0
}

#[cfg(test)]
mod tests {

    use super::*;

    /// Headline shape: witness recovery beats (or matches) master replay
    /// under every policy — and strictly beats it in the tail, where the
    /// replay path has to wait out the remote outage; the flash tier
    /// serves PS restores at memory speed while the RDS baseline pays
    /// the throttled store; frequent checkpoints lose less goodput than
    /// sparse ones on the replay path; and every unit passes the
    /// durability oracle and the shard sweep.
    #[test]
    fn witness_beats_replay_and_flash_beats_rds() {
        let (out, violations, shard_invariant) = run_ckptplane(42);
        assert_eq!(violations, 0, "durability violations:\n{out}");
        assert!(shard_invariant, "shard sweep diverged:\n{out}");
        assert!(!out.contains("FAIL"), "a unit failed the oracle:\n{out}");
        // Re-derive the sweep cells for the structural assertions.
        let rows: Vec<(String, String, f64, f64, f64, u64, f64)> = policies()
            .iter()
            .flat_map(|p| {
                ["master-replay", "witness-quorum"].into_iter().map(|path| {
                    let t = Telemetry::default();
                    let r = run_unit(p, path, 42, &t);
                    (
                        r.policy,
                        r.path,
                        r.crash_p95_s,
                        r.crash_max_s,
                        r.flash_p50_s,
                        r.hot_served,
                        r.goodput_lost_permille,
                    )
                })
            })
            .collect();
        let cell = |policy: &str, path: &str| {
            rows.iter().find(|r| r.0 == policy && r.1 == path).expect("cell")
        };
        for p in ["flash-120s", "flash-600s", "rds-600s"] {
            let wq = cell(p, "witness-quorum");
            let mr = cell(p, "master-replay");
            assert!(wq.2 <= mr.2, "{p}: witness p95 {:.1}s > replay p95 {:.1}s\n{out}", wq.2, mr.2);
            assert!(
                wq.3 < mr.3,
                "{p}: witness max {:.1}s must beat replay max {:.1}s (outage wait)\n{out}",
                wq.3,
                mr.3
            );
        }
        // Flash tier vs throttled RDS on PS restores.
        let flash = cell("flash-600s", "master-replay");
        let rds = cell("rds-600s", "master-replay");
        assert!(flash.5 > 0, "flash policy must serve hot restores\n{out}");
        assert_eq!(rds.5, 0, "rds policy's hot tier is below one checkpoint\n{out}");
        assert!(
            flash.4 < rds.4,
            "flash restore p50 {:.2}s must beat rds {:.2}s\n{out}",
            flash.4,
            rds.4
        );
        // Checkpoint-interval tradeoff: sparse checkpoints redo more work.
        let frequent = cell("flash-120s", "master-replay");
        let sparse = cell("flash-600s", "master-replay");
        assert!(
            frequent.6 < sparse.6,
            "flash-120s lost {:.1}‰ must beat flash-600s {:.1}‰\n{out}",
            frequent.6,
            sparse.6
        );
    }

    /// The sweep (and therefore `results/ckptplane.json`) is
    /// bit-reproducible per seed.
    #[test]
    fn report_is_deterministic() {
        let (a, va, sa) = run_ckptplane(7);
        let (b, vb, sb) = run_ckptplane(7);
        assert_eq!(a, b);
        assert_eq!((va, sa), (vb, sb));
    }
}
