//! Fig. 12 (hot PS) and Fig. 13 (worker straggler): three recovery
//! strategies with their JCT and timeline breakdown.

use dlrover_pstrain::{
    plan_ps_migration, plan_worker_recovery, static_partition_completion_seconds, AsyncCostModel,
    FlashStore, MigrationStrategy, PodState, PsTrainingEngine, RdsStore, TrainingJobSpec,
};
use dlrover_sim::{SimDuration, SimTime};
use dlrover_telemetry::Telemetry;

use crate::parallel::{merge_telemetry, run_units_auto, Unit};
use crate::report::Report;

/// The three scripted strategies of both figures, in paper row order.
const STRATEGIES: [(&str, MigrationStrategy); 3] = [
    ("no intervention", MigrationStrategy::NoIntervention),
    ("traditional stop-restart", MigrationStrategy::StopAndRestart),
    ("DLRover-RM", MigrationStrategy::Seamless),
];

const GB: u64 = 1_000_000_000;
const SLICE: SimDuration = SimDuration::from_secs(30);
const FAR: SimTime = SimTime::from_secs(365 * 24 * 3_600);
const WORKERS: u32 = 8;
const PS: u32 = 4;
const CPU: f64 = 8.0;
/// Longer job than the examples so recovery overheads show at the paper's
/// relative scale.
const STEPS: u64 = 100_000;
/// Checkpoint size of the (grown) model at injection time.
const CKPT: u64 = 20 * GB;

fn engine(telemetry: &Telemetry, track: u64) -> PsTrainingEngine {
    let mut e = PsTrainingEngine::new(
        TrainingJobSpec::paper_default(STEPS),
        vec![PodState::new(CPU); WORKERS as usize],
        AsyncCostModel::balanced_partitions(PS, CPU),
        vec![256 * GB; PS as usize],
    );
    e.set_telemetry(telemetry.clone());
    e.set_span_track(track);
    e
}

/// Span track for one scripted case: `base` plus a per-strategy offset, so
/// each strategy's timeline lands on its own Perfetto row (fig12 = 10–12,
/// fig13 = 20–22; the master-driven cross-check keeps its job id, 1).
fn case_track(base: u64, strategy: MigrationStrategy) -> u64 {
    base + match strategy {
        MigrationStrategy::NoIntervention => 0,
        MigrationStrategy::StopAndRestart => 1,
        MigrationStrategy::Seamless => 2,
    }
}

struct Outcome {
    jct_min: f64,
    pause_min: f64,
    degraded_min: f64,
}

fn hot_ps_case(strategy: MigrationStrategy, telemetry: &Telemetry) -> Outcome {
    let mut e = engine(telemetry, case_track(10, strategy));
    // 20 minutes of healthy training, then PS 0 drops to 3 % CPU.
    for _ in 0..40 {
        e.advance(SLICE);
    }
    e.set_ps_pod(0, PodState { cpu: CPU, speed: 0.03 });
    // Detection: ~1 minute of hot running before anything reacts.
    for _ in 0..2 {
        e.advance(SLICE);
    }
    let timeline = plan_ps_migration(
        strategy,
        CKPT,
        SimDuration::from_mins(6),
        &FlashStore::default(),
        &RdsStore::default(),
    );
    if strategy != MigrationStrategy::NoIntervention {
        // Degraded segment: training continues hot while new pods start.
        let mut left = timeline.degraded();
        while !left.is_zero() {
            let step = if left < SLICE { left } else { SLICE };
            e.advance(step);
            left = left.saturating_sub(step);
        }
        e.pause(timeline.pause());
        e.set_ps_pod(0, PodState::new(CPU));
    }
    let end = e.run_to_completion(SLICE, FAR).expect("finishes");
    Outcome {
        jct_min: end.saturating_since(SimTime::ZERO).as_mins_f64(),
        pause_min: timeline.pause().as_mins_f64(),
        degraded_min: timeline.degraded().as_mins_f64(),
    }
}

fn straggler_case(strategy: MigrationStrategy, telemetry: &Telemetry) -> Outcome {
    let mut e = engine(telemetry, case_track(20, strategy));
    for _ in 0..40 {
        e.advance(SLICE);
    }
    e.set_worker_pod(0, PodState { cpu: CPU, speed: 0.03 });
    let timeline = plan_worker_recovery(
        strategy,
        CKPT,
        SimDuration::from_secs(45),
        SimDuration::from_mins(6),
        &RdsStore::default(),
    );
    let cost = AsyncCostModel::new(e.spec().coefficients, e.spec().constants, e.spec().batch_size);
    let rate = |pod: &PodState, e: &PsTrainingEngine| {
        512.0 / cost.worker_iter_time(pod, e.partitions(), WORKERS)
    };
    let elapsed = e.now().saturating_since(SimTime::ZERO);
    match strategy {
        MigrationStrategy::NoIntervention => {
            // Conventional static partitioning: the straggler owns 1/w of
            // the data and crawls through it at 3 % speed.
            let mut rates = vec![rate(&PodState::new(CPU), &e); WORKERS as usize - 1];
            rates.push(rate(&PodState { cpu: CPU, speed: 0.03 }, &e));
            let tail = static_partition_completion_seconds(e.remaining_samples() as f64, &rates);
            Outcome {
                jct_min: (elapsed + SimDuration::from_secs_f64(tail)).as_mins_f64(),
                pause_min: 0.0,
                degraded_min: 0.0,
            }
        }
        MigrationStrategy::StopAndRestart => {
            // Restart replaces the worker (static partitioning resumes
            // healthy afterwards) at the full checkpoint + redeploy price.
            let rates = vec![rate(&PodState::new(CPU), &e); WORKERS as usize];
            let tail = static_partition_completion_seconds(e.remaining_samples() as f64, &rates);
            Outcome {
                jct_min: (elapsed
                    + timeline.degraded()
                    + timeline.pause()
                    + SimDuration::from_secs_f64(tail))
                .as_mins_f64(),
                pause_min: timeline.pause().as_mins_f64(),
                degraded_min: timeline.degraded().as_mins_f64(),
            }
        }
        MigrationStrategy::Seamless => {
            // Dynamic sharding: detection, then the queue rebalances —
            // healthy workers absorb the load, the straggler contributes
            // at its own pace with shrunken shards.
            let end = e.run_to_completion(SLICE, FAR).expect("finishes");
            Outcome {
                jct_min: end.saturating_since(SimTime::ZERO).as_mins_f64(),
                pause_min: 0.0,
                degraded_min: timeline.degraded().as_mins_f64(),
            }
        }
    }
}

fn render(r: &mut Report, title: &str, outcomes: &[&Outcome]) -> Vec<serde_json::Value> {
    r.section(title);
    r.row(
        &["strategy".into(), "JCT(min)".into(), "pause(min)".into(), "degraded(min)".into()],
        &[26, 9, 11, 14],
    );
    let mut rows = Vec::new();
    for (&(label, _), o) in STRATEGIES.iter().zip(outcomes) {
        r.row(
            &[
                label.into(),
                format!("{:.1}", o.jct_min),
                format!("{:.1}", o.pause_min),
                format!("{:.1}", o.degraded_min),
            ],
            &[26, 9, 11, 14],
        );
        rows.push(serde_json::json!({
            "strategy": label, "jct_min": o.jct_min,
            "pause_min": o.pause_min, "degraded_min": o.degraded_min,
        }));
    }
    rows
}

/// Cross-check: the same scenario through the *job master's* automatic
/// hot-PS detection + seamless rebalancing (no hand-scripted timeline).
fn hot_ps_via_master(telemetry: &Telemetry) -> f64 {
    use dlrover_master::{JobMaster, MasterConfig, MasterEvent};
    use dlrover_optimizer::ResourceAllocation;
    use dlrover_perfmodel::JobShape;

    let mut m = JobMaster::new(
        1,
        TrainingJobSpec::paper_default(STEPS),
        ResourceAllocation::new(JobShape::new(WORKERS, PS, CPU, CPU, 512), CPU * 4.0, 256.0),
        MasterConfig::default(),
    );
    m.set_telemetry(telemetry.clone());
    // 20 healthy minutes, then the injection.
    for _ in 0..40 {
        m.tick(SLICE);
    }
    m.engine_mut().set_ps_pod(0, PodState { cpu: CPU, speed: 0.03 });
    for _ in 0..400_000 {
        for e in m.tick(SLICE) {
            if let MasterEvent::Completed(t) = e {
                return t.saturating_since(SimTime::ZERO).as_mins_f64();
            }
        }
    }
    f64::NAN
}

/// A fig12 unit's result: a scripted-timeline outcome or the job-master
/// cross-check's JCT.
enum Case {
    Scripted(Outcome),
    Auto(f64),
}

/// Runs Fig. 12 (hot PS).
///
/// Execution: four units — the three scripted strategies plus the
/// master-driven cross-check — each with its own telemetry sink; the
/// per-strategy span tracks keep the merged timelines on distinct
/// Perfetto rows regardless of which thread ran which case.
pub fn run_fig12(_seed: u64) -> String {
    let mut r = Report::new("fig12", "hot-PS recovery strategies");
    let mut units: Vec<Unit<'_, Case>> = STRATEGIES
        .iter()
        .enumerate()
        .map(|(i, &(label, strategy))| {
            Unit::new(format!("{i}/{label}"), move |t: &Telemetry| {
                Case::Scripted(hot_ps_case(strategy, t))
            })
        })
        .collect();
    units.push(Unit::new("3/master-auto".to_string(), |t: &Telemetry| {
        Case::Auto(hot_ps_via_master(t))
    }));
    let outputs = run_units_auto(units);
    let scripted: Vec<&Outcome> = outputs[..3]
        .iter()
        .map(|o| match &o.value {
            Case::Scripted(oc) => oc,
            Case::Auto(_) => unreachable!("key order pins units 0-2 to scripted cases"),
        })
        .collect();
    let auto_jct = match outputs[3].value {
        Case::Auto(jct) => jct,
        Case::Scripted(_) => unreachable!("key order pins unit 3 to the master cross-check"),
    };

    let mut rows = render(&mut r, "PS 0 drops to 3% CPU at minute 20", &scripted);
    // Integrated path: master auto-detects and rebalances.
    r.row(
        &["DLRover-RM (job master)".into(), format!("{auto_jct:.1}"), "auto".into(), "auto".into()],
        &[26, 9, 11, 14],
    );
    rows.push(serde_json::json!({
        "strategy": "DLRover-RM (job master, auto)", "jct_min": auto_jct,
    }));
    let jct = |i: usize| rows[i]["jct_min"].as_f64().unwrap();
    r.line(format!(
        "\nDLRover vs no-intervention: -{:.1}% (paper: -36.4%) | vs traditional: -{:.1}% (paper: -27.6%)",
        (1.0 - jct(2) / jct(0)) * 100.0,
        (1.0 - jct(2) / jct(1)) * 100.0
    ));
    r.record("rows", &rows);
    r.telemetry(&merge_telemetry(&outputs));
    r.finish()
}

/// Runs Fig. 13 (worker straggler).
///
/// Execution: one unit per scripted strategy, merged in paper row order.
pub fn run_fig13(_seed: u64) -> String {
    let mut r = Report::new("fig13", "worker-straggler recovery strategies");
    let units = STRATEGIES
        .iter()
        .enumerate()
        .map(|(i, &(label, strategy))| {
            Unit::new(format!("{i}/{label}"), move |t: &Telemetry| straggler_case(strategy, t))
        })
        .collect();
    let outputs = run_units_auto(units);
    let outcomes: Vec<&Outcome> = outputs.iter().map(|o| &o.value).collect();
    let rows = render(&mut r, "worker 0 drops to 3% CPU at minute 20", &outcomes);
    let jct = |i: usize| rows[i]["jct_min"].as_f64().unwrap();
    r.line(format!(
        "\nDLRover vs no-intervention: -{:.1}% (paper: -48.5%) | vs traditional: -{:.1}% (paper: -37%)",
        (1.0 - jct(2) / jct(0)) * 100.0,
        (1.0 - jct(2) / jct(1)) * 100.0
    ));
    r.record("rows", &rows);
    r.telemetry(&merge_telemetry(&outputs));
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critpath::critical_path;
    use dlrover_telemetry::parse_spans_jsonl;

    fn jcts(id: &str) -> (f64, f64, f64) {
        let rows = crate::fixture::canonical(id).json["rows"].as_array().unwrap().clone();
        (
            rows[0]["jct_min"].as_f64().unwrap(),
            rows[1]["jct_min"].as_f64().unwrap(),
            rows[2]["jct_min"].as_f64().unwrap(),
        )
    }

    #[test]
    fn fig12_ordering() {
        let (noint, traditional, dlrover) = jcts("fig12");
        // The integrated job-master path must land in the same league as
        // the scripted seamless timeline.
        let json = &crate::fixture::canonical("fig12").json;
        let auto = json["rows"][3]["jct_min"].as_f64().unwrap();
        assert!(auto.is_finite());
        assert!(auto < traditional, "auto mitigation {auto} !< traditional {traditional}");
        assert!(dlrover < traditional, "{dlrover} !< {traditional}");
        assert!(traditional < noint, "{traditional} !< {noint}");
        // Factor sanity: DLRover saves at least 15% vs both.
        assert!(dlrover < 0.85 * noint);
        assert!(dlrover < 0.9 * traditional);
    }

    #[test]
    fn fig13_ordering() {
        let (noint, traditional, dlrover) = jcts("fig13");
        assert!(dlrover < traditional, "{dlrover} !< {traditional}");
        assert!(traditional < noint, "{traditional} !< {noint}");
        assert!(dlrover < 0.7 * noint, "sharding should save big: {dlrover} vs {noint}");
    }

    /// Critical-path shape for the migration-heavy scenario: seamless
    /// recovery keeps the pause/migration overhead a small slice of the
    /// makespan (Table 2 / §5.2), and useful iteration work dominates.
    #[test]
    fn fig12_critpath_migration_overhead_is_bounded() {
        let t = Telemetry::default();
        hot_ps_case(MigrationStrategy::Seamless, &t);
        let spans = parse_spans_jsonl(&t.spans_to_jsonl()).expect("well-formed span log");
        let cp = critical_path(&spans);
        let overhead = cp.fraction_of(&["migration", "checkpoint", "rebalance", "pod-startup"]);
        assert!(overhead > 0.0, "the injected migration must leave spans");
        assert!(overhead < 0.15, "seamless overhead should be bounded: {overhead:.3}");
        assert!(
            cp.dominant.starts_with("iteration"),
            "training should dominate, got {}",
            cp.dominant
        );
    }

    /// Critical-path shape for the straggler-heavy scenario: once worker 0
    /// crawls at 3% speed, straggler spans cover the tail and carry most of
    /// the makespan (§5.3's motivation for dynamic sharding).
    #[test]
    fn fig13_critpath_is_straggler_dominated() {
        let t = Telemetry::default();
        straggler_case(MigrationStrategy::Seamless, &t);
        let spans = parse_spans_jsonl(&t.spans_to_jsonl()).expect("well-formed span log");
        assert!(spans.iter().all(|s| s.track == case_track(20, MigrationStrategy::Seamless)));
        let cp = critical_path(&spans);
        assert_eq!(cp.dominant, "straggler", "phases: {:?}", cp.phases_us);
        assert!(cp.fraction("straggler") > 0.25, "fractions: {:?}", cp.fractions);
    }
}
